/**
 * @file
 * Domain example: run any of the nine bundled SPLASH-2-style
 * kernels under any protocol configuration from the command line.
 *
 *   splash_runner <app> [procs] [mode] [clustering] [flags...]
 *
 *   app        one of: barnes fmm lu lu-contig ocean raytrace
 *              volrend water-nsq water-sp
 *   procs      1..16 (default 16)
 *   mode       base | smp | hw (default smp)
 *   clustering 1 | 2 | 4 (smp only, default 4)
 *   flags      --gran (Table 2 granularity hint)
 *              --home (home placement optimization)
 *              --share-dir / --broadcast / --no-flag (extensions)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/app.hh"
#include "stats/report.hh"

using namespace shasta;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <app> [procs] [base|smp|hw] "
                     "[clustering]\napps:",
                     argv[0]);
        for (const auto &n : appNames())
            std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }
    const std::string name = argv[1];
    const int procs = argc > 2 ? std::atoi(argv[2]) : 16;
    const std::string mode = argc > 3 ? argv[3] : "smp";
    const int clustering = argc > 4 ? std::atoi(argv[4]) : 4;

    DsmConfig cfg;
    if (mode == "base")
        cfg = DsmConfig::base(procs);
    else if (mode == "hw")
        cfg = DsmConfig::hardware(procs);
    else
        cfg = DsmConfig::smp(procs, clustering);

    auto app = createApp(name);
    AppParams p = app->defaultParams();
    for (int i = 5; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--gran")
            p.variableGranularity = true;
        else if (flag == "--home")
            p.homePlacement = true;
        else if (flag == "--share-dir")
            cfg.shareDirectory = true;
        else if (flag == "--broadcast")
            cfg.broadcastDowngrades = true;
        else if (flag == "--no-flag")
            cfg.useInvalidFlag = false;
        else
            std::fprintf(stderr, "ignoring unknown flag %s\n",
                         flag.c_str());
    }
    const AppResult r = runApp(*app, cfg, p);
    const double ref = app->reference(p);

    std::printf("%s on %d procs (%s, clustering %d), n=%d\n",
                name.c_str(), procs, mode.c_str(),
                cfg.effectiveClustering(), p.n);
    std::printf("  simulated time  %.3f s\n",
                ticksToSeconds(r.wallTime));
    std::printf("  checksum        %.10g (reference %.10g)\n",
                r.checksum, ref);
    std::printf("  misses          %llu\n",
                static_cast<unsigned long long>(
                    r.counters.totalMisses()));
    std::printf("  messages        %llu (%llu remote / %llu local "
                "/ %llu downgrade)\n",
                static_cast<unsigned long long>(r.net.total()),
                static_cast<unsigned long long>(r.net.remoteMsgs),
                static_cast<unsigned long long>(r.net.localMsgs),
                static_cast<unsigned long long>(
                    r.net.downgradeMsgs));

    const TimeBreakdown bd = r.breakdown;
    std::printf("  breakdown       task %.0f%%  read %.0f%%  write "
                "%.0f%%  sync %.0f%%  msg %.0f%%  other %.0f%%\n",
                100.0 * bd.task() / bd.total,
                100.0 * bd.parts.read / bd.total,
                100.0 * bd.parts.write / bd.total,
                100.0 * bd.parts.sync / bd.total,
                100.0 * bd.parts.msg / bd.total,
                100.0 * bd.parts.other / bd.total);
    return 0;
}
