/**
 * @file
 * Quickstart: the smallest complete SMP-Shasta program.
 *
 * Sixteen simulated processors (four per SMP node, as in the paper's
 * cluster) cooperatively sum a shared array: each processor sums its
 * slice into a lock-protected shared accumulator.  Demonstrates the
 * core API: Runtime construction, shared allocation, the coroutine
 * kernel with checked accesses, locks/barriers, and the statistics.
 */

#include <cstdio>

#include "dsm/runtime.hh"

using namespace shasta;

namespace
{

constexpr int kElems = 4096;

Task
kernel(Context &ctx, Addr data, Addr total, int lock)
{
    const int procs = ctx.numProcs();
    const int per = kElems / procs;
    const int begin = ctx.id() * per;

    // Sum my slice through checked (flag-technique) loads.
    double sum = 0;
    for (int i = begin; i < begin + per; ++i) {
        sum += co_await ctx.loadFp(data + static_cast<Addr>(i) * 8);
        ctx.compute(4); // the add
        co_await ctx.poll(); // loop backedge: poll for messages
    }

    // Merge into the shared accumulator.
    co_await ctx.lock(lock);
    const double t = co_await ctx.loadFp(total);
    co_await ctx.storeFp(total, t + sum);
    co_await ctx.unlock(lock);

    co_await ctx.barrier();
}

} // namespace

int
main()
{
    // The paper's cluster: 16 processors, 4 per SMP, clustering 4.
    DsmConfig cfg = DsmConfig::smp(16, 4);
    Runtime rt(cfg);

    const Addr data = rt.alloc(kElems * 8);
    const Addr total = rt.alloc(8);
    const int lock = rt.allocLock();
    for (int i = 0; i < kElems; ++i) {
        rt.protocol()
            .memory(rt.config().topology().nodeOf(
                rt.protocol().homeProc(rt.heap().lineOf(
                    data + static_cast<Addr>(i) * 8))))
            .write<double>(data + static_cast<Addr>(i) * 8,
                           1.0 / (i + 1));
    }

    rt.run([&](Context &c) { return kernel(c, data, total, lock); });

    // Read the result from whichever node owns it.
    double result = 0;
    for (NodeId n = 0; n < cfg.topology().numNodes(); ++n) {
        if (readableState(rt.protocol().nodeState(
                n, rt.heap().lineOf(total)))) {
            result = rt.protocol().memory(n).read<double>(total);
            break;
        }
    }

    std::printf("harmonic(%d) = %.6f\n", kElems, result);
    std::printf("simulated time: %.3f ms\n",
                1e3 * ticksToSeconds(rt.wallTime()));
    std::printf("software misses: %llu  (read 2-hop %llu, "
                "3-hop %llu)\n",
                static_cast<unsigned long long>(
                    rt.counters().totalMisses()),
                static_cast<unsigned long long>(
                    rt.counters().missCount(MissClass::Read2Hop)),
                static_cast<unsigned long long>(
                    rt.counters().missCount(MissClass::Read3Hop)));
    std::printf("messages: %llu remote, %llu local, %llu "
                "downgrades\n",
                static_cast<unsigned long long>(
                    rt.netCounts().remoteMsgs),
                static_cast<unsigned long long>(
                    rt.netCounts().localMsgs),
                static_cast<unsigned long long>(
                    rt.netCounts().downgradeMsgs));
    return 0;
}
