/**
 * @file
 * Race explorer: exhaustively interleaves the paper's Figure 2
 * scenarios with the model checker and prints what it finds --
 * including a concrete witness schedule for each race the naive
 * protocol exhibits, and the proof (0 violating interleavings) that
 * the downgrade-message protocol prevents them.
 */

#include <cstdio>

#include "racecheck/model_checker.hh"
#include "racecheck/scenarios.hh"

using namespace shasta::racecheck;

int
main()
{
    std::printf("Figure 2 race scenarios under exhaustive "
                "interleaving\n");
    std::printf("====================================================="
                "\n\n");

    ModelChecker mc;
    for (const Scenario &sc : allScenarios()) {
        const ExploreResult r =
            mc.explore(sc.threads, sc.init, sc.violation);
        std::printf("%-22s %-55s\n", sc.name.c_str(),
                    sc.description.c_str());
        std::printf("  interleavings: %llu   violations: %llu   "
                    "deadlocks: %llu   expected: %s\n",
                    static_cast<unsigned long long>(r.terminals),
                    static_cast<unsigned long long>(r.violations),
                    static_cast<unsigned long long>(r.deadlocks),
                    sc.expectDeadlocks
                        ? "deadlocks"
                        : sc.expectViolations ? "RACES"
                                              : "race-free");
        if (!r.witness.empty()) {
            std::printf("  witness schedule:\n");
            for (const auto &step : r.witness)
                std::printf("    %s\n", step.c_str());
        }
        std::printf("\n");
    }

    std::printf("The *-naive scenarios downgrade state directly and "
                "lose updates or\nreturn the invalid flag as data; "
                "the *-smp scenarios use SMP-Shasta's\ndowngrade "
                "messages (handled only at poll points) and are "
                "race-free.\nThe fpflag pair shows why SMP-Shasta "
                "must make the FP flag check\natomic "
                "(Section 3.4.1).\n");
    return 0;
}
