/**
 * @file
 * Domain example: a nearest-neighbour stencil solver (the kind of
 * workload the paper's introduction motivates) run side by side
 * under Base-Shasta and SMP-Shasta to show the clustering effect.
 *
 * Each processor owns a band of rows of a grid and repeatedly
 * relaxes it; only the band boundaries are communicated.  With
 * clustering 4, three of every four band boundaries fall inside an
 * SMP node and cost no protocol messages at all.
 */

#include <cstdio>

#include "dsm/runtime.hh"
#include "stats/report.hh"

using namespace shasta;

namespace
{

constexpr int kGrid = 130;
constexpr int kIters = 12;

Addr
cell(Addr base, int i, int j)
{
    return base + (static_cast<Addr>(i) * kGrid +
                   static_cast<Addr>(j)) *
                      8;
}

Task
stencil(Context &ctx, Addr src, Addr dst)
{
    const int procs = ctx.numProcs();
    const int rows = (kGrid - 2) / procs;
    const int r0 = 1 + ctx.id() * rows;

    for (int it = 0; it < kIters; ++it) {
        const Addr from = (it % 2 == 0) ? src : dst;
        const Addr to = (it % 2 == 0) ? dst : src;
        for (int i = r0; i < r0 + rows; ++i) {
            for (int j0 = 1; j0 < kGrid - 1; j0 += 8) {
                const int len = std::min(8, kGrid - 1 - j0);
                auto bs = co_await ctx.batchSet(
                    {cell(from, i - 1, j0), len * 8, false},
                    {cell(from, i, j0 - 1), (len + 2) * 8, false},
                    {cell(from, i + 1, j0), len * 8, false},
                    {cell(to, i, j0), len * 8, true});
                for (int j = j0; j < j0 + len; ++j) {
                    const double v =
                        0.25 *
                        (ctx.rawLoad<double>(cell(from, i - 1, j)) +
                         ctx.rawLoad<double>(cell(from, i + 1, j)) +
                         ctx.rawLoad<double>(cell(from, i, j - 1)) +
                         ctx.rawLoad<double>(cell(from, i, j + 1)));
                    ctx.rawStore<double>(cell(to, i, j), v);
                }
                ctx.batchEnd(bs);
                ctx.compute(64);
                co_await ctx.poll();
            }
        }
        co_await ctx.barrier();
    }
}

void
runOnce(const char *label, DsmConfig cfg)
{
    Runtime rt(cfg);
    const Addr src = rt.alloc(kGrid * kGrid * 8);
    const Addr dst = rt.alloc(kGrid * kGrid * 8);
    // Hot left edge.
    for (int i = 0; i < kGrid; ++i) {
        const Addr a = cell(src, i, 0);
        const NodeId n = cfg.protocolActive()
                             ? cfg.topology().nodeOf(
                                   rt.protocol().homeProc(
                                       rt.heap().lineOf(a)))
                             : 0;
        rt.protocol().memory(n).write<double>(a, 100.0);
        rt.protocol().memory(n).write<double>(cell(dst, i, 0),
                                              100.0);
    }

    rt.run([&](Context &c) { return stencil(c, src, dst); });

    std::printf("%-12s  time %8.3f ms   misses %7llu   messages "
                "%7llu (%llu downgrades)\n",
                label, 1e3 * ticksToSeconds(rt.wallTime()),
                static_cast<unsigned long long>(
                    rt.counters().totalMisses()),
                static_cast<unsigned long long>(
                    rt.netCounts().total()),
                static_cast<unsigned long long>(
                    rt.netCounts().downgradeMsgs));
}

} // namespace

int
main()
{
    std::printf("stencil %dx%d, %d iterations, 16 processors on 4 "
                "machines\n\n",
                kGrid, kGrid, kIters);
    runOnce("Base-Shasta", DsmConfig::base(16));
    runOnce("SMP c=2", DsmConfig::smp(16, 2));
    runOnce("SMP c=4", DsmConfig::smp(16, 4));
    std::printf("\nClustering keeps most band boundaries inside a "
                "node: misses and\nmessages drop, exactly the "
                "effect of Figures 6 and 7.\n");
    return 0;
}
