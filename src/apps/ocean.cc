/**
 * @file
 * Ocean: multigrid nearest-neighbour solver (SPLASH-2 "Ocean").
 *
 * Structure mirrors the original:
 *
 *  - every iteration works a hierarchy of grids (fine smoothing,
 *    restriction, coarse smoothing); the coarse levels' poor
 *    communication-to-computation ratio is what caps Base-Shasta's
 *    Ocean speedup;
 *  - the grid is partitioned into 2-D subblocks over a processor
 *    grid, stored as SPLASH-2's "4-D arrays": each processor's
 *    subblock is contiguous (and homed at the owner under the home
 *    placement optimization), so subblock edges do not write-share
 *    lines and only the true boundary exchanges communicate;
 *  - with clustering 4 at 16 processors, an SMP node holds one row
 *    of the processor grid, so every east/west exchange is intra-
 *    node -- the uniform locality gain behind Ocean being the
 *    paper's biggest clustering winner (1.9x, Section 4.3).
 */

#include <array>
#include <cmath>
#include <vector>

#include "apps/app.hh"
#include "apps/app_factories.hh"
#include "apps/workload_common.hh"

namespace shasta
{

namespace
{

/** Deterministic initial field. */
double
initField(int i, int j)
{
    return static_cast<double>((i * 31 + j * 17) % 97) / 97.0;
}

/** Points per batched chunk (one 64-byte line of doubles). */
constexpr int kChunk = 8;

/** ~40 cycles per point: multigrid smoothing does little arithmetic
 *  per point touched. */
constexpr Tick kPointCost = 40;

/** Number of grid levels (fine + two coarse). */
constexpr int kLevels = 3;

/** Near-square processor grid; cols >= rows so that at 16
 *  processors a 4-processor SMP node is one processor-grid row. */
void
procGrid(int procs, int &rows, int &cols)
{
    int r = 1;
    for (int c = 1; c * c <= procs; ++c) {
        if (procs % c == 0)
            r = c;
    }
    rows = r;
    cols = procs / r;
}

class OceanApp : public App
{
  public:
    std::string name() const override { return "ocean"; }

    AppParams
    defaultParams() const override
    {
        AppParams p;
        // The paper's 514x514 grid (Table 1).
        p.n = 514;
        p.iters = 24;
        return p;
    }

    AppParams
    largeParams() const override
    {
        AppParams p;
        // The paper's 1026x1026 grid (Table 3).
        p.n = 1026;
        p.iters = 24;
        return p;
    }

    void setup(Runtime &rt, const AppParams &p) override;
    Task body(Context &ctx, const AppParams &p) override;
    double checksum(Runtime &rt) override;
    double reference(const AppParams &p) const override;

  private:
    /**
     * One grid level in 4-D layout: per-processor contiguous
     * subblocks of two arrays (A and B).
     */
    struct Level
    {
        int n = 0;
        /** Per global row/col: owning processor-grid row/col and the
         *  local index inside the owner's subblock. */
        std::vector<int> rowOwner, rowLocal;
        std::vector<int> colOwner, colLocal;
        /** Per processor: subblock base addresses and width. */
        std::vector<Addr> baseA, baseB;
        std::vector<int> width;

        Addr
        at(bool array_a, int i, int j) const
        {
            const int q =
                rowOwner[static_cast<std::size_t>(i)] * gc +
                colOwner[static_cast<std::size_t>(j)];
            const Addr base =
                array_a ? baseA[static_cast<std::size_t>(q)]
                        : baseB[static_cast<std::size_t>(q)];
            return base +
                   (static_cast<Addr>(
                        rowLocal[static_cast<std::size_t>(i)]) *
                        static_cast<Addr>(
                            width[static_cast<std::size_t>(q)]) +
                    static_cast<Addr>(
                        colLocal[static_cast<std::size_t>(j)])) *
                       8;
        }

        int gr = 1, gc = 1;
    };

    void buildLevel(Runtime &rt, Level &lv, int n,
                    bool home_placement);

    /** Five-point Jacobi sweep of one level (src -> dst). */
    Task relax(Context &ctx, const Level &lv, bool a_to_b);

    /** Restrict: coarse A[i][j] = fine B[2i-1][2j-1]. */
    Task restrictTo(Context &ctx, const Level &fine,
                    const Level &coarse);

    int iters_ = 0;
    bool annotate_ = false;
    Level levels_[kLevels];
};

void
OceanApp::buildLevel(Runtime &rt, Level &lv, int n,
                     bool home_placement)
{
    lv.n = n;
    procGrid(rt.numProcs(), lv.gr, lv.gc);
    lv.rowOwner.resize(static_cast<std::size_t>(n));
    lv.rowLocal.resize(static_cast<std::size_t>(n));
    lv.colOwner.resize(static_cast<std::size_t>(n));
    lv.colLocal.resize(static_cast<std::size_t>(n));
    for (int pr = 0; pr < lv.gr; ++pr) {
        const Range rr = partition(n, lv.gr, pr);
        for (int i = rr.begin; i < rr.end; ++i) {
            lv.rowOwner[static_cast<std::size_t>(i)] = pr;
            lv.rowLocal[static_cast<std::size_t>(i)] = i - rr.begin;
        }
    }
    for (int pc = 0; pc < lv.gc; ++pc) {
        const Range cr = partition(n, lv.gc, pc);
        for (int j = cr.begin; j < cr.end; ++j) {
            lv.colOwner[static_cast<std::size_t>(j)] = pc;
            lv.colLocal[static_cast<std::size_t>(j)] = j - cr.begin;
        }
    }
    const int procs = rt.numProcs();
    lv.baseA.resize(static_cast<std::size_t>(procs));
    lv.baseB.resize(static_cast<std::size_t>(procs));
    lv.width.resize(static_cast<std::size_t>(procs));
    for (int q = 0; q < procs; ++q) {
        const Range rr = partition(n, lv.gr, q / lv.gc);
        const Range cr = partition(n, lv.gc, q % lv.gc);
        lv.width[static_cast<std::size_t>(q)] = cr.size();
        const std::size_t bytes =
            static_cast<std::size_t>(rr.size()) *
            static_cast<std::size_t>(cr.size()) * 8;
        if (bytes == 0)
            continue;
        if (home_placement && rt.config().protocolActive()) {
            lv.baseA[static_cast<std::size_t>(q)] =
                rt.allocHomed(bytes, 0, q);
            lv.baseB[static_cast<std::size_t>(q)] =
                rt.allocHomed(bytes, 0, q);
        } else {
            lv.baseA[static_cast<std::size_t>(q)] =
                rt.alloc(bytes);
            lv.baseB[static_cast<std::size_t>(q)] =
                rt.alloc(bytes);
        }
        if (annotate_) {
            // The 4-D layout means subblock q is written only by
            // processor q (neighbours read its halo rows/columns).
            rt.annotate(lv.baseA[static_cast<std::size_t>(q)],
                        bytes, RegionAnnot::SingleWriter, q);
            rt.annotate(lv.baseB[static_cast<std::size_t>(q)],
                        bytes, RegionAnnot::SingleWriter, q);
        }
    }
}

void
OceanApp::setup(Runtime &rt, const AppParams &p)
{
    iters_ = p.iters;
    annotate_ = p.annotate;
    int n = p.n;
    for (int lv = 0; lv < kLevels; ++lv) {
        buildLevel(rt, levels_[lv], n, p.homePlacement);
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                initWrite<double>(rt,
                                  levels_[lv].at(true, i, j),
                                  initField(i, j));
                initWrite<double>(rt,
                                  levels_[lv].at(false, i, j),
                                  initField(i, j));
            }
        }
        n = (n - 2) / 2 + 2;
    }
}

Task
OceanApp::relax(Context &ctx, const Level &lv, bool a_to_b)
{
    const bool src_a = a_to_b;
    const int n = lv.n;
    const Range rows = partition(n, lv.gr, ctx.id() / lv.gc);
    const Range cols = partition(n, lv.gc, ctx.id() % lv.gc);
    const int i_lo = std::max(rows.begin, 1);
    const int i_hi = std::min(rows.end, n - 1);
    const int j_lo = std::max(cols.begin, 1);
    const int j_hi = std::min(cols.end, n - 1);

    for (int i = i_lo; i < i_hi; ++i) {
        for (int j0 = j_lo; j0 < j_hi; j0 += kChunk) {
            const int len = std::min(kChunk, j_hi - j0);
            // The west/east halo cells may live in a neighbour's
            // subblock (discontiguous), so they are fetched with
            // flag-checked single loads; the four row segments are
            // contiguous and batch together.
            const double west =
                co_await ctx.loadFp(lv.at(src_a, i, j0 - 1));
            const double east = co_await ctx.loadFp(
                lv.at(src_a, i, j0 + len));
            auto bs = co_await ctx.batchSet(
                {lv.at(src_a, i - 1, j0), len * 8, false},
                {lv.at(src_a, i, j0), len * 8, false},
                {lv.at(src_a, i + 1, j0), len * 8, false},
                {lv.at(!src_a, i, j0), len * 8, true});
            double w = west;
            for (int j = j0; j < j0 + len; ++j) {
                const double centre =
                    ctx.rawLoad<double>(lv.at(src_a, i, j));
                const double e =
                    (j + 1 < j0 + len)
                        ? ctx.rawLoad<double>(
                              lv.at(src_a, i, j + 1))
                        : east;
                const double v =
                    0.2 *
                    (centre +
                     ctx.rawLoad<double>(lv.at(src_a, i - 1, j)) +
                     ctx.rawLoad<double>(lv.at(src_a, i + 1, j)) +
                     w + e);
                ctx.rawStore<double>(lv.at(!src_a, i, j), v);
                w = centre;
            }
            ctx.batchEnd(bs);
            ctx.compute(kPointCost * len);
            co_await ctx.poll();
        }
    }
}

Task
OceanApp::restrictTo(Context &ctx, const Level &fine,
                     const Level &coarse)
{
    // Injection restriction; the strided fine-grid reads cross
    // subblock boundaries, so they use flag-checked single loads.
    const int cn = coarse.n;
    const Range rows = partition(cn, coarse.gr,
                                 ctx.id() / coarse.gc);
    const Range cols = partition(cn, coarse.gc,
                                 ctx.id() % coarse.gc);
    const int i_lo = std::max(rows.begin, 1);
    const int i_hi = std::min(rows.end, cn - 1);
    const int j_lo = std::max(cols.begin, 1);
    const int j_hi = std::min(cols.end, cn - 1);

    for (int ci = i_lo; ci < i_hi; ++ci) {
        const int fi = 2 * ci - 1;
        for (int cj0 = j_lo; cj0 < j_hi; cj0 += kChunk) {
            const int len = std::min(kChunk, j_hi - cj0);
            std::array<double, kChunk> vals{};
            for (int k = 0; k < len; ++k) {
                vals[static_cast<std::size_t>(k)] =
                    co_await ctx.loadFp(
                        fine.at(false, fi, 2 * (cj0 + k) - 1));
            }
            auto bw = co_await ctx.batch(coarse.at(true, ci, cj0),
                                         len * 8, true);
            for (int k = 0; k < len; ++k) {
                ctx.rawStore<double>(
                    coarse.at(true, ci, cj0 + k),
                    vals[static_cast<std::size_t>(k)]);
            }
            ctx.batchEnd(bw);
            ctx.compute(kPointCost * len / 2);
            co_await ctx.poll();
        }
    }
}

Task
OceanApp::body(Context &ctx, const AppParams &p)
{
    (void)p;
    for (int it = 0; it < iters_; ++it) {
        co_await relax(ctx, levels_[0], it % 2 == 0);
        co_await ctx.barrier();
        for (int lv = 1; lv < kLevels; ++lv) {
            co_await restrictTo(ctx, levels_[lv - 1], levels_[lv]);
            co_await ctx.barrier();
            co_await relax(ctx, levels_[lv], true);
            co_await ctx.barrier();
        }
    }
}

double
OceanApp::checksum(Runtime &rt)
{
    double sum = 0;
    double weight = 1.0;
    for (int lv = 0; lv < kLevels; ++lv) {
        const Level &l = levels_[lv];
        const bool array_a = (lv == 0 && iters_ % 2 == 0);
        for (int i = 1; i < l.n - 1; ++i) {
            for (int j = 1; j < l.n - 1; ++j) {
                sum += weight *
                       finalRead<double>(rt, l.at(array_a, i, j)) *
                       (1.0 + 0.001 * ((i * 13 + j) % 7));
            }
        }
        weight *= 0.5;
    }
    return sum;
}

double
OceanApp::reference(const AppParams &p) const
{
    struct HostLevel
    {
        int n;
        std::vector<double> a, b;
    };
    std::vector<HostLevel> ls;
    int n = p.n;
    for (int lv = 0; lv < kLevels; ++lv) {
        HostLevel h;
        h.n = n;
        h.a.resize(static_cast<std::size_t>(n) *
                   static_cast<std::size_t>(n));
        h.b = h.a;
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                h.a[static_cast<std::size_t>(i * n + j)] =
                    initField(i, j);
                h.b[static_cast<std::size_t>(i * n + j)] =
                    initField(i, j);
            }
        }
        ls.push_back(std::move(h));
        n = (n - 2) / 2 + 2;
    }

    auto relax_host = [](HostLevel &h, bool a_to_b) {
        const auto &src = a_to_b ? h.a : h.b;
        auto &dst = a_to_b ? h.b : h.a;
        for (int i = 1; i < h.n - 1; ++i) {
            for (int j = 1; j < h.n - 1; ++j) {
                dst[static_cast<std::size_t>(i * h.n + j)] =
                    0.2 *
                    (src[static_cast<std::size_t>(i * h.n + j)] +
                     src[static_cast<std::size_t>((i - 1) * h.n +
                                                  j)] +
                     src[static_cast<std::size_t>((i + 1) * h.n +
                                                  j)] +
                     src[static_cast<std::size_t>(i * h.n + j -
                                                  1)] +
                     src[static_cast<std::size_t>(i * h.n + j +
                                                  1)]);
            }
        }
    };
    auto restrict_host = [](const HostLevel &fine,
                            HostLevel &coarse) {
        for (int ci = 1; ci < coarse.n - 1; ++ci) {
            for (int cj = 1; cj < coarse.n - 1; ++cj) {
                coarse.a[static_cast<std::size_t>(ci * coarse.n +
                                                  cj)] =
                    fine.b[static_cast<std::size_t>(
                        (2 * ci - 1) * fine.n + (2 * cj - 1))];
            }
        }
    };

    for (int it = 0; it < p.iters; ++it) {
        relax_host(ls[0], it % 2 == 0);
        for (int lv = 1; lv < kLevels; ++lv) {
            restrict_host(ls[static_cast<std::size_t>(lv - 1)],
                          ls[static_cast<std::size_t>(lv)]);
            relax_host(ls[static_cast<std::size_t>(lv)], true);
        }
    }

    double sum = 0;
    double weight = 1.0;
    for (int lv = 0; lv < kLevels; ++lv) {
        const HostLevel &h = ls[static_cast<std::size_t>(lv)];
        const auto &fin =
            (lv == 0 && p.iters % 2 == 0) ? h.a : h.b;
        for (int i = 1; i < h.n - 1; ++i) {
            for (int j = 1; j < h.n - 1; ++j) {
                sum += weight *
                       fin[static_cast<std::size_t>(i * h.n + j)] *
                       (1.0 + 0.001 * ((i * 13 + j) % 7));
            }
        }
        weight *= 0.5;
    }
    return sum;
}

} // namespace

std::unique_ptr<App>
makeOcean()
{
    return std::make_unique<OceanApp>();
}

} // namespace shasta
