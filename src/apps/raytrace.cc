/**
 * @file
 * Raytrace: sphere-scene ray caster (SPLASH-2 "Raytrace").
 *
 * The scene (an array of spheres) is read-only shared data touched
 * by every processor on every ray -- the unbatched floating-point
 * load pattern that makes Raytrace the application most hurt by
 * SMP-Shasta's dearer FP checks (Table 1: 8.8% -> 25.5%).  Image
 * tiles are distributed through a lock-protected work queue (the
 * original's task queues), so the image rows exhibit scattered write
 * sharing.  Primary rays are orthographic; one shadow ray is cast
 * per hit.
 */

#include <cmath>
#include <vector>

#include "apps/app.hh"
#include "apps/app_factories.hh"
#include "apps/workload_common.hh"

namespace shasta
{

namespace
{

/** Sphere layout: center[3], radius, shade = 5 doubles (40 B). */
constexpr int kSphereBytes = 40;
constexpr int kTile = 8;

/** Light direction (normalized at use). */
constexpr double kLx = 0.4, kLy = 0.5, kLz = 0.77;

struct HostSphere
{
    Vec3 c;
    double r;
    double shade;
};

std::vector<HostSphere>
makeScene(int count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<HostSphere> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        HostSphere s;
        s.c = Vec3{rng.nextDouble(), rng.nextDouble(),
                   0.5 + rng.nextDouble()};
        s.r = 0.05 + 0.10 * rng.nextDouble();
        s.shade = 0.3 + 0.7 * rng.nextDouble();
        out.push_back(s);
    }
    return out;
}

/** Ray-sphere intersection: nearest positive t, or -1. */
double
hitSphere(const Vec3 &origin, const Vec3 &dir, const Vec3 &c,
          double r)
{
    const Vec3 oc = origin - c;
    const double b = 2.0 * (oc.x * dir.x + oc.y * dir.y +
                            oc.z * dir.z);
    const double cc = oc.norm2() - r * r;
    const double disc = b * b - 4 * cc;
    if (disc < 0)
        return -1.0;
    const double t = (-b - std::sqrt(disc)) / 2.0;
    return t > 1e-9 ? t : -1.0;
}

class RaytraceApp : public App
{
  public:
    std::string name() const override { return "raytrace"; }

    AppParams
    defaultParams() const override
    {
        AppParams p;
        // Scaled from the paper's "balls4" scene.
        p.n = 128; // image is n x n, 64 spheres
        p.iters = 1;
        return p;
    }

    AppParams
    largeParams() const override
    {
        AppParams p;
        p.n = 0; // not part of the Table 3 experiment
        return p;
    }

    void
    setup(Runtime &rt, const AppParams &p) override
    {
        n_ = p.n;
        spheres_ = std::max(8, n_ / 2);
        scene_ = rt.alloc(static_cast<std::size_t>(spheres_) *
                          kSphereBytes);
        image_ = rt.alloc(static_cast<std::size_t>(n_) *
                          static_cast<std::size_t>(n_) * 8);
        const auto host = makeScene(spheres_, p.seed);
        for (int i = 0; i < spheres_; ++i) {
            const Addr s = sphere(i);
            initWrite<double>(rt, s + 0, host[
                static_cast<std::size_t>(i)].c.x);
            initWrite<double>(rt, s + 8, host[
                static_cast<std::size_t>(i)].c.y);
            initWrite<double>(rt, s + 16, host[
                static_cast<std::size_t>(i)].c.z);
            initWrite<double>(rt, s + 24, host[
                static_cast<std::size_t>(i)].r);
            initWrite<double>(rt, s + 32, host[
                static_cast<std::size_t>(i)].shade);
        }
        if (p.annotate) {
            // The scene is written only here, before the processors
            // start: every in-run access is one of the unbatched FP
            // loads that make Raytrace the most check-burdened app
            // (Table 1), so those checks are provably redundant.
            rt.annotate(scene_,
                        static_cast<std::size_t>(spheres_) *
                            kSphereBytes,
                        RegionAnnot::ReadOnlyAfterBarrier);
        }
        const int tiles = ((n_ + kTile - 1) / kTile);
        wq_ = makeWorkQueue(rt, tiles * tiles);
    }

    Task
    body(Context &ctx, const AppParams &p) override
    {
        (void)p;
        const int tiles_per_row = (n_ + kTile - 1) / kTile;
        for (;;) {
            int tile = -1;
            co_await grabWork(ctx, wq_, &tile);
            if (tile < 0)
                break;
            const int ty = (tile / tiles_per_row) * kTile;
            const int tx = (tile % tiles_per_row) * kTile;
            for (int y = ty; y < std::min(ty + kTile, n_); ++y) {
                for (int x = tx; x < std::min(tx + kTile, n_);
                     ++x) {
                    double v = 0;
                    co_await shadePixel(ctx, x, y, &v);
                    co_await ctx.storeFp(pixel(x, y), v);
                    co_await ctx.poll();
                }
            }
        }
        co_await ctx.barrier();
    }

    double
    checksum(Runtime &rt) override
    {
        double sum = 0;
        for (int y = 0; y < n_; ++y) {
            for (int x = 0; x < n_; ++x)
                sum += finalRead<double>(rt, pixel(x, y)) *
                       (1.0 + 0.0001 * ((x * 7 + y) % 13));
        }
        return sum;
    }

    double
    reference(const AppParams &p) const override
    {
        const int n = p.n;
        const int count = std::max(8, n / 2);
        const auto host = makeScene(count, p.seed);
        double sum = 0;
        for (int y = 0; y < n; ++y) {
            for (int x = 0; x < n; ++x) {
                sum += hostShade(host, x, y, n) *
                       (1.0 + 0.0001 * ((x * 7 + y) % 13));
            }
        }
        return sum;
    }

  private:
    Addr
    sphere(int i) const
    {
        return scene_ + static_cast<Addr>(i) * kSphereBytes;
    }

    Addr
    pixel(int x, int y) const
    {
        return image_ +
               (static_cast<Addr>(y) * static_cast<Addr>(n_) +
                static_cast<Addr>(x)) *
                   8;
    }

    static Vec3
    primaryRay(int x, int y, int n, Vec3 &origin)
    {
        origin = Vec3{(x + 0.5) / n, (y + 0.5) / n, 0.0};
        return Vec3{0, 0, 1};
    }

    static double
    lambert(const Vec3 &hit, const Vec3 &center, double shade)
    {
        Vec3 nrm = hit - center;
        const double len = nrm.norm();
        nrm = nrm * (1.0 / len);
        const double lnorm =
            std::sqrt(kLx * kLx + kLy * kLy + kLz * kLz);
        const double dot =
            (nrm.x * kLx + nrm.y * kLy + nrm.z * kLz) / lnorm;
        return 0.1 + (dot > 0 ? 0.9 * dot * shade : 0.0);
    }

    /** DSM-side shading: every sphere record is fetched with
     *  unbatched FP loads, as the original's tight intersection
     *  loop does. */
    Task
    shadePixel(Context &ctx, int x, int y, double *out)
    {
        Vec3 origin;
        const Vec3 dir = primaryRay(x, y, n_, origin);
        double best_t = 1e30;
        int best = -1;
        Vec3 best_c{};
        double best_shade = 0;
        for (int i = 0; i < spheres_; ++i) {
            const Addr s = sphere(i);
            const Vec3 c{co_await ctx.loadFp(s + 0),
                         co_await ctx.loadFp(s + 8),
                         co_await ctx.loadFp(s + 16)};
            const double r = co_await ctx.loadFp(s + 24);
            const double t = hitSphere(origin, dir, c, r);
            ctx.compute(160);
            if (t > 0 && t < best_t) {
                best_t = t;
                best = i;
                best_c = c;
                best_shade = co_await ctx.loadFp(s + 32);
            }
        }
        if (best < 0) {
            *out = 0.02; // background
            co_return;
        }
        const Vec3 hit = origin + dir * best_t;
        double v = lambert(hit, best_c, best_shade);
        // Shadow ray.
        const double lnorm =
            std::sqrt(kLx * kLx + kLy * kLy + kLz * kLz);
        const Vec3 ldir{kLx / lnorm, kLy / lnorm, kLz / lnorm};
        for (int i = 0; i < spheres_; ++i) {
            if (i == best)
                continue;
            const Addr s = sphere(i);
            const Vec3 c{co_await ctx.loadFp(s + 0),
                         co_await ctx.loadFp(s + 8),
                         co_await ctx.loadFp(s + 16)};
            const double r = co_await ctx.loadFp(s + 24);
            ctx.compute(160);
            if (hitSphere(hit, ldir, c, r) > 0) {
                v *= 0.4;
                break;
            }
        }
        *out = v;
        co_return;
    }

    static double
    hostShade(const std::vector<HostSphere> &scene, int x, int y,
              int n)
    {
        Vec3 origin;
        const Vec3 dir = primaryRay(x, y, n, origin);
        double best_t = 1e30;
        int best = -1;
        for (std::size_t i = 0; i < scene.size(); ++i) {
            const double t =
                hitSphere(origin, dir, scene[i].c, scene[i].r);
            if (t > 0 && t < best_t) {
                best_t = t;
                best = static_cast<int>(i);
            }
        }
        if (best < 0)
            return 0.02;
        const Vec3 hit = origin + dir * best_t;
        double v = lambert(hit,
                           scene[static_cast<std::size_t>(best)].c,
                           scene[static_cast<std::size_t>(best)]
                               .shade);
        const double lnorm =
            std::sqrt(kLx * kLx + kLy * kLy + kLz * kLz);
        const Vec3 ldir{kLx / lnorm, kLy / lnorm, kLz / lnorm};
        for (std::size_t i = 0; i < scene.size(); ++i) {
            if (static_cast<int>(i) == best)
                continue;
            if (hitSphere(hit, ldir, scene[i].c, scene[i].r) > 0) {
                v *= 0.4;
                break;
            }
        }
        return v;
    }

    int n_ = 0;
    int spheres_ = 0;
    Addr scene_ = 0;
    Addr image_ = 0;
    WorkQueue wq_;
};

} // namespace

std::unique_ptr<App>
makeRaytrace()
{
    return std::make_unique<RaytraceApp>();
}

} // namespace shasta
