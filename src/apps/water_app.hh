/**
 * @file
 * Water: molecular dynamics (SPLASH-2 "Water-Nsquared" and
 * "Water-Spatial", reduced to point molecules with a Lennard-Jones
 * style potential but keeping the originals' sharing structure).
 *
 * Each step: owners zero their molecules' forces; processors compute
 * a partition of the pair interactions into *private* accumulators
 * (reading molecule positions through loads-only batches); the
 * accumulated contributions are merged into the shared force arrays
 * under per-molecule locks (the migratory, lock-heavy pattern that
 * makes Water emit many 3-message downgrades in Figure 8); owners
 * then integrate their molecules.
 *
 * Nsquared considers all pairs; Spatial only pairs within neighbour
 * cells of a uniform grid (cell lists are computed from the initial
 * positions; molecules barely move over the simulated steps).
 * Table 2's granularity hint for the molecule array is 2048 bytes.
 */

#ifndef SHASTA_APPS_WATER_APP_HH
#define SHASTA_APPS_WATER_APP_HH

#include <vector>

#include "apps/app.hh"
#include "apps/workload_common.hh"

namespace shasta
{

class WaterApp : public App
{
  public:
    explicit WaterApp(bool spatial) : spatial_(spatial) {}

    std::string
    name() const override
    {
        return spatial_ ? "water-sp" : "water-nsq";
    }

    AppParams defaultParams() const override;
    AppParams largeParams() const override;

    std::size_t granularityHint() const override { return 2048; }

    void setup(Runtime &rt, const AppParams &p) override;
    Task body(Context &ctx, const AppParams &p) override;
    double checksum(Runtime &rt) override;
    double reference(const AppParams &p) const override;

    /** Lock-order-dependent force summation: loose FP tolerance. */
    double tolerance() const override { return 1e-6; }

    /** Molecule layout: pos[3], vel[3], force[3], mass. */
    static constexpr int kDoubles = 10;
    static constexpr int kBytes = kDoubles * 8;

  private:
    Addr
    mol(int m, int field) const
    {
        return base_ + static_cast<Addr>(m) * kBytes +
               static_cast<Addr>(field) * 8;
    }

    Addr pos(int m) const { return mol(m, 0); }
    Addr vel(int m) const { return mol(m, 3); }
    Addr force(int m) const { return mol(m, 6); }

    /** Host-side pair list for this run (i < j) with owning proc. */
    void buildPairs(int procs);

    /** Deterministic initial placement (shared with reference()). */
    static std::vector<Vec3> initialPositions(int n,
                                              std::uint64_t seed);

    bool spatial_;
    int n_ = 0;
    int iters_ = 0;
    Addr base_ = 0;
    std::vector<Vec3> initPos_;
    /** pairs_[p] = list of (i, j) computed by processor p. */
    std::vector<std::vector<std::pair<int, int>>> pairs_;
    /** Per-molecule-group force-update locks. */
    std::vector<int> locks_;
};

} // namespace shasta

#endif // SHASTA_APPS_WATER_APP_HH
