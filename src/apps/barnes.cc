/**
 * @file
 * Barnes: hierarchical N-body (SPLASH-2 "Barnes").
 *
 * An adaptive octree is (re)built over the bodies each step and
 * forces are computed with the Barnes-Hut opening criterion.  As in
 * the original, the cell and leaf data are shared read-mostly
 * structures touched by every processor during the force phase --
 * Table 2 raises their granularity to 512 bytes.  Tree build is
 * serialized on processor 0 (the original builds in parallel with
 * locks; the dominant sharing pattern -- cells written by one
 * processor, then read by all -- is preserved).  Force computation
 * and integration are parallel over a static partition of bodies.
 *
 * The traversal order is deterministic, so the parallel run matches
 * the sequential reference bitwise.
 */

#include <array>
#include <cassert>
#include <cmath>
#include <vector>

#include "apps/app.hh"
#include "apps/app_factories.hh"
#include "apps/workload_common.hh"

namespace shasta
{

namespace
{

constexpr double kTheta2 = 0.36;  // opening criterion squared (0.6^2)
constexpr double kEps2 = 1e-4;    // softening
constexpr double kG = 1e-4;       // gravitational constant
constexpr double kDt = 0.05;

/** Body layout: pos[3], vel[3], acc[3], mass = 10 doubles. */
constexpr int kBodyDoubles = 10;
constexpr int kBodyBytes = kBodyDoubles * 8;

/** Cell layout: com[3], mass, child[8] = 12 8-byte slots. */
constexpr int kCellBytes = 96;

/** Child slot encoding. */
constexpr std::int64_t kEmpty = 0;

std::int64_t
encodeCell(int c)
{
    return c + 1;
}

std::int64_t
encodeBody(int b)
{
    return -(static_cast<std::int64_t>(b) + 2);
}

bool isCell(std::int64_t v) { return v > 0; }
bool isBody(std::int64_t v) { return v < -1; }
int cellOf(std::int64_t v) { return static_cast<int>(v - 1); }
int bodyOf(std::int64_t v) { return static_cast<int>(-v - 2); }

/** Pairwise acceleration contribution on @p onto from (@p from_pos,
 *  @p mass). */
Vec3
gravity(const Vec3 &onto, const Vec3 &from_pos, double mass)
{
    const Vec3 d = from_pos - onto;
    const double r2 = d.norm2() + kEps2;
    const double inv = 1.0 / (r2 * std::sqrt(r2));
    return d * (kG * mass * inv);
}

/** Octant of @p p relative to @p center, and the child's center. */
int
octant(const Vec3 &p, Vec3 &center, double half)
{
    int oct = 0;
    const double q = half / 2;
    if (p.x >= center.x) {
        oct |= 1;
        center.x += q;
    } else {
        center.x -= q;
    }
    if (p.y >= center.y) {
        oct |= 2;
        center.y += q;
    } else {
        center.y -= q;
    }
    if (p.z >= center.z) {
        oct |= 4;
        center.z += q;
    } else {
        center.z -= q;
    }
    return oct;
}

class BarnesApp : public App
{
  public:
    std::string name() const override { return "barnes"; }

    AppParams
    defaultParams() const override
    {
        AppParams p;
        // Scaled from the paper's 16K particles.
        p.n = 4096;
        p.iters = 2;
        return p;
    }

    AppParams
    largeParams() const override
    {
        AppParams p;
        // Scaled from Table 3's 64K particles.
        p.n = 8192;
        p.iters = 2;
        return p;
    }

    std::size_t granularityHint() const override { return 512; }

    void
    setup(Runtime &rt, const AppParams &p) override
    {
        n_ = p.n;
        iters_ = p.iters;
        cellCap_ = 4 * n_ + 64;
        const std::size_t hint =
            p.variableGranularity ? granularityHint() : 0;
        // Homed at processor 0's node: the (serialized) tree build
        // then runs against local memory, as the original's parallel
        // build effectively does.
        bodies_ = rt.alloc(static_cast<std::size_t>(n_) *
                           kBodyBytes);
        cells_ = rt.allocHomed(static_cast<std::size_t>(cellCap_) *
                                   kCellBytes,
                               hint, 0);
        bbox_ = rt.allocHomed(64, 0, 0);

        Rng rng(p.seed);
        for (int b = 0; b < n_; ++b) {
            const Vec3 v = initPos(b, n_, p.seed);
            initWrite<double>(rt, bpos(b) + 0, v.x);
            initWrite<double>(rt, bpos(b) + 8, v.y);
            initWrite<double>(rt, bpos(b) + 16, v.z);
            for (int f = 3; f < 9; ++f)
                initWrite<double>(rt, bfield(b, f), 0.0);
            initWrite<double>(rt, bfield(b, 9),
                              0.5 + rng.nextDouble());
        }
    }

    Task body(Context &ctx, const AppParams &p) override;
    double checksum(Runtime &rt) override;
    double reference(const AppParams &p) const override;

  private:
    static Vec3
    initPos(int b, int n, std::uint64_t seed)
    {
        // Jittered lattice; jitter derived per body so setup and
        // reference agree without sharing an Rng stream.
        Rng rng(seed * 1315423911ULL +
                static_cast<std::uint64_t>(b));
        const int side =
            static_cast<int>(std::ceil(std::cbrt(n)));
        Vec3 v;
        v.x = (b % side + 0.2 + 0.6 * rng.nextDouble()) / side;
        v.y = ((b / side) % side + 0.2 + 0.6 * rng.nextDouble()) /
              side;
        v.z = (b / (side * side) + 0.2 + 0.6 * rng.nextDouble()) /
              side;
        return v;
    }

    /** @{ Shared-memory layout helpers. */
    Addr
    bfield(int b, int f) const
    {
        return bodies_ + static_cast<Addr>(b) * kBodyBytes +
               static_cast<Addr>(f) * 8;
    }

    Addr bpos(int b) const { return bfield(b, 0); }
    Addr bvel(int b) const { return bfield(b, 3); }
    Addr bacc(int b) const { return bfield(b, 6); }
    Addr bmass(int b) const { return bfield(b, 9); }

    Addr
    cfield(int c, int f) const
    {
        return cells_ + static_cast<Addr>(c) * kCellBytes +
               static_cast<Addr>(f) * 8;
    }

    Addr ccom(int c) const { return cfield(c, 0); }
    Addr cmass(int c) const { return cfield(c, 3); }
    Addr cchild(int c, int oct) const { return cfield(c, 4 + oct); }
    /** @} */

    /** @{ Tree phases (processor 0). */
    Task buildTree(Context &ctx);
    Task insertBody(Context &ctx, int b);
    Task computeCom(Context &ctx, int c);
    /** @} */

    Task forceOnBody(Context &ctx, int b);

    int n_ = 0;
    int iters_ = 0;
    int cellCap_ = 0;
    Addr bodies_ = 0;
    Addr cells_ = 0;
    Addr bbox_ = 0;
    /** Tree-build scratch (only processor 0 touches these). */
    int nextCell_ = 0;
    Vec3 rootCenter_;
    double rootHalf_ = 0;
};

Task
BarnesApp::buildTree(Context &ctx)
{
    // Bounding box over all bodies.
    Vec3 lo{1e30, 1e30, 1e30}, hi{-1e30, -1e30, -1e30};
    for (int b = 0; b < n_; ++b) {
        auto br = co_await ctx.batch(bpos(b), 24, false);
        const Vec3 v{ctx.rawLoad<double>(bpos(b) + 0),
                     ctx.rawLoad<double>(bpos(b) + 8),
                     ctx.rawLoad<double>(bpos(b) + 16)};
        ctx.batchEnd(br);
        lo.x = std::min(lo.x, v.x);
        lo.y = std::min(lo.y, v.y);
        lo.z = std::min(lo.z, v.z);
        hi.x = std::max(hi.x, v.x);
        hi.y = std::max(hi.y, v.y);
        hi.z = std::max(hi.z, v.z);
        ctx.compute(12);
        co_await ctx.poll();
    }
    rootCenter_ = (lo + hi) * 0.5;
    rootHalf_ =
        0.5 * std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z}) +
        1e-9;
    // Publish for the force phase.
    {
        auto bw = co_await ctx.batch(bbox_, 32, true);
        ctx.rawStore<double>(bbox_ + 0, rootCenter_.x);
        ctx.rawStore<double>(bbox_ + 8, rootCenter_.y);
        ctx.rawStore<double>(bbox_ + 16, rootCenter_.z);
        ctx.rawStore<double>(bbox_ + 24, rootHalf_);
        ctx.batchEnd(bw);
    }

    // Fresh root.
    nextCell_ = 1;
    {
        auto bw = co_await ctx.batch(cchild(0, 0), 64, true);
        for (int oct = 0; oct < 8; ++oct)
            ctx.rawStore<std::int64_t>(cchild(0, oct), kEmpty);
        ctx.batchEnd(bw);
    }

    for (int b = 0; b < n_; ++b) {
        co_await insertBody(ctx, b);
        co_await ctx.poll();
    }
    co_await computeCom(ctx, 0);
}

Task
BarnesApp::insertBody(Context &ctx, int b)
{
    auto br = co_await ctx.batch(bpos(b), 24, false);
    const Vec3 p{ctx.rawLoad<double>(bpos(b) + 0),
                 ctx.rawLoad<double>(bpos(b) + 8),
                 ctx.rawLoad<double>(bpos(b) + 16)};
    ctx.batchEnd(br);

    int node = 0;
    Vec3 center = rootCenter_;
    double half = rootHalf_;
    int depth = 0;
    for (;;) {
        assert(++depth < 64 && "bodies too close; tree blew up");
        const int oct = octant(p, center, half);
        half /= 2;
        const std::int64_t child =
            co_await ctx.loadI64(cchild(node, oct));
        if (child == kEmpty) {
            co_await ctx.storeI64(cchild(node, oct), encodeBody(b));
            co_return;
        }
        if (isCell(child)) {
            node = cellOf(child);
            continue;
        }
        // Slot holds a body: split it into a fresh cell and keep
        // descending (both bodies may share further octants).
        const int other = bodyOf(child);
        auto ob = co_await ctx.batch(bpos(other), 24, false);
        Vec3 op{ctx.rawLoad<double>(bpos(other) + 0),
                ctx.rawLoad<double>(bpos(other) + 8),
                ctx.rawLoad<double>(bpos(other) + 16)};
        ctx.batchEnd(ob);

        const int nc = nextCell_++;
        assert(nc < cellCap_ && "cell pool exhausted");
        {
            auto cw = co_await ctx.batch(cchild(nc, 0), 64, true);
            for (int o = 0; o < 8; ++o)
                ctx.rawStore<std::int64_t>(cchild(nc, o), kEmpty);
            ctx.batchEnd(cw);
        }
        co_await ctx.storeI64(cchild(node, oct), encodeCell(nc));
        // Re-place the displaced body one level down.
        Vec3 oc = center;
        const int ooct = octant(op, oc, half);
        co_await ctx.storeI64(cchild(nc, ooct), encodeBody(other));
        node = nc;
        ctx.compute(40);
    }
}

Task
BarnesApp::computeCom(Context &ctx, int c)
{
    Vec3 com{};
    double mass = 0;
    auto bc = co_await ctx.batch(cchild(c, 0), 64, false);
    std::array<std::int64_t, 8> kids{};
    for (int oct = 0; oct < 8; ++oct)
        kids[static_cast<std::size_t>(oct)] =
            ctx.rawLoad<std::int64_t>(cchild(c, oct));
    ctx.batchEnd(bc);

    for (int oct = 0; oct < 8; ++oct) {
        const std::int64_t kid =
            kids[static_cast<std::size_t>(oct)];
        if (kid == kEmpty)
            continue;
        if (isCell(kid)) {
            const int cc = cellOf(kid);
            co_await computeCom(ctx, cc);
            auto br = co_await ctx.batch(ccom(cc), 32, false);
            const double m = ctx.rawLoad<double>(cmass(cc));
            const Vec3 cm{ctx.rawLoad<double>(ccom(cc) + 0),
                          ctx.rawLoad<double>(ccom(cc) + 8),
                          ctx.rawLoad<double>(ccom(cc) + 16)};
            ctx.batchEnd(br);
            com += cm * m;
            mass += m;
        } else {
            const int b = bodyOf(kid);
            auto bs = co_await ctx.batchSet({bpos(b), 24, false},
                                            {bmass(b), 8, false});
            const double m = ctx.rawLoad<double>(bmass(b));
            const Vec3 bp{ctx.rawLoad<double>(bpos(b) + 0),
                          ctx.rawLoad<double>(bpos(b) + 8),
                          ctx.rawLoad<double>(bpos(b) + 16)};
            ctx.batchEnd(bs);
            com += bp * m;
            mass += m;
        }
        ctx.compute(20);
    }
    com = com * (1.0 / mass);
    auto bw = co_await ctx.batch(ccom(c), 32, true);
    ctx.rawStore<double>(ccom(c) + 0, com.x);
    ctx.rawStore<double>(ccom(c) + 8, com.y);
    ctx.rawStore<double>(ccom(c) + 16, com.z);
    ctx.rawStore<double>(cmass(c), mass);
    ctx.batchEnd(bw);
    co_await ctx.poll();
}

Task
BarnesApp::forceOnBody(Context &ctx, int b)
{
    auto br = co_await ctx.batch(bpos(b), 24, false);
    const Vec3 p{ctx.rawLoad<double>(bpos(b) + 0),
                 ctx.rawLoad<double>(bpos(b) + 8),
                 ctx.rawLoad<double>(bpos(b) + 16)};
    ctx.batchEnd(br);

    // Root geometry published by the tree builder.
    auto bb = co_await ctx.batch(bbox_, 32, false);
    const double root_half = ctx.rawLoad<double>(bbox_ + 24);
    ctx.batchEnd(bb);

    Vec3 acc{};
    std::vector<std::pair<std::int64_t, double>> stack;
    stack.emplace_back(encodeCell(0), root_half);
    while (!stack.empty()) {
        const auto [node, half] = stack.back();
        stack.pop_back();
        if (isBody(node)) {
            const int j = bodyOf(node);
            if (j == b)
                continue;
            auto bs = co_await ctx.batchSet({bpos(j), 24, false},
                                            {bmass(j), 8, false});
            const Vec3 jp{ctx.rawLoad<double>(bpos(j) + 0),
                          ctx.rawLoad<double>(bpos(j) + 8),
                          ctx.rawLoad<double>(bpos(j) + 16)};
            const double jm = ctx.rawLoad<double>(bmass(j));
            ctx.batchEnd(bs);
            acc += gravity(p, jp, jm);
            ctx.compute(300);
            co_await ctx.poll();
            continue;
        }
        const int c = cellOf(node);
        auto bs = co_await ctx.batch(ccom(c), 32, false);
        const Vec3 cm{ctx.rawLoad<double>(ccom(c) + 0),
                      ctx.rawLoad<double>(ccom(c) + 8),
                      ctx.rawLoad<double>(ccom(c) + 16)};
        const double m = ctx.rawLoad<double>(cmass(c));
        ctx.batchEnd(bs);
        const double d2 = (cm - p).norm2() + kEps2;
        const double size = 2 * half;
        if (size * size < kTheta2 * d2) {
            acc += gravity(p, cm, m);
            ctx.compute(300);
        } else {
            auto bk = co_await ctx.batch(cchild(c, 0), 64, false);
            // Push in reverse so children pop in octant order,
            // matching the sequential reference exactly.
            for (int oct = 7; oct >= 0; --oct) {
                const std::int64_t kid =
                    ctx.rawLoad<std::int64_t>(cchild(c, oct));
                if (kid != kEmpty)
                    stack.emplace_back(kid, half / 2);
            }
            ctx.batchEnd(bk);
            ctx.compute(20);
        }
        co_await ctx.poll();
    }

    auto bw = co_await ctx.batch(bacc(b), 24, true);
    ctx.rawStore<double>(bacc(b) + 0, acc.x);
    ctx.rawStore<double>(bacc(b) + 8, acc.y);
    ctx.rawStore<double>(bacc(b) + 16, acc.z);
    ctx.batchEnd(bw);
}

Task
BarnesApp::body(Context &ctx, const AppParams &p)
{
    (void)p;
    const Range owned = partition(n_, ctx.numProcs(), ctx.id());
    for (int it = 0; it < iters_; ++it) {
        if (ctx.id() == 0)
            co_await buildTree(ctx);
        co_await ctx.barrier();

        for (int b = owned.begin; b < owned.end; ++b)
            co_await forceOnBody(ctx, b);
        co_await ctx.barrier();

        for (int b = owned.begin; b < owned.end; ++b) {
            auto bs = co_await ctx.batchSet({bpos(b), 48, true},
                                            {bacc(b), 24, false});
            for (int d = 0; d < 3; ++d) {
                const Addr pa = bpos(b) + static_cast<Addr>(d) * 8;
                const Addr va = bvel(b) + static_cast<Addr>(d) * 8;
                const Addr aa = bacc(b) + static_cast<Addr>(d) * 8;
                const double v = ctx.rawLoad<double>(va) +
                                 ctx.rawLoad<double>(aa) * kDt;
                ctx.rawStore<double>(va, v);
                ctx.rawStore<double>(
                    pa, ctx.rawLoad<double>(pa) + v * kDt);
            }
            ctx.batchEnd(bs);
            ctx.compute(30);
            co_await ctx.poll();
        }
        co_await ctx.barrier();
    }
}

double
BarnesApp::checksum(Runtime &rt)
{
    double sum = 0;
    for (int b = 0; b < n_; ++b) {
        sum += finalRead<double>(rt, bpos(b) + 0) +
               2.0 * finalRead<double>(rt, bpos(b) + 8) +
               3.0 * finalRead<double>(rt, bpos(b) + 16);
    }
    return sum;
}

// ---------------------------------------------------------------------
// Host-side reference (mirrors the kernel's arithmetic exactly)
// ---------------------------------------------------------------------

namespace
{

struct HostCell
{
    Vec3 com;
    double mass = 0;
    std::array<std::int64_t, 8> child{};
};

struct HostTree
{
    std::vector<HostCell> cells;
    Vec3 rootCenter;
    double rootHalf = 0;
};

void
hostInsert(HostTree &t, const std::vector<Vec3> &pos, int b)
{
    int node = 0;
    Vec3 center = t.rootCenter;
    double half = t.rootHalf;
    for (;;) {
        const int oct = octant(pos[static_cast<std::size_t>(b)],
                               center, half);
        half /= 2;
        std::int64_t &slot =
            t.cells[static_cast<std::size_t>(node)]
                .child[static_cast<std::size_t>(oct)];
        if (slot == kEmpty) {
            slot = encodeBody(b);
            return;
        }
        if (isCell(slot)) {
            node = cellOf(slot);
            continue;
        }
        const int other = bodyOf(slot);
        t.cells.emplace_back();
        const int nc = static_cast<int>(t.cells.size()) - 1;
        t.cells[static_cast<std::size_t>(node)]
            .child[static_cast<std::size_t>(oct)] = encodeCell(nc);
        Vec3 oc = center;
        const int ooct = octant(
            pos[static_cast<std::size_t>(other)], oc, half);
        t.cells[static_cast<std::size_t>(nc)]
            .child[static_cast<std::size_t>(ooct)] =
            encodeBody(other);
        node = nc;
    }
}

void
hostCom(HostTree &t, const std::vector<Vec3> &pos,
        const std::vector<double> &mass, int c)
{
    Vec3 com{};
    double m = 0;
    const auto kids = t.cells[static_cast<std::size_t>(c)].child;
    for (int oct = 0; oct < 8; ++oct) {
        const std::int64_t kid =
            kids[static_cast<std::size_t>(oct)];
        if (kid == kEmpty)
            continue;
        if (isCell(kid)) {
            const int cc = cellOf(kid);
            hostCom(t, pos, mass, cc);
            com += t.cells[static_cast<std::size_t>(cc)].com *
                   t.cells[static_cast<std::size_t>(cc)].mass;
            m += t.cells[static_cast<std::size_t>(cc)].mass;
        } else {
            const int b = bodyOf(kid);
            com += pos[static_cast<std::size_t>(b)] *
                   mass[static_cast<std::size_t>(b)];
            m += mass[static_cast<std::size_t>(b)];
        }
    }
    t.cells[static_cast<std::size_t>(c)].com = com * (1.0 / m);
    t.cells[static_cast<std::size_t>(c)].mass = m;
}

Vec3
hostForce(const HostTree &t, const std::vector<Vec3> &pos,
          const std::vector<double> &mass, int b)
{
    const Vec3 p = pos[static_cast<std::size_t>(b)];
    Vec3 acc{};
    std::vector<std::pair<std::int64_t, double>> stack;
    stack.emplace_back(encodeCell(0), t.rootHalf);
    while (!stack.empty()) {
        const auto [node, half] = stack.back();
        stack.pop_back();
        if (isBody(node)) {
            const int j = bodyOf(node);
            if (j != b) {
                acc += gravity(p, pos[static_cast<std::size_t>(j)],
                               mass[static_cast<std::size_t>(j)]);
            }
            continue;
        }
        const HostCell &c =
            t.cells[static_cast<std::size_t>(cellOf(node))];
        const double d2 = (c.com - p).norm2() + kEps2;
        const double size = 2 * half;
        if (size * size < kTheta2 * d2) {
            acc += gravity(p, c.com, c.mass);
        } else {
            for (int oct = 7; oct >= 0; --oct) {
                const std::int64_t kid =
                    c.child[static_cast<std::size_t>(oct)];
                if (kid != kEmpty)
                    stack.emplace_back(kid, half / 2);
            }
        }
    }
    return acc;
}

} // namespace

double
BarnesApp::reference(const AppParams &p) const
{
    const int n = p.n;
    std::vector<Vec3> pos(static_cast<std::size_t>(n));
    std::vector<Vec3> vel(static_cast<std::size_t>(n));
    std::vector<Vec3> acc(static_cast<std::size_t>(n));
    std::vector<double> mass(static_cast<std::size_t>(n));
    Rng rng(p.seed);
    for (int b = 0; b < n; ++b) {
        pos[static_cast<std::size_t>(b)] = initPos(b, n, p.seed);
        mass[static_cast<std::size_t>(b)] = 0.5 + rng.nextDouble();
    }
    for (int it = 0; it < p.iters; ++it) {
        HostTree t;
        Vec3 lo{1e30, 1e30, 1e30}, hi{-1e30, -1e30, -1e30};
        for (const auto &v : pos) {
            lo.x = std::min(lo.x, v.x);
            lo.y = std::min(lo.y, v.y);
            lo.z = std::min(lo.z, v.z);
            hi.x = std::max(hi.x, v.x);
            hi.y = std::max(hi.y, v.y);
            hi.z = std::max(hi.z, v.z);
        }
        t.rootCenter = (lo + hi) * 0.5;
        t.rootHalf = 0.5 * std::max({hi.x - lo.x, hi.y - lo.y,
                                     hi.z - lo.z}) +
                     1e-9;
        t.cells.emplace_back();
        for (int b = 0; b < n; ++b)
            hostInsert(t, pos, b);
        hostCom(t, pos, mass, 0);
        for (int b = 0; b < n; ++b)
            acc[static_cast<std::size_t>(b)] =
                hostForce(t, pos, mass, b);
        for (int b = 0; b < n; ++b) {
            for (int d = 0; d < 3; ++d) {
                double *vv = d == 0
                                 ? &vel[static_cast<std::size_t>(b)].x
                                 : (d == 1 ? &vel[static_cast<
                                                 std::size_t>(b)]
                                                 .y
                                           : &vel[static_cast<
                                                 std::size_t>(b)]
                                                 .z);
                const double *aa =
                    d == 0 ? &acc[static_cast<std::size_t>(b)].x
                           : (d == 1
                                  ? &acc[static_cast<std::size_t>(b)]
                                        .y
                                  : &acc[static_cast<std::size_t>(b)]
                                        .z);
                double *pp =
                    d == 0 ? &pos[static_cast<std::size_t>(b)].x
                           : (d == 1
                                  ? &pos[static_cast<std::size_t>(b)]
                                        .y
                                  : &pos[static_cast<std::size_t>(b)]
                                        .z);
                *vv += *aa * kDt;
                *pp += *vv * kDt;
            }
        }
    }
    double sum = 0;
    for (int b = 0; b < n; ++b) {
        sum += pos[static_cast<std::size_t>(b)].x +
               2.0 * pos[static_cast<std::size_t>(b)].y +
               3.0 * pos[static_cast<std::size_t>(b)].z;
    }
    return sum;
}

} // namespace

std::unique_ptr<App>
makeBarnes()
{
    return std::make_unique<BarnesApp>();
}

} // namespace shasta
