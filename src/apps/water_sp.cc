#include "apps/app_factories.hh"
#include "apps/water_app.hh"

namespace shasta
{

std::unique_ptr<App>
makeWaterSp()
{
    return std::make_unique<WaterApp>(true);
}

} // namespace shasta
