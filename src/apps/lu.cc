#include "apps/lu_app.hh"

#include <cassert>
#include <cmath>

#include "apps/app_factories.hh"

namespace shasta
{

namespace
{

/** Near-square processor grid for the 2-D block scatter. */
void
gridDims(int procs, int &rows, int &cols)
{
    rows = 1;
    for (int r = 1; r * r <= procs; ++r) {
        if (procs % r == 0)
            rows = r;
    }
    cols = procs / rows;
}

/** Diagonally dominant pseudo-random matrix entry. */
double
initValue(int i, int j, int n, Rng &rng)
{
    double v = rng.nextDouble();
    if (i == j)
        v += 2.0 * n;
    return v;
}

/** Per-inner-iteration compute cost (two flops per element plus
 *  loop overhead on a dual-issue 300 MHz Alpha). */
constexpr Tick kDaxpyCost = 18 * LuApp::kBlock;

} // namespace

AppParams
LuApp::defaultParams() const
{
    AppParams p;
    // Scaled from the paper's 1024x1024 (Table 1).
    p.n = 512;
    return p;
}

AppParams
LuApp::largeParams() const
{
    AppParams p;
    // Scaled from the paper's 2048x2048 (Table 3): 2x the default
    // linear dimension, preserving the ratio.
    p.n = 1024;
    return p;
}

std::size_t
LuApp::granularityHint() const
{
    // Table 2: lu 128 bytes on the matrix array; lu-contig 2048
    // bytes (one block) on the matrix blocks.
    return contig_ ? 2048 : 128;
}

Addr
LuApp::elem(int i, int j) const
{
    if (!contig_) {
        return base_ +
               static_cast<Addr>(i) * static_cast<Addr>(n_) * 8 +
               static_cast<Addr>(j) * 8;
    }
    const int bi = i / kBlock;
    const int bj = j / kBlock;
    const int ii = i % kBlock;
    const int jj = j % kBlock;
    return blockAddrs_[static_cast<std::size_t>(bi * nb_ + bj)] +
           static_cast<Addr>(ii * kBlock + jj) * 8;
}

int
LuApp::owner(int bi, int bj) const
{
    return (bi % gridRows_) * gridCols_ + (bj % gridCols_);
}

void
LuApp::setup(Runtime &rt, const AppParams &p)
{
    n_ = p.n;
    assert(n_ % kBlock == 0);
    nb_ = n_ / kBlock;
    procs_ = rt.numProcs();
    gridDims(procs_, gridRows_, gridCols_);

    const std::size_t block_hint =
        p.variableGranularity ? granularityHint() : 0;

    if (!contig_) {
        base_ = rt.alloc(static_cast<std::size_t>(n_) *
                             static_cast<std::size_t>(n_) * 8,
                         block_hint);
    } else {
        // One contiguous allocation per block, homed at its owner
        // when home placement is on (the paper applies it to
        // lu-contig, Section 4.3).
        blockAddrs_.resize(static_cast<std::size_t>(nb_ * nb_));
        const std::size_t bytes = kBlock * kBlock * 8;
        for (int bi = 0; bi < nb_; ++bi) {
            for (int bj = 0; bj < nb_; ++bj) {
                const std::size_t idx =
                    static_cast<std::size_t>(bi * nb_ + bj);
                if (p.homePlacement) {
                    blockAddrs_[idx] = rt.allocHomed(
                        bytes, block_hint, owner(bi, bj));
                } else {
                    blockAddrs_[idx] = rt.alloc(bytes, block_hint);
                }
                if (p.annotate) {
                    // The 2-D scatter assigns each matrix block one
                    // static writer; everyone else only reads it.
                    rt.annotate(blockAddrs_[idx], bytes,
                                RegionAnnot::SingleWriter,
                                owner(bi, bj));
                }
            }
        }
    }

    Rng rng(p.seed);
    for (int i = 0; i < n_; ++i) {
        for (int j = 0; j < n_; ++j)
            initWrite<double>(rt, elem(i, j),
                              initValue(i, j, n_, rng));
    }
}

Task
LuApp::factorDiag(Context &ctx, int k)
{
    // Unblocked LU of the diagonal block.
    for (int jj = 0; jj < kBlock; ++jj) {
        for (int ii = jj + 1; ii < kBlock; ++ii) {
            const int len = kBlock - jj;
            auto bs = co_await ctx.batchSet(
                {blockRow(k, k, ii, jj), len * 8, true},
                {blockRow(k, k, jj, jj), len * 8, false});
            const Addr row_ii = blockRow(k, k, ii, jj);
            const Addr row_jj = blockRow(k, k, jj, jj);
            const double pivot = ctx.rawLoad<double>(row_jj);
            const double l = ctx.rawLoad<double>(row_ii) / pivot;
            ctx.rawStore<double>(row_ii, l);
            for (int kk = 1; kk < len; ++kk) {
                const Addr a = row_ii + static_cast<Addr>(kk) * 8;
                ctx.rawStore<double>(
                    a, ctx.rawLoad<double>(a) -
                           l * ctx.rawLoad<double>(
                                   row_jj +
                                   static_cast<Addr>(kk) * 8));
            }
            ctx.batchEnd(bs);
            ctx.compute(kDaxpyCost);
            co_await ctx.poll();
        }
    }
}

Task
LuApp::solveRowBlock(Context &ctx, int k, int bj)
{
    // A[k][bj] = L(kk)^-1 * A[k][bj] (unit lower triangular solve).
    for (int ii = 1; ii < kBlock; ++ii) {
        for (int kk = 0; kk < ii; ++kk) {
            auto bs = co_await ctx.batchSet(
                {blockRow(k, bj, ii, 0), kBlock * 8, true},
                {blockRow(k, bj, kk, 0), kBlock * 8, false},
                {blockRow(k, k, ii, kk), 8, false});
            const double l =
                ctx.rawLoad<double>(blockRow(k, k, ii, kk));
            const Addr dst = blockRow(k, bj, ii, 0);
            const Addr src = blockRow(k, bj, kk, 0);
            for (int jj = 0; jj < kBlock; ++jj) {
                const Addr a = dst + static_cast<Addr>(jj) * 8;
                ctx.rawStore<double>(
                    a, ctx.rawLoad<double>(a) -
                           l * ctx.rawLoad<double>(
                                   src + static_cast<Addr>(jj) * 8));
            }
            ctx.batchEnd(bs);
            ctx.compute(kDaxpyCost);
            co_await ctx.poll();
        }
    }
}

Task
LuApp::solveColBlock(Context &ctx, int bi, int k)
{
    // A[bi][k] = A[bi][k] * U(kk)^-1.
    for (int ii = 0; ii < kBlock; ++ii) {
        for (int jj = 0; jj < kBlock; ++jj) {
            const int len = kBlock - jj;
            auto bs = co_await ctx.batchSet(
                {blockRow(bi, k, ii, jj), len * 8, true},
                {blockRow(k, k, jj, jj), len * 8, false});
            const Addr row = blockRow(bi, k, ii, jj);
            const Addr urow = blockRow(k, k, jj, jj);
            const double pivot = ctx.rawLoad<double>(urow);
            const double l = ctx.rawLoad<double>(row) / pivot;
            ctx.rawStore<double>(row, l);
            for (int kk = 1; kk < len; ++kk) {
                const Addr a = row + static_cast<Addr>(kk) * 8;
                ctx.rawStore<double>(
                    a, ctx.rawLoad<double>(a) -
                           l * ctx.rawLoad<double>(
                                   urow + static_cast<Addr>(kk) * 8));
            }
            ctx.batchEnd(bs);
            ctx.compute(kDaxpyCost);
            co_await ctx.poll();
        }
    }
}

Task
LuApp::updateInterior(Context &ctx, int bi, int bj, int k)
{
    // A[bi][bj] -= A[bi][k] * A[k][bj].
    std::array<double, kBlock> aik{};
    for (int ii = 0; ii < kBlock; ++ii) {
        // One loads-only batch caches the A[bi][k] row privately.
        auto br = co_await ctx.batch(blockRow(bi, k, ii, 0),
                                     kBlock * 8, false);
        for (int kk = 0; kk < kBlock; ++kk) {
            aik[kk] = ctx.rawLoad<double>(
                blockRow(bi, k, ii, 0) + static_cast<Addr>(kk) * 8);
        }
        ctx.batchEnd(br);

        for (int kk = 0; kk < kBlock; ++kk) {
            if (aik[kk] == 0.0)
                continue;
            auto bs = co_await ctx.batchSet(
                {blockRow(bi, bj, ii, 0), kBlock * 8, true},
                {blockRow(k, bj, kk, 0), kBlock * 8, false});
            const Addr dst = blockRow(bi, bj, ii, 0);
            const Addr src = blockRow(k, bj, kk, 0);
            for (int jj = 0; jj < kBlock; ++jj) {
                const Addr a = dst + static_cast<Addr>(jj) * 8;
                ctx.rawStore<double>(
                    a, ctx.rawLoad<double>(a) -
                           aik[kk] *
                               ctx.rawLoad<double>(
                                   src +
                                   static_cast<Addr>(jj) * 8));
            }
            ctx.batchEnd(bs);
            ctx.compute(kDaxpyCost);
            co_await ctx.poll();
        }
    }
}

Task
LuApp::body(Context &ctx, const AppParams &p)
{
    (void)p;
    const int me = ctx.id();
    for (int k = 0; k < nb_; ++k) {
        if (owner(k, k) == me)
            co_await factorDiag(ctx, k);
        co_await ctx.barrier();

        for (int bj = k + 1; bj < nb_; ++bj) {
            if (owner(k, bj) == me)
                co_await solveRowBlock(ctx, k, bj);
        }
        for (int bi = k + 1; bi < nb_; ++bi) {
            if (owner(bi, k) == me)
                co_await solveColBlock(ctx, bi, k);
        }
        co_await ctx.barrier();

        for (int bi = k + 1; bi < nb_; ++bi) {
            for (int bj = k + 1; bj < nb_; ++bj) {
                if (owner(bi, bj) == me)
                    co_await updateInterior(ctx, bi, bj, k);
            }
        }
        co_await ctx.barrier();
    }
}

double
LuApp::checksum(Runtime &rt)
{
    // Weighted sum of the factored matrix; weights break symmetric
    // cancellation.
    double sum = 0;
    for (int i = 0; i < n_; ++i) {
        for (int j = 0; j < n_; ++j) {
            const double v = finalRead<double>(rt, elem(i, j));
            sum += v / (1.0 + std::abs(i - j));
        }
    }
    return sum;
}

double
LuApp::reference(const AppParams &p) const
{
    const int n = p.n;
    std::vector<double> a(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(n));
    Rng rng(p.seed);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j)
            a[static_cast<std::size_t>(i * n + j)] =
                initValue(i, j, n, rng);
    }
    auto at = [&](int i, int j) -> double & {
        return a[static_cast<std::size_t>(i * n + j)];
    };
    // Same blocked algorithm as the kernel (identical FP order).
    const int nb = n / kBlock;
    for (int k = 0; k < nb; ++k) {
        const int k0 = k * kBlock;
        // Diagonal.
        for (int jj = 0; jj < kBlock; ++jj) {
            for (int ii = jj + 1; ii < kBlock; ++ii) {
                const double l =
                    at(k0 + ii, k0 + jj) / at(k0 + jj, k0 + jj);
                at(k0 + ii, k0 + jj) = l;
                for (int kk = jj + 1; kk < kBlock; ++kk)
                    at(k0 + ii, k0 + kk) -=
                        l * at(k0 + jj, k0 + kk);
            }
        }
        // Perimeter rows.
        for (int bj = k + 1; bj < nb; ++bj) {
            const int j0 = bj * kBlock;
            for (int ii = 1; ii < kBlock; ++ii) {
                for (int kk = 0; kk < ii; ++kk) {
                    const double l = at(k0 + ii, k0 + kk);
                    for (int jj = 0; jj < kBlock; ++jj)
                        at(k0 + ii, j0 + jj) -=
                            l * at(k0 + kk, j0 + jj);
                }
            }
        }
        // Perimeter columns.
        for (int bi = k + 1; bi < nb; ++bi) {
            const int i0 = bi * kBlock;
            for (int ii = 0; ii < kBlock; ++ii) {
                for (int jj = 0; jj < kBlock; ++jj) {
                    const double l = at(i0 + ii, k0 + jj) /
                                     at(k0 + jj, k0 + jj);
                    at(i0 + ii, k0 + jj) = l;
                    for (int kk = jj + 1; kk < kBlock; ++kk)
                        at(i0 + ii, k0 + kk) -=
                            l * at(k0 + jj, k0 + kk);
                }
            }
        }
        // Interior.
        for (int bi = k + 1; bi < nb; ++bi) {
            const int i0 = bi * kBlock;
            for (int bj = k + 1; bj < nb; ++bj) {
                const int j0 = bj * kBlock;
                for (int ii = 0; ii < kBlock; ++ii) {
                    for (int kk = 0; kk < kBlock; ++kk) {
                        const double l = at(i0 + ii, k0 + kk);
                        if (l == 0.0)
                            continue;
                        for (int jj = 0; jj < kBlock; ++jj)
                            at(i0 + ii, j0 + jj) -=
                                l * at(k0 + kk, j0 + jj);
                    }
                }
            }
        }
    }
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j)
            sum += at(i, j) / (1.0 + std::abs(i - j));
    }
    return sum;
}

std::unique_ptr<App>
makeLu()
{
    return std::make_unique<LuApp>(false);
}

} // namespace shasta
