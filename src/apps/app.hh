/**
 * @file
 * Application framework for the SPLASH-2-style workloads.
 *
 * The paper evaluates nine SPLASH-2 applications (Table 1).  This
 * reproduction implements kernels with the same data structures,
 * partitioning, sharing patterns, and synchronization as the
 * originals, scaled so a full run takes seconds of host time (the
 * exact inputs are recorded per app and in EXPERIMENTS.md).  Every
 * app also provides a host-side sequential reference so the parallel
 * result can be validated.
 */

#ifndef SHASTA_APPS_APP_HH
#define SHASTA_APPS_APP_HH

#include <memory>
#include <string>
#include <vector>

#include "dsm/runtime.hh"

namespace shasta
{

/** Scale and feature knobs for one application run. */
struct AppParams
{
    /** Primary problem size (matrix dim, bodies, molecules, grid). */
    int n = 0;
    /** Time steps / iterations. */
    int iters = 1;
    /** Apply the app's Table 2 coherence-granularity hint. */
    bool variableGranularity = false;
    /** Apply the home placement optimization (FMM, LU-Contig,
     *  Ocean; Section 4.3). */
    bool homePlacement = false;
    /** Place the app's ownership annotations (RegionAnnot) on its
     *  shared regions during setup.  Recording is inert unless
     *  opt.elide acts on it or audit.invariants verifies it; apps
     *  without a sound annotation ignore the flag. */
    bool annotate = false;
    /** Adaptive-granularity profiler/plan (opt.adaptive); attached
     *  to the Runtime before setup() when non-null. */
    GranularityAdvisor *advisor = nullptr;
    std::uint64_t seed = 12345;
};

/** Everything measured in one application run. */
struct AppResult
{
    Tick wallTime = 0;
    TimeBreakdown breakdown;
    ProtoCounters counters;
    LatencyStats lat;
    NetworkCounts net;
    CheckCounters checks;
    DirCounters dir;
    /** @{ Adaptive-granularity plan summary (opt.adaptive with an
     *  advisor in its apply phase; zero otherwise). */
    int adaptiveRegions = 0;
    int adaptiveShrunk = 0;
    int adaptiveGrown = 0;
    /** @} */
    double checksum = 0.0;
};

/**
 * One application.  Instances are single-use: create, setup, run.
 */
class App
{
  public:
    virtual ~App() = default;

    virtual std::string name() const = 0;

    /** Default problem size (scaled from Table 1). */
    virtual AppParams defaultParams() const = 0;

    /** Larger problem size (scaled from Table 3; n = 0 if the app is
     *  not part of the Table 3 experiment). */
    virtual AppParams largeParams() const = 0;

    /** Block-size hint from Table 2 (0 if not a Table 2 app). */
    virtual std::size_t granularityHint() const { return 0; }

    /** Allocate and initialize shared data (host-side, pre-run). */
    virtual void setup(Runtime &rt, const AppParams &p) = 0;

    /** The per-processor kernel. */
    virtual Task body(Context &ctx, const AppParams &p) = 0;

    /** Result digest, read from the simulated memories post-run. */
    virtual double checksum(Runtime &rt) = 0;

    /** Host-side sequential reference producing the same digest. */
    virtual double reference(const AppParams &p) const = 0;

    /** Relative tolerance for checksum-vs-reference comparison
     *  (larger for apps whose accumulation order is lock-dependent). */
    virtual double tolerance() const { return 1e-9; }
};

/** Names of all registered applications, in the paper's order. */
std::vector<std::string> appNames();

/** Create an application by name (aborts on unknown names). */
std::unique_ptr<App> createApp(const std::string &name);

/** Set up and execute one run; collects all statistics. */
AppResult runApp(App &app, const DsmConfig &cfg, const AppParams &p);

} // namespace shasta

#endif // SHASTA_APPS_APP_HH
