#include "apps/workload_common.hh"

namespace shasta
{

WorkQueue
makeWorkQueue(Runtime &rt, int limit)
{
    WorkQueue wq;
    wq.counter = rt.alloc(sizeof(std::int64_t));
    wq.lock = rt.allocLock();
    wq.limit = limit;
    initWrite<std::int64_t>(rt, wq.counter, 0);
    return wq;
}

Task
grabWork(Context &ctx, const WorkQueue &wq, int *out)
{
    co_await ctx.lock(wq.lock);
    const std::int64_t next = co_await ctx.loadI64(wq.counter);
    if (next >= wq.limit) {
        *out = -1;
    } else {
        co_await ctx.storeI64(wq.counter, next + 1);
        *out = static_cast<int>(next);
    }
    co_await ctx.unlock(wq.lock);
}

} // namespace shasta
