/**
 * @file
 * Volrend: volume renderer (SPLASH-2 "Volrend").
 *
 * Rays march through a read-only byte-valued volume; density is
 * mapped to opacity through a small shared lookup table.  Table 2
 * raises the map granularity to 1024 bytes.  Voxels are sub-longword
 * loads, which cannot use the invalid-flag technique and go through
 * state-table checks (Section 2.3).  Image tiles are distributed
 * through the lock-protected work queue the original uses.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/app.hh"
#include "apps/app_factories.hh"
#include "apps/workload_common.hh"

namespace shasta
{

namespace
{

constexpr int kTile = 8;

/** Density of the synthetic "head": two nested blobs plus noise. */
std::uint8_t
densityAt(int x, int y, int z, int v)
{
    const double cx = (x + 0.5) / v - 0.5;
    const double cy = (y + 0.5) / v - 0.5;
    const double cz = (z + 0.5) / v - 0.5;
    const double r = std::sqrt(cx * cx + cy * cy + cz * cz);
    double d = 0;
    if (r < 0.45)
        d = 90.0 * (1.0 - r / 0.45);
    if (r < 0.2)
        d += 120.0 * (1.0 - r / 0.2);
    d += 10.0 * (((x * 13 + y * 7 + z * 3) % 11) / 11.0);
    return static_cast<std::uint8_t>(std::min(255.0, d));
}

double
opacityOf(int density)
{
    const double t = density / 255.0;
    return t * t;
}

class VolrendApp : public App
{
  public:
    std::string name() const override { return "volrend"; }

    AppParams
    defaultParams() const override
    {
        AppParams p;
        // Scaled from the paper's 256^3 "head" data set.
        p.n = 48; // volume is n^3, image (2n)^2
        p.iters = 1;
        return p;
    }

    AppParams
    largeParams() const override
    {
        AppParams p;
        p.n = 0; // not part of the Table 3 experiment
        return p;
    }

    std::size_t granularityHint() const override { return 1024; }

    void
    setup(Runtime &rt, const AppParams &p) override
    {
        v_ = p.n;
        m_ = 2 * v_;
        const std::size_t hint =
            p.variableGranularity ? granularityHint() : 0;
        volume_ = rt.alloc(static_cast<std::size_t>(v_) *
                           static_cast<std::size_t>(v_) *
                           static_cast<std::size_t>(v_));
        opacity_ = rt.alloc(256 * 8, hint);
        image_ = rt.alloc(static_cast<std::size_t>(m_) *
                          static_cast<std::size_t>(m_) * 8);

        for (int z = 0; z < v_; ++z) {
            for (int y = 0; y < v_; ++y) {
                for (int x = 0; x < v_; ++x)
                    initWrite<std::uint8_t>(
                        rt, vox(x, y, z), densityAt(x, y, z, v_));
            }
        }
        for (int d = 0; d < 256; ++d)
            initWrite<double>(rt,
                              opacity_ + static_cast<Addr>(d) * 8,
                              opacityOf(d));

        if (p.annotate) {
            // The volume and the opacity map are written only here,
            // before the processors start: every in-run access is a
            // read, so their checks are provably redundant.
            rt.annotate(volume_,
                        static_cast<std::size_t>(v_) *
                            static_cast<std::size_t>(v_) *
                            static_cast<std::size_t>(v_),
                        RegionAnnot::ReadOnlyAfterBarrier);
            rt.annotate(opacity_, 256 * 8,
                        RegionAnnot::ReadOnlyAfterBarrier);
        }

        const int tiles = (m_ + kTile - 1) / kTile;
        wq_ = makeWorkQueue(rt, tiles * tiles);
    }

    Task
    body(Context &ctx, const AppParams &p) override
    {
        (void)p;
        const int tiles_per_row = (m_ + kTile - 1) / kTile;
        for (;;) {
            int tile = -1;
            co_await grabWork(ctx, wq_, &tile);
            if (tile < 0)
                break;
            const int ty = (tile / tiles_per_row) * kTile;
            const int tx = (tile % tiles_per_row) * kTile;
            for (int py = ty; py < std::min(ty + kTile, m_);
                 ++py) {
                for (int px = tx; px < std::min(tx + kTile, m_);
                     ++px) {
                    double bright = 0;
                    co_await castRay(ctx, px, py, &bright);
                    co_await ctx.storeFp(pixel(px, py), bright);
                    co_await ctx.poll();
                }
            }
        }
        co_await ctx.barrier();
    }

    double
    checksum(Runtime &rt) override
    {
        double sum = 0;
        for (int py = 0; py < m_; ++py) {
            for (int px = 0; px < m_; ++px)
                sum += finalRead<double>(rt, pixel(px, py)) *
                       (1.0 + 0.0001 * ((px * 5 + py) % 17));
        }
        return sum;
    }

    double
    reference(const AppParams &p) const override
    {
        const int v = p.n;
        const int m = 2 * v;
        double sum = 0;
        for (int py = 0; py < m; ++py) {
            for (int px = 0; px < m; ++px) {
                const int x = px * v / m;
                const int y = py * v / m;
                double bright = 0;
                double trans = 1.0;
                for (int z = 0; z < v && trans > 0.05; ++z) {
                    const int d = densityAt(x, y, z, v);
                    const double op = opacityOf(d);
                    bright += trans * op * (d / 255.0);
                    trans *= (1.0 - op);
                }
                sum += bright * (1.0 + 0.0001 * ((px * 5 + py) %
                                                 17));
            }
        }
        return sum;
    }

  private:
    Addr
    vox(int x, int y, int z) const
    {
        return volume_ +
               (static_cast<Addr>(z) * static_cast<Addr>(v_) +
                static_cast<Addr>(y)) *
                   static_cast<Addr>(v_) +
               static_cast<Addr>(x);
    }

    Addr
    pixel(int x, int y) const
    {
        return image_ +
               (static_cast<Addr>(y) * static_cast<Addr>(m_) +
                static_cast<Addr>(x)) *
                   8;
    }

    Task
    castRay(Context &ctx, int px, int py, double *out)
    {
        const int x = px * v_ / m_;
        const int y = py * v_ / m_;
        double bright = 0;
        double trans = 1.0;
        for (int z = 0; z < v_ && trans > 0.05; ++z) {
            const std::uint8_t d =
                co_await ctx.loadU8(vox(x, y, z));
            const double op = co_await ctx.loadFp(
                opacity_ + static_cast<Addr>(d) * 8);
            bright += trans * op * (d / 255.0);
            trans *= (1.0 - op);
            ctx.compute(140);
        }
        *out = bright;
        co_return;
    }

    int v_ = 0;
    int m_ = 0;
    Addr volume_ = 0;
    Addr opacity_ = 0;
    Addr image_ = 0;
    WorkQueue wq_;
};

} // namespace

std::unique_ptr<App>
makeVolrend()
{
    return std::make_unique<VolrendApp>();
}

} // namespace shasta
