/**
 * @file
 * Blocked dense LU factorization (SPLASH-2 "LU", both layouts).
 *
 * The matrix is factored in BxB blocks with a 2-D scatter of blocks
 * to processors, barriers separating the diagonal, perimeter, and
 * interior phases of each step -- the SPLASH-2 structure.  Two
 * layouts are provided, as in the paper:
 *
 *  - "lu": the matrix is one row-major n*n array, so a block is a
 *    set of strided row segments (the non-contiguous version);
 *    Table 2's granularity hint for it is 128-byte blocks.
 *  - "lu-contig": each block is allocated contiguously (2048 bytes
 *    for B = 16) and homed at its owner (the home placement
 *    optimization), with a 2048-byte granularity hint.
 *
 * The factorization has no pivoting (the input is made diagonally
 * dominant), so the parallel and sequential results are bitwise
 * identical.
 */

#ifndef SHASTA_APPS_LU_APP_HH
#define SHASTA_APPS_LU_APP_HH

#include <array>
#include <vector>

#include "apps/app.hh"
#include "apps/workload_common.hh"

namespace shasta
{

/** Shared implementation of both LU variants. */
class LuApp : public App
{
  public:
    explicit LuApp(bool contiguous) : contig_(contiguous) {}

    std::string
    name() const override
    {
        return contig_ ? "lu-contig" : "lu";
    }

    AppParams defaultParams() const override;
    AppParams largeParams() const override;
    std::size_t granularityHint() const override;

    void setup(Runtime &rt, const AppParams &p) override;
    Task body(Context &ctx, const AppParams &p) override;
    double checksum(Runtime &rt) override;
    double reference(const AppParams &p) const override;

    /** Block size in elements (SPLASH-2 default 16). */
    static constexpr int kBlock = 16;

  private:
    /** Address of element (i, j). */
    Addr elem(int i, int j) const;

    /** Address of row @p ii (0..B) within block (bi, bj), columns
     *  starting at @p jj (0..B). */
    Addr
    blockRow(int bi, int bj, int ii, int jj) const
    {
        return elem(bi * kBlock + ii, bj * kBlock + jj);
    }

    /** Owner of block (bi, bj): 2-D scatter. */
    int owner(int bi, int bj) const;

    /** @{ Phases (coroutines). */
    Task factorDiag(Context &ctx, int k);
    Task solveRowBlock(Context &ctx, int k, int bj);
    Task solveColBlock(Context &ctx, int bi, int k);
    Task updateInterior(Context &ctx, int bi, int bj, int k);
    /** @} */

    bool contig_;
    int n_ = 0;
    int nb_ = 0;
    int procs_ = 0;
    int gridRows_ = 0;
    int gridCols_ = 0;
    Addr base_ = 0;                 ///< non-contiguous layout
    std::vector<Addr> blockAddrs_;  ///< contiguous layout
};

} // namespace shasta

#endif // SHASTA_APPS_LU_APP_HH
