/**
 * @file
 * FMM: fast-multipole-style N-body (SPLASH-2 "FMM", reduced to a
 * uniform-grid monopole method that preserves the sharing pattern:
 * a read-mostly box array consulted by every processor -- Table 2
 * raises its granularity to 256 bytes -- plus neighbour-box particle
 * reads and owner-only writes).
 *
 * Each step: box owners compute their box's centre of mass (upward
 * pass); every owner then computes forces on its boxes' particles --
 * direct interactions with particles in the 27 neighbouring boxes,
 * monopole approximations for all other boxes; owners integrate.
 * Particles are ordered by box so home placement can put each
 * owner's slab on its node.
 */

#include <cassert>
#include <cmath>
#include <vector>

#include "apps/app.hh"
#include "apps/app_factories.hh"
#include "apps/workload_common.hh"

namespace shasta
{

namespace
{

constexpr double kEps2 = 1e-4;
constexpr double kG = 1e-4;
constexpr double kDt = 0.05;

/** Particle layout: pos[3], vel[3], acc[3], mass. */
constexpr int kPartDoubles = 10;
constexpr int kPartBytes = kPartDoubles * 8;

/** Box layout: com[3], mass. */
constexpr int kBoxBytes = 32;

Vec3
gravity(const Vec3 &onto, const Vec3 &from, double mass)
{
    const Vec3 d = from - onto;
    const double r2 = d.norm2() + kEps2;
    const double inv = 1.0 / (r2 * std::sqrt(r2));
    return d * (kG * mass * inv);
}

class FmmApp : public App
{
  public:
    std::string name() const override { return "fmm"; }

    AppParams
    defaultParams() const override
    {
        AppParams p;
        // Scaled from the paper's 32K particles.
        p.n = 4096;
        p.iters = 2;
        return p;
    }

    AppParams
    largeParams() const override
    {
        AppParams p;
        // Scaled from Table 3's 64K particles.
        p.n = 8192;
        p.iters = 2;
        return p;
    }

    std::size_t granularityHint() const override { return 256; }

    void
    setup(Runtime &rt, const AppParams &p) override
    {
        n_ = p.n;
        iters_ = p.iters;
        grid_ = std::max(
            2, static_cast<int>(std::floor(std::cbrt(n_ / 16.0))));
        const int nboxes = grid_ * grid_ * grid_;

        // Place particles, then order them by box so each box's
        // particles are contiguous.
        const std::vector<Vec3> raw = positions(n_, p.seed);
        boxStart_.assign(static_cast<std::size_t>(nboxes) + 1, 0);
        order_.resize(static_cast<std::size_t>(n_));
        std::vector<int> box_of(static_cast<std::size_t>(n_));
        for (int i = 0; i < n_; ++i) {
            box_of[static_cast<std::size_t>(i)] =
                boxOf(raw[static_cast<std::size_t>(i)]);
            ++boxStart_[static_cast<std::size_t>(
                box_of[static_cast<std::size_t>(i)] + 1)];
        }
        for (int b = 0; b < nboxes; ++b)
            boxStart_[static_cast<std::size_t>(b + 1)] +=
                boxStart_[static_cast<std::size_t>(b)];
        {
            std::vector<int> cursor(boxStart_.begin(),
                                    boxStart_.end() - 1);
            for (int i = 0; i < n_; ++i) {
                const int b = box_of[static_cast<std::size_t>(i)];
                order_[static_cast<std::size_t>(
                    cursor[static_cast<std::size_t>(b)]++)] = i;
            }
        }

        const std::size_t hint =
            p.variableGranularity ? granularityHint() : 0;
        boxes_ = rt.alloc(
            static_cast<std::size_t>(nboxes) * kBoxBytes, hint);

        const int procs = rt.numProcs();
        if (p.homePlacement && rt.config().protocolActive()) {
            // Slab per processor (its boxes' particles), homed there.
            partAddr_.resize(static_cast<std::size_t>(n_));
            for (int q = 0; q < procs; ++q) {
                std::size_t count = 0;
                for (int b = q; b < nboxes; b += procs) {
                    count += static_cast<std::size_t>(
                        boxStart_[static_cast<std::size_t>(b + 1)] -
                        boxStart_[static_cast<std::size_t>(b)]);
                }
                if (count == 0)
                    continue;
                Addr a =
                    rt.allocHomed(count * kPartBytes, 0, q);
                for (int b = q; b < nboxes; b += procs) {
                    for (int s =
                             boxStart_[static_cast<std::size_t>(b)];
                         s < boxStart_[static_cast<std::size_t>(
                                 b + 1)];
                         ++s) {
                        partAddr_[static_cast<std::size_t>(s)] = a;
                        a += kPartBytes;
                    }
                }
            }
        } else {
            const Addr a = rt.alloc(static_cast<std::size_t>(n_) *
                                    kPartBytes);
            partAddr_.resize(static_cast<std::size_t>(n_));
            for (int s = 0; s < n_; ++s)
                partAddr_[static_cast<std::size_t>(s)] =
                    a + static_cast<Addr>(s) * kPartBytes;
        }

        Rng rng(p.seed ^ 0xF33D);
        for (int s = 0; s < n_; ++s) {
            const Vec3 &v = raw[static_cast<std::size_t>(
                order_[static_cast<std::size_t>(s)])];
            initWrite<double>(rt, pf(s, 0), v.x);
            initWrite<double>(rt, pf(s, 1), v.y);
            initWrite<double>(rt, pf(s, 2), v.z);
            for (int f = 3; f < 9; ++f)
                initWrite<double>(rt, pf(s, f), 0.0);
            initWrite<double>(rt, pf(s, 9), 0.5 + rng.nextDouble());
        }
    }

    Task
    body(Context &ctx, const AppParams &p) override
    {
        (void)p;
        const int me = ctx.id();
        const int procs = ctx.numProcs();
        const int nboxes = grid_ * grid_ * grid_;

        for (int it = 0; it < iters_; ++it) {
            // Upward pass: owners compute box monopoles.
            for (int b = me; b < nboxes; b += procs)
                co_await computeBox(ctx, b);
            co_await ctx.barrier();

            // Interaction pass.
            for (int b = me; b < nboxes; b += procs)
                co_await boxForces(ctx, b, nboxes);
            co_await ctx.barrier();

            // Integration.
            for (int b = me; b < nboxes; b += procs) {
                for (int s =
                         boxStart_[static_cast<std::size_t>(b)];
                     s < boxStart_[static_cast<std::size_t>(b + 1)];
                     ++s) {
                    auto bs = co_await ctx.batchSet(
                        {pf(s, 0), 48, true}, {pf(s, 6), 24, false});
                    for (int d = 0; d < 3; ++d) {
                        const double v =
                            ctx.rawLoad<double>(pf(s, 3 + d)) +
                            ctx.rawLoad<double>(pf(s, 6 + d)) * kDt;
                        ctx.rawStore<double>(pf(s, 3 + d), v);
                        ctx.rawStore<double>(
                            pf(s, d),
                            ctx.rawLoad<double>(pf(s, d)) + v * kDt);
                    }
                    ctx.batchEnd(bs);
                    ctx.compute(30);
                    co_await ctx.poll();
                }
            }
            co_await ctx.barrier();
        }
    }

    double
    checksum(Runtime &rt) override
    {
        double sum = 0;
        for (int s = 0; s < n_; ++s) {
            sum += finalRead<double>(rt, pf(s, 0)) +
                   2.0 * finalRead<double>(rt, pf(s, 1)) +
                   3.0 * finalRead<double>(rt, pf(s, 2));
        }
        return sum;
    }

    double reference(const AppParams &p) const override;

  private:
    static std::vector<Vec3>
    positions(int n, std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<Vec3> out(static_cast<std::size_t>(n));
        for (auto &v : out) {
            v.x = rng.nextDouble();
            v.y = rng.nextDouble();
            v.z = rng.nextDouble();
        }
        return out;
    }

    int
    boxOf(const Vec3 &v) const
    {
        auto c = [&](double x) {
            int q = static_cast<int>(x * grid_);
            return q >= grid_ ? grid_ - 1 : (q < 0 ? 0 : q);
        };
        return (c(v.x) * grid_ + c(v.y)) * grid_ + c(v.z);
    }

    bool
    adjacent(int a, int b) const
    {
        const int ax = a / (grid_ * grid_), ay = (a / grid_) % grid_,
                  az = a % grid_;
        const int bx = b / (grid_ * grid_), by = (b / grid_) % grid_,
                  bz = b % grid_;
        return std::abs(ax - bx) <= 1 && std::abs(ay - by) <= 1 &&
               std::abs(az - bz) <= 1;
    }

    /** Slot address: particle slot @p s, field @p f. */
    Addr
    pf(int s, int f) const
    {
        return partAddr_[static_cast<std::size_t>(s)] +
               static_cast<Addr>(f) * 8;
    }

    Addr
    boxAddr(int b) const
    {
        return boxes_ + static_cast<Addr>(b) * kBoxBytes;
    }

    Task
    computeBox(Context &ctx, int b)
    {
        Vec3 com{};
        double mass = 0;
        for (int s = boxStart_[static_cast<std::size_t>(b)];
             s < boxStart_[static_cast<std::size_t>(b + 1)]; ++s) {
            auto bs = co_await ctx.batchSet({pf(s, 0), 24, false},
                                            {pf(s, 9), 8, false});
            const double m = ctx.rawLoad<double>(pf(s, 9));
            com += Vec3{ctx.rawLoad<double>(pf(s, 0)),
                        ctx.rawLoad<double>(pf(s, 1)),
                        ctx.rawLoad<double>(pf(s, 2))} *
                   m;
            mass += m;
            ctx.batchEnd(bs);
            ctx.compute(15);
            co_await ctx.poll();
        }
        if (mass > 0)
            com = com * (1.0 / mass);
        auto bw = co_await ctx.batch(boxAddr(b), 32, true);
        ctx.rawStore<double>(boxAddr(b) + 0, com.x);
        ctx.rawStore<double>(boxAddr(b) + 8, com.y);
        ctx.rawStore<double>(boxAddr(b) + 16, com.z);
        ctx.rawStore<double>(boxAddr(b) + 24, mass);
        ctx.batchEnd(bw);
    }

    Task
    boxForces(Context &ctx, int b, int nboxes)
    {
        for (int s = boxStart_[static_cast<std::size_t>(b)];
             s < boxStart_[static_cast<std::size_t>(b + 1)]; ++s) {
            auto bp = co_await ctx.batch(pf(s, 0), 24, false);
            const Vec3 pi{ctx.rawLoad<double>(pf(s, 0)),
                          ctx.rawLoad<double>(pf(s, 1)),
                          ctx.rawLoad<double>(pf(s, 2))};
            ctx.batchEnd(bp);
            Vec3 acc{};
            for (int c = 0; c < nboxes; ++c) {
                if (adjacent(b, c)) {
                    // Direct interactions with the neighbour box.
                    for (int t = boxStart_[
                             static_cast<std::size_t>(c)];
                         t < boxStart_[static_cast<std::size_t>(
                                 c + 1)];
                         ++t) {
                        if (t == s)
                            continue;
                        auto bs = co_await ctx.batchSet(
                            {pf(t, 0), 24, false},
                            {pf(t, 9), 8, false});
                        const Vec3 pj{
                            ctx.rawLoad<double>(pf(t, 0)),
                            ctx.rawLoad<double>(pf(t, 1)),
                            ctx.rawLoad<double>(pf(t, 2))};
                        const double mj =
                            ctx.rawLoad<double>(pf(t, 9));
                        ctx.batchEnd(bs);
                        acc += gravity(pi, pj, mj);
                        ctx.compute(300);
                    }
                } else {
                    // Monopole approximation.
                    auto bs = co_await ctx.batch(boxAddr(c), 32,
                                                 false);
                    const Vec3 com{
                        ctx.rawLoad<double>(boxAddr(c) + 0),
                        ctx.rawLoad<double>(boxAddr(c) + 8),
                        ctx.rawLoad<double>(boxAddr(c) + 16)};
                    const double m =
                        ctx.rawLoad<double>(boxAddr(c) + 24);
                    ctx.batchEnd(bs);
                    if (m > 0)
                        acc += gravity(pi, com, m);
                    ctx.compute(300);
                }
                co_await ctx.poll();
            }
            auto bw = co_await ctx.batch(pf(s, 6), 24, true);
            ctx.rawStore<double>(pf(s, 6), acc.x);
            ctx.rawStore<double>(pf(s, 7), acc.y);
            ctx.rawStore<double>(pf(s, 8), acc.z);
            ctx.batchEnd(bw);
        }
    }

    int n_ = 0;
    int iters_ = 0;
    int grid_ = 0;
    Addr boxes_ = 0;
    std::vector<Addr> partAddr_;
    std::vector<int> boxStart_;
    std::vector<int> order_;
};

double
FmmApp::reference(const AppParams &p) const
{
    // Mirror setup()'s particle ordering and the kernel's arithmetic.
    const int n = p.n;
    const int grid = std::max(
        2, static_cast<int>(std::floor(std::cbrt(n / 16.0))));
    const int nboxes = grid * grid * grid;

    const std::vector<Vec3> raw = positions(n, p.seed);
    std::vector<int> start(static_cast<std::size_t>(nboxes) + 1, 0);
    std::vector<int> box_of(static_cast<std::size_t>(n));
    auto box_index = [&](const Vec3 &v) {
        auto c = [&](double x) {
            int q = static_cast<int>(x * grid);
            return q >= grid ? grid - 1 : (q < 0 ? 0 : q);
        };
        return (c(v.x) * grid + c(v.y)) * grid + c(v.z);
    };
    for (int i = 0; i < n; ++i) {
        box_of[static_cast<std::size_t>(i)] =
            box_index(raw[static_cast<std::size_t>(i)]);
        ++start[static_cast<std::size_t>(
            box_of[static_cast<std::size_t>(i)] + 1)];
    }
    for (int b = 0; b < nboxes; ++b)
        start[static_cast<std::size_t>(b + 1)] +=
            start[static_cast<std::size_t>(b)];
    std::vector<Vec3> pos(static_cast<std::size_t>(n));
    {
        std::vector<int> cursor(start.begin(), start.end() - 1);
        for (int i = 0; i < n; ++i) {
            const int b = box_of[static_cast<std::size_t>(i)];
            pos[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(b)]++)] =
                raw[static_cast<std::size_t>(i)];
        }
    }
    std::vector<double> mass(static_cast<std::size_t>(n));
    Rng rng(p.seed ^ 0xF33D);
    for (auto &m : mass)
        m = 0.5 + rng.nextDouble();
    std::vector<Vec3> vel(static_cast<std::size_t>(n));
    std::vector<Vec3> acc(static_cast<std::size_t>(n));
    std::vector<Vec3> com(static_cast<std::size_t>(nboxes));
    std::vector<double> bmass(static_cast<std::size_t>(nboxes));

    auto adjacent = [&](int a, int b) {
        const int ax = a / (grid * grid), ay = (a / grid) % grid,
                  az = a % grid;
        const int bx = b / (grid * grid), by = (b / grid) % grid,
                  bz = b % grid;
        return std::abs(ax - bx) <= 1 && std::abs(ay - by) <= 1 &&
               std::abs(az - bz) <= 1;
    };

    for (int it = 0; it < p.iters; ++it) {
        for (int b = 0; b < nboxes; ++b) {
            Vec3 c{};
            double m = 0;
            for (int s = start[static_cast<std::size_t>(b)];
                 s < start[static_cast<std::size_t>(b + 1)]; ++s) {
                c += pos[static_cast<std::size_t>(s)] *
                     mass[static_cast<std::size_t>(s)];
                m += mass[static_cast<std::size_t>(s)];
            }
            if (m > 0)
                c = c * (1.0 / m);
            com[static_cast<std::size_t>(b)] = c;
            bmass[static_cast<std::size_t>(b)] = m;
        }
        for (int b = 0; b < nboxes; ++b) {
            for (int s = start[static_cast<std::size_t>(b)];
                 s < start[static_cast<std::size_t>(b + 1)]; ++s) {
                Vec3 a{};
                for (int c = 0; c < nboxes; ++c) {
                    if (adjacent(b, c)) {
                        for (int t =
                                 start[static_cast<std::size_t>(c)];
                             t < start[static_cast<std::size_t>(
                                     c + 1)];
                             ++t) {
                            if (t != s)
                                a += gravity(
                                    pos[static_cast<std::size_t>(s)],
                                    pos[static_cast<std::size_t>(t)],
                                    mass[static_cast<std::size_t>(
                                        t)]);
                        }
                    } else if (bmass[static_cast<std::size_t>(c)] >
                               0) {
                        a += gravity(
                            pos[static_cast<std::size_t>(s)],
                            com[static_cast<std::size_t>(c)],
                            bmass[static_cast<std::size_t>(c)]);
                    }
                }
                acc[static_cast<std::size_t>(s)] = a;
            }
        }
        for (int s = 0; s < n; ++s) {
            vel[static_cast<std::size_t>(s)] +=
                acc[static_cast<std::size_t>(s)] * kDt;
            pos[static_cast<std::size_t>(s)] +=
                vel[static_cast<std::size_t>(s)] * kDt;
        }
    }
    double sum = 0;
    for (int s = 0; s < n; ++s) {
        sum += pos[static_cast<std::size_t>(s)].x +
               2.0 * pos[static_cast<std::size_t>(s)].y +
               3.0 * pos[static_cast<std::size_t>(s)].z;
    }
    return sum;
}

} // namespace

std::unique_ptr<App>
makeFmm()
{
    return std::make_unique<FmmApp>();
}

} // namespace shasta
