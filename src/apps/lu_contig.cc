#include "apps/app_factories.hh"
#include "apps/lu_app.hh"

namespace shasta
{

std::unique_ptr<App>
makeLuContig()
{
    return std::make_unique<LuApp>(true);
}

} // namespace shasta
