#include "apps/app.hh"

#include <cstdio>
#include <cstdlib>

#include "apps/app_factories.hh"

namespace shasta
{

std::vector<std::string>
appNames()
{
    // Table 1's order.
    return {"barnes",   "fmm",     "lu",        "lu-contig",
            "ocean",    "raytrace", "volrend",  "water-nsq",
            "water-sp"};
}

std::unique_ptr<App>
createApp(const std::string &name)
{
    if (name == "barnes")
        return makeBarnes();
    if (name == "fmm")
        return makeFmm();
    if (name == "lu")
        return makeLu();
    if (name == "lu-contig")
        return makeLuContig();
    if (name == "ocean")
        return makeOcean();
    if (name == "raytrace")
        return makeRaytrace();
    if (name == "volrend")
        return makeVolrend();
    if (name == "water-nsq")
        return makeWaterNsq();
    if (name == "water-sp")
        return makeWaterSp();
    std::fprintf(stderr, "unknown application '%s'\n", name.c_str());
    std::abort();
}

namespace
{

/** Wrapper giving every run the same shape: init barrier, measured
 *  region, final barrier. */
Task
appMain(Context &c, App &app, const AppParams &p)
{
    co_await c.barrier();
    c.beginMeasure();
    co_await app.body(c, p);
    co_await c.barrier();
}

} // namespace

AppResult
runApp(App &app, const DsmConfig &cfg, const AppParams &p)
{
    Runtime rt(cfg);
    if (p.advisor)
        rt.setGranularityAdvisor(p.advisor);
    app.setup(rt, p);
    rt.run([&](Context &c) { return appMain(c, app, p); });

    AppResult r;
    r.wallTime = rt.wallTime();
    r.breakdown = rt.aggregateBreakdown();
    r.counters = rt.counters();
    r.lat = rt.latency();
    r.net = rt.netCounts();
    r.checks = rt.checkTotals();
    r.dir = rt.dirCounters();
    if (p.advisor && p.advisor->applying() &&
        rt.config().opt.adaptive) {
        r.adaptiveRegions = p.advisor->regions();
        r.adaptiveShrunk = p.advisor->shrunk();
        r.adaptiveGrown = p.advisor->grown();
    }
    r.checksum = app.checksum(rt);
    return r;
}

} // namespace shasta
