/**
 * @file
 * Shared helpers for the application kernels: typed shared arrays,
 * host-side initialization, range partitioning, lock-protected work
 * queues, and small vector math for the particle codes.
 */

#ifndef SHASTA_APPS_WORKLOAD_COMMON_HH
#define SHASTA_APPS_WORKLOAD_COMMON_HH

#include <cassert>
#include <cmath>
#include <cstdint>

#include "dsm/runtime.hh"
#include "sim/rng.hh"

namespace shasta
{

/**
 * A typed view of a shared allocation (address arithmetic only; all
 * access goes through a Context or the init helpers).
 */
template <typename T>
struct SharedArray
{
    Addr base = 0;
    std::size_t count = 0;

    Addr
    at(std::size_t i) const
    {
        assert(i < count);
        return base + static_cast<Addr>(i) * sizeof(T);
    }

    std::size_t bytes() const { return count * sizeof(T); }
};

/** Allocate a shared array (optionally with a granularity hint). */
template <typename T>
SharedArray<T>
makeShared(Runtime &rt, std::size_t count, std::size_t block_bytes = 0)
{
    SharedArray<T> a;
    a.count = count;
    a.base = rt.alloc(count * sizeof(T), block_bytes);
    return a;
}

/** Allocate with home placement at @p home. */
template <typename T>
SharedArray<T>
makeSharedHomed(Runtime &rt, std::size_t count,
                std::size_t block_bytes, ProcId home)
{
    SharedArray<T> a;
    a.count = count;
    a.base = rt.allocHomed(count * sizeof(T), block_bytes, home);
    return a;
}

/**
 * Host-side initialization write: stores directly into the image of
 * the node that owns the address (the home starts exclusive), or
 * node 0 when no protocol is active.  Use only before run().
 */
template <typename T>
void
initWrite(Runtime &rt, Addr a, T v)
{
    NodeId node = 0;
    if (rt.config().protocolActive()) {
        const LineIdx line = rt.heap().lineOf(a);
        node = rt.config().topology().nodeOf(
            rt.protocol().homeProc(line));
    }
    rt.protocol().memory(node).write<T>(a, v);
}

/**
 * Post-run read: returns the value from any node holding a valid
 * copy (at least the owner does).
 */
template <typename T>
T
finalRead(Runtime &rt, Addr a)
{
    if (!rt.config().protocolActive())
        return rt.protocol().memory(0).read<T>(a);
    const LineIdx line = rt.heap().lineOf(a);
    const int nodes = rt.config().topology().numNodes();
    for (NodeId n = 0; n < nodes; ++n) {
        if (readableState(rt.protocol().nodeState(n, line)))
            return rt.protocol().memory(n).read<T>(a);
    }
    assert(false && "no node holds a valid copy");
    return T{};
}

/** Contiguous [begin, end) range of items for processor @p p. */
struct Range
{
    int begin;
    int end;

    int size() const { return end - begin; }
};

/** Split @p total items over @p procs, giving remainder to the
 *  low-numbered processors. */
inline Range
partition(int total, int procs, int p)
{
    const int base = total / procs;
    const int extra = total % procs;
    const int begin = p * base + (p < extra ? p : extra);
    const int len = base + (p < extra ? 1 : 0);
    return Range{begin, begin + len};
}

/**
 * Lock-protected shared work counter (the task-stealing queue of
 * Raytrace and Volrend).
 */
struct WorkQueue
{
    Addr counter = 0;
    int lock = -1;
    int limit = 0;
};

/** Create a work queue over [0, limit). */
WorkQueue makeWorkQueue(Runtime &rt, int limit);

/**
 * Grab the next work item (or -1 when exhausted) into *out.
 * Coroutine: co_await it.
 */
Task grabWork(Context &ctx, const WorkQueue &wq, int *out);

/** Tiny 3-vector for the particle codes' host-side math. */
struct Vec3
{
    double x = 0, y = 0, z = 0;

    Vec3 operator+(const Vec3 &o) const { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3 &o) const { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    double norm2() const { return x * x + y * y + z * z; }

    double norm() const { return std::sqrt(norm2()); }
};

} // namespace shasta

#endif // SHASTA_APPS_WORKLOAD_COMMON_HH
