#include "apps/water_app.hh"

#include <cassert>
#include <cmath>

#include "apps/app_factories.hh"

namespace shasta
{

namespace
{

constexpr double kDt = 1e-4;
constexpr double kSoftening = 0.05;

/** Bounded pair force magnitude (repulsive core, weak attraction). */
double
pairForceMag(double r2)
{
    const double inv = 1.0 / (r2 + kSoftening);
    return inv * inv - 0.01 * inv;
}

/** ~40 flops per pair interaction. */
constexpr Tick kPairCost = 1200;

} // namespace

AppParams
WaterApp::defaultParams() const
{
    AppParams p;
    // Scaled from the paper's 1000 (Nsq) / 1728 (Sp) molecules.
    p.n = spatial_ ? 1000 : 512;
    p.iters = 2;
    return p;
}

AppParams
WaterApp::largeParams() const
{
    AppParams p;
    // Scaled from Table 3's 4096 molecules.
    p.n = spatial_ ? 2048 : 1024;
    p.iters = 2;
    return p;
}

std::vector<Vec3>
WaterApp::initialPositions(int n, std::uint64_t seed)
{
    // Jittered lattice in the unit box.
    Rng rng(seed);
    const int side = static_cast<int>(std::ceil(std::cbrt(n)));
    std::vector<Vec3> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int m = 0; m < n; ++m) {
        const int x = m % side;
        const int y = (m / side) % side;
        const int z = m / (side * side);
        Vec3 v;
        v.x = (x + 0.3 + 0.4 * rng.nextDouble()) / side;
        v.y = (y + 0.3 + 0.4 * rng.nextDouble()) / side;
        v.z = (z + 0.3 + 0.4 * rng.nextDouble()) / side;
        out.push_back(v);
    }
    return out;
}

void
WaterApp::buildPairs(int procs)
{
    pairs_.assign(static_cast<std::size_t>(procs), {});
    if (!spatial_) {
        // Nsquared: every pair, scattered by (i + j) mod P.
        for (int i = 0; i < n_; ++i) {
            for (int j = i + 1; j < n_; ++j)
                pairs_[static_cast<std::size_t>((i + j) % procs)]
                    .emplace_back(i, j);
        }
        return;
    }
    // Spatial: uniform cells over the unit box; only pairs within a
    // cell or between 26-neighbour cells.  A pair belongs to the
    // owner of the first molecule's cell.
    const int cells = std::max(
        2, static_cast<int>(std::floor(std::cbrt(n_ / 8.0))));
    auto cellOf = [&](const Vec3 &v) {
        auto clampc = [&](double x) {
            int c = static_cast<int>(x * cells);
            if (c < 0)
                c = 0;
            if (c >= cells)
                c = cells - 1;
            return c;
        };
        return (clampc(v.x) * cells + clampc(v.y)) * cells +
               clampc(v.z);
    };
    std::vector<int> cell(static_cast<std::size_t>(n_));
    for (int m = 0; m < n_; ++m)
        cell[static_cast<std::size_t>(m)] = cellOf(initPos_[
            static_cast<std::size_t>(m)]);
    auto neighbours = [&](int ca, int cb) {
        const int ax = ca / (cells * cells);
        const int ay = (ca / cells) % cells;
        const int az = ca % cells;
        const int bx = cb / (cells * cells);
        const int by = (cb / cells) % cells;
        const int bz = cb % cells;
        return std::abs(ax - bx) <= 1 && std::abs(ay - by) <= 1 &&
               std::abs(az - bz) <= 1;
    };
    for (int i = 0; i < n_; ++i) {
        for (int j = i + 1; j < n_; ++j) {
            if (neighbours(cell[static_cast<std::size_t>(i)],
                           cell[static_cast<std::size_t>(j)])) {
                const int owner =
                    cell[static_cast<std::size_t>(i)] % procs;
                pairs_[static_cast<std::size_t>(owner)]
                    .emplace_back(i, j);
            }
        }
    }
}

void
WaterApp::setup(Runtime &rt, const AppParams &p)
{
    n_ = p.n;
    iters_ = p.iters;
    const std::size_t hint =
        p.variableGranularity ? granularityHint() : 0;
    base_ = rt.alloc(static_cast<std::size_t>(n_) * kBytes, hint);
    initPos_ = initialPositions(n_, p.seed);
    for (int m = 0; m < n_; ++m) {
        const Vec3 &v = initPos_[static_cast<std::size_t>(m)];
        initWrite<double>(rt, pos(m) + 0, v.x);
        initWrite<double>(rt, pos(m) + 8, v.y);
        initWrite<double>(rt, pos(m) + 16, v.z);
        for (int f = 3; f < 9; ++f)
            initWrite<double>(rt, mol(m, f), 0.0);
        initWrite<double>(rt, mol(m, 9), 1.0);
    }
    buildPairs(rt.numProcs());
    // One lock per molecule group for the force-merge phase.
    locks_.clear();
    const int nlocks = std::min(n_, 256);
    for (int l = 0; l < nlocks; ++l)
        locks_.push_back(rt.allocLock());
}

Task
WaterApp::body(Context &ctx, const AppParams &p)
{
    (void)p;
    const int me = ctx.id();
    const int procs = ctx.numProcs();
    const Range owned = partition(n_, procs, me);
    const auto &my_pairs = pairs_[static_cast<std::size_t>(me)];
    std::vector<Vec3> local(static_cast<std::size_t>(n_));

    for (int it = 0; it < iters_; ++it) {
        // Phase 1: owners zero their molecules' forces.
        for (int m = owned.begin; m < owned.end; ++m) {
            auto b = co_await ctx.batch(force(m), 24, true);
            ctx.rawStore<double>(force(m) + 0, 0.0);
            ctx.rawStore<double>(force(m) + 8, 0.0);
            ctx.rawStore<double>(force(m) + 16, 0.0);
            ctx.batchEnd(b);
            co_await ctx.poll();
        }
        co_await ctx.barrier();

        // Phase 2: pair interactions into private accumulators.
        for (auto &v : local)
            v = Vec3{};
        for (const auto &[i, j] : my_pairs) {
            // The original reads the whole molecule record (672 B
            // in SPLASH-2); batch the full record of both partners.
            auto bs = co_await ctx.batchSet({mol(i, 0), kBytes, false},
                                            {mol(j, 0), kBytes, false});
            Vec3 pi{ctx.rawLoad<double>(pos(i) + 0),
                    ctx.rawLoad<double>(pos(i) + 8),
                    ctx.rawLoad<double>(pos(i) + 16)};
            Vec3 pj{ctx.rawLoad<double>(pos(j) + 0),
                    ctx.rawLoad<double>(pos(j) + 8),
                    ctx.rawLoad<double>(pos(j) + 16)};
            ctx.batchEnd(bs);
            const Vec3 d = pi - pj;
            const double f = pairForceMag(d.norm2());
            local[static_cast<std::size_t>(i)] += d * f;
            local[static_cast<std::size_t>(j)] += d * (-f);
            ctx.compute(kPairCost);
            co_await ctx.poll();
        }
        co_await ctx.barrier();

        // Phase 3: merge contributions under per-molecule locks
        // (SPLASH-2 Water's force-update locks).  Each processor
        // starts at its own offset to avoid lock convoys, as the
        // original does.
        const int stagger = me * (n_ / procs);
        for (int k = 0; k < n_; ++k) {
            const int m = (k + stagger) % n_;
            const Vec3 &c = local[static_cast<std::size_t>(m)];
            if (c.x == 0 && c.y == 0 && c.z == 0)
                continue;
            const int lk = locks_[static_cast<std::size_t>(
                m % static_cast<int>(locks_.size()))];
            co_await ctx.lock(lk);
            const double fx = co_await ctx.loadFp(force(m) + 0);
            co_await ctx.storeFp(force(m) + 0, fx + c.x);
            const double fy = co_await ctx.loadFp(force(m) + 8);
            co_await ctx.storeFp(force(m) + 8, fy + c.y);
            const double fz = co_await ctx.loadFp(force(m) + 16);
            co_await ctx.storeFp(force(m) + 16, fz + c.z);
            co_await ctx.unlock(lk);
            ctx.compute(12);
            co_await ctx.poll();
        }
        co_await ctx.barrier();

        // Phase 4: owners integrate.
        for (int m = owned.begin; m < owned.end; ++m) {
            auto bs = co_await ctx.batchSet({pos(m), 48, true},
                                            {force(m), 24, false});
            for (int d = 0; d < 3; ++d) {
                const Addr pa = pos(m) + static_cast<Addr>(d) * 8;
                const Addr va = vel(m) + static_cast<Addr>(d) * 8;
                const Addr fa = force(m) + static_cast<Addr>(d) * 8;
                const double f = ctx.rawLoad<double>(fa);
                const double v =
                    ctx.rawLoad<double>(va) + f * kDt;
                ctx.rawStore<double>(va, v);
                ctx.rawStore<double>(
                    pa, ctx.rawLoad<double>(pa) + v * kDt);
            }
            ctx.batchEnd(bs);
            ctx.compute(30);
            co_await ctx.poll();
        }
        co_await ctx.barrier();
    }
}

double
WaterApp::checksum(Runtime &rt)
{
    double sum = 0;
    for (int m = 0; m < n_; ++m) {
        sum += finalRead<double>(rt, pos(m) + 0) +
               2.0 * finalRead<double>(rt, pos(m) + 8) +
               3.0 * finalRead<double>(rt, pos(m) + 16);
    }
    return sum;
}

double
WaterApp::reference(const AppParams &p) const
{
    const int n = p.n;
    std::vector<Vec3> pos_v = initialPositions(n, p.seed);
    std::vector<Vec3> vel_v(static_cast<std::size_t>(n));
    std::vector<Vec3> frc(static_cast<std::size_t>(n));

    // Rebuild the same pair set (partition is irrelevant to the
    // physics; only membership matters).
    WaterApp clone(spatial_);
    clone.n_ = n;
    clone.initPos_ = pos_v;
    clone.buildPairs(1);

    for (int it = 0; it < p.iters; ++it) {
        for (auto &f : frc)
            f = Vec3{};
        for (const auto &[i, j] : clone.pairs_[0]) {
            const Vec3 d = pos_v[static_cast<std::size_t>(i)] -
                           pos_v[static_cast<std::size_t>(j)];
            const double f = pairForceMag(d.norm2());
            frc[static_cast<std::size_t>(i)] += d * f;
            frc[static_cast<std::size_t>(j)] += d * (-f);
        }
        for (int m = 0; m < n; ++m) {
            vel_v[static_cast<std::size_t>(m)] +=
                frc[static_cast<std::size_t>(m)] * kDt;
            pos_v[static_cast<std::size_t>(m)] +=
                vel_v[static_cast<std::size_t>(m)] * kDt;
        }
    }
    double sum = 0;
    for (int m = 0; m < n; ++m) {
        sum += pos_v[static_cast<std::size_t>(m)].x +
               2.0 * pos_v[static_cast<std::size_t>(m)].y +
               3.0 * pos_v[static_cast<std::size_t>(m)].z;
    }
    return sum;
}

std::unique_ptr<App>
makeWaterNsq()
{
    return std::make_unique<WaterApp>(false);
}

} // namespace shasta
