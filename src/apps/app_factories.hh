/**
 * @file
 * Internal factory declarations, one per application kernel.
 */

#ifndef SHASTA_APPS_APP_FACTORIES_HH
#define SHASTA_APPS_APP_FACTORIES_HH

#include <memory>

#include "apps/app.hh"

namespace shasta
{

std::unique_ptr<App> makeBarnes();
std::unique_ptr<App> makeFmm();
std::unique_ptr<App> makeLu();
std::unique_ptr<App> makeLuContig();
std::unique_ptr<App> makeOcean();
std::unique_ptr<App> makeRaytrace();
std::unique_ptr<App> makeVolrend();
std::unique_ptr<App> makeWaterNsq();
std::unique_ptr<App> makeWaterSp();

} // namespace shasta

#endif // SHASTA_APPS_APP_FACTORIES_HH
