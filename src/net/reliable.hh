/**
 * @file
 * Reliability sublayer between Network::send and the mailboxes.
 *
 * When fault injection is configured (net/fault.hh), remote messages
 * travel over an unreliable fabric that may drop, duplicate, or
 * delay them.  This layer restores the delivery contract the
 * protocol agents were written against — exactly-once, per-pair
 * FIFO — using the classic machinery:
 *
 *  - every remote data message carries a 24-bit per-directed-pair
 *    sequence number packed into Message padding (Message::relSeq);
 *  - the receiver delivers strictly in sequence order: duplicates
 *    (seq already delivered or already buffered) are dropped, gaps
 *    cause out-of-order arrivals to park in a reorder buffer, and
 *    every arrival triggers a cumulative ack back to the sender;
 *  - the sender keeps a copy of each unacked message and retransmits
 *    on a per-message timeout with capped exponential backoff,
 *    scheduled on the timing-wheel EventQueue; it gives up (throws)
 *    after RetxParams::maxAttempts, which at the supported drop
 *    rates means the link is configured hostile rather than lossy.
 *
 * Acks are internal events, not Messages: they never enter mailboxes
 * or the dispatch table, so no MsgType is added and the handler
 * tables stay exhaustive.  Ack transmissions draw their own fault
 * decisions (FaultSalt::Ack) and may be dropped; cumulative acking
 * plus sender retransmission makes that safe.
 *
 * Scaling: per-pair state is *sparse* (PairMap) — a pair's sender
 * and receiver machines, including its fault-decision transmission
 * counters, materialize on first traffic, so memory is proportional
 * to the pairs an application actually exercises rather than P^2.
 * The per-pair windows are serially-sorted flat vectors (send order
 * *is* serial order), so the steady-state faulty path stops
 * allocating once windows reach their peak, and the watchdog's
 * pendingUnacked() poll reads a running counter instead of scanning
 * every pair (O(1), cross-checked against a full live-pair scan
 * under SHASTA_AUDIT=1).
 *
 * Everything here is driven by the deterministic event queue and the
 * stateless FaultModel, so runs remain byte-reproducible, and lazy
 * materialization cannot perturb schedules: a fresh entry is
 * value-initialized, indistinguishable from a dense entry that was
 * never touched.
 */

#ifndef SHASTA_NET_RELIABLE_HH
#define SHASTA_NET_RELIABLE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "net/fault.hh"
#include "net/message.hh"
#include "net/pair_map.hh"
#include "sim/ticks.hh"

namespace shasta
{

class Network;
struct LatencyStats;

/**
 * Retransmission-policy knobs, shared by both backends.
 *
 * The simulator interprets @ref rtoUs in simulated microseconds and
 * the thread backend in wall-clock microseconds, so the same config
 * tunes either.  Defaults reproduce the PR 5 behavior exactly
 * (auto RTO ≈ 2x unloaded RTT, 64x backoff cap, give up after 30
 * attempts).
 */
struct RetxParams
{
    /** Retransmission cap per message; exceeding it throws.  At the
     *  supported drop rates (<= 50%) losing 30 transmissions in a
     *  row is ~2^-30: a link that trips this is configured hostile
     *  rather than lossy. */
    int maxAttempts = 30;
    /** Exponential backoff stops at this multiple of the initial
     *  timeout. */
    int backoffCapMult = 64;
    /** Initial retransmission timeout in microseconds; 0 selects the
     *  backend's automatic estimate (the simulator uses ~2x the
     *  unloaded round trip, the thread backend a fixed wall-clock
     *  default). */
    double rtoUs = 0.0;

    /** Apply SHASTA_RETX_MAX_ATTEMPTS / SHASTA_RETX_BACKOFF_CAP /
     *  SHASTA_RETX_RTO_US, if set. */
    void applyEnv();

    /** Aborts with a message on bad values. */
    void validate() const;
};

/** Reliability/fault counters, nested in NetworkCounts so the usual
 *  reset/snapshot plumbing covers them. */
struct RelCounts
{
    /** Sequenced data messages handed to the sublayer. */
    std::uint64_t dataMsgs = 0;
    /** Retransmissions after an ack timeout. */
    std::uint64_t retransmits = 0;
    /** Transmissions the fabric dropped (data). */
    std::uint64_t faultDrops = 0;
    /** Duplicate copies the fabric injected. */
    std::uint64_t faultDups = 0;
    /** Deliveries the fabric jittered/delayed. */
    std::uint64_t faultDelays = 0;
    /** Receiver-side duplicate suppressions. */
    std::uint64_t dupDrops = 0;
    /** Out-of-order arrivals parked for resequencing. */
    std::uint64_t reorderBuffered = 0;
    /** Acks sent / lost to the fabric / processed by the sender. */
    std::uint64_t acksSent = 0;
    std::uint64_t ackDrops = 0;
    std::uint64_t acksReceived = 0;

    bool
    any() const
    {
        return dataMsgs != 0 || retransmits != 0 || faultDrops != 0 ||
               faultDups != 0 || faultDelays != 0 || dupDrops != 0 ||
               reorderBuffered != 0 || acksSent != 0 ||
               ackDrops != 0 || acksReceived != 0;
    }

    RelCounts &
    operator+=(const RelCounts &o)
    {
        dataMsgs += o.dataMsgs;
        retransmits += o.retransmits;
        faultDrops += o.faultDrops;
        faultDups += o.faultDups;
        faultDelays += o.faultDelays;
        dupDrops += o.dupDrops;
        reorderBuffered += o.reorderBuffered;
        acksSent += o.acksSent;
        ackDrops += o.ackDrops;
        acksReceived += o.acksReceived;
        return *this;
    }

    /** Monotone activity stamp: changes whenever the sublayer did
     *  anything at all.  The watchdog compares stamps to tell a
     *  retry storm (stamp moving) from a true stall (stamp frozen).
     *  Monotone because every counter only increments. */
    std::uint64_t
    progressStamp() const
    {
        return dataMsgs + retransmits + faultDrops + faultDups +
               faultDelays + dupDrops + reorderBuffered + acksSent +
               ackDrops + acksReceived;
    }
};

/** The sender/receiver state machines (one instance per Network,
 *  created by Network::configureFaults). */
class Reliability
{
  public:
    Reliability(Network &net, const FaultConfig &cfg,
                const RetxParams &retx = {});

    /** Sender entry: sequence, remember, and transmit a remote data
     *  message.  Returns the optimistic (no-retransmit) arrival. */
    Tick send(Message &&msg, Tick send_time);

    /** Receiver entry: a sequenced message reached the destination.
     *  Delivers in-order messages (and any unblocked buffered ones)
     *  up through the Network's deliver callback; suppresses
     *  duplicates; always acks cumulatively. */
    void onData(Message &&msg);

    const FaultModel &model() const { return model_; }

    /** Messages currently awaiting ack or resequencing.  O(1): a
     *  running counter maintained at every window insert/erase, so
     *  the watchdog can poll it without an O(P^2) sweep.  Under
     *  SHASTA_AUDIT=1 every call cross-checks the counter against a
     *  full scan of the live pairs. */
    std::size_t pendingUnacked() const;

    /** Directed pairs that ever carried sequenced traffic (the
     *  sparse-state footprint; dense would be P^2). */
    std::size_t livePairs() const { return pairs_.live(); }

    /** Test hook: start pair (src -> dst) at sequence @p next on
     *  both ends, as if (next - 1) messages had already been
     *  exchanged.  Lets unit tests cross the 24-bit wrap without
     *  pushing 2^24 messages.  Only valid before the pair carries
     *  traffic. */
    void seedPairForTest(ProcId src, ProcId dst, std::uint32_t next);

    /** The retransmission policy in effect. */
    const RetxParams &retx() const { return retx_; }

  private:
    /** One unacked sender-side message. */
    struct Pending
    {
        std::uint32_t seq = 0;
        Message msg;
        Tick firstSend = 0;
        Tick rto = 0;
        int attempts = 0;
    };

    /** One out-of-order arrival parked for resequencing. */
    struct Parked
    {
        std::uint32_t seq = 0;
        Message msg;
    };

    /** Per-directed-pair sender + receiver state.  The sender half
     *  lives in the (src, dst) entry, the receiver half in the same
     *  entry (indexed identically from both sides: the state for
     *  traffic src->dst).  Materialized lazily on first traffic. */
    struct PairState
    {
        /** @{ Sender side. */
        /** Next sequence number to assign (1-based; wraps). */
        std::uint32_t sndNext = 1;
        /** Per-transmission fault-decision index (never reused, so
         *  a retransmit draws a fresh decision). */
        std::uint64_t xmit = 0;
        /** Ack-transmission fault-decision index (receiver side of
         *  the reverse pair uses the forward pair's entry). */
        std::uint64_t ackXmit = 0;
        /** Unacked messages in send order.  Send order is serial
         *  order, so cumulative-ack pruning always removes a prefix
         *  and the vector never reshuffles. */
        std::vector<Pending> pending;
        /** @} */

        /** @{ Receiver side. */
        /** Next sequence number to deliver. */
        std::uint32_t rcvNext = 1;
        /** Last sequence number delivered (0 until the first
         *  delivery).  This — not (rcvNext - 1) & mask — is the
         *  cumulative-ack value: the numeric decrement aliases to 0
         *  ("nothing delivered") for one window right after the
         *  24-bit space wraps. */
        std::uint32_t rcvLast = 0;
        /** Out-of-order arrivals awaiting the gap to fill, in
         *  serial order. */
        std::vector<Parked> buffer;
        /** @} */
    };

    PairState &pair(ProcId src, ProcId dst);

    Pending *findPending(PairState &ps, std::uint32_t seq);

    /** One physical transmission of @p msg (original or retransmit):
     *  draws a fault decision, charges the channel, schedules the
     *  delivery/duplicate events, and arms the retransmit timer. */
    Tick transmit(PairState &ps, Message &&msg, Tick now);

    void onRetxTimer(ProcId src, ProcId dst, std::uint32_t seq);

    /** Send a cumulative ack for pair (src -> dst) back to src. */
    void sendAck(PairState &ps, ProcId src, ProcId dst);

    void onAck(ProcId src, ProcId dst, std::uint32_t cumSeq);

    /** Initial retransmission timeout for a pair (≈ 2x RTT). */
    Tick initialRto(ProcId src, ProcId dst) const;

    Network &net_;
    FaultModel model_;
    RetxParams retx_;
    /** Sparse per-pair state, keyed by packed (src, dst).  Under the
     *  parallel engine a pair's sender fields run on the source
     *  machine's worker and its receiver fields on the destination's
     *  — disjoint members of a slab-stable entry, so only the map
     *  lookup/materialization itself needs pairsMu_. */
    PairMap<PairState> pairs_;
    std::mutex pairsMu_;
    /** Running sum of every pair's pending.size() + buffer.size(),
     *  maintained at the insert/erase sites (satellite of the
     *  O(P^2)-per-poll pendingUnacked fix).  Atomic because inserts
     *  happen on the sender's worker and erases on either side. */
    std::atomic<std::size_t> unackedAndBuffered_{0};
    /** Cross-check the running counter on every read (SHASTA_AUDIT). */
    bool auditCounter_ = false;
};

/** @{ 24-bit serial-number arithmetic (sequence space 1..2^24-1;
 *  0 is reserved for "unsequenced"/"nothing delivered yet"). */
constexpr std::uint32_t kRelSeqMask = 0xFFFFFFu;

constexpr std::uint32_t
relSeqNext(std::uint32_t s)
{
    const std::uint32_t n = (s + 1) & kRelSeqMask;
    return n == 0 ? 1 : n;
}

/** True when @p a is strictly older than @p b in wrapping order.
 *  Sound for any window narrower than 2^23 — both ends of every
 *  comparison here sit within one in-flight window of each other. */
constexpr bool
relSeqLt(std::uint32_t a, std::uint32_t b)
{
    return a != b && ((b - a) & kRelSeqMask) < 0x800000u;
}
/** @} */

} // namespace shasta

#endif // SHASTA_NET_RELIABLE_HH
