/**
 * @file
 * Reliability sublayer between Network::send and the mailboxes.
 *
 * When fault injection is configured (net/fault.hh), remote messages
 * travel over an unreliable fabric that may drop, duplicate, or
 * delay them.  This layer restores the delivery contract the
 * protocol agents were written against — exactly-once, per-pair
 * FIFO — using the classic machinery:
 *
 *  - every remote data message carries a 24-bit per-directed-pair
 *    sequence number packed into Message padding (Message::relSeq);
 *  - the receiver delivers strictly in sequence order: duplicates
 *    (seq already delivered or already buffered) are dropped, gaps
 *    cause out-of-order arrivals to park in a reorder buffer, and
 *    every arrival triggers a cumulative ack back to the sender;
 *  - the sender keeps a copy of each unacked message and retransmits
 *    on a per-message timeout with capped exponential backoff,
 *    scheduled on the timing-wheel EventQueue; it gives up (throws)
 *    after kMaxAttempts, which at the supported drop rates means the
 *    link is configured hostile rather than lossy.
 *
 * Acks are internal events, not Messages: they never enter mailboxes
 * or the dispatch table, so no MsgType is added and the handler
 * tables stay exhaustive.  Ack transmissions draw their own fault
 * decisions (FaultSalt::Ack) and may be dropped; cumulative acking
 * plus sender retransmission makes that safe.
 *
 * Everything here is driven by the deterministic event queue and the
 * stateless FaultModel, so runs remain byte-reproducible.  This
 * layer only exists while faults are enabled; with faults off the
 * Network fast path is untouched and allocation-free as before
 * (tests/alloc_test.cc), while the faulty path may allocate (reorder
 * buffers, pending maps).
 */

#ifndef SHASTA_NET_RELIABLE_HH
#define SHASTA_NET_RELIABLE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "net/fault.hh"
#include "net/message.hh"
#include "sim/ticks.hh"

namespace shasta
{

class Network;
struct LatencyStats;

/** Reliability/fault counters, nested in NetworkCounts so the usual
 *  reset/snapshot plumbing covers them. */
struct RelCounts
{
    /** Sequenced data messages handed to the sublayer. */
    std::uint64_t dataMsgs = 0;
    /** Retransmissions after an ack timeout. */
    std::uint64_t retransmits = 0;
    /** Transmissions the fabric dropped (data). */
    std::uint64_t faultDrops = 0;
    /** Duplicate copies the fabric injected. */
    std::uint64_t faultDups = 0;
    /** Deliveries the fabric jittered/delayed. */
    std::uint64_t faultDelays = 0;
    /** Receiver-side duplicate suppressions. */
    std::uint64_t dupDrops = 0;
    /** Out-of-order arrivals parked for resequencing. */
    std::uint64_t reorderBuffered = 0;
    /** Acks sent / lost to the fabric / processed by the sender. */
    std::uint64_t acksSent = 0;
    std::uint64_t ackDrops = 0;
    std::uint64_t acksReceived = 0;

    bool
    any() const
    {
        return dataMsgs != 0 || retransmits != 0 || faultDrops != 0 ||
               faultDups != 0 || faultDelays != 0 || dupDrops != 0 ||
               reorderBuffered != 0 || acksSent != 0 ||
               ackDrops != 0 || acksReceived != 0;
    }

    /** Monotone activity stamp: changes whenever the sublayer did
     *  anything at all.  The watchdog compares stamps to tell a
     *  retry storm (stamp moving) from a true stall (stamp frozen).
     *  Monotone because every counter only increments. */
    std::uint64_t
    progressStamp() const
    {
        return dataMsgs + retransmits + faultDrops + faultDups +
               faultDelays + dupDrops + reorderBuffered + acksSent +
               ackDrops + acksReceived;
    }
};

/** The sender/receiver state machines (one instance per Network,
 *  created by Network::configureFaults). */
class Reliability
{
  public:
    Reliability(Network &net, const FaultConfig &cfg);

    /** Sender entry: sequence, remember, and transmit a remote data
     *  message.  Returns the optimistic (no-retransmit) arrival. */
    Tick send(Message &&msg, Tick send_time);

    /** Receiver entry: a sequenced message reached the destination.
     *  Delivers in-order messages (and any unblocked buffered ones)
     *  up through the Network's deliver callback; suppresses
     *  duplicates; always acks cumulatively. */
    void onData(Message &&msg);

    const FaultModel &model() const { return model_; }

    /** Messages currently awaiting ack or resequencing (tests). */
    std::size_t pendingUnacked() const;

    /** Retransmission cap per message; exceeding it throws. */
    static constexpr int kMaxAttempts = 30;

  private:
    /** Per-directed-pair sender + receiver state.  The sender half
     *  lives in the (src, dst) entry, the receiver half in the same
     *  entry (indexed identically from both sides: the state for
     *  traffic src->dst). */
    struct PairState
    {
        /** @{ Sender side. */
        /** Next sequence number to assign (1-based; wraps). */
        std::uint32_t sndNext = 1;
        /** Per-transmission fault-decision index (never reused, so
         *  a retransmit draws a fresh decision). */
        std::uint64_t xmit = 0;
        /** Ack-transmission fault-decision index (receiver side of
         *  the reverse pair uses the forward pair's entry). */
        std::uint64_t ackXmit = 0;
        struct Pending
        {
            Message msg;
            Tick firstSend = 0;
            Tick rto = 0;
            int attempts = 0;
        };
        /** Unacked messages by sequence number. */
        std::map<std::uint32_t, Pending> pending;
        /** @} */

        /** @{ Receiver side. */
        /** Next sequence number to deliver. */
        std::uint32_t rcvNext = 1;
        /** Out-of-order arrivals awaiting the gap to fill. */
        std::map<std::uint32_t, Message> buffer;
        /** @} */
    };

    PairState &pair(ProcId src, ProcId dst);

    /** One physical transmission of @p msg (original or retransmit):
     *  draws a fault decision, charges the channel, schedules the
     *  delivery/duplicate events, and arms the retransmit timer. */
    Tick transmit(PairState &ps, Message &&msg, Tick now);

    void onRetxTimer(ProcId src, ProcId dst, std::uint32_t seq);

    /** Send a cumulative ack for pair (src -> dst) back to src. */
    void sendAck(PairState &ps, ProcId src, ProcId dst);

    void onAck(ProcId src, ProcId dst, std::uint32_t cumSeq);

    /** Initial retransmission timeout for a pair (≈ 2x RTT). */
    Tick initialRto(ProcId src, ProcId dst) const;

    Network &net_;
    FaultModel model_;
    std::vector<PairState> pairs_;
};

/** @{ 24-bit serial-number arithmetic (sequence space 1..2^24-1;
 *  0 is reserved for "unsequenced"). */
constexpr std::uint32_t kRelSeqMask = 0xFFFFFFu;

constexpr std::uint32_t
relSeqNext(std::uint32_t s)
{
    const std::uint32_t n = (s + 1) & kRelSeqMask;
    return n == 0 ? 1 : n;
}

/** True when @p a is strictly older than @p b in wrapping order. */
constexpr bool
relSeqLt(std::uint32_t a, std::uint32_t b)
{
    return a != b && ((b - a) & kRelSeqMask) < 0x800000u;
}
/** @} */

} // namespace shasta

#endif // SHASTA_NET_RELIABLE_HH
