#include "net/reliable.hh"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "dsm/config.hh"
#include "net/network.hh"
#include "obs/trace_json.hh"
#include "sim/env.hh"
#include "stats/histogram.hh"

namespace shasta
{

void
RetxParams::applyEnv()
{
    // Strict parses (sim/env.hh): garbage, trailing junk, negative,
    // or overflowing values name the variable and exit rather than
    // silently truncating through atoi/atof.
    maxAttempts = static_cast<int>(env::envInt(
        "SHASTA_RETX_MAX_ATTEMPTS", 1, 1000000, maxAttempts));
    backoffCapMult = static_cast<int>(env::envInt(
        "SHASTA_RETX_BACKOFF_CAP", 1, 1000000, backoffCapMult));
    rtoUs = env::envDouble("SHASTA_RETX_RTO_US", 0.0, 1.0e9, rtoUs);
}

void
RetxParams::validate() const
{
    if (maxAttempts < 1)
        throw std::invalid_argument(
            "RetxParams: maxAttempts must be >= 1");
    if (backoffCapMult < 1)
        throw std::invalid_argument(
            "RetxParams: backoffCapMult must be >= 1");
    if (rtoUs < 0.0)
        throw std::invalid_argument(
            "RetxParams: rtoUs must be >= 0");
}

Reliability::Reliability(Network &net, const FaultConfig &cfg,
                         const RetxParams &retx)
    : net_(net), model_(cfg), retx_(retx)
{
    retx_.validate();
    // Pair state materializes lazily (PairMap hands out slab-stable
    // references, so entries created by reentrant deliveries — a
    // handler replying inline reenters send() mid-onData — never
    // move existing ones).  The audit knob also gates the
    // pendingUnacked counter cross-check.
    AuditConfig audit;
    audit.applyEnv();
    auditCounter_ = audit.enabled();
}

Reliability::PairState &
Reliability::pair(ProcId src, ProcId dst)
{
    // Entries are slab-stable, so the reference stays valid after
    // the lock drops; only the lookup/materialization races between
    // the sender's and receiver's workers.
    if (net_.engineActive()) {
        const std::lock_guard<std::mutex> lock(pairsMu_);
        return pairs_.get(src, dst);
    }
    return pairs_.get(src, dst);
}

Reliability::Pending *
Reliability::findPending(PairState &ps, std::uint32_t seq)
{
    // Linear scan: the window holds the handful of messages in
    // flight on one pair, not the whole sequence space.
    for (Pending &p : ps.pending) {
        if (p.seq == seq)
            return &p;
    }
    return nullptr;
}

Tick
Reliability::initialRto(ProcId src, ProcId dst) const
{
    if (retx_.rtoUs > 0.0)
        return usToTicks(retx_.rtoUs);
    // Auto: ~2x the unloaded round trip (data out, ack back),
    // floored so short local jitter settings cannot arm timers
    // faster than the fabric can answer.
    const Tick rtt =
        net_.unloadedLatency(src, dst, kMsgHeaderBytes + 64) +
        net_.unloadedLatency(dst, src, kMsgHeaderBytes);
    return std::max(2 * rtt, usToTicks(10.0));
}

Tick
Reliability::send(Message &&msg, Tick send_time)
{
    PairState &ps = pair(msg.src, msg.dst);
    const std::uint32_t seq = ps.sndNext;
    ps.sndNext = relSeqNext(ps.sndNext);
    msg.setRelSeq(seq);
    ++net_.shard().rel.dataMsgs;

    // Appending keeps the pending window serially sorted: sequence
    // numbers are assigned in send order.
    ps.pending.emplace_back();
    Pending &p = ps.pending.back();
    p.seq = seq;
    p.msg = msg;
    p.firstSend = send_time;
    p.rto = initialRto(msg.src, msg.dst);
    p.attempts = 0;
    ++unackedAndBuffered_;

    return transmit(ps, std::move(msg), send_time);
}

Tick
Reliability::transmit(PairState &ps, Message &&msg, Tick now)
{
    const ProcId src = msg.src;
    const ProcId dst = msg.dst;
    const std::uint32_t seq = msg.relSeq();

    Pending *p = findPending(ps, seq);
    assert(p != nullptr);
    ++p->attempts;

    // The decision is keyed by the per-pair *transmission* counter,
    // not the sequence number: a retransmit draws a fresh decision,
    // so a lossy link is lossy, not a black hole.
    const FaultDecision d =
        model_.decide(src, dst, ps.xmit++, FaultSalt::Data);

    // Arm the retransmit timer before anything else: it covers the
    // dropped case too.  The timer is the sender's: it fires on the
    // source machine's wheel.
    net_.scheduleAt(net_.topology().machineOf(src), now + p->rto,
                    [this, src, dst, seq] {
                        onRetxTimer(src, dst, seq);
                    });

    // A dropped packet still occupied the wire up to the drop point;
    // charge the channel either way.
    const Tick arrival = net_.reserveChannel(msg, now);

    if (d.drop) {
        ++net_.shard().rel.faultDrops;
        if (obs::traceJsonEnabled())
            obs::emitInstant(src, now, "fault-drop", "fault", seq);
        return arrival;
    }
    if (d.duplicate) {
        ++net_.shard().rel.faultDups;
        if (obs::traceJsonEnabled())
            obs::emitInstant(src, now, "fault-dup", "fault", seq);
        // The fabric conjures the copy; it does not re-serialize on
        // the sender's channel.
        Message copy = msg;
        net_.scheduleArrival(std::move(copy), now,
                             arrival + d.dupDelay);
    }
    if (d.extraDelay > 0) {
        ++net_.shard().rel.faultDelays;
        if (obs::traceJsonEnabled())
            obs::emitInstant(src, now, "fault-delay", "fault", seq);
    }
    net_.scheduleArrival(std::move(msg), now, arrival + d.extraDelay);
    return arrival;
}

void
Reliability::onRetxTimer(ProcId src, ProcId dst, std::uint32_t seq)
{
    PairState &ps = pair(src, dst);
    Pending *p = findPending(ps, seq);
    if (p == nullptr)
        return; // acked in the meantime
    if (p->attempts >= retx_.maxAttempts) {
        // At the supported drop rates (<= 50%) the chance of losing
        // maxAttempts transmissions in a row is ~2^-30: this is a
        // misconfigured (or adversarial) link, not bad luck.
        throw std::runtime_error(
            "Reliability: message exceeded retransmit limit");
    }
    const Tick now = net_.now();
    ++net_.shard().rel.retransmits;
    if (LatencyStats *sink = net_.latSinkShard(); sink != nullptr)
        sink->record(LatencyClass::RetryDelay, now - p->firstSend);
    if (obs::traceJsonEnabled())
        obs::emitInstant(src, now, "retransmit", "fault", seq);
    // Capped exponential backoff: doubling stops at backoffCapMult
    // times the initial timeout, enough to ride out congested
    // channels without turning a single loss into a
    // simulated-millisecond stall.
    p->rto = std::min(p->rto * 2,
                      initialRto(src, dst) * retx_.backoffCapMult);
    Message copy = p->msg;
    transmit(ps, std::move(copy), now);
}

void
Reliability::onData(Message &&msg)
{
    PairState &ps = pair(msg.src, msg.dst);
    const ProcId src = msg.src;
    const ProcId dst = msg.dst;
    const std::uint32_t seq = msg.relSeq();
    assert(seq != 0);

    const bool parked =
        std::any_of(ps.buffer.begin(), ps.buffer.end(),
                    [seq](const Parked &b) { return b.seq == seq; });
    if (relSeqLt(seq, ps.rcvNext) || parked) {
        // Already delivered or already parked: a fabric duplicate or
        // a retransmit that crossed the ack.  Re-ack so the sender
        // learns its state even if the first ack was lost.
        ++net_.shard().rel.dupDrops;
        if (obs::traceJsonEnabled())
            obs::emitInstant(dst, net_.now(), "dup-drop",
                             "fault", seq);
        sendAck(ps, src, dst);
        return;
    }

    if (seq == ps.rcvNext) {
        ps.rcvLast = seq;
        ps.rcvNext = relSeqNext(ps.rcvNext);
        net_.deliverUp(std::move(msg));
        // Release any buffered messages the gap was blocking.  The
        // buffer is serially sorted, so the next deliverable message
        // is always the front.  Pop before delivering: delivery can
        // reenter and materialize other pairs, but only this loop
        // mutates this pair's buffer.
        while (!ps.buffer.empty() &&
               ps.buffer.front().seq == ps.rcvNext) {
            Message next = std::move(ps.buffer.front().msg);
            ps.buffer.erase(ps.buffer.begin());
            --unackedAndBuffered_;
            ps.rcvLast = ps.rcvNext;
            ps.rcvNext = relSeqNext(ps.rcvNext);
            // The message sat in the reorder buffer; it becomes
            // visible now, not at its (stale) wire arrival time.
            next.arriveTime = net_.now();
            net_.deliverUp(std::move(next));
        }
    } else {
        ++net_.shard().rel.reorderBuffered;
        ++unackedAndBuffered_;
        // Insert in serial order (from the back: arrivals are mostly
        // in order, so the common case is an append).
        std::size_t i = ps.buffer.size();
        while (i > 0 && relSeqLt(seq, ps.buffer[i - 1].seq))
            --i;
        Parked b;
        b.seq = seq;
        b.msg = std::move(msg);
        ps.buffer.insert(
            ps.buffer.begin() + static_cast<std::ptrdiff_t>(i),
            std::move(b));
    }
    sendAck(ps, src, dst);
}

void
Reliability::sendAck(PairState &ps, ProcId src, ProcId dst)
{
    ++net_.shard().rel.acksSent;
    // Acks ride the reverse direction but draw decisions from the
    // forward pair's ack counter, salted so they are independent of
    // the data stream.  Only the drop probability applies: acks are
    // cumulative, so duplicating or delaying them is uninteresting.
    const FaultDecision d =
        model_.decide(src, dst, ps.ackXmit++, FaultSalt::Ack);
    if (d.drop) {
        ++net_.shard().rel.ackDrops;
        if (obs::traceJsonEnabled())
            obs::emitInstant(dst, net_.now(), "ack-drop",
                             "fault", ps.rcvNext);
        return;
    }
    // Cumulative ack: everything up to and including the last
    // delivered sequence number.  rcvLast is tracked explicitly
    // rather than derived as (rcvNext - 1) & kRelSeqMask: right
    // after the 24-bit space wraps (rcvNext back to 1) the numeric
    // decrement yields 0, the reserved "nothing delivered" value,
    // and the ack's meaning would silently lean on 0 aliasing the
    // serial position between 2^24-1 and 1.
    const std::uint32_t cum = ps.rcvLast;
    // Acks are small control messages on a side channel: they do not
    // enter mailboxes (no MsgType) and do not contend for pair/link
    // bandwidth, they just take the unloaded reverse latency.
    const Tick delay =
        net_.unloadedLatency(dst, src, kMsgHeaderBytes);
    // The ack event executes at the sender: route it to the source
    // machine's wheel.  Its delay is exactly the remote header
    // latency, i.e. exactly the engine's lookahead, so it always
    // lands at or past the current window's end.
    net_.scheduleAt(net_.topology().machineOf(src),
                    net_.now() + delay, [this, src, dst, cum] {
                        onAck(src, dst, cum);
                    });
}

void
Reliability::onAck(ProcId src, ProcId dst, std::uint32_t cumSeq)
{
    ++net_.shard().rel.acksReceived;
    PairState &ps = pair(src, dst);
    // The window is serially sorted, so everything acked (seq <=
    // cumSeq in serial order) is a prefix.
    std::size_t n = 0;
    while (n < ps.pending.size() &&
           !relSeqLt(cumSeq, ps.pending[n].seq))
        ++n;
    if (n > 0) {
        ps.pending.erase(ps.pending.begin(),
                         ps.pending.begin() +
                             static_cast<std::ptrdiff_t>(n));
        assert(unackedAndBuffered_ >= n);
        unackedAndBuffered_ -= n;
    }
}

std::size_t
Reliability::pendingUnacked() const
{
    if (auditCounter_) {
        // Audit builds verify the running counter against the full
        // per-pair scan it replaced.
        std::size_t scan = 0;
        pairs_.forEach([&scan](ProcId, ProcId, const PairState &ps) {
            scan += ps.pending.size() + ps.buffer.size();
        });
        assert(scan == unackedAndBuffered_ &&
               "pendingUnacked counter out of sync with pair scan");
        if (scan != unackedAndBuffered_)
            throw std::logic_error(
                "Reliability: pendingUnacked counter out of sync");
    }
    return unackedAndBuffered_;
}

void
Reliability::seedPairForTest(ProcId src, ProcId dst,
                             std::uint32_t next)
{
    PairState &ps = pair(src, dst);
    assert(ps.pending.empty() && ps.buffer.empty() &&
           ps.sndNext == 1 && ps.rcvNext == 1);
    assert(next != 0 && next <= kRelSeqMask);
    ps.sndNext = next;
    ps.rcvNext = next;
    // The serial predecessor of `next` (0 for next == 1, matching
    // the virgin "nothing delivered" state).
    ps.rcvLast = (next - 1) & kRelSeqMask;
}

} // namespace shasta
