#include "net/reliable.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "net/network.hh"
#include "obs/trace_json.hh"
#include "stats/histogram.hh"

namespace shasta
{

Reliability::Reliability(Network &net, const FaultConfig &cfg)
    : net_(net), model_(cfg)
{
    // Pre-size so PairState references stay stable across the
    // reentrant deliveries below (a handler replying inline can
    // reenter send() mid-onData).
    const auto n =
        static_cast<std::size_t>(net_.topology().numProcs());
    pairs_.resize(n * n);
}

Reliability::PairState &
Reliability::pair(ProcId src, ProcId dst)
{
    return pairs_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(
                          net_.topology().numProcs()) +
                  static_cast<std::size_t>(dst)];
}

Tick
Reliability::initialRto(ProcId src, ProcId dst) const
{
    // ~2x the unloaded round trip (data out, ack back), floored so
    // short local jitter settings cannot arm timers faster than the
    // fabric can answer.
    const Tick rtt =
        net_.unloadedLatency(src, dst, kMsgHeaderBytes + 64) +
        net_.unloadedLatency(dst, src, kMsgHeaderBytes);
    return std::max(2 * rtt, usToTicks(10.0));
}

Tick
Reliability::send(Message &&msg, Tick send_time)
{
    PairState &ps = pair(msg.src, msg.dst);
    const std::uint32_t seq = ps.sndNext;
    ps.sndNext = relSeqNext(ps.sndNext);
    msg.setRelSeq(seq);
    ++net_.counts_.rel.dataMsgs;

    PairState::Pending &p = ps.pending[seq];
    p.msg = msg;
    p.firstSend = send_time;
    p.rto = initialRto(msg.src, msg.dst);
    p.attempts = 0;

    return transmit(ps, std::move(msg), send_time);
}

Tick
Reliability::transmit(PairState &ps, Message &&msg, Tick now)
{
    const ProcId src = msg.src;
    const ProcId dst = msg.dst;
    const std::uint32_t seq = msg.relSeq();

    auto it = ps.pending.find(seq);
    assert(it != ps.pending.end());
    PairState::Pending &p = it->second;
    ++p.attempts;

    // The decision is keyed by the per-pair *transmission* counter,
    // not the sequence number: a retransmit draws a fresh decision,
    // so a lossy link is lossy, not a black hole.
    const FaultDecision d =
        model_.decide(src, dst, ps.xmit++, FaultSalt::Data);

    // Arm the retransmit timer before anything else: it covers the
    // dropped case too.
    net_.events_.schedule(now + p.rto, [this, src, dst, seq] {
        onRetxTimer(src, dst, seq);
    });

    // A dropped packet still occupied the wire up to the drop point;
    // charge the channel either way.
    const Tick arrival = net_.reserveChannel(msg, now);

    if (d.drop) {
        ++net_.counts_.rel.faultDrops;
        if (obs::traceJsonEnabled())
            obs::emitInstant(src, now, "fault-drop", "fault", seq);
        return arrival;
    }
    if (d.duplicate) {
        ++net_.counts_.rel.faultDups;
        if (obs::traceJsonEnabled())
            obs::emitInstant(src, now, "fault-dup", "fault", seq);
        // The fabric conjures the copy; it does not re-serialize on
        // the sender's channel.
        Message copy = msg;
        net_.scheduleArrival(std::move(copy), now,
                             arrival + d.dupDelay);
    }
    if (d.extraDelay > 0) {
        ++net_.counts_.rel.faultDelays;
        if (obs::traceJsonEnabled())
            obs::emitInstant(src, now, "fault-delay", "fault", seq);
    }
    net_.scheduleArrival(std::move(msg), now, arrival + d.extraDelay);
    return arrival;
}

void
Reliability::onRetxTimer(ProcId src, ProcId dst, std::uint32_t seq)
{
    PairState &ps = pair(src, dst);
    auto it = ps.pending.find(seq);
    if (it == ps.pending.end())
        return; // acked in the meantime
    PairState::Pending &p = it->second;
    if (p.attempts >= kMaxAttempts) {
        // At the supported drop rates (<= 50%) the chance of losing
        // kMaxAttempts transmissions in a row is ~2^-30: this is a
        // misconfigured (or adversarial) link, not bad luck.
        throw std::runtime_error(
            "Reliability: message exceeded retransmit limit");
    }
    const Tick now = net_.events_.now();
    ++net_.counts_.rel.retransmits;
    if (net_.latSink_ != nullptr)
        net_.latSink_->record(LatencyClass::RetryDelay,
                              now - p.firstSend);
    if (obs::traceJsonEnabled())
        obs::emitInstant(src, now, "retransmit", "fault", seq);
    // Capped exponential backoff: doubling stops at 64x the initial
    // timeout, enough to ride out congested channels without turning
    // a single loss into a simulated-millisecond stall.
    p.rto = std::min(p.rto * 2, initialRto(src, dst) * 64);
    Message copy = p.msg;
    transmit(ps, std::move(copy), now);
}

void
Reliability::onData(Message &&msg)
{
    PairState &ps = pair(msg.src, msg.dst);
    const ProcId src = msg.src;
    const ProcId dst = msg.dst;
    const std::uint32_t seq = msg.relSeq();
    assert(seq != 0);

    if (relSeqLt(seq, ps.rcvNext) || ps.buffer.count(seq) != 0) {
        // Already delivered or already parked: a fabric duplicate or
        // a retransmit that crossed the ack.  Re-ack so the sender
        // learns its state even if the first ack was lost.
        ++net_.counts_.rel.dupDrops;
        if (obs::traceJsonEnabled())
            obs::emitInstant(dst, net_.events_.now(), "dup-drop",
                             "fault", seq);
        sendAck(ps, src, dst);
        return;
    }

    if (seq == ps.rcvNext) {
        ps.rcvNext = relSeqNext(ps.rcvNext);
        net_.deliverUp(std::move(msg));
        // Release any buffered messages the gap was blocking.
        // Re-find each iteration: delivery can reenter and mutate
        // the buffer.
        for (auto bit = ps.buffer.find(ps.rcvNext);
             bit != ps.buffer.end();
             bit = ps.buffer.find(ps.rcvNext)) {
            Message next = std::move(bit->second);
            ps.buffer.erase(bit);
            ps.rcvNext = relSeqNext(ps.rcvNext);
            // The message sat in the reorder buffer; it becomes
            // visible now, not at its (stale) wire arrival time.
            next.arriveTime = net_.events_.now();
            net_.deliverUp(std::move(next));
        }
    } else {
        ++net_.counts_.rel.reorderBuffered;
        ps.buffer.emplace(seq, std::move(msg));
    }
    sendAck(ps, src, dst);
}

void
Reliability::sendAck(PairState &ps, ProcId src, ProcId dst)
{
    ++net_.counts_.rel.acksSent;
    // Acks ride the reverse direction but draw decisions from the
    // forward pair's ack counter, salted so they are independent of
    // the data stream.  Only the drop probability applies: acks are
    // cumulative, so duplicating or delaying them is uninteresting.
    const FaultDecision d =
        model_.decide(src, dst, ps.ackXmit++, FaultSalt::Ack);
    if (d.drop) {
        ++net_.counts_.rel.ackDrops;
        if (obs::traceJsonEnabled())
            obs::emitInstant(dst, net_.events_.now(), "ack-drop",
                             "fault", ps.rcvNext);
        return;
    }
    // Cumulative ack: everything strictly before rcvNext has been
    // delivered.  (The initial value 0 means "nothing yet"; serial
    // arithmetic in onAck handles it uniformly.)
    const std::uint32_t cum = (ps.rcvNext - 1) & kRelSeqMask;
    // Acks are small control messages on a side channel: they do not
    // enter mailboxes (no MsgType) and do not contend for pair/link
    // bandwidth, they just take the unloaded reverse latency.
    const Tick delay =
        net_.unloadedLatency(dst, src, kMsgHeaderBytes);
    net_.events_.schedule(net_.events_.now() + delay,
                          [this, src, dst, cum] {
                              onAck(src, dst, cum);
                          });
}

void
Reliability::onAck(ProcId src, ProcId dst, std::uint32_t cumSeq)
{
    ++net_.counts_.rel.acksReceived;
    PairState &ps = pair(src, dst);
    for (auto it = ps.pending.begin(); it != ps.pending.end();) {
        if (!relSeqLt(cumSeq, it->first)) // it->first <= cumSeq
            it = ps.pending.erase(it);
        else
            ++it;
    }
}

std::size_t
Reliability::pendingUnacked() const
{
    std::size_t n = 0;
    for (const PairState &ps : pairs_)
        n += ps.pending.size() + ps.buffer.size();
    return n;
}

} // namespace shasta
