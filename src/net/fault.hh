/**
 * @file
 * Deterministic fault injection for the inter-machine transport.
 *
 * The paper's prototype rides on Memory Channel, whose hardware
 * guarantees reliable in-order delivery (Section 4.1), so the
 * simulator's Network historically never dropped, duplicated, or
 * reordered a message.  Commodity fabrics make no such promise; this
 * module models an adversarial fabric so the reliability sublayer
 * (net/reliable.hh) and the protocol above it can be proven against
 * it.
 *
 * Determinism contract: every injection decision is a pure function
 * of (seed, src, dst, per-pair transmission index, packet class),
 * hashed through splitMixHash.  No generator state is consumed, so
 * two runs of the same configuration make byte-identical decisions
 * regardless of event interleaving, host, or how many sweep worker
 * threads run other configurations concurrently.
 *
 * Faults apply only to *remote* (inter-machine) traffic: the
 * intra-machine shared-memory queues are cache-coherent loads and
 * stores, which do not lose messages.
 */

#ifndef SHASTA_NET_FAULT_HH
#define SHASTA_NET_FAULT_HH

#include <cstdint>
#include <string_view>

#include "net/topology.hh"
#include "sim/ticks.hh"

namespace shasta
{

/** Fault-injection knobs for one run (all probabilities percent per
 *  physical transmission; 0 everywhere = faults off). */
struct FaultConfig
{
    /** Probability a transmission is silently dropped. */
    double dropPct = 0.0;
    /** Probability the fabric delivers a second, duplicate copy. */
    double dupPct = 0.0;
    /** Probability a delivery is delayed by a jitter draw, letting
     *  later same-pair messages overtake it (reordering). */
    double reorderPct = 0.0;
    /** Maximum extra delay of a jittered delivery, in microseconds
     *  (0 picks a default large enough to actually reorder). */
    double jitterUs = 0.0;
    /** Root of the decision hash (SHASTA_FAULT_SEED). */
    std::uint64_t seed = 1;

    bool
    enabled() const
    {
        return dropPct > 0.0 || dupPct > 0.0 || reorderPct > 0.0;
    }

    /**
     * Apply the fault environment knobs, if set:
     * SHASTA_DROP_PCT, SHASTA_DUP_PCT, SHASTA_REORDER_PCT,
     * SHASTA_JITTER_US, SHASTA_FAULT_SEED, and the kill switch
     * SHASTA_FAULT=off|0 (forces everything off, e.g. to shield a
     * golden run inside a faulty sweep).
     */
    void applyEnv();

    /** Abort with a message on out-of-range knobs (mirrors
     *  DsmConfig::validate). */
    void validate() const;

    /**
     * Parse a bench `--fault=` spec into @p out: comma-separated
     * `key:value` tokens with keys drop, dup, reorder, jitter, seed,
     * e.g. "drop:2,dup:1,reorder:1,jitter:20,seed:7".
     * @return false on a malformed spec (out may be partly written).
     */
    static bool parse(std::string_view spec, FaultConfig &out);
};

/** What the fabric does to one physical transmission. */
struct FaultDecision
{
    bool drop = false;
    bool duplicate = false;
    /** Extra delivery delay (0 = delivered at the modeled arrival). */
    Tick extraDelay = 0;
    /** Delay of the duplicate copy relative to the original. */
    Tick dupDelay = 0;
};

/** Packet classes salted into the decision hash so data and ack
 *  transmissions of the same index draw independently. */
enum class FaultSalt : std::uint64_t
{
    Data = 0,
    Ack = 1,
};

/**
 * Stateless decision function over a FaultConfig.
 *
 * decide() may be called in any order and any number of times; the
 * result for a given (src, dst, xmit, salt) never changes.
 */
class FaultModel
{
  public:
    explicit FaultModel(const FaultConfig &cfg);

    /** Fabric behavior for transmission number @p xmit (per directed
     *  pair, counted by the caller) from @p src to @p dst. */
    FaultDecision decide(ProcId src, ProcId dst, std::uint64_t xmit,
                         FaultSalt salt) const;

    const FaultConfig &config() const { return cfg_; }

  private:
    FaultConfig cfg_;
    /** Jitter magnitude in ticks (defaulted when jitterUs is 0). */
    Tick jitterTicks_;
};

} // namespace shasta

#endif // SHASTA_NET_FAULT_HH
