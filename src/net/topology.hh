/**
 * @file
 * Cluster topology: physical machines versus logical nodes.
 *
 * The paper's prototype is 4 AlphaServer 4100s with 4 processors each.
 * Physical placement (which machine a processor lives on) determines
 * message latency; *logical clustering* (how many processors share
 * memory and state tables) is an independent knob: Base-Shasta is
 * clustering 1 even though 4 processes share each physical machine,
 * and SMP-Shasta runs with clustering 1, 2, or 4 (Section 4.3).
 */

#ifndef SHASTA_NET_TOPOLOGY_HH
#define SHASTA_NET_TOPOLOGY_HH

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace shasta
{

/** Global processor id, 0 .. numProcs-1. */
using ProcId = int;

/** Logical node id (a clustering group sharing memory). */
using NodeId = int;

/** Physical machine id. */
using MachineId = int;

/**
 * Static description of a cluster run.
 *
 * Processors are packed onto machines in order, as in the paper: a
 * 2- or 4-processor run fits on one machine, an 8-processor run uses
 * two machines, 16 uses four.  A logical node never spans machines.
 */
class Topology
{
  public:
    Topology(int num_procs, int clustering, int procs_per_machine = 4)
        : numProcs_(num_procs),
          clustering_(clustering),
          procsPerMachine_(procs_per_machine)
    {
        // Checked in Release too: every index table downstream sizes
        // itself from these, and large-P sweeps run Release builds
        // where a bad config would otherwise turn into silent
        // out-of-range arithmetic instead of a clean abort.
        if (numProcs_ < 1 || clustering_ < 1 ||
            procsPerMachine_ < 1 ||
            // A logical node must fit within one machine and tile it.
            clustering_ > procsPerMachine_ ||
            procsPerMachine_ % clustering_ != 0) {
            std::fprintf(stderr,
                         "Topology: invalid configuration "
                         "(procs=%d clustering=%d "
                         "procsPerMachine=%d)\n",
                         numProcs_, clustering_, procsPerMachine_);
            std::abort();
        }
    }

    int numProcs() const { return numProcs_; }

    int clustering() const { return clustering_; }

    int procsPerMachine() const { return procsPerMachine_; }

    int
    numNodes() const
    {
        return (numProcs_ + clustering_ - 1) / clustering_;
    }

    int
    numMachines() const
    {
        return (numProcs_ + procsPerMachine_ - 1) / procsPerMachine_;
    }

    MachineId
    machineOf(ProcId p) const
    {
        assert(p >= 0 && p < numProcs_);
        return p / procsPerMachine_;
    }

    NodeId
    nodeOf(ProcId p) const
    {
        assert(p >= 0 && p < numProcs_);
        return p / clustering_;
    }

    /** First (lowest-numbered) processor of a logical node. */
    ProcId
    firstProcOf(NodeId n) const
    {
        assert(n >= 0 && n < numNodes());
        return n * clustering_;
    }

    /** Number of processors on logical node @p n. */
    int
    procsOn(NodeId n) const
    {
        const int first = firstProcOf(n);
        const int last = first + clustering_;
        return (last <= numProcs_ ? clustering_ : numProcs_ - first);
    }

    bool
    sameMachine(ProcId a, ProcId b) const
    {
        return machineOf(a) == machineOf(b);
    }

    bool
    sameNode(ProcId a, ProcId b) const
    {
        return nodeOf(a) == nodeOf(b);
    }

  private:
    int numProcs_;
    int clustering_;
    int procsPerMachine_;
};

} // namespace shasta

#endif // SHASTA_NET_TOPOLOGY_HH
