#include "net/fault.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/env.hh"
#include "sim/rng.hh"

namespace shasta
{

namespace
{

/** Map a hash word to a uniform double in [0, 1). */
double
u01(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

void
FaultConfig::applyEnv()
{
    if (const char *env = std::getenv("SHASTA_FAULT");
        env != nullptr &&
        (std::string_view(env) == "off" ||
         std::string_view(env) == "0")) {
        *this = FaultConfig{};
        return;
    }
    // Strict parses (sim/env.hh) with validate()'s ranges: garbage,
    // trailing junk, negative, or overflowing values exit naming the
    // variable instead of atof-ing to 0.
    dropPct = env::envDouble("SHASTA_DROP_PCT", 0.0, 50.0, dropPct);
    dupPct = env::envDouble("SHASTA_DUP_PCT", 0.0, 100.0, dupPct);
    reorderPct =
        env::envDouble("SHASTA_REORDER_PCT", 0.0, 100.0, reorderPct);
    jitterUs =
        env::envDouble("SHASTA_JITTER_US", 0.0, 1.0e6, jitterUs);
    seed = env::envU64("SHASTA_FAULT_SEED", 10, seed);
}

void
FaultConfig::validate() const
{
    auto fail = [](const char *msg) {
        std::fprintf(stderr, "FaultConfig: %s\n", msg);
        std::abort();
    };
    // Above 50% drop the retransmit backoff can no longer make
    // forward progress plausible; treat it as a configuration error
    // rather than letting every run die on the give-up limit.
    if (dropPct < 0.0 || dropPct > 50.0)
        fail("dropPct must be in [0, 50]");
    if (dupPct < 0.0 || dupPct > 100.0)
        fail("dupPct must be in [0, 100]");
    if (reorderPct < 0.0 || reorderPct > 100.0)
        fail("reorderPct must be in [0, 100]");
    if (jitterUs < 0.0 || jitterUs > 1.0e6)
        fail("jitterUs must be in [0, 1e6]");
}

bool
FaultConfig::parse(std::string_view spec, FaultConfig &out)
{
    while (!spec.empty()) {
        const std::size_t comma = spec.find(',');
        std::string_view tok = spec.substr(0, comma);
        spec = comma == std::string_view::npos
                   ? std::string_view{}
                   : spec.substr(comma + 1);
        const std::size_t colon = tok.find(':');
        if (colon == std::string_view::npos)
            return false;
        const std::string_view key = tok.substr(0, colon);
        const std::string val(tok.substr(colon + 1));
        if (val.empty())
            return false;
        if (key == "drop") {
            out.dropPct = std::atof(val.c_str());
        } else if (key == "dup") {
            out.dupPct = std::atof(val.c_str());
        } else if (key == "reorder") {
            out.reorderPct = std::atof(val.c_str());
        } else if (key == "jitter") {
            out.jitterUs = std::atof(val.c_str());
        } else if (key == "seed") {
            out.seed = std::strtoull(val.c_str(), nullptr, 10);
        } else {
            return false;
        }
    }
    return true;
}

FaultModel::FaultModel(const FaultConfig &cfg) : cfg_(cfg)
{
    // With reordering requested but no jitter magnitude given, use
    // 8 us: about twice the remote one-way latency, enough for a
    // burst of same-pair messages to overtake the delayed one.
    const double us = cfg_.jitterUs > 0.0 ? cfg_.jitterUs : 8.0;
    jitterTicks_ = std::max<Tick>(Tick{1}, usToTicks(us));
}

FaultDecision
FaultModel::decide(ProcId src, ProcId dst, std::uint64_t xmit,
                   FaultSalt salt) const
{
    // One hash chain per transmission; sub-draws re-mix with a draw
    // index so drop/dup/delay decisions are independent.
    std::uint64_t h = splitMixHash(cfg_.seed);
    h = hashCombine(h, (static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(src))
                        << 32) |
                           static_cast<std::uint32_t>(dst));
    h = hashCombine(h, xmit);
    h = hashCombine(h, static_cast<std::uint64_t>(salt));
    auto draw = [h](std::uint64_t idx) {
        return splitMixHash(h + idx * 0xD1B54A32D192ED03ULL);
    };

    FaultDecision d;
    d.drop = u01(draw(1)) < cfg_.dropPct / 100.0;
    if (d.drop)
        return d;
    d.duplicate = u01(draw(2)) < cfg_.dupPct / 100.0;
    if (u01(draw(3)) < cfg_.reorderPct / 100.0) {
        d.extraDelay =
            1 + static_cast<Tick>(
                    u01(draw(4)) *
                    static_cast<double>(jitterTicks_));
    }
    if (d.duplicate) {
        d.dupDelay =
            1 + static_cast<Tick>(
                    u01(draw(5)) *
                    static_cast<double>(jitterTicks_));
    }
    return d;
}

} // namespace shasta
