/**
 * @file
 * The transport seam between the protocol layer and an execution
 * backend.
 *
 * The protocol engines (HomeAgent / RequesterAgent / DowngradeEngine
 * over ProtocolCore) and the blocking awaitables in dsm/context
 * compile against this interface only.  Two backends implement it:
 *
 *  - `Network` + `EventQueue` (the simulator): `now()` is the
 *    discrete-event clock, `send()` models channel/link serialization
 *    and schedules a delivery event, and ticks are 300 MHz cycles.
 *    Golden statistics stay byte-identical run to run.
 *  - `ThreadBackend` (src/exec/): `now()` is wall-clock nanoseconds,
 *    `send()` pushes a frame onto a lock-free SPSC ring toward the
 *    destination node's worker thread, and deferred callbacks run on
 *    the calling worker's ready queue.
 *
 * Either way the contract the protocol relies on is the same:
 * per-pair FIFO delivery, a monotone clock, and deferAt() callbacks
 * that fire on the thread that owns the affected processor state.
 */

#ifndef SHASTA_NET_TRANSPORT_HH
#define SHASTA_NET_TRANSPORT_HH

#include <functional>

#include "net/message.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"

namespace shasta
{

struct NetworkCounts;

class Transport
{
  public:
    using Deliver = std::function<void(Message &&)>;
    /** Non-allocating deferred callback (sim/inplace_fn.hh). */
    using Callback = EventQueue::Callback;

    virtual ~Transport() = default;

    /** Current backend time (simulated ticks or wall-clock ns). */
    virtual Tick now() const = 0;

    /**
     * Send @p msg at sender-local time @p send_time (which may run
     * slightly ahead of now() under the quantum).  Delivery invokes
     * the installed deliver callback on the thread owning the
     * destination; per-pair order is FIFO.
     * @return the (modeled or estimated) arrival time.
     */
    virtual Tick send(Message msg, Tick send_time) = 0;

    /**
     * Run @p cb once the backend reaches local time @p t, but never
     * before the present: the effective time is max(t, now()).  Used
     * by processors yielding the quantum and by blocked processors
     * re-arming their mailbox drain; @p cb must touch only state
     * owned by the calling processor's node.
     */
    virtual void deferAt(Tick t, Callback cb) = 0;

    /** Install the delivery callback (runtime wires this to the
     *  protocol's deliver entry point). */
    virtual void setDeliver(Deliver d) = 0;

    /** Logical message counters (Figure 7's categories). */
    virtual const NetworkCounts &counts() const = 0;
    virtual void resetCounts() = 0;

    virtual const Topology &topology() const = 0;
};

} // namespace shasta

#endif // SHASTA_NET_TRANSPORT_HH
