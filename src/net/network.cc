#include "net/network.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/trace_json.hh"
#include "sim/pdes.hh"

namespace shasta
{

NetworkParams
NetworkParams::defaults()
{
    NetworkParams p;
    // Memory Channel: ~4 us one-way user-to-user latency, ~35 MB/s
    // effective bandwidth for block transfers (paper Section 4.1).
    p.remote.sendOverhead = usToTicks(0.7);
    p.remote.wireLatency = usToTicks(4.0);
    p.remote.bytesPerTick = 35.0e6 / kClockHz;
    // Intra-machine shared-memory message queues: ~45 MB/s, short
    // latency dominated by cache-to-cache transfers.
    p.local.sendOverhead = usToTicks(0.5);
    p.local.wireLatency = usToTicks(0.7);
    p.local.bytesPerTick = 45.0e6 / kClockHz;
    return p;
}

Network::Network(EventQueue &events, const Topology &topo,
                 const NetworkParams &params)
    : events_(events), topo_(topo), params_(params)
{
    // Pair channels are sparse (PairMap, free since tick 0 on first
    // touch); only the per-machine links are dense.
    linkFree_.assign(static_cast<std::size_t>(topo_.numMachines()), 0);
    // Serial mode runs with single shards; attachEngine widens them
    // to one per machine.
    pairFreeShards_.resize(1);
    slotPools_.push_back(std::make_unique<SlotPool>());
    countShards_.resize(1);
}

void
Network::attachEngine(ParallelEngine *engine)
{
    engine_ = engine;
    const auto m = static_cast<std::size_t>(topo_.numMachines());
    pairFreeShards_.resize(m);
    while (slotPools_.size() < m)
        slotPools_.push_back(std::make_unique<SlotPool>());
    countShards_.resize(m);
}

Tick
Network::now() const
{
    return engine_ != nullptr ? engine_->now() : events_.now();
}

void
Network::deferAt(Tick t, Callback cb)
{
    scheduleAt(curMachine(), std::max(t, now()), std::move(cb));
}

int
Network::curMachine() const
{
    return engine_ != nullptr ? engine_->activeMachine() : 0;
}

void
Network::scheduleAt(int machine, Tick when, EventQueue::Callback cb)
{
    if (engine_ != nullptr) {
        engine_->scheduleOn(machine, when, std::move(cb));
        return;
    }
    events_.schedule(when, std::move(cb));
}

NetworkCounts &
Network::shard()
{
    return countShards_[static_cast<std::size_t>(curMachine())];
}

LatencyStats *
Network::latSinkShard()
{
    if (latSinks_.empty())
        return nullptr;
    const auto i = std::min(static_cast<std::size_t>(curMachine()),
                            latSinks_.size() - 1);
    return latSinks_[i];
}

const NetworkCounts &
Network::counts() const
{
    agg_ = NetworkCounts{};
    for (const NetworkCounts &s : countShards_)
        agg_ += s;
    return agg_;
}

void
Network::resetCounts()
{
    for (NetworkCounts &s : countShards_)
        s = NetworkCounts{};
    agg_ = NetworkCounts{};
}

Tick
Network::minRemoteLookahead() const
{
    return params_.remote.sendOverhead +
           params_.remote.transferTicks(kMsgHeaderBytes) +
           params_.remote.wireLatency;
}

std::uint32_t
Network::parkMessage(int pool, Message &&msg)
{
    SlotPool &p = *slotPools_[static_cast<std::size_t>(pool)];
    // Park runs on the sender's worker, delivery on the receiver's:
    // the shard is cross-thread under the engine, single-threaded
    // (and lock-free) otherwise.
    std::unique_lock<std::mutex> lock(p.mu, std::defer_lock);
    if (engine_ != nullptr)
        lock.lock();
    std::uint32_t slot;
    if (!p.freeSlots.empty()) {
        slot = p.freeSlots.back();
        p.freeSlots.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(p.pending.size());
        p.pending.emplace_back();
    }
    p.pending[slot] = std::move(msg);
    return slot;
}

void
Network::deliverSlot(int pool, std::uint32_t slot)
{
    // Take the message and recycle the slot before invoking the
    // callback: delivery can reenter send() (a handler replying
    // inline), which may park new messages.
    SlotPool &p = *slotPools_[static_cast<std::size_t>(pool)];
    Message m;
    {
        std::unique_lock<std::mutex> lock(p.mu, std::defer_lock);
        if (engine_ != nullptr)
            lock.lock();
        m = std::move(p.pending[slot]);
        p.freeSlots.push_back(slot);
    }
    assert(deliver_);
    // Sequenced messages (remote traffic under fault injection) pass
    // through the reliability receiver: dedup, resequencing, acks.
    if (rel_ != nullptr && m.relSeq() != 0) {
        rel_->onData(std::move(m));
        return;
    }
    deliver_(std::move(m));
}

void
Network::configureFaults(const FaultConfig &cfg,
                         const RetxParams &retx)
{
    if (!cfg.enabled()) {
        rel_.reset();
        return;
    }
    cfg.validate();
    rel_ = std::make_unique<Reliability>(*this, cfg, retx);
}

Tick
Network::reserveChannel(const Message &msg, Tick send_time)
{
    const bool remote = !topo_.sameMachine(msg.src, msg.dst);
    const LinkParams &link = remote ? params_.remote : params_.local;

    // Serialize on the per-pair channel and, for remote traffic, on
    // the machine's outbound Memory Channel link (processors on a
    // machine share that link's bandwidth, Section 4.3).  Channel
    // state shards by source machine under the engine: every
    // reservation for a pair (src, dst) runs on src's worker.
    const auto src_machine =
        static_cast<std::size_t>(topo_.machineOf(msg.src));
    Tick start = send_time + link.sendOverhead;
    Tick &pair_free =
        pairFreeShards_[engine_ != nullptr ? src_machine : 0].get(
            msg.src, msg.dst);
    start = std::max(start, pair_free);
    if (remote)
        start = std::max(start, linkFree_[src_machine]);

    const Tick transfer = link.transferTicks(msg.wireBytes());
    pair_free = start + transfer;
    if (remote)
        linkFree_[src_machine] = start + transfer;

    return start + transfer + link.wireLatency;
}

void
Network::scheduleArrival(Message &&msg, Tick send_time, Tick arrival)
{
    msg.sendTime = send_time;
    msg.arriveTime = arrival;
    if (obs::traceJsonEnabled()) {
        msg.flowId = obs::nextFlowId();
        obs::emitFlowStart(msg.flowId, msg.src, send_time,
                           msgTypeName(msg.type).data());
    }
    // The closure is {this, pool, slot}: fits the inline callback
    // buffer, so scheduling allocates nothing.  The delivery event
    // always executes on the destination machine's wheel.
    const int dst_machine = topo_.machineOf(msg.dst);
    const int pool = engine_ != nullptr ? dst_machine : 0;
    const std::uint32_t slot = parkMessage(pool, std::move(msg));
    scheduleAt(dst_machine, arrival,
               [this, pool, slot] { deliverSlot(pool, slot); });
}

Tick
Network::send(Message msg, Tick send_time)
{
    // Checked (not assert-only) validation: this is the one entry
    // point every protocol layer funnels through, and large-P
    // configurations are exactly where an index-arithmetic bug
    // would corrupt state silently in Release builds.
    if (msg.src < 0 || msg.src >= topo_.numProcs() || msg.dst < 0 ||
        msg.dst >= topo_.numProcs()) {
        throw std::logic_error(
            "Network::send: processor id out of range");
    }
    if (msg.src == msg.dst) {
        throw std::logic_error(
            "Network::send: self-sends must be handled locally");
    }
    if (send_time < now()) {
        throw std::logic_error(
            "Network::send: send time is in the simulated past");
    }

    const bool remote = !topo_.sameMachine(msg.src, msg.dst);
    const std::uint32_t bytes = msg.wireBytes();

    // Account the (logical) message into the sender machine's shard.
    // Retransmissions and fabric duplicates are not re-counted here;
    // they show up in the rel counters instead.
    NetworkCounts &c = shard();
    ++c.byType[static_cast<std::size_t>(msg.type)];
    if (msg.type == MsgType::Downgrade) {
        assert(!remote && "downgrades never cross machines");
        ++c.downgradeMsgs;
        c.localBytes += bytes;
    } else if (remote) {
        ++c.remoteMsgs;
        c.remoteBytes += bytes;
    } else {
        ++c.localMsgs;
        c.localBytes += bytes;
    }

    // Remote traffic under fault injection detours through the
    // reliability sublayer; everything else keeps the direct
    // (reliable, allocation-free) path.
    if (rel_ != nullptr && remote)
        return rel_->send(std::move(msg), send_time);

    const Tick arrival = reserveChannel(msg, send_time);
    scheduleArrival(std::move(msg), send_time, arrival);
    return arrival;
}

Tick
Network::unloadedLatency(ProcId src, ProcId dst,
                         std::uint32_t bytes) const
{
    const bool remote = !topo_.sameMachine(src, dst);
    const LinkParams &link = remote ? params_.remote : params_.local;
    return link.sendOverhead + link.transferTicks(bytes) +
           link.wireLatency;
}

} // namespace shasta
