#include "net/network.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/trace_json.hh"

namespace shasta
{

NetworkParams
NetworkParams::defaults()
{
    NetworkParams p;
    // Memory Channel: ~4 us one-way user-to-user latency, ~35 MB/s
    // effective bandwidth for block transfers (paper Section 4.1).
    p.remote.sendOverhead = usToTicks(0.7);
    p.remote.wireLatency = usToTicks(4.0);
    p.remote.bytesPerTick = 35.0e6 / kClockHz;
    // Intra-machine shared-memory message queues: ~45 MB/s, short
    // latency dominated by cache-to-cache transfers.
    p.local.sendOverhead = usToTicks(0.5);
    p.local.wireLatency = usToTicks(0.7);
    p.local.bytesPerTick = 45.0e6 / kClockHz;
    return p;
}

Network::Network(EventQueue &events, const Topology &topo,
                 const NetworkParams &params)
    : events_(events), topo_(topo), params_(params)
{
    // Pair channels are sparse (PairMap, free since tick 0 on first
    // touch); only the per-machine links are dense.
    linkFree_.assign(static_cast<std::size_t>(topo_.numMachines()), 0);
}

std::uint32_t
Network::parkMessage(Message &&msg)
{
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(pending_.size());
        pending_.emplace_back();
    }
    pending_[slot] = std::move(msg);
    return slot;
}

void
Network::deliverSlot(std::uint32_t slot)
{
    // Take the message and recycle the slot before invoking the
    // callback: delivery can reenter send() (a handler replying
    // inline), which may park new messages.
    Message m = std::move(pending_[slot]);
    freeSlots_.push_back(slot);
    assert(deliver_);
    // Sequenced messages (remote traffic under fault injection) pass
    // through the reliability receiver: dedup, resequencing, acks.
    if (rel_ != nullptr && m.relSeq() != 0) {
        rel_->onData(std::move(m));
        return;
    }
    deliver_(std::move(m));
}

void
Network::configureFaults(const FaultConfig &cfg,
                         const RetxParams &retx)
{
    if (!cfg.enabled()) {
        rel_.reset();
        return;
    }
    cfg.validate();
    rel_ = std::make_unique<Reliability>(*this, cfg, retx);
}

Tick
Network::reserveChannel(const Message &msg, Tick send_time)
{
    const bool remote = !topo_.sameMachine(msg.src, msg.dst);
    const LinkParams &link = remote ? params_.remote : params_.local;

    // Serialize on the per-pair channel and, for remote traffic, on
    // the machine's outbound Memory Channel link (processors on a
    // machine share that link's bandwidth, Section 4.3).
    Tick start = send_time + link.sendOverhead;
    Tick &pair_free = pairFree_.get(msg.src, msg.dst);
    start = std::max(start, pair_free);
    const auto src_machine =
        static_cast<std::size_t>(topo_.machineOf(msg.src));
    if (remote)
        start = std::max(start, linkFree_[src_machine]);

    const Tick transfer = link.transferTicks(msg.wireBytes());
    pair_free = start + transfer;
    if (remote)
        linkFree_[src_machine] = start + transfer;

    return start + transfer + link.wireLatency;
}

void
Network::scheduleArrival(Message &&msg, Tick send_time, Tick arrival)
{
    msg.sendTime = send_time;
    msg.arriveTime = arrival;
    if (obs::traceJsonEnabled()) {
        msg.flowId = obs::nextFlowId();
        obs::emitFlowStart(msg.flowId, msg.src, send_time,
                           msgTypeName(msg.type).data());
    }
    // The closure is {this, slot}: small enough for std::function's
    // inline buffer, so scheduling allocates nothing.
    const std::uint32_t slot = parkMessage(std::move(msg));
    events_.schedule(arrival, [this, slot] { deliverSlot(slot); });
}

Tick
Network::send(Message msg, Tick send_time)
{
    // Checked (not assert-only) validation: this is the one entry
    // point every protocol layer funnels through, and large-P
    // configurations are exactly where an index-arithmetic bug
    // would corrupt state silently in Release builds.
    if (msg.src < 0 || msg.src >= topo_.numProcs() || msg.dst < 0 ||
        msg.dst >= topo_.numProcs()) {
        throw std::logic_error(
            "Network::send: processor id out of range");
    }
    if (msg.src == msg.dst) {
        throw std::logic_error(
            "Network::send: self-sends must be handled locally");
    }
    if (send_time < events_.now()) {
        throw std::logic_error(
            "Network::send: send time is in the simulated past");
    }

    const bool remote = !topo_.sameMachine(msg.src, msg.dst);
    const std::uint32_t bytes = msg.wireBytes();

    // Account the (logical) message.  Retransmissions and fabric
    // duplicates are not re-counted here; they show up in
    // counts_.rel instead.
    ++counts_.byType[static_cast<std::size_t>(msg.type)];
    if (msg.type == MsgType::Downgrade) {
        assert(!remote && "downgrades never cross machines");
        ++counts_.downgradeMsgs;
        counts_.localBytes += bytes;
    } else if (remote) {
        ++counts_.remoteMsgs;
        counts_.remoteBytes += bytes;
    } else {
        ++counts_.localMsgs;
        counts_.localBytes += bytes;
    }

    // Remote traffic under fault injection detours through the
    // reliability sublayer; everything else keeps the direct
    // (reliable, allocation-free) path.
    if (rel_ != nullptr && remote)
        return rel_->send(std::move(msg), send_time);

    const Tick arrival = reserveChannel(msg, send_time);
    scheduleArrival(std::move(msg), send_time, arrival);
    return arrival;
}

Tick
Network::unloadedLatency(ProcId src, ProcId dst,
                         std::uint32_t bytes) const
{
    const bool remote = !topo_.sameMachine(src, dst);
    const LinkParams &link = remote ? params_.remote : params_.local;
    return link.sendOverhead + link.transferTicks(bytes) +
           link.wireLatency;
}

} // namespace shasta
