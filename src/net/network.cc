#include "net/network.hh"

#include <algorithm>
#include <cassert>

namespace shasta
{

std::string_view
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq: return "ReadReq";
      case MsgType::ReadExReq: return "ReadExReq";
      case MsgType::UpgradeReq: return "UpgradeReq";
      case MsgType::FwdReadReq: return "FwdReadReq";
      case MsgType::FwdReadExReq: return "FwdReadExReq";
      case MsgType::InvalReq: return "InvalReq";
      case MsgType::InvalAck: return "InvalAck";
      case MsgType::ReadReply: return "ReadReply";
      case MsgType::ReadExReply: return "ReadExReply";
      case MsgType::UpgradeReply: return "UpgradeReply";
      case MsgType::SharingWriteback: return "SharingWriteback";
      case MsgType::OwnershipAck: return "OwnershipAck";
      case MsgType::Downgrade: return "Downgrade";
      case MsgType::LockReq: return "LockReq";
      case MsgType::LockGrant: return "LockGrant";
      case MsgType::LockRelease: return "LockRelease";
      case MsgType::BarrierArrive: return "BarrierArrive";
      case MsgType::BarrierRelease: return "BarrierRelease";
      default: return "?";
    }
}

NetworkParams
NetworkParams::defaults()
{
    NetworkParams p;
    // Memory Channel: ~4 us one-way user-to-user latency, ~35 MB/s
    // effective bandwidth for block transfers (paper Section 4.1).
    p.remote.sendOverhead = usToTicks(0.7);
    p.remote.wireLatency = usToTicks(4.0);
    p.remote.bytesPerTick = 35.0e6 / kClockHz;
    // Intra-machine shared-memory message queues: ~45 MB/s, short
    // latency dominated by cache-to-cache transfers.
    p.local.sendOverhead = usToTicks(0.5);
    p.local.wireLatency = usToTicks(0.7);
    p.local.bytesPerTick = 45.0e6 / kClockHz;
    return p;
}

Network::Network(EventQueue &events, const Topology &topo,
                 const NetworkParams &params)
    : events_(events), topo_(topo), params_(params)
{
    const auto n = static_cast<std::size_t>(topo_.numProcs());
    pairFree_.assign(n * n, 0);
    linkFree_.assign(static_cast<std::size_t>(topo_.numMachines()), 0);
}

Tick
Network::send(Message msg, Tick send_time)
{
    assert(msg.src >= 0 && msg.src < topo_.numProcs());
    assert(msg.dst >= 0 && msg.dst < topo_.numProcs());
    assert(msg.src != msg.dst && "self-sends must be handled locally");
    assert(send_time >= events_.now());

    const bool remote = !topo_.sameMachine(msg.src, msg.dst);
    const LinkParams &link = remote ? params_.remote : params_.local;
    const int bytes = msg.wireBytes();

    // Account the message.
    ++counts_.byType[static_cast<std::size_t>(msg.type)];
    if (msg.type == MsgType::Downgrade) {
        assert(!remote && "downgrades never cross machines");
        ++counts_.downgradeMsgs;
        counts_.localBytes += static_cast<std::uint64_t>(bytes);
    } else if (remote) {
        ++counts_.remoteMsgs;
        counts_.remoteBytes += static_cast<std::uint64_t>(bytes);
    } else {
        ++counts_.localMsgs;
        counts_.localBytes += static_cast<std::uint64_t>(bytes);
    }

    // Serialize on the per-pair channel and, for remote traffic, on
    // the machine's outbound Memory Channel link (processors on a
    // machine share that link's bandwidth, Section 4.3).
    Tick start = send_time + link.sendOverhead;
    const std::size_t pair = pairIndex(msg.src, msg.dst);
    start = std::max(start, pairFree_[pair]);
    const auto src_machine =
        static_cast<std::size_t>(topo_.machineOf(msg.src));
    if (remote)
        start = std::max(start, linkFree_[src_machine]);

    const Tick transfer = link.transferTicks(bytes);
    pairFree_[pair] = start + transfer;
    if (remote)
        linkFree_[src_machine] = start + transfer;

    const Tick arrival = start + transfer + link.wireLatency;

    msg.sendTime = send_time;
    msg.arriveTime = arrival;
    events_.schedule(arrival,
                     [this, m = std::move(msg)]() mutable {
                         assert(deliver_);
                         deliver_(std::move(m));
                     });
    return arrival;
}

Tick
Network::unloadedLatency(ProcId src, ProcId dst, int bytes) const
{
    const bool remote = !topo_.sameMachine(src, dst);
    const LinkParams &link = remote ? params_.remote : params_.local;
    return link.sendOverhead + link.transferTicks(bytes) +
           link.wireLatency;
}

} // namespace shasta
