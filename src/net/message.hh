/**
 * @file
 * Protocol message taxonomy.
 *
 * Every inter-processor interaction in Shasta — coherence traffic,
 * intra-node downgrades, and the message-based lock and barrier
 * primitives — travels as one of these messages.  The network layer
 * cares only about src/dst/size; the protocol layer dispatches on
 * type.
 */

#ifndef SHASTA_NET_MESSAGE_HH
#define SHASTA_NET_MESSAGE_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "mem/addr.hh"
#include "net/topology.hh"
#include "sim/ticks.hh"

namespace shasta
{

/** Kinds of protocol messages. */
enum class MsgType : std::uint8_t
{
    // Requests to the home (Section 2.1: read, read-exclusive,
    // exclusive/upgrade).
    ReadReq,
    ReadExReq,
    UpgradeReq,

    // Home-to-owner forwards.
    FwdReadReq,
    FwdReadExReq,

    // Invalidations of sharers and their acknowledgements (acks are
    // collected by the requester under eager release consistency).
    InvalReq,
    InvalAck,

    // Data and permission replies.
    ReadReply,
    ReadExReply,
    UpgradeReply,

    // Owner informs the home of an exclusive-to-shared transition so
    // the directory can be updated and the transaction closed.
    SharingWriteback,
    // Requester informs the home that it received ownership, closing
    // a read-exclusive/upgrade transaction at the directory.
    OwnershipAck,

    // Intra-node downgrade of a private state table entry
    // (Section 3.4.3).  Never crosses machines.
    Downgrade,

    // Message-based synchronization primitives (Section 4.3 notes the
    // SMP-Shasta primitives are not SMP-optimized; both protocols use
    // these).
    LockReq,
    LockGrant,
    LockRelease,
    BarrierArrive,
    BarrierRelease,

    NumTypes
};

/** Human-readable name of a message type (for traces and tests). */
std::string_view msgTypeName(MsgType t);

/** True for the request types that initiate a coherence transaction. */
constexpr bool
isCoherenceRequest(MsgType t)
{
    return t == MsgType::ReadReq || t == MsgType::ReadExReq ||
           t == MsgType::UpgradeReq;
}

/** Approximate header size of every message, in bytes. */
constexpr int kMsgHeaderBytes = 32;

/**
 * A protocol message in flight or queued in a mailbox.
 *
 * The data vector carries block contents for data-bearing replies;
 * it is snapshotted at send time because the sender's copy may be
 * overwritten (e.g., with the invalid flag) before delivery.
 */
struct Message
{
    MsgType type = MsgType::ReadReq;
    ProcId src = -1;
    ProcId dst = -1;

    /** Block base address for coherence traffic; lock/barrier id for
     *  synchronization traffic. */
    Addr addr = 0;

    /** Processor that started the transaction (may differ from src,
     *  e.g. on a forwarded request). */
    ProcId requester = -1;

    /** Number of invalidation acks the requester should expect, or a
     *  generic small-integer argument. */
    int count = 0;

    /** Block data payload (empty for non-data messages). */
    std::vector<std::uint8_t> data;

    /** Simulated time the message was handed to the network. */
    Tick sendTime = 0;

    /** Simulated time the message became visible at the destination. */
    Tick arriveTime = 0;

    /** Total size on the wire. */
    int
    wireBytes() const
    {
        return kMsgHeaderBytes + static_cast<int>(data.size());
    }
};

} // namespace shasta

#endif // SHASTA_NET_MESSAGE_HH
