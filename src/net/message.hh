/**
 * @file
 * Protocol message taxonomy.
 *
 * Every inter-processor interaction in Shasta — coherence traffic,
 * intra-node downgrades, and the message-based lock and barrier
 * primitives — travels as one of these messages.  The network layer
 * cares only about src/dst/size; the protocol layer dispatches on
 * type through a static per-type handler table (see proto_core.cc).
 *
 * Adding a MsgType requires three things, all enforced at compile
 * time: a name and cost class here (msgTypeInfoFor's switch is
 * exhaustive — a missing enumerator fails constant evaluation) and a
 * dispatch entry in the protocol's handler table (same technique).
 */

#ifndef SHASTA_NET_MESSAGE_HH
#define SHASTA_NET_MESSAGE_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "mem/addr.hh"
#include "net/payload.hh"
#include "net/topology.hh"
#include "sim/ticks.hh"

namespace shasta
{

/** Kinds of protocol messages. */
enum class MsgType : std::uint8_t
{
    // Requests to the home (Section 2.1: read, read-exclusive,
    // exclusive/upgrade).
    ReadReq,
    ReadExReq,
    UpgradeReq,

    // Home-to-owner forwards.
    FwdReadReq,
    FwdReadExReq,
    // Migratory fast path (opt.migratory): the home predicts the
    // reader will write next and transfers ownership on the read
    // miss, so the owner surrenders its copy entirely.
    FwdReadMigReq,

    // Invalidations of sharers and their acknowledgements (acks are
    // collected by the requester under eager release consistency).
    InvalReq,
    InvalAck,

    // Data and permission replies.
    ReadReply,
    ReadExReply,
    UpgradeReply,
    // Data reply granting exclusive to a *read* miss (migratory fast
    // path): carries the block like ReadExReply but closes at the
    // directory with an OwnershipAck even when no write follows.
    ReadMigReply,

    // Owner informs the home of an exclusive-to-shared transition so
    // the directory can be updated and the transaction closed.
    SharingWriteback,
    // Requester informs the home that it received ownership, closing
    // a read-exclusive/upgrade transaction at the directory.
    OwnershipAck,

    // Intra-node downgrade of a private state table entry
    // (Section 3.4.3).  Never crosses machines.
    Downgrade,

    // Message-based synchronization primitives (Section 4.3 notes the
    // SMP-Shasta primitives are not SMP-optimized; both protocols use
    // these).
    LockReq,
    LockGrant,
    LockRelease,
    BarrierArrive,
    BarrierRelease,

    NumTypes
};

/**
 * Handler-cost class of a message type: which CostParams field the
 * receive dispatch charges (sync messages charge inside the sync
 * managers).
 */
enum class MsgCostClass : std::uint8_t
{
    HomeRequest,  ///< CostParams::homeHandler
    Forward,      ///< CostParams::fwdHandler
    Invalidation, ///< CostParams::invalHandler
    Ack,          ///< CostParams::ackHandler
    DataReply,    ///< CostParams::fillReply
    UpgradeReply, ///< CostParams::upgradeReply
    HomeClose,    ///< CostParams::wbHandler
    Downgrade,    ///< CostParams::downgradeHandler
    Sync,         ///< charged by the sync managers
};

/** Static per-type attributes. */
struct MsgTypeInfo
{
    std::string_view name;
    MsgCostClass cost;
};

/**
 * Attributes of one message type.  The switch is exhaustive and the
 * function is consteval: adding a MsgType without extending it makes
 * every use a constant-evaluation failure (flowing off the end of a
 * consteval function is ill-formed), i.e. a compile error.
 */
consteval MsgTypeInfo
msgTypeInfoFor(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
        return {"ReadReq", MsgCostClass::HomeRequest};
      case MsgType::ReadExReq:
        return {"ReadExReq", MsgCostClass::HomeRequest};
      case MsgType::UpgradeReq:
        return {"UpgradeReq", MsgCostClass::HomeRequest};
      case MsgType::FwdReadReq:
        return {"FwdReadReq", MsgCostClass::Forward};
      case MsgType::FwdReadExReq:
        return {"FwdReadExReq", MsgCostClass::Forward};
      case MsgType::FwdReadMigReq:
        return {"FwdReadMigReq", MsgCostClass::Forward};
      case MsgType::InvalReq:
        return {"InvalReq", MsgCostClass::Invalidation};
      case MsgType::InvalAck:
        return {"InvalAck", MsgCostClass::Ack};
      case MsgType::ReadReply:
        return {"ReadReply", MsgCostClass::DataReply};
      case MsgType::ReadExReply:
        return {"ReadExReply", MsgCostClass::DataReply};
      case MsgType::UpgradeReply:
        return {"UpgradeReply", MsgCostClass::UpgradeReply};
      case MsgType::ReadMigReply:
        return {"ReadMigReply", MsgCostClass::DataReply};
      case MsgType::SharingWriteback:
        return {"SharingWriteback", MsgCostClass::HomeClose};
      case MsgType::OwnershipAck:
        return {"OwnershipAck", MsgCostClass::HomeClose};
      case MsgType::Downgrade:
        return {"Downgrade", MsgCostClass::Downgrade};
      case MsgType::LockReq:
        return {"LockReq", MsgCostClass::Sync};
      case MsgType::LockGrant:
        return {"LockGrant", MsgCostClass::Sync};
      case MsgType::LockRelease:
        return {"LockRelease", MsgCostClass::Sync};
      case MsgType::BarrierArrive:
        return {"BarrierArrive", MsgCostClass::Sync};
      case MsgType::BarrierRelease:
        return {"BarrierRelease", MsgCostClass::Sync};
      case MsgType::NumTypes:
        break;
    }
    // Unreached for valid types; reaching it (a new enumerator
    // missing above) fails constant evaluation.
}

/** Table of all message-type attributes, indexed by MsgType. */
inline constexpr auto kMsgTypeInfo = []() consteval {
    std::array<MsgTypeInfo,
               static_cast<std::size_t>(MsgType::NumTypes)>
        a{};
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = msgTypeInfoFor(static_cast<MsgType>(i));
    return a;
}();

/** Human-readable name of a message type (for traces and tests). */
constexpr std::string_view
msgTypeName(MsgType t)
{
    const auto i = static_cast<std::size_t>(t);
    return i < kMsgTypeInfo.size() ? kMsgTypeInfo[i].name : "?";
}

/** Cost class of a message type. */
constexpr MsgCostClass
msgCostClass(MsgType t)
{
    return kMsgTypeInfo[static_cast<std::size_t>(t)].cost;
}

/** True for the request types that initiate a coherence transaction. */
constexpr bool
isCoherenceRequest(MsgType t)
{
    return t == MsgType::ReadReq || t == MsgType::ReadExReq ||
           t == MsgType::UpgradeReq;
}

/** Approximate header size of every message, in bytes. */
constexpr std::uint32_t kMsgHeaderBytes = 32;

/**
 * A protocol message in flight or queued in a mailbox.
 *
 * The payload carries block contents for data-bearing replies; it is
 * snapshotted at send time because the sender's copy may be
 * overwritten (e.g., with the invalid flag) before delivery.
 */
struct Message
{
    MsgType type = MsgType::ReadReq;

    /** @{ Reliability-sublayer sequence number, 24 bits packed into
     *  the padding bytes after `type` (the struct's last remaining
     *  hole -- sizeof(Message) must stay 120, see the static_assert
     *  below).  0 means unsequenced: local traffic, and all traffic
     *  when fault injection is off, never carries a sequence number.
     *  Sequenced remote messages count 1..2^24-1 per directed
     *  processor pair, wrapping back to 1 (net/reliable.cc compares
     *  with serial-number arithmetic). */
    std::uint8_t relSeqLo = 0;
    std::uint8_t relSeqMid = 0;
    std::uint8_t relSeqHi = 0;

    std::uint32_t
    relSeq() const
    {
        return static_cast<std::uint32_t>(relSeqLo) |
               (static_cast<std::uint32_t>(relSeqMid) << 8) |
               (static_cast<std::uint32_t>(relSeqHi) << 16);
    }

    void
    setRelSeq(std::uint32_t s)
    {
        relSeqLo = static_cast<std::uint8_t>(s);
        relSeqMid = static_cast<std::uint8_t>(s >> 8);
        relSeqHi = static_cast<std::uint8_t>(s >> 16);
    }
    /** @} */

    ProcId src = -1;
    ProcId dst = -1;

    /** Send-to-delivery correlation id for the trace-JSON exporter
     *  (0 = untraced; assigned by Network::send only when the
     *  exporter is active).  A uint32 in the padding hole after
     *  `dst`: it must not grow sizeof(Message) -- the message is
     *  copied through mailboxes and the in-flight slot pool on the
     *  simulator's hottest path. */
    std::uint32_t flowId = 0;

    /** Block base address for coherence traffic; lock/barrier id for
     *  synchronization traffic. */
    Addr addr = 0;

    /** Processor that started the transaction (may differ from src,
     *  e.g. on a forwarded request). */
    ProcId requester = -1;

    /** Number of invalidation acks the requester should expect, or a
     *  generic small-integer argument. */
    int count = 0;

    /** Block data payload (empty for non-data messages). */
    Payload data;

    /** Simulated time the message was handed to the network. */
    Tick sendTime = 0;

    /** Simulated time the message became visible at the destination. */
    Tick arriveTime = 0;

    /**
     * Total size on the wire.  One unsigned 32-bit type end-to-end:
     * the network's bandwidth charging and the stats byte counters
     * both consume this value unchanged.
     */
    std::uint32_t
    wireBytes() const
    {
        return kMsgHeaderBytes + data.size();
    }
};

/** Message is copied through mailboxes and the in-flight slot pool
 *  on the simulator's hottest path: new fields must reuse padding
 *  holes (as flowId and the relSeq bytes do), never grow the
 *  struct. */
static_assert(sizeof(Message) == 120);

} // namespace shasta

#endif // SHASTA_NET_MESSAGE_HH
