/**
 * @file
 * Sparse per-directed-pair state.
 *
 * Several layers keep state per (src, dst) processor pair: the
 * network's channel-free times, the reliability sublayer's
 * sender/receiver machines, the fault model's transmission counters.
 * A dense P x P table is fine at the paper's 16 processors but is the
 * first casualty of scaling the simulated cluster: at P = 1024 it is
 * a million entries per table, almost all of them never touched
 * (protocol traffic is home-centric, so a processor talks to a few
 * dozen peers, not to everyone).
 *
 * PairMap stores pair state sparsely:
 *
 *  - an open-addressed index keyed by the packed 64-bit pair id
 *    maps (src, dst) to a slot in a stable slab;
 *  - the slab is a deque, so references handed out by get() stay
 *    valid while *other* pairs materialize — protocol handlers reply
 *    inline and reenter the sender mid-delivery, exactly the pattern
 *    that invalidated references when this was a resizable vector;
 *  - slab order is first-touch order, giving an intrusive live-pair
 *    list: forEach() visits only pairs that ever saw traffic, in a
 *    deterministic order that depends solely on the traffic itself.
 *
 * Determinism contract: materializing a pair must be invisible to
 * the simulation.  get() value-initializes new entries, so a lazily
 * created entry is indistinguishable from a dense-table entry that
 * was never touched, and the simulated schedule is byte-identical to
 * the dense implementation whenever the same pairs carry traffic.
 *
 * Steady-state allocation freedom: once a pair exists, get()/find()
 * are pure probes.  Only first-touch inserts (slab growth, index
 * rehash) allocate, mirroring the "warm up to peak once" rule the
 * rest of the engine follows (tests/alloc_test.cc).
 */

#ifndef SHASTA_NET_PAIR_MAP_HH
#define SHASTA_NET_PAIR_MAP_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "net/topology.hh"

namespace shasta
{

template <typename T>
class PairMap
{
  public:
    /** State for pair (src -> dst), materialized (value-initialized)
     *  on first use.  The reference stays valid for the lifetime of
     *  the map, across later insertions. */
    T &
    get(ProcId src, ProcId dst)
    {
        const std::uint64_t key = pack(src, dst);
        if (slots_.empty())
            grow();
        std::size_t i = probe(key);
        if (slots_[i] == kEmpty) {
            if ((slab_.size() + 1) * 4 > slots_.size() * 3) {
                grow();
                i = probe(key);
            }
            slots_[i] = static_cast<std::uint32_t>(slab_.size());
            slab_.push_back(Entry{key, T{}});
        }
        return slab_[slots_[i]].value;
    }

    /** Lookup without materializing; nullptr when never touched. */
    const T *
    find(ProcId src, ProcId dst) const
    {
        if (slots_.empty())
            return nullptr;
        const std::size_t i = probe(pack(src, dst));
        return slots_[i] == kEmpty ? nullptr
                                   : &slab_[slots_[i]].value;
    }

    T *
    find(ProcId src, ProcId dst)
    {
        return const_cast<T *>(
            static_cast<const PairMap *>(this)->find(src, dst));
    }

    /** Number of pairs that ever saw traffic. */
    std::size_t live() const { return slab_.size(); }

    /** @{ Visit live pairs in first-touch order:
     *  fn(src, dst, value). */
    template <typename Fn>
    void
    forEach(Fn fn)
    {
        for (Entry &e : slab_)
            fn(srcOf(e.key), dstOf(e.key), e.value);
    }

    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const Entry &e : slab_)
            fn(srcOf(e.key), dstOf(e.key), e.value);
    }
    /** @} */

  private:
    struct Entry
    {
        std::uint64_t key;
        T value;
    };

    static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

    static std::uint64_t
    pack(ProcId src, ProcId dst)
    {
        // ProcIds are non-negative and < 2^31, so the packed key is
        // collision-free without any P-dependent multiply (the old
        // `src * numProcs + dst` int arithmetic this replaces).
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dst);
    }

    static ProcId
    srcOf(std::uint64_t key)
    {
        return static_cast<ProcId>(key >> 32);
    }

    static ProcId
    dstOf(std::uint64_t key)
    {
        return static_cast<ProcId>(key & 0xFFFFFFFFu);
    }

    /** SplitMix64 finalizer: full-avalanche, deterministic across
     *  platforms. */
    static std::uint64_t
    mix(std::uint64_t k)
    {
        k ^= k >> 30;
        k *= 0xBF58476D1CE4E5B9ull;
        k ^= k >> 27;
        k *= 0x94D049BB133111EBull;
        k ^= k >> 31;
        return k;
    }

    /** Linear probe to @p key's slot or the empty slot where it
     *  would insert.  Capacity is a power of two and the table is
     *  kept under 3/4 full, so the scan terminates. */
    std::size_t
    probe(std::uint64_t key) const
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
        while (slots_[i] != kEmpty && slab_[slots_[i]].key != key)
            i = (i + 1) & mask;
        return i;
    }

    void
    grow()
    {
        const std::size_t cap =
            slots_.empty() ? 64 : slots_.size() * 2;
        slots_.assign(cap, kEmpty);
        // Rehash moves only index slots; slab entries (and the
        // references into them) never move.
        for (std::size_t s = 0; s < slab_.size(); ++s)
            slots_[probe(slab_[s].key)] =
                static_cast<std::uint32_t>(s);
    }

    /** Stable storage in first-touch order (the live-pair list). */
    std::deque<Entry> slab_;
    /** Open-addressed index: slab position or kEmpty. */
    std::vector<std::uint32_t> slots_;
};

} // namespace shasta

#endif // SHASTA_NET_PAIR_MAP_HH
