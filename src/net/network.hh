/**
 * @file
 * Latency/bandwidth model of the cluster interconnect.
 *
 * Two transport classes exist, as in the prototype (Section 4.1):
 *
 *  - *Remote* (inter-machine) messages cross the Memory Channel:
 *    ~4 us one-way latency, ~35 MB/s effective per-link bandwidth,
 *    with all processors on a machine sharing the outbound link.
 *  - *Local* (intra-machine) messages go through cache-coherent
 *    shared-memory queues: sub-microsecond latency, ~45 MB/s.
 *
 * The model serializes transfers on per-directed-pair channels (the
 * real implementation uses separate lock-free buffers per processor
 * pair) and on the per-machine Memory Channel link, and guarantees
 * per-pair FIFO delivery.
 *
 * In-flight messages are parked in a recycled slot pool so the
 * delivery closure captures only {network, slot index}: it fits
 * std::function's small buffer and scheduling a delivery performs no
 * heap allocation in the steady state.
 */

#ifndef SHASTA_NET_NETWORK_HH
#define SHASTA_NET_NETWORK_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/fault.hh"
#include "net/message.hh"
#include "net/pair_map.hh"
#include "net/reliable.hh"
#include "net/topology.hh"
#include "net/transport.hh"
#include "sim/event_queue.hh"

namespace shasta
{

struct LatencyStats;

/** Timing parameters of one transport class. */
struct LinkParams
{
    /** Sender-side software overhead before the wire. */
    Tick sendOverhead;
    /** One-way wire/fabric latency. */
    Tick wireLatency;
    /** Transfer rate in bytes per tick. */
    double bytesPerTick;

    /** Ticks needed to push @p bytes through the link. */
    Tick
    transferTicks(std::uint32_t bytes) const
    {
        return static_cast<Tick>(static_cast<double>(bytes) /
                                 bytesPerTick + 0.5);
    }
};

/** Parameters for both transport classes. */
struct NetworkParams
{
    LinkParams remote;
    LinkParams local;

    /** Defaults calibrated to the paper's measured latencies. */
    static NetworkParams defaults();
};

/** Per-class message counters (Figure 7's categories). */
struct NetworkCounts
{
    std::uint64_t remoteMsgs = 0;
    std::uint64_t localMsgs = 0;     ///< intra-machine, excl. downgrades
    std::uint64_t downgradeMsgs = 0; ///< always intra-machine
    std::uint64_t remoteBytes = 0;
    std::uint64_t localBytes = 0;
    /** Messages by type (coherence + sync + downgrade). */
    std::array<std::uint64_t,
               static_cast<std::size_t>(MsgType::NumTypes)>
        byType{};

    /** Reliability-sublayer activity (all zero with faults off; the
     *  message counters above stay *logical* — retransmits and
     *  fabric duplicates are accounted here, not there, so fault
     *  runs remain comparable to clean ones). */
    RelCounts rel;

    std::uint64_t
    total() const
    {
        return remoteMsgs + localMsgs + downgradeMsgs;
    }

    /** Shard merge (the thread backend keeps one shard per worker). */
    NetworkCounts &
    operator+=(const NetworkCounts &o)
    {
        remoteMsgs += o.remoteMsgs;
        localMsgs += o.localMsgs;
        downgradeMsgs += o.downgradeMsgs;
        remoteBytes += o.remoteBytes;
        localBytes += o.localBytes;
        for (std::size_t i = 0; i < byType.size(); ++i)
            byType[i] += o.byType[i];
        rel += o.rel;
        return *this;
    }
};

/**
 * The cluster interconnect (the simulator's Transport).
 *
 * send() computes the arrival time of a message and schedules a
 * delivery event that invokes the runtime-provided deliver callback.
 */
class Network : public Transport
{
  public:
    using Deliver = Transport::Deliver;

    Network(EventQueue &events, const Topology &topo,
            const NetworkParams &params);

    /** Install the delivery callback (runtime wires this to mailboxes). */
    void setDeliver(Deliver d) override { deliver_ = std::move(d); }

    /** The discrete-event clock. */
    Tick now() const override { return events_.now(); }

    /** Defer to simulated time max(@p t, now()) via the event queue. */
    void
    deferAt(Tick t, Callback cb) override
    {
        events_.schedule(std::max(t, events_.now()), std::move(cb));
    }

    /**
     * Send @p msg at simulated time @p send_time (the sender's local
     * clock, which may be slightly ahead of the event queue).
     * @return the arrival tick at the destination.
     */
    Tick send(Message msg, Tick send_time) override;

    /** Pure latency query: arrival time if sent now with no queuing. */
    Tick unloadedLatency(ProcId src, ProcId dst,
                         std::uint32_t bytes) const;

    const NetworkCounts &counts() const override { return counts_; }

    /** Reset counters (used between measurement phases). */
    void resetCounts() override { counts_ = NetworkCounts{}; }

    const Topology &topology() const override { return topo_; }

    /** @{ Fault injection + reliability sublayer (net/fault.hh,
     *  net/reliable.hh).  Off by default; configure before traffic
     *  flows.  While active, remote messages are sequenced, may be
     *  dropped/duplicated/delayed by the fault model, and are
     *  restored to exactly-once in-order delivery by ack/retransmit
     *  and receiver-side resequencing.  @p retx tunes the
     *  retransmission policy (defaults reproduce PR 5 exactly). */
    void configureFaults(const FaultConfig &cfg,
                         const RetxParams &retx = {});

    bool faultsActive() const { return rel_ != nullptr; }

    const Reliability *reliability() const { return rel_.get(); }

    /** Mutable access for test hooks (sequence seeding). */
    Reliability *reliability() { return rel_.get(); }

    /** Monotone reliability activity stamp (see
     *  RelCounts::progressStamp; 0 with faults off). */
    std::uint64_t
    relProgress() const
    {
        return counts_.rel.progressStamp();
    }

    /** Histogram sink for LatencyClass::RetryDelay samples (owned by
     *  the protocol core; may be null). */
    void setLatencySink(LatencyStats *lat) { latSink_ = lat; }
    /** @} */

  private:
    /** Park @p msg in a recycled slot until its delivery event. */
    std::uint32_t parkMessage(Message &&msg);

    /** Run by the delivery event: free the slot, hand over the
     *  message (sequenced messages detour through the reliability
     *  sublayer's receiver first). */
    void deliverSlot(std::uint32_t slot);

    /** @{ Transmission internals shared with the reliability
     *  sublayer (which issues retransmissions and fabric duplicates
     *  outside the logical send path). */
    friend class Reliability;

    /** Serialize on the pair channel (and machine link for remote
     *  traffic) and return the modeled arrival tick. */
    Tick reserveChannel(const Message &msg, Tick send_time);

    /** Stamp times, emit the flow trace, park, and schedule the
     *  delivery event. */
    void scheduleArrival(Message &&msg, Tick send_time, Tick arrival);

    /** Hand an in-order message to the deliver callback (used by the
     *  reliability receiver, including for resequenced releases). */
    void
    deliverUp(Message &&m)
    {
        deliver_(std::move(m));
    }
    /** @} */

    EventQueue &events_;
    Topology topo_;
    NetworkParams params_;
    Deliver deliver_;

    /** Earliest time each directed pair channel is free.  Sparse:
     *  a channel materializes (free since tick 0) on first use, so
     *  the table scales with the pairs that actually talk, not with
     *  P^2. */
    PairMap<Tick> pairFree_;
    /** Earliest time each machine's outbound Memory Channel link is
     *  free (remote messages only). */
    std::vector<Tick> linkFree_;

    /** In-flight messages, indexed by the slot captured in their
     *  delivery closures.  Slots are recycled via freeSlots_; the
     *  vectors grow to the peak in-flight count and stay there. */
    std::vector<Message> pending_;
    std::vector<std::uint32_t> freeSlots_;

    NetworkCounts counts_;

    /** Present only while fault injection is configured. */
    std::unique_ptr<Reliability> rel_;
    LatencyStats *latSink_ = nullptr;
};

} // namespace shasta

#endif // SHASTA_NET_NETWORK_HH
