/**
 * @file
 * Latency/bandwidth model of the cluster interconnect.
 *
 * Two transport classes exist, as in the prototype (Section 4.1):
 *
 *  - *Remote* (inter-machine) messages cross the Memory Channel:
 *    ~4 us one-way latency, ~35 MB/s effective per-link bandwidth,
 *    with all processors on a machine sharing the outbound link.
 *  - *Local* (intra-machine) messages go through cache-coherent
 *    shared-memory queues: sub-microsecond latency, ~45 MB/s.
 *
 * The model serializes transfers on per-directed-pair channels (the
 * real implementation uses separate lock-free buffers per processor
 * pair) and on the per-machine Memory Channel link, and guarantees
 * per-pair FIFO delivery.
 *
 * In-flight messages are parked in a recycled slot pool so the
 * delivery closure captures only {network, slot index}: it fits
 * std::function's small buffer and scheduling a delivery performs no
 * heap allocation in the steady state.
 */

#ifndef SHASTA_NET_NETWORK_HH
#define SHASTA_NET_NETWORK_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/fault.hh"
#include "net/message.hh"
#include "net/pair_map.hh"
#include "net/reliable.hh"
#include "net/topology.hh"
#include "net/transport.hh"
#include "sim/event_queue.hh"

namespace shasta
{

struct LatencyStats;
class ParallelEngine;

/** Timing parameters of one transport class. */
struct LinkParams
{
    /** Sender-side software overhead before the wire. */
    Tick sendOverhead;
    /** One-way wire/fabric latency. */
    Tick wireLatency;
    /** Transfer rate in bytes per tick. */
    double bytesPerTick;

    /** Ticks needed to push @p bytes through the link. */
    Tick
    transferTicks(std::uint32_t bytes) const
    {
        return static_cast<Tick>(static_cast<double>(bytes) /
                                 bytesPerTick + 0.5);
    }
};

/** Parameters for both transport classes. */
struct NetworkParams
{
    LinkParams remote;
    LinkParams local;

    /** Defaults calibrated to the paper's measured latencies. */
    static NetworkParams defaults();
};

/** Per-class message counters (Figure 7's categories). */
struct NetworkCounts
{
    std::uint64_t remoteMsgs = 0;
    std::uint64_t localMsgs = 0;     ///< intra-machine, excl. downgrades
    std::uint64_t downgradeMsgs = 0; ///< always intra-machine
    std::uint64_t remoteBytes = 0;
    std::uint64_t localBytes = 0;
    /** Messages by type (coherence + sync + downgrade). */
    std::array<std::uint64_t,
               static_cast<std::size_t>(MsgType::NumTypes)>
        byType{};

    /** Reliability-sublayer activity (all zero with faults off; the
     *  message counters above stay *logical* — retransmits and
     *  fabric duplicates are accounted here, not there, so fault
     *  runs remain comparable to clean ones). */
    RelCounts rel;

    std::uint64_t
    total() const
    {
        return remoteMsgs + localMsgs + downgradeMsgs;
    }

    /** Shard merge (the thread backend keeps one shard per worker). */
    NetworkCounts &
    operator+=(const NetworkCounts &o)
    {
        remoteMsgs += o.remoteMsgs;
        localMsgs += o.localMsgs;
        downgradeMsgs += o.downgradeMsgs;
        remoteBytes += o.remoteBytes;
        localBytes += o.localBytes;
        for (std::size_t i = 0; i < byType.size(); ++i)
            byType[i] += o.byType[i];
        rel += o.rel;
        return *this;
    }
};

/**
 * The cluster interconnect (the simulator's Transport).
 *
 * send() computes the arrival time of a message and schedules a
 * delivery event that invokes the runtime-provided deliver callback.
 */
class Network : public Transport
{
  public:
    using Deliver = Transport::Deliver;

    Network(EventQueue &events, const Topology &topo,
            const NetworkParams &params);

    /** Install the delivery callback (runtime wires this to mailboxes). */
    void setDeliver(Deliver d) override { deliver_ = std::move(d); }

    /** The discrete-event clock: global in serial mode, the calling
     *  worker's machine clock under the parallel engine. */
    Tick now() const override;

    /** Defer to simulated time max(@p t, now()) on the calling
     *  context's machine. */
    void deferAt(Tick t, Callback cb) override;

    /**
     * Send @p msg at simulated time @p send_time (the sender's local
     * clock, which may be slightly ahead of the event queue).
     * @return the arrival tick at the destination.
     */
    Tick send(Message msg, Tick send_time) override;

    /** Pure latency query: arrival time if sent now with no queuing. */
    Tick unloadedLatency(ProcId src, ProcId dst,
                         std::uint32_t bytes) const;

    /** Aggregated counters (summed over per-machine shards; shard
     *  sums are order-independent, so the result is byte-identical
     *  to the serial engine's single counter). */
    const NetworkCounts &counts() const override;

    /** Reset counters (used between measurement phases). */
    void resetCounts() override;

    const Topology &topology() const override { return topo_; }

    /** @{ Fault injection + reliability sublayer (net/fault.hh,
     *  net/reliable.hh).  Off by default; configure before traffic
     *  flows.  While active, remote messages are sequenced, may be
     *  dropped/duplicated/delayed by the fault model, and are
     *  restored to exactly-once in-order delivery by ack/retransmit
     *  and receiver-side resequencing.  @p retx tunes the
     *  retransmission policy (defaults reproduce PR 5 exactly). */
    void configureFaults(const FaultConfig &cfg,
                         const RetxParams &retx = {});

    bool faultsActive() const { return rel_ != nullptr; }

    const Reliability *reliability() const { return rel_.get(); }

    /** Mutable access for test hooks (sequence seeding). */
    Reliability *reliability() { return rel_.get(); }

    /** Monotone reliability activity stamp (see
     *  RelCounts::progressStamp; 0 with faults off). */
    std::uint64_t
    relProgress() const
    {
        return counts().rel.progressStamp();
    }

    /** Histogram sink for LatencyClass::RetryDelay samples (owned by
     *  the protocol core; may be null). */
    void
    setLatencySink(LatencyStats *lat)
    {
        latSinks_.assign(1, lat);
    }

    /** Per-machine sinks for the parallel engine (index = machine;
     *  a retransmit records into its source machine's shard). */
    void
    setLatencySinks(std::vector<LatencyStats *> sinks)
    {
        latSinks_ = std::move(sinks);
    }
    /** @} */

    /** @{ Parallel simulation engine (sim/pdes.hh).  When attached,
     *  every event this layer schedules is routed to the wheel of
     *  the machine that must execute it, and per-machine state
     *  (channel reservations, counters, in-flight slots) shards so
     *  worker threads never race. */
    void attachEngine(ParallelEngine *engine);

    bool engineActive() const { return engine_ != nullptr; }

    /** Minimum ticks any cross-machine effect needs: the remote-link
     *  send overhead + header-only transfer + wire latency.  The
     *  conservative window width. */
    Tick minRemoteLookahead() const;
    /** @} */

  private:
    /** Park @p msg in a recycled slot of @p pool (the destination
     *  machine's shard) until its delivery event. */
    std::uint32_t parkMessage(int pool, Message &&msg);

    /** Run by the delivery event: free the slot, hand over the
     *  message (sequenced messages detour through the reliability
     *  sublayer's receiver first). */
    void deliverSlot(int pool, std::uint32_t slot);

    /** Schedule @p cb at @p when on @p machine's wheel (the event
     *  queue in serial mode, where machine is ignored). */
    void scheduleAt(int machine, Tick when, EventQueue::Callback cb);

    /** Machine of the calling execution context (0 in serial mode). */
    int curMachine() const;

    /** Counter shard of the calling context's machine. */
    NetworkCounts &shard();

    /** RetryDelay sink of the calling context's machine (or null). */
    LatencyStats *latSinkShard();

    /** @{ Transmission internals shared with the reliability
     *  sublayer (which issues retransmissions and fabric duplicates
     *  outside the logical send path). */
    friend class Reliability;

    /** Serialize on the pair channel (and machine link for remote
     *  traffic) and return the modeled arrival tick. */
    Tick reserveChannel(const Message &msg, Tick send_time);

    /** Stamp times, emit the flow trace, park, and schedule the
     *  delivery event. */
    void scheduleArrival(Message &&msg, Tick send_time, Tick arrival);

    /** Hand an in-order message to the deliver callback (used by the
     *  reliability receiver, including for resequenced releases). */
    void
    deliverUp(Message &&m)
    {
        deliver_(std::move(m));
    }
    /** @} */

    EventQueue &events_;
    Topology topo_;
    NetworkParams params_;
    Deliver deliver_;

    /** Earliest time each directed pair channel is free.  Sparse:
     *  a channel materializes (free since tick 0) on first use, so
     *  the table scales with the pairs that actually talk, not with
     *  P^2.  Sharded by source machine under the parallel engine
     *  (every reservation runs on the sender's worker); one shard in
     *  serial mode. */
    std::vector<PairMap<Tick>> pairFreeShards_;
    /** Earliest time each machine's outbound Memory Channel link is
     *  free (remote messages only; only the owning machine's worker
     *  touches its entry). */
    std::vector<Tick> linkFree_;

    /** In-flight messages, indexed by the slot captured in their
     *  delivery closures.  Slots are recycled via freeSlots; the
     *  vectors grow to the peak in-flight count and stay there.
     *  Sharded by destination machine under the parallel engine;
     *  park runs on the sender's worker and delivery on the
     *  receiver's, so shard access locks mu when the engine is
     *  attached (never otherwise). */
    struct SlotPool
    {
        std::vector<Message> pending;
        std::vector<std::uint32_t> freeSlots;
        std::mutex mu;
    };
    std::vector<std::unique_ptr<SlotPool>> slotPools_;

    /** Per-machine counter shards (one shard in serial mode);
     *  counts() sums them on demand into agg_. */
    std::vector<NetworkCounts> countShards_;
    mutable NetworkCounts agg_;

    /** Present only while fault injection is configured. */
    std::unique_ptr<Reliability> rel_;
    std::vector<LatencyStats *> latSinks_;
    ParallelEngine *engine_ = nullptr;
};

} // namespace shasta

#endif // SHASTA_NET_NETWORK_HH
