#include "net/payload.hh"

#include <cassert>

namespace shasta
{
namespace
{

/**
 * Free lists of power-of-two chunks, 128 bytes .. 1 MB.  Class i
 * holds chunks of 128 << i bytes.  Thread-local: a Runtime and all
 * its payloads live on one thread (messages sit in event-queue
 * closures and mailboxes, never crossing Runtimes), and the sweep
 * runner drives independent Runtimes on separate worker threads, so
 * per-thread pools need no locking.  Chunks still cached when a
 * worker thread exits are returned to the heap by the destructor.
 */
constexpr std::uint32_t kMinChunk = 128;
constexpr int kNumClasses = 14; // 128 << 13 = 1 MB

struct ChunkPool
{
    /** Singly linked free lists threaded through the chunks. */
    std::uint8_t *freeHead[kNumClasses] = {};
    std::uint64_t heapAllocs = 0;
    std::uint64_t poolReuses = 0;
    std::uint64_t chunksFree = 0;

    ~ChunkPool()
    {
        for (auto *&head : freeHead) {
            while (head) {
                std::uint8_t *next;
                std::memcpy(&next, head, sizeof(std::uint8_t *));
                delete[] head;
                head = next;
            }
        }
    }
};

ChunkPool &
pool()
{
    thread_local ChunkPool p;
    return p;
}

int
classFor(std::uint32_t n)
{
    int cls = 0;
    std::uint32_t cap = kMinChunk;
    while (cap < n) {
        cap <<= 1;
        ++cls;
    }
    assert(cls < kNumClasses && "payload larger than max pool class");
    return cls;
}

std::uint32_t
classBytes(int cls)
{
    return kMinChunk << cls;
}

std::uint8_t *
acquireChunk(int cls)
{
    ChunkPool &p = pool();
    if (std::uint8_t *head = p.freeHead[cls]) {
        std::memcpy(&p.freeHead[cls], head, sizeof(std::uint8_t *));
        ++p.poolReuses;
        --p.chunksFree;
        return head;
    }
    ++p.heapAllocs;
    return new std::uint8_t[classBytes(cls)];
}

void
releaseChunk(std::uint8_t *chunk, int cls)
{
    ChunkPool &p = pool();
    std::memcpy(chunk, &p.freeHead[cls], sizeof(std::uint8_t *));
    p.freeHead[cls] = chunk;
    ++p.chunksFree;
}

} // namespace

void
Payload::reserve(std::uint32_t n)
{
    if (n <= cap_)
        return;
    const int cls = classFor(n);
    std::uint8_t *chunk = acquireChunk(cls);
    std::memcpy(chunk, data(), size_);
    release();
    chunk_ = chunk;
    cap_ = classBytes(cls);
}

void
Payload::resize(std::uint32_t n)
{
    reserve(n);
    if (n > size_)
        std::memset(data() + size_, 0, n - size_);
    size_ = n;
}

void
Payload::assign(const std::uint8_t *src, std::uint32_t n)
{
    reserve(n);
    std::memcpy(data(), src, n);
    size_ = n;
}

void
Payload::release()
{
    if (!isInline())
        releaseChunk(chunk_, classFor(cap_));
}

Payload::PoolStats
Payload::poolStats()
{
    const ChunkPool &p = pool();
    return PoolStats{p.heapAllocs, p.poolReuses, p.chunksFree};
}

void
Payload::trimPool()
{
    ChunkPool &p = pool();
    for (int cls = 0; cls < kNumClasses; ++cls) {
        std::uint8_t *head = p.freeHead[cls];
        while (head) {
            std::uint8_t *next;
            std::memcpy(&next, head, sizeof(std::uint8_t *));
            delete[] head;
            --p.chunksFree;
            head = next;
        }
        p.freeHead[cls] = nullptr;
    }
}

} // namespace shasta
