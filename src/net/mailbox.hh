/**
 * @file
 * Per-processor incoming message queue.
 *
 * Shasta services messages by polling: a single cachable flag is
 * tested at loop backedges and while the protocol waits for replies
 * (Section 2.1).  The mailbox models the per-processor receive side:
 * delivery events append messages; the owning processor drains them
 * at its poll points.
 *
 * Storage is a growable ring of recycled Message slots — it expands
 * to the peak queue depth and never shrinks or reallocates after
 * that, so the steady-state push/pop cycle is allocation-free (a
 * deque would churn block allocations as the ring walks).
 */

#ifndef SHASTA_NET_MAILBOX_HH
#define SHASTA_NET_MAILBOX_HH

#include <cstdint>
#include <vector>

#include "net/message.hh"

namespace shasta
{

/**
 * FIFO of delivered-but-unhandled messages for one processor.
 */
class Mailbox
{
  public:
    /** True if a poll would find work (the "cachable flag"). */
    bool hasMail() const { return count_ != 0; }

    std::size_t size() const { return count_; }

    /** Append a delivered message (called from delivery events). */
    void push(Message &&m);

    /** Remove and return the oldest message.  hasMail() must be true. */
    Message pop();

    /** Arrival time of the oldest message.  hasMail() must be true. */
    Tick frontArrival() const;

    /** Highest queue depth ever observed (for reporting). */
    std::size_t highWater() const { return highWater_; }

  private:
    /** Double the ring, re-linearizing the queued messages. */
    void grow();

    std::vector<Message> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t highWater_ = 0;
};

} // namespace shasta

#endif // SHASTA_NET_MAILBOX_HH
