/**
 * @file
 * Pooled message payload buffer.
 *
 * Every data-bearing protocol message snapshots a block's bytes at
 * send time (the sender's copy may be overwritten — e.g. with the
 * invalid flag — before delivery).  With std::vector that snapshot
 * was a heap allocation per message, on the hottest path of the whole
 * simulator.  Payload removes it:
 *
 *  - payloads up to kInlineCapacity bytes (one default line) live
 *    inline in the message;
 *  - larger payloads borrow a chunk from a process-wide free list of
 *    power-of-two size classes, returned on destruction, so the
 *    steady state recycles a bounded set of chunks and never calls
 *    operator new.
 *
 * The simulator is single-threaded, so the pool needs no locking.
 */

#ifndef SHASTA_NET_PAYLOAD_HH
#define SHASTA_NET_PAYLOAD_HH

#include <cstdint>
#include <cstring>

namespace shasta
{

class Payload
{
  public:
    /** Largest payload stored inline (the default line size). */
    static constexpr std::uint32_t kInlineCapacity = 64;

    Payload() = default;

    Payload(const Payload &o) { assign(o.data(), o.size_); }

    Payload &
    operator=(const Payload &o)
    {
        if (this != &o)
            assign(o.data(), o.size_);
        return *this;
    }

    Payload(Payload &&o) noexcept
        : size_(o.size_), cap_(o.cap_)
    {
        if (isInline())
            std::memcpy(inline_, o.inline_, size_);
        else
            chunk_ = o.chunk_;
        o.size_ = 0;
        o.cap_ = kInlineCapacity;
    }

    Payload &
    operator=(Payload &&o) noexcept
    {
        if (this != &o) {
            release();
            size_ = o.size_;
            cap_ = o.cap_;
            if (isInline())
                std::memcpy(inline_, o.inline_, size_);
            else
                chunk_ = o.chunk_;
            o.size_ = 0;
            o.cap_ = kInlineCapacity;
        }
        return *this;
    }

    ~Payload() { release(); }

    std::uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    std::uint8_t *
    data()
    {
        return isInline() ? inline_ : chunk_;
    }

    const std::uint8_t *
    data() const
    {
        return isInline() ? inline_ : chunk_;
    }

    /**
     * Set the size to @p n bytes.  Newly exposed bytes are
     * zero-filled; bytes kept from the old size are preserved.
     */
    void resize(std::uint32_t n);

    /** Set the size to @p n bytes without initializing the newly
     *  exposed bytes (for callers that overwrite them immediately,
     *  e.g. a memory copy-out). */
    void
    resizeForOverwrite(std::uint32_t n)
    {
        reserve(n);
        size_ = n;
    }

    /** Replace the contents with a copy of [src, src+n). */
    void assign(const std::uint8_t *src, std::uint32_t n);

    /** Drop the contents, returning any pooled chunk. */
    void
    clear()
    {
        release();
        size_ = 0;
        cap_ = kInlineCapacity;
    }

    /** @{ Pool observability (allocation tests and benchmarks). */
    struct PoolStats
    {
        /** Chunks obtained with operator new (pool misses). */
        std::uint64_t heapAllocs = 0;
        /** Chunks served from a free list (pool hits). */
        std::uint64_t poolReuses = 0;
        /** Chunks currently parked on free lists. */
        std::uint64_t chunksFree = 0;
    };

    static PoolStats poolStats();

    /** Free every pooled chunk (leak-checker hygiene in tests). */
    static void trimPool();
    /** @} */

  private:
    bool isInline() const { return cap_ <= kInlineCapacity; }

    /** Reserve storage for @p n bytes without changing size. */
    void reserve(std::uint32_t n);

    void release();

    std::uint32_t size_ = 0;
    /** Capacity of the active storage; kInlineCapacity selects the
     *  inline buffer, anything larger is a pooled chunk. */
    std::uint32_t cap_ = kInlineCapacity;
    union {
        std::uint8_t inline_[kInlineCapacity];
        std::uint8_t *chunk_;
    };
};

} // namespace shasta

#endif // SHASTA_NET_PAYLOAD_HH
