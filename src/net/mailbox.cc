#include "net/mailbox.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace shasta
{

void
Mailbox::grow()
{
    const std::size_t old_cap = slots_.size();
    std::vector<Message> bigger(std::max<std::size_t>(8, old_cap * 2));
    for (std::size_t i = 0; i < count_; ++i)
        bigger[i] = std::move(slots_[(head_ + i) % old_cap]);
    slots_ = std::move(bigger);
    head_ = 0;
}

void
Mailbox::push(Message &&m)
{
    if (count_ == slots_.size())
        grow();
    slots_[(head_ + count_) % slots_.size()] = std::move(m);
    ++count_;
    highWater_ = std::max(highWater_, count_);
}

Message
Mailbox::pop()
{
    assert(count_ != 0);
    Message m = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return m;
}

Tick
Mailbox::frontArrival() const
{
    assert(count_ != 0);
    return slots_[head_].arriveTime;
}

} // namespace shasta
