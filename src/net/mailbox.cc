#include "net/mailbox.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace shasta
{

void
Mailbox::push(Message &&m)
{
    queue_.push_back(std::move(m));
    highWater_ = std::max(highWater_, queue_.size());
}

Message
Mailbox::pop()
{
    assert(!queue_.empty());
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
}

Tick
Mailbox::frontArrival() const
{
    assert(!queue_.empty());
    return queue_.front().arriveTime;
}

} // namespace shasta
