/**
 * @file
 * Node-level epochs for eager release consistency.
 *
 * Shasta lets a processor use data returned by a read-exclusive
 * before all invalidation acknowledgements arrive.  On an SMP node,
 * *other* processors may also touch that data (even without entering
 * the protocol, via the invalid-flag load), so a releasing processor
 * cannot simply wait for its own stores.  SMP-Shasta uses an
 * epoch-based scheme like SoftFLASH (Section 3.4.2): each release
 * starts a new epoch on the node and waits until every write
 * transaction the node issued in *previous* epochs has completed.
 */

#ifndef SHASTA_PROTO_EPOCH_HH
#define SHASTA_PROTO_EPOCH_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/inplace_fn.hh"

namespace shasta
{

/**
 * Tracks outstanding write transactions per epoch for one node.
 */
class EpochTracker
{
  public:
    /** Release continuations are stored inline (every release of a
     *  busy node would otherwise heap-allocate a closure). */
    using Ready = InplaceFn<void()>;

    /** Epoch that a write issued right now would belong to. */
    std::uint64_t current() const { return current_; }

    /** Record the start of a write transaction; returns its epoch. */
    std::uint64_t startWrite();

    /** Record completion (data + all acks) of a write transaction. */
    void completeWrite(std::uint64_t epoch);

    /** Writes still outstanding in any epoch. */
    int outstanding() const { return totalOutstanding_; }

    /**
     * Perform a release: start a new epoch and invoke @p ready once
     * all writes from epochs before the new one have completed
     * (immediately if already quiescent).
     */
    void release(Ready ready);

    /** True if no write from an epoch <= @p up_to is outstanding. */
    bool quiescentThrough(std::uint64_t up_to) const;

  private:
    void checkWaiters();

    std::uint64_t current_ = 0;
    int totalOutstanding_ = 0;
    /** epoch -> incomplete write transactions. */
    std::map<std::uint64_t, int> perEpoch_;

    struct ReleaseWaiter
    {
        std::uint64_t upTo;
        Ready ready;
    };

    std::vector<ReleaseWaiter> waiters_;
};

} // namespace shasta

#endif // SHASTA_PROTO_EPOCH_HH
