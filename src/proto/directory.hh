/**
 * @file
 * Directory state kept at each home processor.
 *
 * A home processor is associated with each virtual page of shared
 * data; the directory entry for a block records the current *owner*
 * (the last processor that held an exclusive copy) and a full bit
 * vector of sharers (Section 2.1).  The home is only aware of the one
 * processor per node that requested the data, which keeps protocol
 * requests for a block serialized at one processor per node
 * (Section 3.4.2).
 *
 * Transactions are serialized per block at the home: while a
 * transaction is in flight the entry is *busy* and later requests
 * queue behind it (see DESIGN.md for how this relates to the real
 * Shasta protocol).
 */

#ifndef SHASTA_PROTO_DIRECTORY_HH
#define SHASTA_PROTO_DIRECTORY_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mem/shared_heap.hh"
#include "net/message.hh"
#include "net/topology.hh"

namespace shasta
{

/** Directory entry for one block. */
struct DirEntry
{
    /** Last processor to hold the block exclusively. */
    ProcId owner = -1;
    /** Bit per processor: nodes holding a copy, via the one
     *  representative processor per node known to the home. */
    std::uint32_t sharers = 0;
    /** A transaction is in flight; queue new requests. */
    bool busy = false;
    /** Requests waiting for the entry to become free. */
    std::deque<Message> waiting;

    bool
    isSharer(ProcId p) const
    {
        return (sharers >> p) & 1u;
    }

    void addSharer(ProcId p) { sharers |= (1u << p); }

    void removeSharer(ProcId p) { sharers &= ~(1u << p); }

    void clearSharers() { sharers = 0; }

    /** All sharers except @p except (pass -1 to keep everyone). */
    std::vector<ProcId>
    sharerList(ProcId except = -1) const
    {
        std::vector<ProcId> out;
        for (int p = 0; p < 32; ++p) {
            if (((sharers >> p) & 1u) && p != except)
                out.push_back(p);
        }
        return out;
    }

    int
    sharerCount() const
    {
        return __builtin_popcount(sharers);
    }
};

/**
 * The directory fragment homed at one processor.
 *
 * Entries are created lazily; a block's initial owner and sole sharer
 * is its home processor (the home node starts with an exclusive copy
 * of freshly allocated, zero-filled memory).
 */
class HomeDirectory
{
  public:
    explicit HomeDirectory(ProcId home) : home_(home) {}

    ProcId home() const { return home_; }

    /** Entry for the block starting at @p block_first (created lazily
     *  with the home as initial owner). */
    DirEntry &
    entry(LineIdx block_first)
    {
        auto [it, inserted] = entries_.try_emplace(block_first);
        if (inserted) {
            it->second.owner = home_;
            it->second.addSharer(home_);
        }
        return it->second;
    }

    bool
    known(LineIdx block_first) const
    {
        return entries_.count(block_first) > 0;
    }

    std::size_t size() const { return entries_.size(); }

    /** Iteration for diagnostics. */
    const std::unordered_map<LineIdx, DirEntry> &
    entriesMap() const
    {
        return entries_;
    }

  private:
    ProcId home_;
    std::unordered_map<LineIdx, DirEntry> entries_;
};

} // namespace shasta

#endif // SHASTA_PROTO_DIRECTORY_HH
