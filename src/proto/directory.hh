/**
 * @file
 * Directory state kept at each home processor.
 *
 * A home processor is associated with each virtual page of shared
 * data; the directory entry for a block records the current *owner*
 * (the last processor that held an exclusive copy) and a sharer set
 * (Section 2.1).  The home is only aware of the one processor per
 * node that requested the data, which keeps protocol requests for a
 * block serialized at one processor per node (Section 3.4.2).
 *
 * Transactions are serialized per block at the home: while a
 * transaction is in flight the entry is *busy* and later requests
 * queue behind it (see DESIGN.md for how this relates to the real
 * Shasta protocol).
 *
 * Scaling (PR 6):
 *
 *  - The sharer set is no longer a single 32-bit word (undefined
 *    behavior the moment a processor id reached 32).  SharerSet keeps
 *    one inline word for processors 0..63 — the paper-scale fast path
 *    never allocates — and lazily grows a word vector for larger
 *    clusters, up to the 1024-processor sweeps.
 *  - Each home's directory is split into K independently-locked
 *    shards selected by a hash of the block index.  Entry lookup
 *    locks only one shard, and each shard tracks its own occupancy
 *    and waiting-queue depth, exported through the stats JSON so a
 *    scaling run can show where directory pressure concentrates.
 *
 * Determinism contract: sharding is pure bookkeeping.  Requests are
 * still serialized per *block* by the busy flag and each entry's own
 * waiting deque (never merged across blocks or shards), so replay
 * order — and therefore every golden schedule — is independent of
 * the shard count.
 */

#ifndef SHASTA_PROTO_DIRECTORY_HH
#define SHASTA_PROTO_DIRECTORY_HH

#include <cassert>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mem/shared_heap.hh"
#include "net/message.hh"
#include "net/topology.hh"
#include "proto/migratory.hh"

namespace shasta
{

/**
 * Set of sharer processors, one bit per ProcId.
 *
 * Word 0 (processors 0..63) is inline; higher words materialize on
 * first use so small runs never touch the heap and large runs pay
 * only for the ids they actually set.  clear() zeroes words without
 * releasing them, keeping the steady state allocation-free.
 */
class SharerSet
{
  public:
    bool
    test(ProcId p) const
    {
        assert(p >= 0);
        const std::size_t w = static_cast<std::size_t>(p) / 64;
        const std::uint64_t bit = 1ull
                                  << (static_cast<unsigned>(p) % 64);
        if (w == 0)
            return (low_ & bit) != 0;
        return w - 1 < high_.size() && (high_[w - 1] & bit) != 0;
    }

    void
    set(ProcId p)
    {
        assert(p >= 0);
        const std::size_t w = static_cast<std::size_t>(p) / 64;
        const std::uint64_t bit = 1ull
                                  << (static_cast<unsigned>(p) % 64);
        if (w == 0) {
            low_ |= bit;
            return;
        }
        if (high_.size() < w)
            high_.resize(w, 0);
        high_[w - 1] |= bit;
    }

    void
    reset(ProcId p)
    {
        assert(p >= 0);
        const std::size_t w = static_cast<std::size_t>(p) / 64;
        const std::uint64_t bit = 1ull
                                  << (static_cast<unsigned>(p) % 64);
        if (w == 0)
            low_ &= ~bit;
        else if (w - 1 < high_.size())
            high_[w - 1] &= ~bit;
    }

    void
    clear()
    {
        low_ = 0;
        for (std::uint64_t &w : high_)
            w = 0;
    }

    int
    count() const
    {
        int n = __builtin_popcountll(low_);
        for (const std::uint64_t w : high_)
            n += __builtin_popcountll(w);
        return n;
    }

    /** Visit set bits in ascending ProcId order. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (std::uint64_t bits = low_; bits != 0;
             bits &= bits - 1) {
            fn(static_cast<ProcId>(__builtin_ctzll(bits)));
        }
        for (std::size_t w = 0; w < high_.size(); ++w) {
            for (std::uint64_t bits = high_[w]; bits != 0;
                 bits &= bits - 1) {
                fn(static_cast<ProcId>((w + 1) * 64 +
                                       static_cast<std::size_t>(
                                           __builtin_ctzll(bits))));
            }
        }
    }

  private:
    std::uint64_t low_ = 0;
    /** Words for processors 64.., grown lazily. */
    std::vector<std::uint64_t> high_;
};

/** Directory entry for one block. */
struct DirEntry
{
    /** Last processor to hold the block exclusively. */
    ProcId owner = -1;
    /** Nodes holding a copy, via the one representative processor
     *  per node known to the home. */
    SharerSet sharers;
    /** A transaction is in flight; queue new requests. */
    bool busy = false;
    /** Requests waiting for the entry to become free. */
    std::deque<Message> waiting;
    /** Migratory-sharing history (only updated when the opt layer's
     *  `migratory` knob is on, so baseline schedules never touch
     *  it). */
    MigratoryDetector mig;

    bool isSharer(ProcId p) const { return sharers.test(p); }

    void addSharer(ProcId p) { sharers.set(p); }

    void removeSharer(ProcId p) { sharers.reset(p); }

    void clearSharers() { sharers.clear(); }

    /** All sharers except @p except (pass -1 to keep everyone). */
    std::vector<ProcId>
    sharerList(ProcId except = -1) const
    {
        std::vector<ProcId> out;
        sharers.forEach([&](ProcId p) {
            if (p != except)
                out.push_back(p);
        });
        return out;
    }

    int sharerCount() const { return sharers.count(); }
};

/**
 * The directory fragment homed at one processor, split into
 * independently-locked shards.
 *
 * Entries are created lazily; a block's initial owner and sole sharer
 * is its home processor (the home node starts with an exclusive copy
 * of freshly allocated, zero-filled memory).
 *
 * Locking: each shard has its own mutex guarding its hash map;
 * references returned by entry()/find() stay valid after the lock is
 * released (unordered_map never relocates elements), and per-entry
 * mutation is serialized by the simulation itself.  forEachEntry()
 * locks one shard at a time — callbacks must not reenter the same
 * directory's locking methods.
 */
class HomeDirectory
{
  public:
    /** Occupancy and queue-depth counters, kept per shard. */
    struct ShardStats
    {
        /** entry() calls routed to this shard. */
        std::uint64_t lookups = 0;
        /** Requests currently parked on this shard's entries. */
        std::uint64_t queuedNow = 0;
        /** High-water mark of queuedNow. */
        std::uint64_t peakQueued = 0;
        /** Total requests ever parked (throughput of the busy
         *  serialization point). */
        std::uint64_t queuedTotal = 0;
    };

    explicit HomeDirectory(ProcId home, int shards = 8)
        : home_(home)
    {
        assert(shards >= 1 && (shards & (shards - 1)) == 0 &&
               "shard count must be a power of two");
        bits_ = 0;
        while ((1 << bits_) < shards)
            ++bits_;
        for (int k = 0; k < shards; ++k)
            shards_.emplace_back();
    }

    ProcId home() const { return home_; }

    /** Entry for the block starting at @p block_first (created lazily
     *  with the home as initial owner).  The reference outlives the
     *  internal shard lock. */
    DirEntry &
    entry(LineIdx block_first)
    {
        Shard &sh = shards_[shardOf(block_first)];
        const std::lock_guard<std::mutex> lock(sh.mu);
        ++sh.stats.lookups;
        auto [it, inserted] = sh.entries.try_emplace(block_first);
        if (inserted) {
            it->second.owner = home_;
            it->second.addSharer(home_);
        }
        return it->second;
    }

    bool
    known(LineIdx block_first) const
    {
        const Shard &sh = shards_[shardOf(block_first)];
        const std::lock_guard<std::mutex> lock(sh.mu);
        return sh.entries.count(block_first) > 0;
    }

    /** Lookup without materializing; nullptr when never touched. */
    const DirEntry *
    find(LineIdx block_first) const
    {
        const Shard &sh = shards_[shardOf(block_first)];
        const std::lock_guard<std::mutex> lock(sh.mu);
        const auto it = sh.entries.find(block_first);
        return it == sh.entries.end() ? nullptr : &it->second;
    }

    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const Shard &sh : shards_) {
            const std::lock_guard<std::mutex> lock(sh.mu);
            n += sh.entries.size();
        }
        return n;
    }

    /** Visit every entry (diagnostics; shard-at-a-time locking, so
     *  @p fn must not call back into this directory). */
    template <typename Fn>
    void
    forEachEntry(Fn fn) const
    {
        for (const Shard &sh : shards_) {
            const std::lock_guard<std::mutex> lock(sh.mu);
            for (const auto &[line, e] : sh.entries)
                fn(line, e);
        }
    }

    /** Record a request parking on @p block_first's waiting queue.
     *  @return true when this push set a new shard high-water mark. */
    bool
    noteQueued(LineIdx block_first)
    {
        Shard &sh = shards_[shardOf(block_first)];
        const std::lock_guard<std::mutex> lock(sh.mu);
        ++sh.stats.queuedNow;
        ++sh.stats.queuedTotal;
        if (sh.stats.queuedNow > sh.stats.peakQueued) {
            sh.stats.peakQueued = sh.stats.queuedNow;
            return true;
        }
        return false;
    }

    /** Record a parked request leaving @p block_first's queue. */
    void
    noteDequeued(LineIdx block_first)
    {
        Shard &sh = shards_[shardOf(block_first)];
        const std::lock_guard<std::mutex> lock(sh.mu);
        assert(sh.stats.queuedNow > 0);
        --sh.stats.queuedNow;
    }

    int shardCount() const { return 1 << bits_; }

    std::size_t
    shardSize(int k) const
    {
        const Shard &sh = shards_[static_cast<std::size_t>(k)];
        const std::lock_guard<std::mutex> lock(sh.mu);
        return sh.entries.size();
    }

    ShardStats
    shardStats(int k) const
    {
        const Shard &sh = shards_[static_cast<std::size_t>(k)];
        const std::lock_guard<std::mutex> lock(sh.mu);
        return sh.stats;
    }

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<LineIdx, DirEntry> entries;
        ShardStats stats;
    };

    /** Fibonacci-hash the block index into a shard.  Consecutive
     *  blocks (the common allocation pattern) spread across shards
     *  instead of marching through one. */
    std::size_t
    shardOf(LineIdx line) const
    {
        if (bits_ == 0)
            return 0;
        return (line * 0x9E3779B9u) >> (32 - bits_);
    }

    ProcId home_;
    int bits_ = 0;
    /** deque: Shard holds a mutex (immovable); emplace_back never
     *  relocates earlier shards. */
    std::deque<Shard> shards_;
};

} // namespace shasta

#endif // SHASTA_PROTO_DIRECTORY_HH
