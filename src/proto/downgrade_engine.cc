#include "proto/downgrade_engine.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "mem/granularity_advisor.hh"
#include "obs/trace_json.hh"
#include "proto/home_agent.hh"
#include "proto/requester_agent.hh"
#include "sim/trace.hh"

namespace shasta
{

void
DowngradeEngine::applyInvalidFill(NodeId node, LineIdx first)
{
    auto &tab = *c_.tables[node];
    if (!c_.cfg.useInvalidFlag) {
        // Without the flag optimization no handler compares memory
        // against the flag, so the fill is unnecessary (Section 3.2
        // notes such protocols avoid the write entirely).
        return;
    }
    if (tab.marked(first)) {
        // A batch on this node is mid-flight: defer the fill so the
        // batched loads still read pre-invalidation data
        // (Section 3.4.4).
        tab.deferFlagFill(first);
        return;
    }
    const BlockInfo b = c_.blockOf(first);
    const Addr base = c_.blockAddr(b);
    const int bytes = c_.blockBytes(b);
    NodeMemory &mem = *c_.memories[node];
    MissEntry *e = c_.missTables[node]->find(first);
    if (e && e->dirtyAny) {
        // Skip longwords holding locally stored (pending) data; they
        // carry values newer than the invalidation.
        for (int off = 0; off < bytes; off += 4) {
            bool dirty = false;
            for (int i = 0; i < 4; ++i)
                dirty = dirty || e->dirty[static_cast<std::size_t>(
                                      off + i)];
            if (!dirty) {
                mem.write<std::uint32_t>(base +
                                             static_cast<Addr>(off),
                                         kInvalidFlag);
            }
        }
    } else {
        mem.fillInvalidFlag(base, static_cast<std::size_t>(bytes));
    }
}

void
DowngradeEngine::downgradeNode(Proc &p, LineIdx first,
                               bool to_invalid,
                               DowngradeAction action)
{
    const NodeId node = p.node;
    const BlockInfo b = c_.blockOf(first);
    auto &tab = *c_.tables[node];

    // At most procsOnNode targets; 32 bounds the whole machine.
    int targets[32];
    int n_targets = 0;
    if (c_.cfg.broadcastDowngrades) {
        // SoftFLASH-style: shoot down every other local processor on
        // every downgrade transition, ignoring the private tables.
        for (int t = 0; t < tab.procsOnNode(); ++t) {
            if (t != p.local)
                targets[n_targets++] = t;
        }
    } else {
        n_targets =
            tab.downgradeTargets(first, to_invalid, p.local, targets);
    }
    if (n_targets > 0 && c_.cfg.opt.elide && c_.cfg.useInvalidFlag) {
        // Elision (opt.elide): on a correctly-annotated private or
        // read-only-after-barrier line, a mid-run downgrade can only
        // be setup residue or the result of a violated annotation --
        // in steady state nobody writes the line, so nobody needs to
        // lose rights.  The colocated targets hold at most read
        // rights (read-only lines have no in-run writer; private
        // lines have no other toucher at all), and the invalid-flag
        // fill below still lands in the shared node memory, so a
        // flag-checked load by a *violating* reader false-misses and
        // recovers rather than silently seeing stale data.
        // Single-writer regions are deliberately NOT skipped: their
        // readers are legitimate and rely on downgrade messages to
        // drop stale private rights (the racecheck scenarios
        // demonstrate the lost update when a naive skip is forced).
        // A wrong annotation is caught by the audit verifier at
        // access time, never silently.
        const RegionAnnot k = c_.heap.annotationOf(first);
        if (k == RegionAnnot::Private ||
            k == RegionAnnot::ReadOnlyAfterBarrier) {
            if (c_.measuring) {
                c_.ctr(p.node).elideDowngradesSkipped +=
                    static_cast<std::uint64_t>(n_targets);
            }
            n_targets = 0;
        }
    }
    tab.downgradePriv(first, b.numLines, p.local, to_invalid);
    // Only invalidating downgrades are write activity for the
    // adaptive profiler: an exclusive-to-shared transition is a
    // *read* finding home-exclusive residue (every cold line starts
    // that way), and the write that created the exclusive state was
    // already attributed as the writer's own miss.  Counting these
    // would make read-only regions look write-shared and block the
    // grow verdict forever.
    if (c_.advisor && to_invalid)
        c_.advisor->noteDowngrade(first);
    if (c_.measuring) {
        const std::size_t bucket = std::min<std::size_t>(
            static_cast<std::size_t>(n_targets), 3);
        ++c_.ctr(p.node).downgradeOps[bucket];
    }

    SHASTA_TRACE_EVENT(trace::Flag::Downgrade, p.now, p.id,
                       "downgrade line %u to %s: %d message(s)",
                       static_cast<unsigned>(first),
                       to_invalid ? "Invalid" : "Shared", n_targets);
    if (obs::traceJsonEnabled()) {
        obs::emitInstant(p.id, p.now, "downgrade-fanout", "downgrade",
                         n_targets);
    }
    if (n_targets == 0) {
        completeDowngrade(p, first, to_invalid, action);
        return;
    }

    MissEntry &e = c_.missTables[node]->ensure(first, b.numLines,
                                               c_.blockBytes(b));
    assert(e.downgradesLeft == 0 && "overlapping downgrades");
    e.downgradesLeft = n_targets;
    e.downgradeStart = p.now;
    if (obs::traceJsonEnabled()) {
        obs::emitAsyncBegin(
            obs::spanId(obs::SpanKind::Downgrade,
                        static_cast<std::uint64_t>(node), first),
            p.id, p.now, "downgrade", "downgrade");
    }
    const LState s = tab.shared(first);
    if (!isPendingMiss(s)) {
        // Pure downgrade of a stable block: remember the prior state
        // so accesses during the window can be serviced from it.
        e.prior = s;
        tab.setShared(first, b.numLines,
                      to_invalid ? LState::PendDownInvalid
                                 : LState::PendDownShared);
    }
    e.savedAction = action;
    e.savedToInvalid = to_invalid;
    const ProcId base_proc = c_.topo.firstProcOf(node);
    for (int i = 0; i < n_targets; ++i) {
        c_.sendMsg(p, MsgType::Downgrade, base_proc + targets[i],
                   first, p.id, to_invalid ? 1 : 0);
    }
}

void
DowngradeEngine::completeDowngrade(Proc &p, LineIdx first,
                                   bool to_invalid,
                                   const DowngradeAction &action)
{
    const NodeId node = p.node;
    const BlockInfo b = c_.blockOf(first);
    auto &tab = *c_.tables[node];

    // Snapshot the data before the invalid flag clobbers it; the
    // snapshot includes every local store serviced during the window,
    // which are ordered before the remote request.  Ack-only actions
    // carry no data, so they skip the copy.
    Payload snapshot;
    if (action.needsData()) {
        const std::uint32_t bytes =
            static_cast<std::uint32_t>(c_.blockBytes(b));
        snapshot.resizeForOverwrite(bytes);
        c_.memories[node]->copyOut(c_.blockAddr(b), bytes,
                                   snapshot.data());
    }

    if (to_invalid)
        applyInvalidFill(node, first);

    const LState s = tab.shared(first);
    if (!isPendingMiss(s)) {
        tab.setShared(first, b.numLines,
                      to_invalid ? LState::Invalid : LState::Shared);
    }

    runAction(p, first, action, std::move(snapshot));

    // runAction can erase the entry via a synchronous self-send, so
    // re-find it rather than holding a reference across the call.
    MissEntry *e = c_.missTables[node]->find(first);
    if (e) {
        c_.resumeWaiters(*e, false, true, p.now);
        std::deque<Message> queued;
        queued.swap(e->queuedRemote);
        for (auto &qm : queued) {
            const ProcId dst = qm.dst;
            c_.reinject(dst, std::move(qm));
        }
        c_.maybeErase(node, first);
    }
}

void
DowngradeEngine::runAction(Proc &p, LineIdx first,
                           const DowngradeAction &action,
                           Payload &&snapshot)
{
    const ProcId req = action.req;
    switch (action.kind) {
      case DowngradeAction::Kind::HomeReadServe:
        c_.sendMsg(p, MsgType::ReadReply, req, first, req, 0,
                   std::move(snapshot));
        c_.home->unbusyAndPump(p, first);
        return;

      case DowngradeAction::Kind::HomeReadExReply:
        c_.sendMsg(p, MsgType::ReadExReply, req, first, req,
                   action.acks, std::move(snapshot));
        return;

      case DowngradeAction::Kind::FwdReadServe: {
        Payload copy = snapshot;
        c_.sendMsg(p, MsgType::ReadReply, req, first, req, 0,
                   std::move(snapshot));
        c_.sendMsg(p, MsgType::SharingWriteback, c_.homeProc(first),
                   first, req, 0, std::move(copy));
        return;
      }

      case DowngradeAction::Kind::FwdReadExReply:
        if (action.clearPrior) {
            // The node's own in-flight upgrade loses its Shared
            // copy; the home will convert it to a read-exclusive
            // (Section 3.4.2).
            MissEntry *e = c_.missTables[p.node]->find(first);
            assert(e);
            e->prior = LState::Invalid;
        }
        c_.sendMsg(p, MsgType::ReadExReply, req, first, req,
                   action.acks, std::move(snapshot));
        return;

      case DowngradeAction::Kind::ReadMigReply:
        if (action.clearPrior) {
            MissEntry *e = c_.missTables[p.node]->find(first);
            assert(e);
            e->prior = LState::Invalid;
        }
        c_.sendMsg(p, MsgType::ReadMigReply, req, first, req, 0,
                   std::move(snapshot));
        return;

      case DowngradeAction::Kind::InvalAck:
        if (action.clearPrior) {
            MissEntry *e = c_.missTables[p.node]->find(first);
            assert(e);
            e->prior = LState::Invalid;
            // Parked readers of the old Shared copy no longer have
            // valid data; they re-park as data waiters via retry.
        }
        c_.sendMsg(p, MsgType::InvalAck, req, first, req);
        return;

      case DowngradeAction::Kind::None:
        break;
    }
    assert(false && "downgrade completed without a saved action");
}

void
DowngradeEngine::onDowngrade(Proc &q, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(q, m, first);
    const BlockInfo b = c_.blockOf(first);
    const bool to_invalid = (m.count != 0);

    c_.tables[q.node]->downgradePriv(first, b.numLines, q.local,
                                     to_invalid);
    MissEntry *e = c_.missTables[q.node]->find(first);
    assert(e && e->downgradesLeft > 0 &&
           "downgrade message without an active downgrade");
    if (--e->downgradesLeft == 0) {
        // The last downgrader executes the saved protocol action
        // (Section 3.4.3).
        if (c_.measuring) {
            c_.latOf(q.node).record(LatencyClass::DowngradeService,
                                    q.now - e->downgradeStart);
        }
        if (obs::traceJsonEnabled()) {
            obs::emitAsyncEnd(
                obs::spanId(obs::SpanKind::Downgrade,
                            static_cast<std::uint64_t>(q.node),
                            first),
                q.id, q.now, "downgrade", "downgrade");
        }
        const DowngradeAction act = e->savedAction;
        const bool saved_to_invalid = e->savedToInvalid;
        e->savedAction = DowngradeAction{};
        completeDowngrade(q, first, saved_to_invalid, act);
    }
}

// ---------------------------------------------------------------------
// Downgrade-triggering request handlers
// ---------------------------------------------------------------------

bool
DowngradeEngine::queueIfTransient(Proc &p, LineIdx first, Message &m)
{
    MissEntry *me = c_.missTables[p.node]->find(first);
    if (!me)
        return false;
    if (me->downgradeActive()) {
        if (c_.measuring)
            ++c_.ctr(p.node).queuedDuringDowngrade;
        me->queuedRemote.push_back(std::move(m));
        return true;
    }
    if (me->readIssued ||
        (me->writeIssued && !me->dataArrived &&
         me->prior == LState::Invalid)) {
        // The node's data reply is still in flight and may have been
        // overtaken by this request (replies and invalidations travel
        // on different channels); hold it until the data lands.
        me->queuedRemote.push_back(std::move(m));
        return true;
    }
    return false;
}

void
DowngradeEngine::onFwdReadReq(Proc &owner, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(owner, m, first);
    const BlockInfo b = c_.blockOf(first);
    const NodeId on = owner.node;
    const LState s = c_.tables[on]->shared(first);
    const ProcId req = m.requester;
    const ProcId home = c_.homeProc(first);

    if (queueIfTransient(owner, first, m))
        return;

    if (s == LState::Exclusive) {
        downgradeNode(owner, first, false,
                      DowngradeAction{
                          DowngradeAction::Kind::FwdReadServe, false,
                          req, 0});
        return;
    }

    // The owner may legitimately be Shared (the home served reads
    // after this owner's exclusivity was downgraded) or mid-upgrade
    // with a still-valid Shared copy; serve from memory.
    const MissEntry *me = c_.missTables[on]->find(first);
    assert(readableState(s) ||
           (s == LState::PendEx && me &&
            me->prior == LState::Shared));
    (void)me;
    Payload data;
    data.resizeForOverwrite(
        static_cast<std::uint32_t>(c_.blockBytes(b)));
    c_.memories[on]->copyOut(
        c_.blockAddr(b), static_cast<std::size_t>(c_.blockBytes(b)),
        data.data());
    Payload copy = data;
    c_.sendMsg(owner, MsgType::ReadReply, req, first, req, 0,
               std::move(data));
    c_.sendMsg(owner, MsgType::SharingWriteback, home, first, req, 0,
               std::move(copy));
}

void
DowngradeEngine::onFwdReadExReq(Proc &owner, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(owner, m, first);
    const NodeId on = owner.node;
    const ProcId req = m.requester;
    const int acks = m.count;

    if (queueIfTransient(owner, first, m))
        return;

    // The owner usually still holds the block exclusively, but it
    // may have been downgraded to Shared by an intervening read, or
    // be mid-upgrade itself (its request queued behind this one at
    // the home) with a still-valid Shared copy.  In every case the
    // owner's copy is current: invalidate the node and ship the
    // pre-fill snapshot.
    const LState s = c_.tables[on]->shared(first);
    const MissEntry *me = c_.missTables[on]->find(first);
    assert(s == LState::Exclusive || s == LState::Shared ||
           (s == LState::PendEx && me &&
            me->prior == LState::Shared));
    (void)me;
    const bool racing_upgrade = (s == LState::PendEx);
    downgradeNode(owner, first, true,
                  DowngradeAction{
                      DowngradeAction::Kind::FwdReadExReply,
                      racing_upgrade, req, acks});
}

void
DowngradeEngine::onFwdReadMigReq(Proc &owner, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(owner, m, first);
    const NodeId on = owner.node;
    const ProcId req = m.requester;

    if (queueIfTransient(owner, first, m))
        return;

    // The home predicted the reader will write next and granted it
    // ownership while this node was the sole holder (opt.migratory).
    // As with a forwarded read-exclusive, the copy here is current;
    // surrender it entirely so the requester installs Exclusive
    // without a later upgrade round-trip.
    const LState s = c_.tables[on]->shared(first);
    const MissEntry *me = c_.missTables[on]->find(first);
    assert(s == LState::Exclusive || s == LState::Shared ||
           (s == LState::PendEx && me &&
            me->prior == LState::Shared));
    (void)me;
    const bool racing_upgrade = (s == LState::PendEx);
    downgradeNode(owner, first, true,
                  DowngradeAction{DowngradeAction::Kind::ReadMigReply,
                                  racing_upgrade, req, 0});
}

void
DowngradeEngine::onInvalReq(Proc &p, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(p, m, first);
    const NodeId n = p.node;
    const LState s = c_.tables[n]->shared(first);
    const ProcId req = m.requester;

    if (queueIfTransient(p, first, m))
        return;

    if (s == LState::Shared) {
        downgradeNode(p, first, true,
                      DowngradeAction{DowngradeAction::Kind::InvalAck,
                                      false, req, 0});
        return;
    }

    // Invalidation racing a local upgrade that is queued at the home:
    // the node loses its Shared copy; the in-flight upgrade will be
    // converted to a read-exclusive by the home.
    const MissEntry *me = c_.missTables[n]->find(first);
    if (!(s == LState::PendEx && me &&
          me->prior == LState::Shared)) {
        std::fprintf(stderr,
                     "onInvalReq: proc %d node %d line %u state %s "
                     "entry=%p prior=%s rd=%d wW=%d wI=%d dg=%d\n",
                     p.id, p.node, first,
                     std::string(lstateName(s)).c_str(),
                     static_cast<const void *>(me),
                     me ? std::string(lstateName(me->prior)).c_str()
                        : "-",
                     me ? me->readIssued : 0, me ? me->wantWrite : 0,
                     me ? me->writeIssued : 0,
                     me ? me->downgradesLeft : 0);
        std::fflush(stderr);
        assert(false && "unexpected state for incoming invalidation");
    }
    downgradeNode(p, first, true,
                  DowngradeAction{DowngradeAction::Kind::InvalAck,
                                  true, req, 0});
}

} // namespace shasta
