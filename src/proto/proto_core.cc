#include "proto/proto_core.hh"

#include <algorithm>
#include <array>
#include <cassert>

#include "obs/trace_json.hh"
#include "proto/downgrade_engine.hh"
#include "proto/home_agent.hh"
#include "proto/requester_agent.hh"
#include "sim/trace.hh"

namespace shasta
{
namespace
{

/**
 * Static per-type dispatch table.
 *
 * handlerFor's switch is exhaustive and consteval, mirroring
 * msgTypeInfoFor in message.hh: adding a MsgType without routing it
 * to an agent handler fails to compile (flowing off the end of a
 * consteval function is a constant-evaluation error), instead of
 * asserting at runtime on the first message of the new type.
 */
using Handler = void (*)(ProtocolCore &, Proc &, Message &&);

consteval Handler
handlerFor(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.home->onReadReq(p, std::move(m));
        };
      case MsgType::ReadExReq:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.home->onReadExReq(p, std::move(m));
        };
      case MsgType::UpgradeReq:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.home->onUpgradeReq(p, std::move(m));
        };
      case MsgType::FwdReadReq:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.downgrade->onFwdReadReq(p, std::move(m));
        };
      case MsgType::FwdReadExReq:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.downgrade->onFwdReadExReq(p, std::move(m));
        };
      case MsgType::FwdReadMigReq:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.downgrade->onFwdReadMigReq(p, std::move(m));
        };
      case MsgType::InvalReq:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.downgrade->onInvalReq(p, std::move(m));
        };
      case MsgType::InvalAck:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.requester->onInvalAck(p, std::move(m));
        };
      case MsgType::ReadReply:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.requester->onReadReply(p, std::move(m));
        };
      case MsgType::ReadExReply:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.requester->onReadExReply(p, std::move(m));
        };
      case MsgType::UpgradeReply:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.requester->onUpgradeReply(p, std::move(m));
        };
      case MsgType::ReadMigReply:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.requester->onReadMigReply(p, std::move(m));
        };
      case MsgType::SharingWriteback:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.home->onSharingWriteback(p, std::move(m));
        };
      case MsgType::OwnershipAck:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.home->onOwnershipAck(p, std::move(m));
        };
      case MsgType::Downgrade:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            c.downgrade->onDowngrade(p, std::move(m));
        };
      case MsgType::LockReq:
      case MsgType::LockGrant:
      case MsgType::LockRelease:
      case MsgType::BarrierArrive:
      case MsgType::BarrierRelease:
        return [](ProtocolCore &c, Proc &p, Message &&m) {
            assert(c.syncHandler);
            c.syncHandler(p, std::move(m));
        };
      case MsgType::NumTypes:
        break;
    }
    // Unreached for valid types; reaching it (a new enumerator
    // missing above) fails constant evaluation.
}

constexpr auto kDispatch = []() consteval {
    std::array<Handler,
               static_cast<std::size_t>(MsgType::NumTypes)>
        a{};
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = handlerFor(static_cast<MsgType>(i));
    return a;
}();

static_assert(kDispatch.size() ==
                  static_cast<std::size_t>(MsgType::NumTypes),
              "every message type needs a dispatch entry");

} // namespace

ProtocolCore::ProtocolCore(const DsmConfig &cfg_in, Transport &tx_in,
                           SharedHeap &heap_in,
                           std::vector<Proc> &procs_in)
    : cfg(cfg_in),
      tx(tx_in),
      heap(heap_in),
      procs(procs_in),
      topo(cfg_in.topology()),
      smp(cfg_in.mode == Mode::Smp)
{
    const int nodes = topo.numNodes();
    ctrShards.resize(static_cast<std::size_t>(nodes));
    latShards.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n)
        latShards.push_back(std::make_unique<LatencyStats>());
    memories.reserve(static_cast<std::size_t>(nodes));
    tables.reserve(static_cast<std::size_t>(nodes));
    missTables.reserve(static_cast<std::size_t>(nodes));
    epochs.reserve(static_cast<std::size_t>(nodes));
    locks.reserve(static_cast<std::size_t>(nodes));
    acquireWaiters.resize(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
        memories.push_back(std::make_unique<NodeMemory>());
        tables.push_back(
            std::make_unique<NodeStateTable>(topo.procsOn(n)));
        missTables.push_back(std::make_unique<MissTable>());
        epochs.push_back(std::make_unique<EpochTracker>());
        locks.push_back(std::make_unique<LineLockPool>(
            smp, cfg.costs.lineLock));
    }
    dirs.reserve(static_cast<std::size_t>(topo.numProcs()));
    for (int p = 0; p < topo.numProcs(); ++p)
        dirs.push_back(
            std::make_unique<HomeDirectory>(p, cfg.dirShards));
}

ProcId
ProtocolCore::homeProc(LineIdx line) const
{
    // Blocks are homed as units: normalize to the block's first
    // line so every line of a page-straddling block agrees.
    line = heap.blockOf(line).firstLine;
    const Addr a = heap.lineAddr(line);
    const std::uint64_t page = pageOf(a);
    auto it = pageHomes.find(page);
    if (it != pageHomes.end())
        return it->second;
    return static_cast<ProcId>(page %
                               static_cast<std::uint64_t>(
                                   topo.numProcs()));
}

void
ProtocolCore::setPageHome(Addr base, std::size_t len,
                          ProcId home_proc)
{
    assert(home_proc >= 0 && home_proc < topo.numProcs());
    const std::uint64_t first = pageOf(base);
    const std::uint64_t last = pageOf(base + len - 1);
    for (std::uint64_t p = first; p <= last; ++p)
        pageHomes[p] = home_proc;
}

void
ProtocolCore::onAlloc(Addr base, std::size_t bytes)
{
    // Ownership is per *block*: a multi-line block may straddle a
    // page boundary, and its home is the home of its first line
    // (that is also where its directory entry lives), so the whole
    // block must start exclusive on that one node.
    const LineIdx first = heap.lineOf(base);
    const LineIdx last = heap.lineOf(base + bytes - 1);
    const int line_sz = heap.lineSize();
    LineIdx line = first;
    while (line <= last) {
        const BlockInfo b = blockOf(line);
        const NodeId home_node = topo.nodeOf(homeProc(b.firstLine));
        tables[home_node]->setShared(b.firstLine, b.numLines,
                                     LState::Exclusive);
        const Addr ba = heap.lineAddr(b.firstLine);
        const std::size_t bbytes =
            static_cast<std::size_t>(b.numLines) *
            static_cast<std::size_t>(line_sz);
        for (int n = 0; n < topo.numNodes(); ++n) {
            if (n != home_node) {
                memories[static_cast<std::size_t>(n)]
                    ->fillInvalidFlag(ba, bbytes);
            }
        }
        line = b.firstLine + b.numLines;
    }
}

// ---------------------------------------------------------------------
// Message plumbing
// ---------------------------------------------------------------------

void
ProtocolCore::sendMsg(Proc &from, MsgType type, ProcId dst,
                      LineIdx block, ProcId requester_id, int count,
                      Payload data)
{
    Message m;
    m.type = type;
    m.src = from.id;
    m.dst = dst;
    m.addr = heap.lineAddr(block);
    m.requester = requester_id;
    m.count = count;
    m.data = std::move(data);
    if (dst == from.id ||
        (cfg.shareDirectory && topo.sameNode(from.id, dst) &&
         (isCoherenceRequest(m.type) ||
          m.type == MsgType::OwnershipAck ||
          m.type == MsgType::SharingWriteback))) {
        // A processor that is its own destination just performs the
        // work: no message exists (and none is counted).  With the
        // shared-directory extension (Sections 3.1/5), directory
        // operations whose home is colocated are also performed
        // directly, skipping the internal hop; the line lock charged
        // by the handler covers the required synchronization.
        m.sendTime = from.now;
        m.arriveTime = from.now;
        handleMessage(from, std::move(m));
        return;
    }
    tx.send(std::move(m), from.now);
}

void
ProtocolCore::sendRaw(Proc &from, Message &&m)
{
    m.src = from.id;
    if (m.dst == from.id) {
        m.sendTime = from.now;
        m.arriveTime = from.now;
        handleMessage(from, std::move(m));
        return;
    }
    tx.send(std::move(m), from.now);
}

void
ProtocolCore::reinject(ProcId dst, Message &&m)
{
    Proc &d = procs[static_cast<std::size_t>(dst)];
    m.dst = dst;
    m.arriveTime = std::max(tx.now(), m.arriveTime);
    d.mailbox.push(std::move(m));
    if (d.status != ProcStatus::Running)
        drainMailbox(d);
}

void
ProtocolCore::deliver(Message &&m)
{
    Proc &d = procs[static_cast<std::size_t>(m.dst)];
    d.mailbox.push(std::move(m));
    if (d.status != ProcStatus::Running)
        drainMailbox(d);
}

void
ProtocolCore::drainMailbox(Proc &p)
{
    if (p.draining)
        return;
    // Scope guard, not a manual reset: if a handler throws, a stuck
    // draining flag would silently stop all future drains for this
    // processor.
    struct DrainGuard
    {
        bool &flag;
        ~DrainGuard() { flag = false; }
    } guard{p.draining};
    p.draining = true;
    while (p.mailbox.hasMail()) {
        Message m = p.mailbox.pop();
        p.now = std::max(p.now, m.arriveTime);
        const bool count_as_msg =
            (p.status == ProcStatus::Running) && measuring;
        const Tick t0 = p.now;
        handleMessage(p, std::move(m));
        if (count_as_msg)
            p.bd.msg += p.now - t0;
    }
}

void
ProtocolCore::handleMessage(Proc &p, Message &&m)
{
    SHASTA_TRACE_EVENT(trace::Flag::Net, p.now, p.id,
                       "handle %s from P%d line %u",
                       std::string(msgTypeName(m.type)).c_str(),
                       m.src,
                       static_cast<unsigned>(heap.lineOf(m.addr)));
    if (obs::traceJsonEnabled() && m.flowId != 0) {
        obs::emitFlowEnd(m.flowId, p.id, p.now,
                         msgTypeName(m.type).data());
        // Clear the id: a message queued at the directory or behind
        // a downgrade is re-dispatched later, and its delivery arrow
        // must not be emitted twice.
        m.flowId = 0;
    }
    kDispatch[static_cast<std::size_t>(m.type)](*this, p,
                                                std::move(m));
}

Tick
ProtocolCore::handlerCost(MsgCostClass c) const
{
    switch (c) {
      case MsgCostClass::HomeRequest: return cfg.costs.homeHandler;
      case MsgCostClass::Forward: return cfg.costs.fwdHandler;
      case MsgCostClass::Invalidation: return cfg.costs.invalHandler;
      case MsgCostClass::Ack: return cfg.costs.ackHandler;
      case MsgCostClass::DataReply: return cfg.costs.fillReply;
      case MsgCostClass::UpgradeReply: return cfg.costs.upgradeReply;
      case MsgCostClass::HomeClose: return cfg.costs.wbHandler;
      case MsgCostClass::Downgrade:
        return cfg.costs.downgradeHandler;
      case MsgCostClass::Sync:
        break; // charged by the sync managers, never here
    }
    assert(false && "no handler cost for this class");
    return 0;
}

void
ProtocolCore::chargeHandler(Proc &p, const Message &m, LineIdx line)
{
    const Tick t0 = p.now;
    Tick recv = 0;
    if (m.src != p.id) {
        recv = topo.sameMachine(m.src, p.id) ? cfg.costs.recvLocal
                                             : cfg.costs.recvRemote;
    }
    p.now += recv + handlerCost(msgCostClass(m.type));
    p.now += locks[p.node]->chargeOp(line);
    if (obs::traceJsonEnabled()) {
        obs::emitComplete(p.id, t0, p.now - t0,
                          msgTypeName(m.type).data(), "proto");
    }
}

void
ProtocolCore::noteBlocked(Proc &p)
{
    p.status = ProcStatus::Blocked;
    if (p.mailbox.hasMail() && !p.draining) {
        // The processor polls while it waits; mail that arrived
        // before it blocked must still be serviced.  Handle it in a
        // fresh deferred callback so the coroutine suspension
        // completes first.
        tx.deferAt(p.now, [this, id = p.id] {
            Proc &pp = procs[static_cast<std::size_t>(id)];
            if (pp.status != ProcStatus::Running)
                drainMailbox(pp);
        });
    }
}

// ---------------------------------------------------------------------
// Cross-agent helpers
// ---------------------------------------------------------------------

void
ProtocolCore::resumeWaiters(MissEntry &e, bool loads, bool retries,
                            Tick when)
{
    // Move the lists out first: resumed coroutines may park again on
    // the same entry.
    std::vector<Waiter> to_resume;
    if (loads) {
        to_resume.insert(to_resume.end(), e.loadWaiters.begin(),
                         e.loadWaiters.end());
        e.loadWaiters.clear();
    }
    if (retries) {
        to_resume.insert(to_resume.end(), e.retryWaiters.begin(),
                         e.retryWaiters.end());
        e.retryWaiters.clear();
    }
    for (auto &w : to_resume) {
        Proc &wp = procs[static_cast<std::size_t>(w.proc)];
        wp.now = std::max({wp.now, w.stallStart, when});
        if (measuring) {
            const Tick stall = wp.now - w.stallStart;
            switch (w.kind) {
              case StallKind::Read: wp.bd.read += stall; break;
              case StallKind::Write: wp.bd.write += stall; break;
              case StallKind::Sync: wp.bd.sync += stall; break;
            }
        }
        wp.status = ProcStatus::Running;
        w.handle.resume();
    }
}

void
ProtocolCore::drainQueuedRemote(Proc &p, LineIdx first)
{
    MissEntry *e = missTables[p.node]->find(first);
    if (!e || e->queuedRemote.empty())
        return;
    std::deque<Message> queued;
    queued.swap(e->queuedRemote);
    for (auto &qm : queued) {
        const ProcId dst = qm.dst;
        reinject(dst, std::move(qm));
    }
}

void
ProtocolCore::maybeErase(NodeId node, LineIdx first)
{
    // Entries are per-node and callers always operate on the node
    // owning the entry, so only that node's table is consulted (an
    // idle entry on another node was already erased by that node's
    // own last operation on it — and the thread backend requires the
    // restriction: another node's miss table belongs to another
    // worker thread).
    MissTable &mt = *missTables[static_cast<std::size_t>(node)];
    MissEntry *e = mt.find(first);
    if (!e)
        return;
    const LState s =
        tables[static_cast<std::size_t>(node)]->shared(first);
    if (isStable(s) && !e->wantWrite && !e->readIssued &&
        !e->downgradeActive() && e->loadWaiters.empty() &&
        e->retryWaiters.empty() && e->queuedRemote.empty()) {
        mt.erase(first);
    }
}

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

std::size_t
ProtocolCore::pendingTransactions() const
{
    std::size_t n = 0;
    for (const auto &mt : missTables)
        n += mt->size();
    return n;
}

DirCounters
ProtocolCore::dirCounters() const
{
    DirCounters d;
    if (dirs.empty())
        return d;
    d.shardsPerHome = dirs[0]->shardCount();
    d.shardEntries.assign(
        static_cast<std::size_t>(d.shardsPerHome), 0);
    d.shardPeakQueued.assign(
        static_cast<std::size_t>(d.shardsPerHome), 0);
    for (const auto &dir : dirs) {
        for (int k = 0; k < dir->shardCount(); ++k) {
            const auto st = dir->shardStats(k);
            const auto ki = static_cast<std::size_t>(k);
            d.lookups += st.lookups;
            d.queuedTotal += st.queuedTotal;
            if (st.peakQueued > d.peakQueued)
                d.peakQueued = st.peakQueued;
            d.shardEntries[ki] += dir->shardSize(k);
            if (st.peakQueued > d.shardPeakQueued[ki])
                d.shardPeakQueued[ki] = st.peakQueued;
        }
        // busy/queued come from walking the entries, not the queue
        // hooks: tests poke entry state directly, and the walk is
        // the ground truth either way.
        dir->forEachEntry([&](LineIdx, const DirEntry &e) {
            ++d.entries;
            if (e.busy)
                ++d.busy;
            d.queued += e.waiting.size();
        });
    }
    return d;
}

std::string
ProtocolCore::dumpPending() const
{
    std::string out;
    for (std::size_t n = 0; n < missTables.size(); ++n) {
        for (const auto &[line, e] : missTables[n]->entries()) {
            out += "  node " + std::to_string(n) + " line " +
                   std::to_string(line) + " state " +
                   std::string(lstateName(
                       tables[n]->shared(line))) +
                   " prior " + std::string(lstateName(e.prior)) +
                   " rd=" + std::to_string(e.readIssued) +
                   " wW=" + std::to_string(e.wantWrite) +
                   " wI=" + std::to_string(e.writeIssued) +
                   " data=" + std::to_string(e.dataArrived) +
                   " acks=" + std::to_string(e.acksReceived) + "/" +
                   std::to_string(e.acksExpected) +
                   " dg=" + std::to_string(e.downgradesLeft) +
                   " lw=" + std::to_string(e.loadWaiters.size()) +
                   " rw=" + std::to_string(e.retryWaiters.size()) +
                   " q=" + std::to_string(e.queuedRemote.size()) +
                   "\n";
        }
    }
    for (std::size_t d = 0; d < dirs.size(); ++d) {
        dirs[d]->forEachEntry([&](LineIdx line, const DirEntry &e) {
            if (!e.busy && e.waiting.empty())
                return;
            out += "  dir@" + std::to_string(d) + " line " +
                   std::to_string(line) +
                   " busy=" + std::to_string(e.busy) +
                   " owner=" + std::to_string(e.owner) +
                   " sharers=" + std::to_string(e.sharerCount()) +
                   " waiting=" + std::to_string(e.waiting.size()) +
                   "\n";
        });
    }
    return out;
}

} // namespace shasta
