#include "proto/protocol.hh"

namespace shasta
{

Protocol::Protocol(const DsmConfig &cfg, EventQueue &events,
                   Network &net, SharedHeap &heap,
                   std::vector<Proc> &procs)
    : core_(cfg, events, net, heap, procs),
      home_(core_),
      requester_(core_),
      downgrade_(core_)
{
    core_.home = &home_;
    core_.requester = &requester_;
    core_.downgrade = &downgrade_;
}

} // namespace shasta
