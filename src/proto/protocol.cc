#include "proto/protocol.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "sim/trace.hh"

namespace shasta
{

Protocol::Protocol(const DsmConfig &cfg, EventQueue &events,
                   Network &net, SharedHeap &heap,
                   std::vector<Proc> &procs)
    : cfg_(cfg),
      events_(events),
      net_(net),
      heap_(heap),
      procs_(procs),
      topo_(cfg.topology()),
      smp_(cfg.mode == Mode::Smp)
{
    const int nodes = topo_.numNodes();
    memories_.reserve(nodes);
    tables_.reserve(nodes);
    missTables_.reserve(nodes);
    epochs_.reserve(nodes);
    locks_.reserve(nodes);
    acquireWaiters_.resize(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
        memories_.push_back(std::make_unique<NodeMemory>());
        tables_.push_back(
            std::make_unique<NodeStateTable>(topo_.procsOn(n)));
        missTables_.push_back(std::make_unique<MissTable>());
        epochs_.push_back(std::make_unique<EpochTracker>());
        locks_.push_back(std::make_unique<LineLockPool>(
            smp_, cfg.costs.lineLock));
    }
    dirs_.reserve(static_cast<std::size_t>(topo_.numProcs()));
    for (int p = 0; p < topo_.numProcs(); ++p)
        dirs_.push_back(std::make_unique<HomeDirectory>(p));
}

ProcId
Protocol::homeProc(LineIdx line) const
{
    // Blocks are homed as units: normalize to the block's first
    // line so every line of a page-straddling block agrees.
    line = heap_.blockOf(line).firstLine;
    const Addr a = heap_.lineAddr(line);
    const std::uint64_t page = pageOf(a);
    auto it = pageHomes_.find(page);
    if (it != pageHomes_.end())
        return it->second;
    return static_cast<ProcId>(page %
                               static_cast<std::uint64_t>(
                                   topo_.numProcs()));
}

void
Protocol::setPageHome(Addr base, std::size_t len, ProcId home)
{
    assert(home >= 0 && home < topo_.numProcs());
    const std::uint64_t first = pageOf(base);
    const std::uint64_t last = pageOf(base + len - 1);
    for (std::uint64_t p = first; p <= last; ++p)
        pageHomes_[p] = home;
}

void
Protocol::onAlloc(Addr base, std::size_t bytes)
{
    // Ownership is per *block*: a multi-line block may straddle a
    // page boundary, and its home is the home of its first line
    // (that is also where its directory entry lives), so the whole
    // block must start exclusive on that one node.
    const LineIdx first = heap_.lineOf(base);
    const LineIdx last = heap_.lineOf(base + bytes - 1);
    const int line_sz = heap_.lineSize();
    LineIdx line = first;
    while (line <= last) {
        const BlockInfo b = blockOf(line);
        const NodeId home_node =
            topo_.nodeOf(homeProc(b.firstLine));
        tables_[home_node]->setShared(b.firstLine, b.numLines,
                                      LState::Exclusive);
        const Addr ba = heap_.lineAddr(b.firstLine);
        const std::size_t bbytes =
            static_cast<std::size_t>(b.numLines) *
            static_cast<std::size_t>(line_sz);
        for (int n = 0; n < topo_.numNodes(); ++n) {
            if (n != home_node) {
                memories_[static_cast<std::size_t>(n)]
                    ->fillInvalidFlag(ba, bbytes);
            }
        }
        line = b.firstLine + b.numLines;
    }
}

// ---------------------------------------------------------------------
// Inline-check slow paths
// ---------------------------------------------------------------------

MissOutcome
Protocol::loadMiss(Proc &p, LineIdx line)
{
    const BlockInfo b = blockOf(line);
    const LineIdx first = b.firstLine;
    auto &tab = *tables_[p.node];
    p.now += locks_[p.node]->chargeOp(first);

    const LState s = tab.shared(first);
    switch (s) {
      case LState::Shared:
      case LState::Exclusive:
        // The node has the data; only this processor's private table
        // was behind.  Upgrade it to Shared (a store will upgrade it
        // further, Section 3.3).
        tab.setPriv(first, b.numLines, p.local, PState::Shared);
        p.now += cfg_.costs.privUpgrade;
        if (measuring_) {
            ++counters_.privateUpgrades;
            p.bd.other += cfg_.costs.privUpgrade;
        }
        return MissOutcome::Resolved;

      case LState::PendRead:
        if (measuring_)
            ++counters_.mergedMisses;
        p.now += cfg_.costs.missMerge;
        return MissOutcome::WaitData;

      case LState::PendEx: {
        MissEntry *e = missTables_[p.node]->find(first);
        assert(e && "PendEx without a miss entry");
        p.now += cfg_.costs.missMerge;
        if (measuring_)
            ++counters_.mergedMisses;
        if (e->prior == LState::Shared) {
            // The pre-miss Shared copy (plus any local pending
            // stores) is still valid for reading.
            return MissOutcome::Resolved;
        }
        return MissOutcome::WaitData;
      }

      case LState::PendDownShared:
        // Prior state was Exclusive: readable.  Service from the
        // pre-downgrade state under the line lock (Section 3.4.3).
        p.now += cfg_.costs.missMerge;
        if (measuring_) {
            ++counters_.pendDownServices;
            p.bd.other += cfg_.costs.missMerge;
        }
        return MissOutcome::Resolved;

      case LState::PendDownInvalid: {
        MissEntry *e = missTables_[p.node]->find(first);
        assert(e && "downgrade without a miss entry");
        p.now += cfg_.costs.missMerge;
        if (readableState(e->prior)) {
            if (measuring_) {
                ++counters_.pendDownServices;
                p.bd.other += cfg_.costs.missMerge;
            }
            return MissOutcome::Resolved;
        }
        return MissOutcome::WaitRetry;
      }

      case LState::Invalid:
        startRead(p, first);
        return MissOutcome::WaitData;
    }
    assert(false);
    return MissOutcome::WaitRetry;
}

MissOutcome
Protocol::storeMiss(Proc &p, LineIdx line, Addr addr, int len)
{
    const BlockInfo b = blockOf(line);
    const LineIdx first = b.firstLine;
    auto &tab = *tables_[p.node];
    auto &mt = *missTables_[p.node];
    p.now += locks_[p.node]->chargeOp(first);

    const LState s = tab.shared(first);
    switch (s) {
      case LState::Exclusive:
        tab.setPriv(first, b.numLines, p.local, PState::Exclusive);
        p.now += cfg_.costs.privUpgrade;
        if (measuring_) {
            ++counters_.privateUpgrades;
            p.bd.other += cfg_.costs.privUpgrade;
        }
        return MissOutcome::Resolved;

      case LState::Shared:
      case LState::Invalid: {
        if (p.outstandingWrites >= cfg_.maxOutstandingWrites) {
            if (measuring_)
                ++counters_.writeThrottles;
            return MissOutcome::WaitThrottle;
        }
        startWrite(p, first, s == LState::Shared, addr, len);
        return MissOutcome::ResolvedPending;
      }

      case LState::PendEx: {
        MissEntry *e = mt.find(first);
        assert(e && e->wantWrite);
        p.now += cfg_.costs.missMerge;
        if (measuring_)
            ++counters_.mergedMisses;
        e->markDirty(addr - blockAddr(b), static_cast<std::size_t>(len));
        return MissOutcome::ResolvedPending;
      }

      case LState::PendRead: {
        MissEntry *e = mt.find(first);
        assert(e);
        if (!e->wantWrite) {
            if (p.outstandingWrites >= cfg_.maxOutstandingWrites) {
                if (measuring_)
                    ++counters_.writeThrottles;
                return MissOutcome::WaitThrottle;
            }
            // Record the write; the upgrade is issued once the
            // outstanding read completes.
            e->wantWrite = true;
            e->writeInitiator = p.id;
            e->epoch = epochs_[p.node]->startWrite();
            ++p.outstandingWrites;
        }
        p.now += cfg_.costs.missMerge;
        if (measuring_)
            ++counters_.mergedMisses;
        e->markDirty(addr - blockAddr(b), static_cast<std::size_t>(len));
        return MissOutcome::ResolvedPending;
      }

      case LState::PendDownShared:
        // Prior state Exclusive: the store is ordered before the
        // downgrade completes, so it may simply be performed; the
        // completion snapshot will include it.
        p.now += cfg_.costs.missMerge;
        if (measuring_) {
            ++counters_.pendDownServices;
            p.bd.other += cfg_.costs.missMerge;
        }
        return MissOutcome::Resolved;

      case LState::PendDownInvalid: {
        MissEntry *e = mt.find(first);
        assert(e);
        p.now += cfg_.costs.missMerge;
        if (e->prior == LState::Exclusive) {
            if (measuring_) {
                ++counters_.pendDownServices;
                p.bd.other += cfg_.costs.missMerge;
            }
            return MissOutcome::Resolved;
        }
        return MissOutcome::WaitRetry;
      }
    }
    assert(false);
    return MissOutcome::WaitRetry;
}

void
Protocol::noteBlocked(Proc &p)
{
    p.status = ProcStatus::Blocked;
    if (p.mailbox.hasMail() && !p.draining) {
        // The processor polls while it waits; mail that arrived
        // before it blocked must still be serviced.  Handle it in a
        // fresh event so the coroutine suspension completes first.
        events_.schedule(std::max(p.now, events_.now()),
                         [this, id = p.id] {
                             Proc &pp = procs_[
                                 static_cast<std::size_t>(id)];
                             if (pp.status != ProcStatus::Running)
                                 drainMailbox(pp);
                         });
    }
}

void
Protocol::parkLoad(Proc &p, LineIdx line, std::coroutine_handle<> h)
{
    const LineIdx first = blockOf(line).firstLine;
    MissEntry *e = missTables_[p.node]->find(first);
    assert(e && "parkLoad without a pending entry");
    e->loadWaiters.push_back(
        Waiter{h, p.id, p.now, StallKind::Read});
    noteBlocked(p);
}

void
Protocol::parkRetry(Proc &p, LineIdx line, std::coroutine_handle<> h,
                    StallKind kind)
{
    const LineIdx first = blockOf(line).firstLine;
    MissEntry *e = missTables_[p.node]->find(first);
    assert(e && "parkRetry without a pending entry");
    e->retryWaiters.push_back(Waiter{h, p.id, p.now, kind});
    noteBlocked(p);
}

void
Protocol::parkThrottle(Proc &p, std::coroutine_handle<> h)
{
    assert(!p.throttleWaiter);
    p.throttleWaiter = h;
    p.throttleStall = p.now;
    noteBlocked(p);
}

// ---------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------

void
Protocol::startRead(Proc &p, LineIdx first)
{
    const BlockInfo b = blockOf(first);
    MissEntry &e = missTables_[p.node]->ensure(first, b.numLines,
                                               blockBytes(b));
    assert(!e.readIssued && !e.wantWrite);
    e.prior = LState::Invalid;
    e.readIssued = true;
    e.initiator = p.id;
    e.issueTime = p.now;
    tables_[p.node]->setShared(first, b.numLines, LState::PendRead);
    SHASTA_TRACE_EVENT(trace::Flag::Proto, p.now, p.id,
                       "read miss line %u -> home P%d",
                       static_cast<unsigned>(first),
                       homeProc(first));
    sendMsg(p, MsgType::ReadReq, homeProc(first), first, p.id);
}

void
Protocol::startWrite(Proc &p, LineIdx first, bool had_shared,
                     Addr dirty_addr, int dirty_len)
{
    const BlockInfo b = blockOf(first);
    MissEntry &e = missTables_[p.node]->ensure(first, b.numLines,
                                               blockBytes(b));
    assert(!e.readIssued && !e.wantWrite);
    e.prior = had_shared ? LState::Shared : LState::Invalid;
    e.wantWrite = true;
    e.writeIssued = true;
    e.initiator = p.id;
    e.writeInitiator = p.id;
    e.issueTime = p.now;
    e.epoch = epochs_[p.node]->startWrite();
    ++p.outstandingWrites;
    tables_[p.node]->setShared(first, b.numLines, LState::PendEx);
    if (dirty_len > 0) {
        // Mark before sending: a same-processor home can complete an
        // ack-free upgrade synchronously, clearing the mask.
        e.markDirty(dirty_addr - blockAddr(b),
                    static_cast<std::size_t>(dirty_len));
    }
    SHASTA_TRACE_EVENT(trace::Flag::Proto, p.now, p.id,
                       "%s miss line %u -> home P%d",
                       had_shared ? "upgrade" : "write",
                       static_cast<unsigned>(first),
                       homeProc(first));
    sendMsg(p,
            had_shared ? MsgType::UpgradeReq : MsgType::ReadExReq,
            homeProc(first), first, p.id);
}

void
Protocol::issueDeferredWrite(Proc &p, MissEntry &e)
{
    assert(e.wantWrite && !e.writeIssued);
    const BlockInfo b = blockOf(e.firstLine);
    e.writeIssued = true;
    e.prior = LState::Shared;
    e.issueTime = p.now;
    tables_[p.node]->setShared(e.firstLine, b.numLines,
                               LState::PendEx);
    sendMsg(p, MsgType::UpgradeReq, homeProc(e.firstLine),
            e.firstLine, e.writeInitiator);
}

void
Protocol::checkWriteComplete(Proc &p, LineIdx first)
{
    MissEntry *e = missTables_[p.node]->find(first);
    if (!e || !e->wantWrite || !e->writeIssued || !e->dataArrived)
        return;
    if (e->acksExpected < 0 || e->acksReceived < e->acksExpected)
        return;

    // Transaction complete: clear the entry's write tracking FIRST --
    // the ownership ack below may (when this processor is the home)
    // synchronously pump a queued request that re-examines this very
    // entry, and a stale dirty mask would corrupt its flag fill.
    const ProcId write_initiator = e->writeInitiator;
    const std::uint64_t epoch = e->epoch;
    e->wantWrite = false;
    e->writeIssued = false;
    e->dataArrived = false;
    e->acksExpected = -1;
    e->acksReceived = 0;
    std::fill(e->dirty.begin(), e->dirty.end(), false);
    e->dirtyAny = false;
    e->writeInitiator = -1;
    epochs_[p.node]->completeWrite(epoch);
    Proc &ini = procs_[static_cast<std::size_t>(write_initiator)];
    assert(ini.outstandingWrites > 0);
    --ini.outstandingWrites;
    sendMsg(p, MsgType::OwnershipAck, homeProc(first), first,
            write_initiator);
    if (ini.throttleWaiter &&
        ini.outstandingWrites < cfg_.maxOutstandingWrites) {
        auto h = ini.throttleWaiter;
        ini.throttleWaiter = nullptr;
        ini.now = std::max(ini.now, p.now);
        if (measuring_)
            ini.bd.write += ini.now - ini.throttleStall;
        ini.status = ProcStatus::Running;
        h.resume();
    }
    maybeErase(first);
}

void
Protocol::finishReadData(Proc &p, MissEntry &e, const Message &m)
{
    const BlockInfo b = blockOf(e.firstLine);
    const Addr base = blockAddr(b);
    NodeMemory &mem = *memories_[p.node];
    assert(static_cast<int>(m.data.size()) == blockBytes(b));
    if (e.dirtyAny)
        mem.mergeIn(base, m.data.data(), m.data.size(), e.dirty);
    else
        mem.copyIn(base, m.data.data(), m.data.size());
}

void
Protocol::drainQueuedRemote(Proc &p, LineIdx first)
{
    MissEntry *e = missTables_[p.node]->find(first);
    if (!e || e->queuedRemote.empty())
        return;
    std::deque<Message> queued;
    queued.swap(e->queuedRemote);
    for (auto &qm : queued) {
        const ProcId dst = qm.dst;
        reinject(dst, std::move(qm));
    }
}

void
Protocol::resumeWaiters(MissEntry &e, bool loads, bool retries,
                        Tick when)
{
    // Move the lists out first: resumed coroutines may park again on
    // the same entry.
    std::vector<Waiter> to_resume;
    if (loads) {
        to_resume.insert(to_resume.end(), e.loadWaiters.begin(),
                         e.loadWaiters.end());
        e.loadWaiters.clear();
    }
    if (retries) {
        to_resume.insert(to_resume.end(), e.retryWaiters.begin(),
                         e.retryWaiters.end());
        e.retryWaiters.clear();
    }
    for (auto &w : to_resume) {
        Proc &wp = procs_[static_cast<std::size_t>(w.proc)];
        wp.now = std::max({wp.now, w.stallStart, when});
        if (measuring_) {
            const Tick stall = wp.now - w.stallStart;
            switch (w.kind) {
              case StallKind::Read: wp.bd.read += stall; break;
              case StallKind::Write: wp.bd.write += stall; break;
              case StallKind::Sync: wp.bd.sync += stall; break;
            }
        }
        wp.status = ProcStatus::Running;
        w.handle.resume();
    }
}

void
Protocol::maybeErase(LineIdx first)
{
    // The entry lives on any node; scan is avoided because callers
    // always operate on the node owning the entry.  Find it on every
    // node that could hold it: entries are per-node, so search the
    // node whose table points at a transient; cheaper: try all nodes.
    for (auto &mt : missTables_) {
        MissEntry *e = mt->find(first);
        if (!e)
            continue;
        const NodeId n = static_cast<NodeId>(&mt - &missTables_[0]);
        const LState s = tables_[static_cast<std::size_t>(n)]
                             ->shared(first);
        if (isStable(s) && !e->wantWrite && !e->readIssued &&
            !e->downgradeActive() && e->loadWaiters.empty() &&
            e->retryWaiters.empty() && e->queuedRemote.empty()) {
            mt->erase(first);
        }
    }
}

// ---------------------------------------------------------------------
// Message plumbing
// ---------------------------------------------------------------------

void
Protocol::sendMsg(Proc &from, MsgType type, ProcId dst, LineIdx block,
                  ProcId requester, int count,
                  std::vector<std::uint8_t> data)
{
    Message m;
    m.type = type;
    m.src = from.id;
    m.dst = dst;
    m.addr = heap_.lineAddr(block);
    m.requester = requester;
    m.count = count;
    m.data = std::move(data);
    if (dst == from.id ||
        (cfg_.shareDirectory && topo_.sameNode(from.id, dst) &&
         (isCoherenceRequest(m.type) ||
          m.type == MsgType::OwnershipAck ||
          m.type == MsgType::SharingWriteback))) {
        // A processor that is its own destination just performs the
        // work: no message exists (and none is counted).  With the
        // shared-directory extension (Sections 3.1/5), directory
        // operations whose home is colocated are also performed
        // directly, skipping the internal hop; the line lock charged
        // by the handler covers the required synchronization.
        m.sendTime = from.now;
        m.arriveTime = from.now;
        handleMessage(from, std::move(m));
        return;
    }
    net_.send(std::move(m), from.now);
}

void
Protocol::sendRaw(Proc &from, Message &&m)
{
    m.src = from.id;
    if (m.dst == from.id) {
        m.sendTime = from.now;
        m.arriveTime = from.now;
        handleMessage(from, std::move(m));
        return;
    }
    net_.send(std::move(m), from.now);
}

void
Protocol::reinject(ProcId dst, Message &&m)
{
    Proc &d = procs_[static_cast<std::size_t>(dst)];
    m.dst = dst;
    m.arriveTime = std::max(events_.now(), m.arriveTime);
    d.mailbox.push(std::move(m));
    if (d.status != ProcStatus::Running)
        drainMailbox(d);
}

void
Protocol::deliver(Message &&m)
{
    Proc &d = procs_[static_cast<std::size_t>(m.dst)];
    d.mailbox.push(std::move(m));
    if (d.status != ProcStatus::Running)
        drainMailbox(d);
}

void
Protocol::drainMailbox(Proc &p)
{
    if (p.draining)
        return;
    // Scope guard, not a manual reset: if a handler throws, a stuck
    // draining flag would silently stop all future drains for this
    // processor.
    struct DrainGuard
    {
        bool &flag;
        ~DrainGuard() { flag = false; }
    } guard{p.draining};
    p.draining = true;
    while (p.mailbox.hasMail()) {
        Message m = p.mailbox.pop();
        p.now = std::max(p.now, m.arriveTime);
        const bool count_as_msg =
            (p.status == ProcStatus::Running) && measuring_;
        const Tick t0 = p.now;
        handleMessage(p, std::move(m));
        if (count_as_msg)
            p.bd.msg += p.now - t0;
    }
}

void
Protocol::chargeHandler(Proc &p, const Message &m, Tick handler,
                        bool locked, LineIdx line)
{
    Tick recv = 0;
    if (m.src != p.id) {
        recv = topo_.sameMachine(m.src, p.id) ? cfg_.costs.recvLocal
                                              : cfg_.costs.recvRemote;
    }
    p.now += recv + handler;
    if (locked)
        p.now += locks_[p.node]->chargeOp(line);
}

void
Protocol::handleMessage(Proc &p, Message &&m)
{
    SHASTA_TRACE_EVENT(trace::Flag::Net, p.now, p.id,
                       "handle %s from P%d line %u",
                       std::string(msgTypeName(m.type)).c_str(),
                       m.src,
                       static_cast<unsigned>(heap_.lineOf(m.addr)));
    switch (m.type) {
      case MsgType::ReadReq: onReadReq(p, std::move(m)); return;
      case MsgType::ReadExReq: onReadExReq(p, std::move(m)); return;
      case MsgType::UpgradeReq: onUpgradeReq(p, std::move(m)); return;
      case MsgType::FwdReadReq: onFwdReadReq(p, std::move(m)); return;
      case MsgType::FwdReadExReq:
        onFwdReadExReq(p, std::move(m));
        return;
      case MsgType::InvalReq: onInvalReq(p, std::move(m)); return;
      case MsgType::InvalAck: onInvalAck(p, std::move(m)); return;
      case MsgType::ReadReply: onReadReply(p, std::move(m)); return;
      case MsgType::ReadExReply:
        onReadExReply(p, std::move(m));
        return;
      case MsgType::UpgradeReply:
        onUpgradeReply(p, std::move(m));
        return;
      case MsgType::SharingWriteback:
        onSharingWriteback(p, std::move(m));
        return;
      case MsgType::OwnershipAck:
        onOwnershipAck(p, std::move(m));
        return;
      case MsgType::Downgrade: onDowngrade(p, std::move(m)); return;
      case MsgType::LockReq:
      case MsgType::LockGrant:
      case MsgType::LockRelease:
      case MsgType::BarrierArrive:
      case MsgType::BarrierRelease:
        assert(syncHandler_);
        syncHandler_(p, std::move(m));
        return;
      default:
        assert(false && "unhandled message type");
    }
}

// ---------------------------------------------------------------------
// Home-side handlers
// ---------------------------------------------------------------------

ProcId
Protocol::sharerRepOf(const DirEntry &e, NodeId node) const
{
    for (int q = 0; q < topo_.numProcs(); ++q) {
        if (e.isSharer(q) && topo_.nodeOf(q) == node)
            return q;
    }
    return -1;
}

void
Protocol::onReadReq(Proc &home, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(home, m, cfg_.costs.homeHandler, true, first);
    DirEntry &e = dirs_[static_cast<std::size_t>(homeProc(first))]
                      ->entry(first);
    if (e.busy) {
        e.waiting.push_back(std::move(m));
        return;
    }
    const BlockInfo b = blockOf(first);
    const NodeId hn = home.node;
    const LState s = tables_[hn]->shared(first);
    const ProcId req = m.requester;

    if (s == LState::Shared) {
        // Home has a clean copy: serve directly (Section 3.1).
        std::vector<std::uint8_t> data;
        memories_[hn]->copyOut(blockAddr(b),
                               static_cast<std::size_t>(
                                   blockBytes(b)),
                               data);
        e.addSharer(req);
        sendMsg(home, MsgType::ReadReply, req, first, req, 0,
                std::move(data));
        // This serve never set busy, so a queued request (left by a
        // prior transaction) must be pumped here or it is stranded.
        pumpQueued(home, first);
        return;
    }

    if (s == LState::Exclusive) {
        // Home node owns the block exclusively: downgrade the node
        // (possibly via downgrade messages to colocated processors),
        // then serve.
        e.busy = true;
        e.addSharer(req);
        downgradeNode(home, first, false,
                      [this, first, req](Proc &px,
                                         std::vector<std::uint8_t>
                                             &&data) {
                          sendMsg(px, MsgType::ReadReply, req, first,
                                  req, 0, std::move(data));
                          unbusyAndPump(px, first);
                      });
        return;
    }

    // Home node has no usable copy: forward to the owner.
    assert(e.owner >= 0);
    assert(topo_.nodeOf(e.owner) != topo_.nodeOf(req) &&
           "requester's node should have hit locally");
    e.busy = true;
    sendMsg(home, MsgType::FwdReadReq, e.owner, first, req);
}

void
Protocol::onReadExReq(Proc &home, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(home, m, cfg_.costs.homeHandler, true, first);
    DirEntry &e = dirs_[static_cast<std::size_t>(homeProc(first))]
                      ->entry(first);
    if (e.busy) {
        e.waiting.push_back(std::move(m));
        return;
    }
    const BlockInfo b = blockOf(first);
    const NodeId hn = home.node;
    const ProcId req = m.requester;
    const NodeId req_node = topo_.nodeOf(req);
    assert(sharerRepOf(e, req_node) == -1 &&
           "read-exclusive from a node that still has a copy");

    const LState s = tables_[hn]->shared(first);
    e.busy = true;

    if (readableState(s)) {
        // Home supplies the data.  Invalidate every other sharing
        // node; their acks go to the requester.
        std::vector<ProcId> invals;
        for (ProcId q : e.sharerList()) {
            if (topo_.nodeOf(q) != hn)
                invals.push_back(q);
        }
        const int acks = static_cast<int>(invals.size());
        e.owner = req;
        e.clearSharers();
        e.addSharer(req);
        for (ProcId q : invals)
            sendMsg(home, MsgType::InvalReq, q, first, req);
        downgradeNode(home, first, true,
                      [this, first, req, acks](
                          Proc &px,
                          std::vector<std::uint8_t> &&data) {
                          sendMsg(px, MsgType::ReadExReply, req,
                                  first, req, acks,
                                  std::move(data));
                      });
        (void)b;
        return;
    }

    // Home node invalid: the owner (sole copy) supplies data and
    // ownership.  (Invariant: home invalid implies sharers == {owner}
    // -- reads always leave a copy at the home.)
    assert(e.owner >= 0);
    std::vector<ProcId> invals;
    for (ProcId q : e.sharerList()) {
        if (topo_.nodeOf(q) != topo_.nodeOf(e.owner) &&
            topo_.nodeOf(q) != req_node) {
            invals.push_back(q);
        }
    }
    const int acks = static_cast<int>(invals.size());
    for (ProcId q : invals)
        sendMsg(home, MsgType::InvalReq, q, first, req);
    const ProcId owner = e.owner;
    e.owner = req;
    e.clearSharers();
    e.addSharer(req);
    sendMsg(home, MsgType::FwdReadExReq, owner, first, req, acks);
}

void
Protocol::onUpgradeReq(Proc &home, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    DirEntry &e = dirs_[static_cast<std::size_t>(homeProc(first))]
                      ->entry(first);
    if (e.busy) {
        chargeHandler(home, m, cfg_.costs.homeHandler, true, first);
        e.waiting.push_back(std::move(m));
        return;
    }
    const ProcId req = m.requester;
    const NodeId req_node = topo_.nodeOf(req);
    const ProcId rep = sharerRepOf(e, req_node);
    if (rep == -1) {
        // The requester's copy was invalidated while the upgrade was
        // in flight: treat as a read-exclusive (Section 3.4.2).
        m.type = MsgType::ReadExReq;
        onReadExReq(home, std::move(m));
        return;
    }
    chargeHandler(home, m, cfg_.costs.homeHandler, true, first);
    std::vector<ProcId> invals;
    for (ProcId q : e.sharerList()) {
        if (topo_.nodeOf(q) != req_node)
            invals.push_back(q);
    }
    const int acks = static_cast<int>(invals.size());
    e.busy = true;
    e.owner = req;
    e.clearSharers();
    e.addSharer(req);
    for (ProcId q : invals)
        sendMsg(home, MsgType::InvalReq, q, first, req);
    sendMsg(home, MsgType::UpgradeReply, req, first, req, acks);
}

void
Protocol::onFwdReadReq(Proc &owner, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(owner, m, cfg_.costs.fwdHandler, true, first);
    const BlockInfo b = blockOf(first);
    const NodeId on = owner.node;
    const LState s = tables_[on]->shared(first);
    const ProcId req = m.requester;
    const ProcId home = homeProc(first);

    MissEntry *me = missTables_[on]->find(first);
    if (me && me->downgradeActive()) {
        if (measuring_)
            ++counters_.queuedDuringDowngrade;
        me->queuedRemote.push_back(std::move(m));
        return;
    }
    if (me && (me->readIssued ||
               (me->writeIssued && !me->dataArrived &&
                me->prior == LState::Invalid))) {
        // The node's data reply is still in flight and may have been
        // overtaken by this request (replies and invalidations travel
        // on different channels); hold it until the data lands.
        me->queuedRemote.push_back(std::move(m));
        return;
    }

    if (s == LState::Exclusive) {
        downgradeNode(owner, first, false,
                      [this, first, req, home](
                          Proc &px,
                          std::vector<std::uint8_t> &&data) {
                          auto copy = data;
                          sendMsg(px, MsgType::ReadReply, req, first,
                                  req, 0, std::move(data));
                          sendMsg(px, MsgType::SharingWriteback,
                                  home, first, req, 0,
                                  std::move(copy));
                      });
        return;
    }

    // The owner may legitimately be Shared (the home served reads
    // after this owner's exclusivity was downgraded) or mid-upgrade
    // with a still-valid Shared copy; serve from memory.
    assert(readableState(s) ||
           (s == LState::PendEx && me && me->prior == LState::Shared));
    std::vector<std::uint8_t> data;
    memories_[on]->copyOut(blockAddr(b),
                           static_cast<std::size_t>(blockBytes(b)),
                           data);
    auto copy = data;
    sendMsg(owner, MsgType::ReadReply, req, first, req, 0,
            std::move(data));
    sendMsg(owner, MsgType::SharingWriteback, home, first, req, 0,
            std::move(copy));
}

void
Protocol::onFwdReadExReq(Proc &owner, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(owner, m, cfg_.costs.fwdHandler, true, first);
    const NodeId on = owner.node;
    const ProcId req = m.requester;
    const int acks = m.count;

    MissEntry *me = missTables_[on]->find(first);
    if (me && me->downgradeActive()) {
        if (measuring_)
            ++counters_.queuedDuringDowngrade;
        me->queuedRemote.push_back(std::move(m));
        return;
    }
    if (me && (me->readIssued ||
               (me->writeIssued && !me->dataArrived &&
                me->prior == LState::Invalid))) {
        // This node's own data reply is still in flight and may
        // have been overtaken by this forward (replies and forwards
        // travel on different channels); hold it until the data
        // lands.
        me->queuedRemote.push_back(std::move(m));
        return;
    }

    // The owner usually still holds the block exclusively, but it
    // may have been downgraded to Shared by an intervening read, or
    // be mid-upgrade itself (its request queued behind this one at
    // the home) with a still-valid Shared copy.  In every case the
    // owner's copy is current: invalidate the node and ship the
    // pre-fill snapshot.
    const LState s = tables_[on]->shared(first);
    assert(s == LState::Exclusive || s == LState::Shared ||
           (s == LState::PendEx && me &&
            me->prior == LState::Shared));
    const bool racing_upgrade = (s == LState::PendEx);
    downgradeNode(
        owner, first, true,
        [this, first, req, acks, racing_upgrade](
            Proc &px, std::vector<std::uint8_t> &&data) {
            if (racing_upgrade) {
                // The node's own in-flight upgrade loses its Shared
                // copy; the home will convert it to a
                // read-exclusive (Section 3.4.2).
                MissEntry *e2 = missTables_[px.node]->find(first);
                assert(e2);
                e2->prior = LState::Invalid;
            }
            sendMsg(px, MsgType::ReadExReply, req, first, req, acks,
                    std::move(data));
        });
}

void
Protocol::onInvalReq(Proc &p, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(p, m, cfg_.costs.invalHandler, true, first);
    const NodeId n = p.node;
    const LState s = tables_[n]->shared(first);
    const ProcId req = m.requester;

    MissEntry *me = missTables_[n]->find(first);
    if (me && me->downgradeActive()) {
        if (measuring_)
            ++counters_.queuedDuringDowngrade;
        me->queuedRemote.push_back(std::move(m));
        return;
    }
    if (me && (me->readIssued ||
               (me->writeIssued && !me->dataArrived &&
                me->prior == LState::Invalid))) {
        // The node's data reply is still in flight and may have been
        // overtaken by this request (replies and invalidations travel
        // on different channels); hold it until the data lands.
        me->queuedRemote.push_back(std::move(m));
        return;
    }

    if (s == LState::Shared) {
        downgradeNode(p, first, true,
                      [this, first, req](Proc &px,
                                         std::vector<std::uint8_t>
                                             &&) {
                          sendMsg(px, MsgType::InvalAck, req, first,
                                  req);
                      });
        return;
    }

    // Invalidation racing a local upgrade that is queued at the home:
    // the node loses its Shared copy; the in-flight upgrade will be
    // converted to a read-exclusive by the home.
    if (!(s == LState::PendEx && me && me->prior == LState::Shared)) {
        std::fprintf(stderr,
                     "onInvalReq: proc %d node %d line %u state %s "
                     "entry=%p prior=%s rd=%d wW=%d wI=%d dg=%d\n",
                     p.id, p.node, first,
                     std::string(lstateName(s)).c_str(),
                     static_cast<void *>(me),
                     me ? std::string(lstateName(me->prior)).c_str()
                        : "-",
                     me ? me->readIssued : 0, me ? me->wantWrite : 0,
                     me ? me->writeIssued : 0,
                     me ? me->downgradesLeft : 0);
        std::fflush(stderr);
        assert(false && "unexpected state for incoming invalidation");
    }
    downgradeNode(p, first, true,
                  [this, first, req](Proc &px,
                                     std::vector<std::uint8_t> &&) {
                      MissEntry *e2 =
                          missTables_[px.node]->find(first);
                      assert(e2);
                      e2->prior = LState::Invalid;
                      // Parked readers of the old Shared copy no
                      // longer have valid data; they re-park as data
                      // waiters via retry.
                      sendMsg(px, MsgType::InvalAck, req, first, req);
                  });
}

void
Protocol::onInvalAck(Proc &p, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(p, m, cfg_.costs.ackHandler, true, first);
    MissEntry *e = missTables_[p.node]->find(first);
    assert(e && e->wantWrite);
    ++e->acksReceived;
    checkWriteComplete(p, first);
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

void
Protocol::countMissReply(Proc &p, const Message &m, bool is_read,
                         bool is_upgrade)
{
    if (!measuring_)
        return;
    const LineIdx first = heap_.lineOf(m.addr);
    const bool three_hop = (m.src != homeProc(first));
    MissClass c;
    if (is_upgrade) {
        c = three_hop ? MissClass::Upgrade3Hop
                      : MissClass::Upgrade2Hop;
    } else if (is_read) {
        c = three_hop ? MissClass::Read3Hop : MissClass::Read2Hop;
    } else {
        c = three_hop ? MissClass::Write3Hop : MissClass::Write2Hop;
    }
    counters_.countMiss(c);
    (void)p;
}

void
Protocol::onReadReply(Proc &p, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(p, m, cfg_.costs.fillReply, true, first);
    MissEntry *e = missTables_[p.node]->find(first);
    assert(e && e->readIssued);
    const BlockInfo b = blockOf(first);

    finishReadData(p, *e, m);
    tables_[p.node]->setShared(first, b.numLines, LState::Shared);
    const Proc &ini = procs_[static_cast<std::size_t>(e->initiator)];
    tables_[p.node]->setPriv(first, b.numLines, ini.local,
                             PState::Shared);
    countMissReply(p, m, true, false);
    if (measuring_) {
        ++counters_.readMissSamples;
        counters_.readMissLatency += m.arriveTime - e->issueTime;
    }
    e->readIssued = false;

    if (e->wantWrite && !e->writeIssued) {
        // A store landed while the read was outstanding; promote it
        // now that we have a Shared copy.  The upgrade can complete
        // synchronously (same-processor home, no acks), so re-find
        // the entry afterwards.
        issueDeferredWrite(p, *e);
        e = missTables_[p.node]->find(first);
        assert(e);
    }
    resumeWaiters(*e, true, true, p.now);
    drainQueuedRemote(p, first);
    maybeErase(first);
}

void
Protocol::onReadExReply(Proc &p, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(p, m, cfg_.costs.fillReply, true, first);
    MissEntry *e = missTables_[p.node]->find(first);
    assert(e && e->wantWrite && e->writeIssued);
    const BlockInfo b = blockOf(first);

    finishReadData(p, *e, m);
    tables_[p.node]->setShared(first, b.numLines, LState::Exclusive);
    const Proc &wi =
        procs_[static_cast<std::size_t>(e->writeInitiator)];
    tables_[p.node]->setPriv(first, b.numLines, wi.local,
                             PState::Exclusive);
    e->dataArrived = true;
    e->acksExpected = m.count;
    countMissReply(p, m, false, false);
    resumeWaiters(*e, true, true, p.now);
    checkWriteComplete(p, first);
    drainQueuedRemote(p, first);
}

void
Protocol::onUpgradeReply(Proc &p, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(p, m, cfg_.costs.upgradeReply, true, first);
    MissEntry *e = missTables_[p.node]->find(first);
    assert(e && e->wantWrite && e->writeIssued);
    assert(e->loadWaiters.empty() &&
           "loads cannot be parked across an upgrade");
    const BlockInfo b = blockOf(first);

    tables_[p.node]->setShared(first, b.numLines, LState::Exclusive);
    const Proc &wi =
        procs_[static_cast<std::size_t>(e->writeInitiator)];
    tables_[p.node]->setPriv(first, b.numLines, wi.local,
                             PState::Exclusive);
    e->dataArrived = true;
    e->acksExpected = m.count;
    countMissReply(p, m, false, true);
    resumeWaiters(*e, false, true, p.now);
    checkWriteComplete(p, first);
    drainQueuedRemote(p, first);
}

void
Protocol::onSharingWriteback(Proc &home, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(home, m, cfg_.costs.wbHandler, true, first);
    DirEntry &e = dirs_[static_cast<std::size_t>(homeProc(first))]
                      ->entry(first);
    const BlockInfo b = blockOf(first);
    const NodeId hn = home.node;

    if (tables_[hn]->shared(first) == LState::Invalid) {
        memories_[hn]->copyIn(blockAddr(b), m.data.data(),
                              m.data.size());
        tables_[hn]->setShared(first, b.numLines, LState::Shared);
        e.addSharer(home.id);
    }
    e.addSharer(m.requester);
    unbusyAndPump(home, first);
}

void
Protocol::onOwnershipAck(Proc &home, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(home, m, cfg_.costs.wbHandler, true, first);
    unbusyAndPump(home, first);
}

void
Protocol::unbusyAndPump(Proc &p, LineIdx first)
{
    const ProcId home = homeProc(first);
    DirEntry &e = dirs_[static_cast<std::size_t>(home)]->entry(first);
    assert(e.busy);
    e.busy = false;
    if (!e.waiting.empty()) {
        Message next = std::move(e.waiting.front());
        e.waiting.pop_front();
        if (home == p.id) {
            handleMessage(p, std::move(next));
        } else {
            reinject(home, std::move(next));
        }
    }
}

void
Protocol::pumpQueued(Proc &home, LineIdx first)
{
    assert(topo_.sameNode(home.id, homeProc(first)));
    for (;;) {
        DirEntry &e = dirs_[static_cast<std::size_t>(
                                homeProc(first))]
                          ->entry(first);
        if (e.busy || e.waiting.empty())
            return;
        Message next = std::move(e.waiting.front());
        e.waiting.pop_front();
        handleMessage(home, std::move(next));
    }
}

void
Protocol::releaseFence(Proc &p, std::function<void()> done)
{
    epochs_[p.node]->release(std::move(done));
}

std::string
Protocol::dumpPending() const
{
    std::string out;
    for (std::size_t n = 0; n < missTables_.size(); ++n) {
        for (const auto &[line, e] : missTables_[n]->entries()) {
            out += "  node " + std::to_string(n) + " line " +
                   std::to_string(line) + " state " +
                   std::string(lstateName(
                       tables_[n]->shared(line))) +
                   " prior " + std::string(lstateName(e.prior)) +
                   " rd=" + std::to_string(e.readIssued) +
                   " wW=" + std::to_string(e.wantWrite) +
                   " wI=" + std::to_string(e.writeIssued) +
                   " data=" + std::to_string(e.dataArrived) +
                   " acks=" + std::to_string(e.acksReceived) + "/" +
                   std::to_string(e.acksExpected) +
                   " dg=" + std::to_string(e.downgradesLeft) +
                   " lw=" + std::to_string(e.loadWaiters.size()) +
                   " rw=" + std::to_string(e.retryWaiters.size()) +
                   " q=" + std::to_string(e.queuedRemote.size()) +
                   "\n";
        }
    }
    for (std::size_t d = 0; d < dirs_.size(); ++d) {
        for (const auto &[line, e] : dirs_[d]->entriesMap()) {
            if (!e.busy && e.waiting.empty())
                continue;
            out += "  dir@" + std::to_string(d) + " line " +
                   std::to_string(line) +
                   " busy=" + std::to_string(e.busy) +
                   " owner=" + std::to_string(e.owner) +
                   " sharers=" + std::to_string(e.sharers) +
                   " waiting=" + std::to_string(e.waiting.size()) +
                   "\n";
        }
    }
    return out;
}

std::size_t
Protocol::pendingTransactions() const
{
    std::size_t n = 0;
    for (const auto &mt : missTables_)
        n += mt->size();
    return n;
}

} // namespace shasta
