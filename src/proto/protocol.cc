#include "proto/protocol.hh"

namespace shasta
{

Protocol::Protocol(const DsmConfig &cfg, Transport &tx,
                   SharedHeap &heap, std::vector<Proc> &procs)
    : core_(cfg, tx, heap, procs),
      home_(core_),
      requester_(core_),
      downgrade_(core_)
{
    core_.home = &home_;
    core_.requester = &requester_;
    core_.downgrade = &downgrade_;
}

} // namespace shasta
