/**
 * @file
 * Migratory-sharing detector (the opt layer's `migratory` knob).
 *
 * A line is migratory when its access history is read-miss followed
 * by write-upgrade, repeated by successive *distinct* processors —
 * the classic lock-protected read-modify-write pattern (Water's
 * force merge).  The detector lives in the home directory entry and
 * observes the request stream the home already sees; when the score
 * reaches the threshold, the home answers the next read miss with an
 * exclusive grant (FwdReadMigReq/ReadMigReply), eliminating the
 * upgrade round-trip and its invalidation fan-out.
 *
 * The state machine is deliberately tiny and deterministic:
 *
 *   - noteReadMiss(p) records p as the candidate reader.
 *   - noteUpgrade(p) bumps the saturating score when the upgrading
 *     processor is the recorded reader and differs from the previous
 *     writer (the "successive distinct processors" requirement);
 *     anything else decays the score by one.
 *   - noteWriteMiss(p) (a direct read-exclusive, no preceding read)
 *     and noteSharedRead() (the line is being read-shared) decay.
 *   - noteGrant(p) records the new owner after a migratory grant so
 *     a sustained migration chain keeps the score saturated without
 *     ever seeing another upgrade.
 *
 * Decay (instead of reset) tolerates the occasional re-access by the
 * current owner without abandoning the pattern; a genuinely
 * read-shared phase drives the score to zero within two requests and
 * the fall-back path re-enables normal sharing.
 */

#ifndef SHASTA_PROTO_MIGRATORY_HH
#define SHASTA_PROTO_MIGRATORY_HH

#include <cstdint>

#include "net/topology.hh"

namespace shasta
{

class MigratoryDetector
{
  public:
    /** Distinct-successor upgrades needed before granting. */
    static constexpr int kThreshold = 2;
    /** Saturation cap: one stray access never unlearns the pattern. */
    static constexpr int kMax = 3;

    /** Should the read miss from @p p be granted exclusive?  The
     *  caller additionally requires the directory state to allow it
     *  (a single remote owner, entry not busy). */
    bool
    shouldGrant(ProcId p) const
    {
        return score_ >= kThreshold && p != lastOwner_;
    }

    void noteReadMiss(ProcId p) { lastReader_ = p; }

    /** The line was served read-shared (multiple readers alive). */
    void noteSharedRead() { decay(); }

    void
    noteUpgrade(ProcId p)
    {
        if (p == lastReader_ && lastOwner_ >= 0 && p != lastOwner_)
            bump();
        else
            decay();
        lastOwner_ = p;
    }

    /** Direct read-exclusive miss: a write with no preceding read
     *  is not the migratory pattern. */
    void
    noteWriteMiss(ProcId p)
    {
        decay();
        lastOwner_ = p;
    }

    /** A migratory grant moved ownership to @p p. */
    void noteGrant(ProcId p) { lastOwner_ = p; }

    int score() const { return score_; }
    ProcId lastReader() const { return lastReader_; }
    ProcId lastOwner() const { return lastOwner_; }

  private:
    void
    bump()
    {
        if (score_ < kMax)
            ++score_;
    }
    void
    decay()
    {
        if (score_ > 0)
            --score_;
    }

    ProcId lastReader_ = -1;
    ProcId lastOwner_ = -1;
    std::uint8_t score_ = 0;
};

} // namespace shasta

#endif // SHASTA_PROTO_MIGRATORY_HH
