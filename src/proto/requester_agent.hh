/**
 * @file
 * Miss-side agent of the coherence protocol.
 *
 * The RequesterAgent runs on the processor that missed: it implements
 * the inline-check slow paths (load and store miss resolution, miss
 * merging, the store throttle), issues the read / read-exclusive /
 * upgrade transactions, parks and resumes waiters, and handles the
 * reply messages that complete them — including the eager-release
 * write-completion tracking (data plus invalidation acks).
 */

#ifndef SHASTA_PROTO_REQUESTER_AGENT_HH
#define SHASTA_PROTO_REQUESTER_AGENT_HH

#include <coroutine>

#include "proto/proto_core.hh"

namespace shasta
{

/** Result of attempting to resolve a miss without suspending. */
enum class MissOutcome
{
    /** The access may proceed against valid local data. */
    Resolved,
    /** A write may proceed non-blocking; the caller must store the
     *  bytes and the protocol has marked them dirty. */
    ResolvedPending,
    /** The caller must park as a load waiter (resumed when the data
     *  becomes valid; the load is then guaranteed to succeed). */
    WaitData,
    /** The caller must park as a retry waiter and re-run its check. */
    WaitRetry,
    /** The caller must park until the store throttle clears. */
    WaitThrottle,
};

class RequesterAgent
{
  public:
    explicit RequesterAgent(ProtocolCore &core) : c_(core) {}

    /** @{ Inline-check slow paths.  @p mig_hint marks a scalar load
     *  (a migratory-grant candidate); batch reads pass false so
     *  prefetch-style read sharing never bounces ownership.  The hint
     *  only reaches the wire when the migratory knob is on. */
    MissOutcome loadMiss(Proc &p, LineIdx line, bool mig_hint = false);
    MissOutcome storeMiss(Proc &p, LineIdx line, Addr addr, int len);
    /** @} */

    /** @{ Parking (see Protocol facade for contracts). */
    void parkLoad(Proc &p, LineIdx line, std::coroutine_handle<> h);
    void parkRetry(Proc &p, LineIdx line, std::coroutine_handle<> h,
                   StallKind kind);
    void parkThrottle(Proc &p, std::coroutine_handle<> h);
    /** @} */

    /** @{ Message handlers (dispatched via the core's table). */
    void onInvalAck(Proc &p, Message &&m);
    void onReadReply(Proc &p, Message &&m);
    void onReadExReply(Proc &p, Message &&m);
    void onReadMigReply(Proc &p, Message &&m);
    void onUpgradeReply(Proc &p, Message &&m);
    /** @} */

    /** Start a write transaction; @p had_shared selects upgrade vs
     *  read-exclusive.  [dirty_addr, dirty_addr+dirty_len) is marked
     *  dirty *before* the request is sent, because a same-processor
     *  home can complete an ack-free upgrade synchronously.  Public:
     *  batch cleanup (DowngradeEngine::batchUnmark) re-issues writes
     *  through here. */
    void startWrite(Proc &p, LineIdx first, bool had_shared,
                    Addr dirty_addr, int dirty_len);

  private:
    /** Start a read transaction (node state must be Invalid). */
    void startRead(Proc &p, LineIdx first, bool mig_hint);

    /** Issue the deferred upgrade recorded in @p e (a store landed on
     *  a block whose read was still outstanding). */
    void issueDeferredWrite(Proc &p, MissEntry &e);

    /** Handle reply bookkeeping common to data replies. */
    void finishReadData(Proc &p, MissEntry &e, const Message &m);

    /** Complete the write transaction if data and all acks are in. */
    void checkWriteComplete(Proc &p, LineIdx first);

    /** Classify and count a completed miss; @p latency is issue to
     *  reply arrival, recorded into the class's histogram. */
    void countMissReply(Proc &p, const Message &m, bool is_read,
                        bool is_upgrade, Tick latency);

    ProtocolCore &c_;
};

} // namespace shasta

#endif // SHASTA_PROTO_REQUESTER_AGENT_HH
