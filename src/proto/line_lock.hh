/**
 * @file
 * Line-lock cost and accounting model.
 *
 * SMP-Shasta protects every protocol operation on a block with a lock
 * on the block's first line, drawn from a fixed pool of locks through
 * a hash function (Section 3.4.2).  Protocol handlers in the
 * simulator run atomically at event granularity, so the locks cannot
 * be *observed* held; what remains observable — and what the paper
 * measures ("individual protocol operations are more expensive due
 * mainly to locking") — is their cost: an acquire/release pair with
 * memory barriers on every protocol operation.  This class charges
 * that cost, tracks how often two blocks hash to the same lock (a
 * tuning statistic the paper calls out), and is a no-op in
 * Base-Shasta.
 */

#ifndef SHASTA_PROTO_LINE_LOCK_HH
#define SHASTA_PROTO_LINE_LOCK_HH

#include <cstdint>
#include <vector>

#include "mem/shared_heap.hh"
#include "sim/ticks.hh"

namespace shasta
{

/**
 * Fixed pool of line locks for one node.
 */
class LineLockPool
{
  public:
    /**
     * @param enabled false for Base-Shasta (no locking, zero cost).
     * @param cost ticks charged per protocol operation for the
     *   acquire + memory barrier + release sequence.
     * @param pool_size number of locks (power of two).
     */
    LineLockPool(bool enabled, Tick cost, int pool_size = 4096);

    bool enabled() const { return enabled_; }

    /** Lock index protecting @p line. */
    int
    lockFor(LineIdx line) const
    {
        // Multiplicative hash spreads consecutive lines over the pool.
        const std::uint64_t h =
            static_cast<std::uint64_t>(line) * 0x9E3779B97F4A7C15ULL;
        return static_cast<int>(h >> shift_);
    }

    /**
     * Charge one protocol operation's locking cost.
     * @return ticks to add to the executing processor's clock.
     */
    Tick
    chargeOp(LineIdx line)
    {
        if (!enabled_)
            return 0;
        ++acquires_;
        ++perLock_[static_cast<std::size_t>(lockFor(line))];
        return cost_;
    }

    std::uint64_t acquires() const { return acquires_; }

    /** Fraction of the pool ever used (hash-quality statistic). */
    double poolUtilization() const;

  private:
    bool enabled_;
    Tick cost_;
    int shift_;
    std::uint64_t acquires_ = 0;
    std::vector<std::uint64_t> perLock_;
};

} // namespace shasta

#endif // SHASTA_PROTO_LINE_LOCK_HH
