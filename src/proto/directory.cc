#include "proto/directory.hh"

// HomeDirectory is header-only; this translation unit compiles the
// header standalone.

namespace shasta
{
} // namespace shasta
