#include "proto/home_agent.hh"

#include <cassert>

#include "obs/trace_json.hh"
#include "proto/downgrade_engine.hh"

namespace shasta
{

namespace
{

/**
 * Scratch list of invalidation targets.  One target per sharing
 * node, so the inline capacity covers every paper-scale run (and
 * most large ones) without allocating; a block shared by more than
 * 64 nodes spills to the heap.
 */
class InvalList
{
  public:
    void
    push(ProcId q)
    {
        if (n_ < kInline)
            inline_[n_] = q;
        else
            spill_.push_back(q);
        ++n_;
    }

    int size() const { return n_; }

    ProcId
    operator[](int i) const
    {
        return i < kInline ? inline_[i]
                           : spill_[static_cast<std::size_t>(
                                 i - kInline)];
    }

  private:
    static constexpr int kInline = 64;
    ProcId inline_[kInline];
    std::vector<ProcId> spill_;
    int n_ = 0;
};

/**
 * Collect the sharers that pass @p keep into @p out (ascending
 * processor order, matching the directory's representative-per-node
 * invariant).
 */
template <typename Keep>
void
collectSharers(const SharerSet &sharers, Keep keep, InvalList &out)
{
    sharers.forEach([&](ProcId q) {
        if (keep(q))
            out.push(q);
    });
}

} // namespace

ProcId
HomeAgent::sharerRepOf(const DirEntry &e, NodeId node) const
{
    // Walk the sharer set, not all P processors: entries hold one
    // representative per sharing node, so this is O(sharers).
    ProcId rep = -1;
    e.sharers.forEach([&](ProcId q) {
        if (rep == -1 && c_.topo.nodeOf(q) == node)
            rep = q;
    });
    return rep;
}

void
HomeAgent::onReadReq(Proc &home, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(home, m, first);
    HomeDirectory &dir =
        *c_.dirs[static_cast<std::size_t>(c_.homeProc(first))];
    DirEntry &e = dir.entry(first);
    if (e.busy) {
        if (obs::traceJsonEnabled()) {
            obs::emitInstant(home.id, home.now, "dir-busy-queued",
                             "proto", first);
        }
        e.waiting.push_back(std::move(m));
        if (dir.noteQueued(first) && obs::traceJsonEnabled()) {
            obs::emitInstant(home.id, home.now, "dir-shard-peak",
                             "proto", first);
        }
        return;
    }
    const BlockInfo b = c_.blockOf(first);
    const NodeId hn = home.node;
    const LState s = c_.tables[hn]->shared(first);
    const ProcId req = m.requester;
    // Migratory detection only observes *hinted* reads (scalar
    // loads; the requester tags them in m.count).  Batch loads are
    // prefetch-style read sharing: granting them exclusive would
    // bounce ownership through a read-only fan-out.
    const bool mig = c_.cfg.opt.migratory && m.count != 0;

    if (s == LState::Shared) {
        if (mig) {
            // The line is being read-shared: not migratory.
            e.mig.noteReadMiss(req);
            e.mig.noteSharedRead();
        }
        // Home has a clean copy: serve directly (Section 3.1).
        Payload data;
        data.resizeForOverwrite(
            static_cast<std::uint32_t>(c_.blockBytes(b)));
        c_.memories[hn]->copyOut(
            c_.blockAddr(b),
            static_cast<std::size_t>(c_.blockBytes(b)), data.data());
        e.addSharer(req);
        c_.sendMsg(home, MsgType::ReadReply, req, first, req, 0,
                   std::move(data));
        // This serve never set busy, so a queued request (left by a
        // prior transaction) must be pumped here or it is stranded.
        pumpQueued(home, first);
        return;
    }

    if (s == LState::Exclusive) {
        if (mig) {
            e.mig.noteReadMiss(req);
            if (e.mig.shouldGrant(req) && e.sharerCount() == 1) {
                // Migratory grant served by the home: surrender the
                // home node's exclusive copy to the reader instead
                // of keeping a shared one, eliminating the upgrade
                // round-trip that history says is coming.
                e.busy = true;
                e.owner = req;
                e.clearSharers();
                e.addSharer(req);
                e.mig.noteGrant(req);
                if (c_.measuring)
                    ++c_.ctr(home.node).migGrants;
                c_.downgrade->downgradeNode(
                    home, first, true,
                    DowngradeAction{
                        DowngradeAction::Kind::ReadMigReply, false,
                        req, 0});
                return;
            }
        }
        // Home node owns the block exclusively: downgrade the node
        // (possibly via downgrade messages to colocated processors),
        // then serve.
        e.busy = true;
        e.addSharer(req);
        c_.downgrade->downgradeNode(
            home, first, false,
            DowngradeAction{DowngradeAction::Kind::HomeReadServe,
                            false, req, 0});
        return;
    }

    // Home node has no usable copy: forward to the owner.
    assert(e.owner >= 0);
    assert(c_.topo.nodeOf(e.owner) != c_.topo.nodeOf(req) &&
           "requester's node should have hit locally");
    if (mig) {
        e.mig.noteReadMiss(req);
        if (e.mig.shouldGrant(req) && e.sharerCount() == 1) {
            // Migratory grant via the owner: ownership (and the sole
            // copy) moves straight to the reader.
            const ProcId owner = e.owner;
            e.busy = true;
            e.owner = req;
            e.clearSharers();
            e.addSharer(req);
            e.mig.noteGrant(req);
            if (c_.measuring)
                ++c_.ctr(home.node).migGrants;
            c_.sendMsg(home, MsgType::FwdReadMigReq, owner, first,
                       req);
            return;
        }
    }
    e.busy = true;
    c_.sendMsg(home, MsgType::FwdReadReq, e.owner, first, req);
}

void
HomeAgent::onReadExReq(Proc &home, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(home, m, first);
    HomeDirectory &dir =
        *c_.dirs[static_cast<std::size_t>(c_.homeProc(first))];
    DirEntry &e = dir.entry(first);
    if (e.busy) {
        if (obs::traceJsonEnabled()) {
            obs::emitInstant(home.id, home.now, "dir-busy-queued",
                             "proto", first);
        }
        e.waiting.push_back(std::move(m));
        if (dir.noteQueued(first) && obs::traceJsonEnabled()) {
            obs::emitInstant(home.id, home.now, "dir-shard-peak",
                             "proto", first);
        }
        return;
    }
    const NodeId hn = home.node;
    const ProcId req = m.requester;
    const NodeId req_node = c_.topo.nodeOf(req);
    assert(sharerRepOf(e, req_node) == -1 &&
           "read-exclusive from a node that still has a copy");

    // A direct read-exclusive (no preceding read) is not the
    // migratory read-modify-write pattern.
    if (c_.cfg.opt.migratory)
        e.mig.noteWriteMiss(req);

    const LState s = c_.tables[hn]->shared(first);
    e.busy = true;

    if (readableState(s)) {
        // Home supplies the data.  Invalidate every other sharing
        // node; their acks go to the requester.
        InvalList invals;
        collectSharers(
            e.sharers,
            [&](ProcId q) { return c_.topo.nodeOf(q) != hn; },
            invals);
        const int n_invals = invals.size();
        e.owner = req;
        e.clearSharers();
        e.addSharer(req);
        for (int i = 0; i < n_invals; ++i)
            c_.sendMsg(home, MsgType::InvalReq, invals[i], first, req);
        c_.downgrade->downgradeNode(
            home, first, true,
            DowngradeAction{DowngradeAction::Kind::HomeReadExReply,
                            false, req, n_invals});
        return;
    }

    // Home node invalid: the owner (sole copy) supplies data and
    // ownership.  (Invariant: home invalid implies sharers == {owner}
    // -- reads always leave a copy at the home.)
    assert(e.owner >= 0);
    InvalList invals;
    collectSharers(
        e.sharers,
        [&](ProcId q) {
            return c_.topo.nodeOf(q) != c_.topo.nodeOf(e.owner) &&
                   c_.topo.nodeOf(q) != req_node;
        },
        invals);
    const int n_invals = invals.size();
    for (int i = 0; i < n_invals; ++i)
        c_.sendMsg(home, MsgType::InvalReq, invals[i], first, req);
    const ProcId owner = e.owner;
    e.owner = req;
    e.clearSharers();
    e.addSharer(req);
    c_.sendMsg(home, MsgType::FwdReadExReq, owner, first, req,
               n_invals);
}

void
HomeAgent::onUpgradeReq(Proc &home, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    HomeDirectory &dir =
        *c_.dirs[static_cast<std::size_t>(c_.homeProc(first))];
    DirEntry &e = dir.entry(first);
    if (e.busy) {
        c_.chargeHandler(home, m, first);
        if (obs::traceJsonEnabled()) {
            obs::emitInstant(home.id, home.now, "dir-busy-queued",
                             "proto", first);
        }
        e.waiting.push_back(std::move(m));
        if (dir.noteQueued(first) && obs::traceJsonEnabled()) {
            obs::emitInstant(home.id, home.now, "dir-shard-peak",
                             "proto", first);
        }
        return;
    }
    const ProcId req = m.requester;
    const NodeId req_node = c_.topo.nodeOf(req);
    const ProcId rep = sharerRepOf(e, req_node);
    if (rep == -1) {
        // The requester's copy was invalidated while the upgrade was
        // in flight: treat as a read-exclusive (Section 3.4.2).
        // onReadExReq charges the handler (same cost class), so this
        // path must not charge first.
        m.type = MsgType::ReadExReq;
        onReadExReq(home, std::move(m));
        return;
    }
    c_.chargeHandler(home, m, first);
    // The read-miss-then-upgrade evidence the detector feeds on.
    if (c_.cfg.opt.migratory)
        e.mig.noteUpgrade(req);
    InvalList invals;
    collectSharers(
        e.sharers,
        [&](ProcId q) { return c_.topo.nodeOf(q) != req_node; },
        invals);
    const int n_invals = invals.size();
    e.busy = true;
    e.owner = req;
    e.clearSharers();
    e.addSharer(req);
    for (int i = 0; i < n_invals; ++i)
        c_.sendMsg(home, MsgType::InvalReq, invals[i], first, req);
    c_.sendMsg(home, MsgType::UpgradeReply, req, first, req,
               n_invals);
}

void
HomeAgent::onSharingWriteback(Proc &home, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(home, m, first);
    DirEntry &e =
        c_.dirs[static_cast<std::size_t>(c_.homeProc(first))]->entry(
            first);
    const BlockInfo b = c_.blockOf(first);
    const NodeId hn = home.node;

    if (c_.tables[hn]->shared(first) == LState::Invalid) {
        c_.memories[hn]->copyIn(c_.blockAddr(b), m.data.data(),
                                m.data.size());
        c_.tables[hn]->setShared(first, b.numLines, LState::Shared);
        e.addSharer(home.id);
    }
    e.addSharer(m.requester);
    unbusyAndPump(home, first);
}

void
HomeAgent::onOwnershipAck(Proc &home, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(home, m, first);
    unbusyAndPump(home, first);
}

void
HomeAgent::unbusyAndPump(Proc &p, LineIdx first)
{
    const ProcId home = c_.homeProc(first);
    HomeDirectory &dir = *c_.dirs[static_cast<std::size_t>(home)];
    DirEntry &e = dir.entry(first);
    assert(e.busy);
    e.busy = false;
    if (!e.waiting.empty()) {
        Message next = std::move(e.waiting.front());
        e.waiting.pop_front();
        dir.noteDequeued(first);
        if (home == p.id) {
            c_.handleMessage(p, std::move(next));
        } else {
            c_.reinject(home, std::move(next));
        }
    }
}

void
HomeAgent::pumpQueued(Proc &home, LineIdx first)
{
    assert(c_.topo.sameNode(home.id, c_.homeProc(first)));
    for (;;) {
        HomeDirectory &dir =
            *c_.dirs[static_cast<std::size_t>(c_.homeProc(first))];
        DirEntry &e = dir.entry(first);
        if (e.busy || e.waiting.empty())
            return;
        Message next = std::move(e.waiting.front());
        e.waiting.pop_front();
        dir.noteDequeued(first);
        c_.handleMessage(home, std::move(next));
    }
}

} // namespace shasta
