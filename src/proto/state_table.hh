/**
 * @file
 * Shared (node-level) and private (per-processor) state tables.
 *
 * One NodeStateTable exists per logical node.  The shared table is
 * what the protocol consults and updates under line locks; the
 * private tables are what the inline checks read without any
 * synchronization (Section 3.3).  The table also tracks the batch
 * markers of Section 3.4.4: while a block is marked by an in-progress
 * batch, invalidations defer storing the invalid flag until the batch
 * ends.
 */

#ifndef SHASTA_PROTO_STATE_TABLE_HH
#define SHASTA_PROTO_STATE_TABLE_HH

#include <cstdint>
#include <vector>

#include "mem/shared_heap.hh"
#include "proto/line_state.hh"

namespace shasta
{

/**
 * State tables for one logical node.
 *
 * Lines are indexed by LineIdx.  Tables grow on demand as the heap
 * grows; untouched lines are Invalid everywhere.
 */
class NodeStateTable
{
  public:
    /** @param procs_on_node number of processors sharing this node. */
    explicit NodeStateTable(int procs_on_node);

    int procsOnNode() const { return procsOnNode_; }

    /** Shared (node-level) state of @p line. */
    LState shared(LineIdx line) const;

    /** Set the shared state of lines [first, first+n). */
    void setShared(LineIdx first, std::uint32_t n, LState s);

    /** Private state of @p line for local processor @p local. */
    PState priv(LineIdx line, int local) const;

    /** Set the private state for one local processor. */
    void setPriv(LineIdx line, std::uint32_t n, int local, PState s);

    /**
     * Local processors (other than @p except_local, pass -1 for none)
     * whose private state makes a downgrade message necessary: for a
     * downgrade to Shared, processors holding Exclusive; for a
     * downgrade to Invalid, processors holding Shared or Exclusive
     * (Section 3.3).
     */
    std::vector<int> downgradeTargets(LineIdx line, bool to_invalid,
                                      int except_local) const;

    /** Hot-path variant of downgradeTargets(): writes the targets
     *  into @p out (the caller provides at least procsOnNode()
     *  slots) and returns the count, allocating nothing. */
    int downgradeTargets(LineIdx line, bool to_invalid,
                         int except_local, int *out) const;

    /** Downgrade one processor's private entry for a whole block. */
    void downgradePriv(LineIdx first, std::uint32_t n, int local,
                       bool to_invalid);

    /** @{ Batch markers (Section 3.4.4). */
    void mark(LineIdx line);
    void unmark(LineIdx line);
    bool marked(LineIdx line) const;
    /** Total marked blocks on the node (acquires stall while > 0). */
    int markedCount() const { return markedCount_; }
    /** @} */

    /** @{ Deferred invalid-flag fills for marked blocks. */
    void deferFlagFill(LineIdx line);
    bool flagFillDeferred(LineIdx line) const;
    void clearDeferredFill(LineIdx line);
    /** @} */

    /** @{ Non-growing accessors for audit sweeps.  shared()/priv()
     *  lazily grow the (mutable) tables, so an auditor iterating
     *  "every known line" must not use them: peek variants return
     *  Invalid beyond the grown range and never allocate. */
    /** Number of lines the shared table has grown to cover. */
    LineIdx
    knownLines() const
    {
        return static_cast<LineIdx>(shared_.size());
    }

    LState
    peekShared(LineIdx line) const
    {
        return line < shared_.size() ? shared_[line]
                                     : LState::Invalid;
    }

    PState
    peekPriv(LineIdx line, int local) const
    {
        const auto &t = priv_[static_cast<std::size_t>(local)];
        return line < t.size() ? t[line] : PState::Invalid;
    }

    bool
    peekMarked(LineIdx line) const
    {
        return line < markCount_.size() && markCount_[line] > 0;
    }

    bool
    peekDeferredFill(LineIdx line) const
    {
        return line < deferredFill_.size() && deferredFill_[line];
    }
    /** @} */

  private:
    void growTo(LineIdx line) const;

    int procsOnNode_;
    mutable std::vector<LState> shared_;
    /** Private tables, one vector per local processor. */
    mutable std::vector<std::vector<PState>> priv_;
    mutable std::vector<std::uint8_t> markCount_;
    mutable std::vector<bool> deferredFill_;
    int markedCount_ = 0;
};

} // namespace shasta

#endif // SHASTA_PROTO_STATE_TABLE_HH
