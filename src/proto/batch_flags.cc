/**
 * @file
 * DowngradeEngine batch-marker methods (Section 3.4.4): marking
 * blocks covered by an in-flight batch so invalid-flag fills are
 * deferred, re-propagating batched stores on unmark, and resuming
 * acquires parked behind outstanding marks.  Split from
 * downgrade_engine.cc to keep each protocol TU focused and small.
 */

#include "proto/downgrade_engine.hh"

#include <algorithm>
#include <cassert>

#include "proto/requester_agent.hh"
#include "sim/trace.hh"

namespace shasta
{

// ---------------------------------------------------------------------
// Batch markers (Section 3.4.4)
// ---------------------------------------------------------------------

bool
DowngradeEngine::batchLinesReady(const Proc &p, LineIdx first,
                                 std::uint32_t n, bool is_write) const
{
    auto &tab = *c_.tables[p.node];
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!privateSufficient(tab.priv(first + i, p.local),
                               is_write))
            return false;
    }
    return true;
}

void
DowngradeEngine::batchMark(NodeId node, LineIdx first,
                           std::uint32_t n)
{
    SHASTA_TRACE_EVENT(trace::Flag::Batch, c_.tx.now(), -1,
                       "node %d marks lines %u+%u", node,
                       static_cast<unsigned>(first),
                       static_cast<unsigned>(n));
    auto &tab = *c_.tables[node];
    LineIdx line = first;
    while (line < first + n) {
        const BlockInfo b = c_.blockOf(line);
        tab.mark(b.firstLine);
        line = b.firstLine + b.numLines;
    }
}

void
DowngradeEngine::batchUnmark(Proc &p, LineIdx first, std::uint32_t n,
                             bool is_write, Addr store_base,
                             int store_len)
{
    const NodeId node = p.node;
    auto &tab = *c_.tables[node];
    auto &mt = *c_.missTables[node];

    LineIdx line = first;
    while (line < first + n) {
        const BlockInfo b = c_.blockOf(line);
        const LineIdx bf = b.firstLine;
        tab.unmark(bf);

        if (is_write && store_len > 0) {
            // Re-propagate batched stores if the block lost its
            // exclusivity while the batch handler was waiting.
            const Addr baddr = c_.blockAddr(b);
            const Addr lo = std::max(store_base, baddr);
            const Addr hi =
                std::min(store_base + static_cast<Addr>(store_len),
                         baddr + static_cast<Addr>(c_.blockBytes(b)));
            if (lo < hi) {
                const LState s = tab.shared(bf);
                MissEntry *e = mt.find(bf);
                switch (s) {
                  case LState::Exclusive:
                  case LState::PendDownShared:
                  case LState::PendDownInvalid:
                    // Still writable, or mid-downgrade (the
                    // completion snapshot will carry the stores).
                    break;
                  case LState::PendEx:
                    assert(e && e->wantWrite);
                    e->markDirty(lo - baddr,
                                 static_cast<std::size_t>(hi - lo));
                    break;
                  case LState::PendRead:
                    assert(e);
                    if (!e->wantWrite) {
                        e->wantWrite = true;
                        e->writeInitiator = p.id;
                        e->epoch = c_.epochs[node]->startWrite();
                        ++p.outstandingWrites;
                    }
                    e->markDirty(lo - baddr,
                                 static_cast<std::size_t>(hi - lo));
                    break;
                  case LState::Shared:
                  case LState::Invalid:
                    // The store throttle is bypassed here: this is
                    // a synchronous cleanup path that cannot park.
                    c_.requester->startWrite(p, bf,
                                             s == LState::Shared, lo,
                                             static_cast<int>(hi -
                                                             lo));
                    break;
                }
            }
        }
        if (tab.flagFillDeferred(bf) && !tab.marked(bf)) {
            tab.clearDeferredFill(bf);
            const LState s = tab.shared(bf);
            // Apply the deferred fill AFTER the store re-propagation
            // above has marked its bytes dirty (the fill skips dirty
            // bytes), and only if the node still has no
            // valid data: a refetch may have completed during the
            // batch (possibly followed by an upgrade, leaving
            // PendEx with a Shared prior), and filling then would
            // plant the flag inside a valid copy.
            const MissEntry *fe = mt.find(bf);
            const bool no_valid_data =
                s == LState::Invalid || s == LState::PendRead ||
                (s == LState::PendEx && fe &&
                 fe->prior == LState::Invalid);
            if (no_valid_data)
                applyInvalidFill(node, bf);
        }

        line = bf + b.numLines;
    }

    if (tab.markedCount() == 0 &&
        !c_.acquireWaiters[static_cast<std::size_t>(node)].empty()) {
        std::vector<Waiter> waiters;
        waiters.swap(
            c_.acquireWaiters[static_cast<std::size_t>(node)]);
        for (auto &w : waiters) {
            Proc &wp = c_.procs[static_cast<std::size_t>(w.proc)];
            wp.now = std::max({wp.now, w.stallStart, p.now});
            if (c_.measuring)
                wp.bd.sync += wp.now - w.stallStart;
            wp.status = ProcStatus::Running;
            w.handle.resume();
        }
    }
}

bool
DowngradeEngine::nodeHasMarks(NodeId node) const
{
    return c_.tables[static_cast<std::size_t>(node)]->markedCount() >
           0;
}

void
DowngradeEngine::parkAcquire(Proc &p, std::coroutine_handle<> h)
{
    c_.acquireWaiters[static_cast<std::size_t>(p.node)].push_back(
        Waiter{h, p.id, p.now, StallKind::Sync});
    c_.noteBlocked(p);
}


} // namespace shasta
