/**
 * @file
 * Shared context of the coherence protocol agents.
 *
 * The protocol engine is split into three agents — HomeAgent
 * (directory side), RequesterAgent (miss side) and DowngradeEngine
 * (intra-node downgrades and batch markers) — that all operate on
 * one ProtocolCore.  The core owns the per-node infrastructure
 * (memory images, state tables, miss tables, epochs, line locks,
 * home directories) and the message plumbing: sending, delivery,
 * mailbox draining, and the static per-type dispatch table that
 * routes a received message to the owning agent's handler.
 *
 * The Protocol facade (protocol.hh) wires the agents to the core and
 * re-exports the public API; nothing outside src/proto should need
 * this header.
 */

#ifndef SHASTA_PROTO_PROTO_CORE_HH
#define SHASTA_PROTO_PROTO_CORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsm/config.hh"
#include "dsm/proc.hh"
#include "mem/node_memory.hh"
#include "mem/shared_heap.hh"
#include "net/transport.hh"
#include "proto/directory.hh"
#include "proto/epoch.hh"
#include "proto/line_lock.hh"
#include "proto/miss_table.hh"
#include "proto/state_table.hh"
#include "stats/counters.hh"

namespace shasta
{

class HomeAgent;
class RequesterAgent;
class DowngradeEngine;
class GranularityAdvisor;

struct ProtocolCore
{
    ProtocolCore(const DsmConfig &cfg, Transport &tx,
                 SharedHeap &heap, std::vector<Proc> &procs);

    /** @{ Shared infrastructure. */
    const DsmConfig &cfg;
    /** The execution backend's transport (the simulated Network or
     *  the thread backend).  The protocol layer never touches the
     *  EventQueue or OS threads directly — this seam is what lets
     *  the same agents run on either substrate. */
    Transport &tx;
    SharedHeap &heap;
    std::vector<Proc> &procs;
    Topology topo;
    bool smp;

    std::vector<std::unique_ptr<NodeMemory>> memories;
    std::vector<std::unique_ptr<NodeStateTable>> tables;
    std::vector<std::unique_ptr<MissTable>> missTables;
    std::vector<std::unique_ptr<EpochTracker>> epochs;
    std::vector<std::unique_ptr<LineLockPool>> locks;
    std::vector<std::unique_ptr<HomeDirectory>> dirs;

    /** Page home overrides (page number -> processor). */
    std::unordered_map<std::uint64_t, ProcId> pageHomes;

    /** Per-node waiters for "no marked blocks" (acquire stalls). */
    std::vector<std::vector<Waiter>> acquireWaiters;

    using SyncHandler = std::function<void(Proc &, Message &&)>;
    SyncHandler syncHandler;
    /** Per-node protocol counter shards.  Handlers increment the
     *  shard of the processor they run on, so with one thread per
     *  node no counter is ever written from two threads.  All fields
     *  are integer sums, so the aggregate (Protocol::counters()) is
     *  exact and byte-identical to the former single instance. */
    std::vector<ProtoCounters> ctrShards;
    bool measuring = true;
    /** @} */

    /** The counter shard of node @p n. */
    ProtoCounters &
    ctr(NodeId n)
    {
        return ctrShards[static_cast<std::size_t>(n)];
    }

    /** @{ Agents, wired by the Protocol facade (non-owning). */
    HomeAgent *home = nullptr;
    RequesterAgent *requester = nullptr;
    DowngradeEngine *downgrade = nullptr;
    /** @} */

    /** Granularity profiler (opt.adaptive), attached per Runtime via
     *  Runtime::setGranularityAdvisor; null in every normal run, so
     *  the attribution hooks in the slow paths cost one pointer test
     *  and golden schedules never see it. */
    GranularityAdvisor *advisor = nullptr;

    /** @{ Address and geometry helpers. */
    ProcId homeProc(LineIdx line) const;
    void setPageHome(Addr base, std::size_t len, ProcId home_proc);
    void onAlloc(Addr base, std::size_t bytes);

    BlockInfo blockOf(LineIdx line) const { return heap.blockOf(line); }

    int
    blockBytes(const BlockInfo &b) const
    {
        return static_cast<int>(b.numLines) * heap.lineSize();
    }

    Addr
    blockAddr(const BlockInfo &b) const
    {
        return heap.lineAddr(b.firstLine);
    }
    /** @} */

    /** @{ Message plumbing. */
    /** Send a protocol message from @p from (handles accounting;
     *  self-sends and colocated directory ops dispatch inline). */
    void sendMsg(Proc &from, MsgType type, ProcId dst, LineIdx block,
                 ProcId requester_id, int count = 0,
                 Payload data = {});

    /** Send an arbitrary message (synchronization managers). */
    void sendRaw(Proc &from, Message &&m);

    /** Re-inject a message into @p dst's mailbox at the current time
     *  (used to replay queued requests). */
    void reinject(ProcId dst, Message &&m);

    /** Deliver callback installed on the network. */
    void deliver(Message &&m);

    /** Drain @p p's mailbox.  Reentrancy-safe. */
    void drainMailbox(Proc &p);

    /** Dispatch one delivered message through the handler table on
     *  processor @p p's clock. */
    void handleMessage(Proc &p, Message &&m);

    /** Charge receive-dispatch plus the handler cost of @p m's cost
     *  class, plus the line lock for @p line, on @p p's clock. */
    void chargeHandler(Proc &p, const Message &m, LineIdx line);

    /** Simulated cost of the handler for cost class @p c. */
    Tick handlerCost(MsgCostClass c) const;

    /** Mark @p p blocked; schedules a drain if mail is queued. */
    void noteBlocked(Proc &p);
    /** @} */

    /** @{ Cross-agent protocol helpers. */
    /** Resume every load/retry waiter of an entry. */
    void resumeWaiters(MissEntry &e, bool loads, bool retries,
                       Tick when);

    /** Replay requests that arrived before the data reply. */
    void drainQueuedRemote(Proc &p, LineIdx first);

    /** Erase node @p node's entry for @p first if nothing references
     *  it anymore.  Restricted to one node (the caller's) so the
     *  thread backend never touches another worker's miss table. */
    void maybeErase(NodeId node, LineIdx first);
    /** @} */

    /** @{ Diagnostics. */
    std::size_t pendingTransactions() const;
    std::string dumpPending() const;

    /** Aggregate every home's shard occupancy/queue counters (the
     *  stats JSON "directory" block). */
    DirCounters dirCounters() const;
    /** @} */

    /** Per-node latency histogram shards (miss classes, downgrade
     *  service, lock/barrier wait).  Heap-indirect and declared
     *  last: the histograms are several KB of cold bucket storage,
     *  and keeping them out of ProtoCounters keeps the hot counters
     *  small and cheap to snapshot and reset by value.  Allocated
     *  once in the constructor (from dedicated pages -- see
     *  LatencyStats::operator new), so the steady-state hot path
     *  stays allocation-free.  Sharded per node for the same reason
     *  as ctrShards; histogram buckets are counts, so the merged
     *  view is exact. */
    std::vector<std::unique_ptr<LatencyStats>> latShards;

    /** The latency shard of node @p n. */
    LatencyStats &
    latOf(NodeId n)
    {
        return *latShards[static_cast<std::size_t>(n)];
    }
};

} // namespace shasta

#endif // SHASTA_PROTO_PROTO_CORE_HH
