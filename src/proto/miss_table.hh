/**
 * @file
 * Per-node miss table.
 *
 * Information about a pending request for a block is kept in a miss
 * entry (Section 2.1).  The entry supports Shasta's aggressive
 * memory-system emulation: non-blocking stores record the bytes they
 * wrote so the eventual reply can be merged around them; stalled
 * loads park as waiters; requests from multiple processors on a node
 * are merged into one entry (Section 3.4.2).  The entry also carries
 * the downgrade bookkeeping of Section 3.4.3: how many downgrade
 * messages are outstanding and the protocol action the *last*
 * downgrading processor must execute.
 */

#ifndef SHASTA_PROTO_MISS_TABLE_HH
#define SHASTA_PROTO_MISS_TABLE_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mem/shared_heap.hh"
#include "net/message.hh"
#include "net/topology.hh"
#include "proto/downgrade_action.hh"
#include "proto/line_state.hh"
#include "sim/ticks.hh"

namespace shasta
{

/** Which stall bucket a parked coroutine charges on resume. */
enum class StallKind
{
    Read,
    Write,
    Sync,
};

/** A coroutine parked on a miss entry. */
struct Waiter
{
    std::coroutine_handle<> handle;
    ProcId proc = -1;
    /** Local time the processor stalled (for stall attribution). */
    Tick stallStart = 0;
    StallKind kind = StallKind::Read;
};

/** Pending-request state for one block on one node. */
struct MissEntry
{
    LineIdx firstLine = 0;
    std::uint32_t numLines = 0;

    /** Node state before the outstanding request (Invalid or Shared);
     *  meaningful while the node state is PendEx. */
    LState prior = LState::Invalid;

    /** A write (read-exclusive or upgrade) has been requested. */
    bool wantWrite = false;
    /** The write request has actually been sent (it may be deferred
     *  behind an outstanding read for the same block). */
    bool writeIssued = false;
    /** A read request has been sent. */
    bool readIssued = false;

    /** Local processor that sent the outstanding request. */
    ProcId initiator = -1;
    /** Local processor whose store created the write transaction
     *  (may differ from the read initiator when a store lands on a
     *  block whose read is still outstanding). */
    ProcId writeInitiator = -1;

    /** Loads stalled until data arrives. */
    std::vector<Waiter> loadWaiters;
    /** Accesses stalled until the current transient resolves; they
     *  re-execute their inline check when resumed. */
    std::vector<Waiter> retryWaiters;

    /** Byte mask of locally stored (newer-than-reply) data. */
    std::vector<bool> dirty;
    bool dirtyAny = false;

    /** @{ Write-transaction completion tracking (eager release
     *  consistency: data may be used before all acks arrive). */
    int acksExpected = -1; ///< -1 until the reply tells us
    int acksReceived = 0;
    bool dataArrived = false;
    /** Epoch in which the write was issued (Section 3.4.2). */
    std::uint64_t epoch = 0;
    /** @} */

    /** @{ Downgrade bookkeeping (Section 3.4.3). */
    int downgradesLeft = 0;
    /** Action executed by the processor handling the last downgrade
     *  message, on that processor's clock. */
    DowngradeAction savedAction;
    /** Whether the active downgrade is to Invalid (vs Shared). */
    bool savedToInvalid = false;
    /** Remote requests that arrived during the downgrade. */
    std::deque<Message> queuedRemote;
    /** @} */

    /** When the outstanding request was issued (latency stats). */
    Tick issueTime = 0;
    /** When the current downgrade round started.  Pure-downgrade
     *  entries (no request outstanding) have issueTime == 0, so the
     *  watchdog ages them from this timestamp instead. */
    Tick downgradeStart = 0;

    bool downgradeActive() const { return downgradesLeft > 0; }

    void
    markDirty(std::size_t offset, std::size_t len)
    {
        const std::size_t line_bytes = dirty.size();
        (void)line_bytes;
        for (std::size_t i = 0; i < len; ++i)
            dirty[offset + i] = true;
        dirtyAny = true;
    }
};

/**
 * Map from block (first line) to miss entry for one node.
 */
class MissTable
{
  public:
    /** Get or create the entry for a block. */
    MissEntry &
    ensure(LineIdx first, std::uint32_t num_lines, int block_bytes)
    {
        auto [it, inserted] = entries_.try_emplace(first);
        MissEntry &e = it->second;
        if (inserted) {
            e.firstLine = first;
            e.numLines = num_lines;
            e.dirty.assign(static_cast<std::size_t>(block_bytes),
                           false);
        }
        return e;
    }

    MissEntry *
    find(LineIdx first)
    {
        auto it = entries_.find(first);
        return it == entries_.end() ? nullptr : &it->second;
    }

    const MissEntry *
    find(LineIdx first) const
    {
        auto it = entries_.find(first);
        return it == entries_.end() ? nullptr : &it->second;
    }

    void
    erase(LineIdx first)
    {
        entries_.erase(first);
    }

    std::size_t size() const { return entries_.size(); }

    bool empty() const { return entries_.empty(); }

    /** Iteration for diagnostics and drain checks. */
    const std::unordered_map<LineIdx, MissEntry> &
    entries() const
    {
        return entries_;
    }

  private:
    std::unordered_map<LineIdx, MissEntry> entries_;
};

} // namespace shasta

#endif // SHASTA_PROTO_MISS_TABLE_HH
