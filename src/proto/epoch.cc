#include "proto/epoch.hh"

#include <cassert>
#include <utility>

namespace shasta
{

std::uint64_t
EpochTracker::startWrite()
{
    ++perEpoch_[current_];
    ++totalOutstanding_;
    return current_;
}

void
EpochTracker::completeWrite(std::uint64_t epoch)
{
    auto it = perEpoch_.find(epoch);
    assert(it != perEpoch_.end() && it->second > 0);
    if (--it->second == 0)
        perEpoch_.erase(it);
    --totalOutstanding_;
    checkWaiters();
}

bool
EpochTracker::quiescentThrough(std::uint64_t up_to) const
{
    auto it = perEpoch_.begin();
    return it == perEpoch_.end() || it->first > up_to;
}

void
EpochTracker::release(Ready ready)
{
    const std::uint64_t up_to = current_;
    ++current_;
    if (quiescentThrough(up_to)) {
        ready();
    } else {
        waiters_.push_back(ReleaseWaiter{up_to, std::move(ready)});
    }
}

void
EpochTracker::checkWaiters()
{
    // Resume every release whose prior epochs have drained.  Swap out
    // the list first: a resumed release may start new writes or new
    // releases reentrantly.
    std::vector<ReleaseWaiter> still;
    std::vector<ReleaseWaiter> ready;
    for (auto &w : waiters_) {
        if (quiescentThrough(w.upTo))
            ready.push_back(std::move(w));
        else
            still.push_back(std::move(w));
    }
    waiters_ = std::move(still);
    for (auto &w : ready)
        w.ready();
}

} // namespace shasta
