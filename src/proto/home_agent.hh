/**
 * @file
 * Directory-side agent of the coherence protocol.
 *
 * The HomeAgent runs on the home processor of a block and handles the
 * three request types (read, read-exclusive, upgrade), the messages
 * that close a transaction at the home (sharing writeback, ownership
 * ack), and the busy-entry queue pumping that serializes transactions
 * per block (Sections 2.1 and 3.4.2).
 */

#ifndef SHASTA_PROTO_HOME_AGENT_HH
#define SHASTA_PROTO_HOME_AGENT_HH

#include "proto/proto_core.hh"

namespace shasta
{

class HomeAgent
{
  public:
    explicit HomeAgent(ProtocolCore &core) : c_(core) {}

    /** @{ Message handlers (dispatched via the core's table). */
    void onReadReq(Proc &home, Message &&m);
    void onReadExReq(Proc &home, Message &&m);
    void onUpgradeReq(Proc &home, Message &&m);
    void onSharingWriteback(Proc &home, Message &&m);
    void onOwnershipAck(Proc &home, Message &&m);
    /** @} */

    /** Unbusy the directory entry and replay one queued request.
     *  Public: the DowngradeEngine's home-read-serve action closes
     *  the transaction through here. */
    void unbusyAndPump(Proc &p, LineIdx first);

  private:
    /** Replay queued requests at the home while the entry is idle
     *  (needed after a serve that never set busy). */
    void pumpQueued(Proc &home, LineIdx first);

    /** Representative sharer of @p node in @p e, or -1. */
    ProcId sharerRepOf(const DirEntry &e, NodeId node) const;

    ProtocolCore &c_;
};

} // namespace shasta

#endif // SHASTA_PROTO_HOME_AGENT_HH
