#include "proto/miss_table.hh"

// MissTable is header-only; this translation unit compiles the header
// standalone.

namespace shasta
{
} // namespace shasta
