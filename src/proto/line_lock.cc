#include "proto/line_lock.hh"

#include <bit>
#include <cassert>

namespace shasta
{

LineLockPool::LineLockPool(bool enabled, Tick cost, int pool_size)
    : enabled_(enabled), cost_(cost)
{
    assert(pool_size > 0 &&
           std::has_single_bit(static_cast<unsigned>(pool_size)));
    shift_ = 64 - std::countr_zero(static_cast<unsigned>(pool_size));
    perLock_.assign(static_cast<std::size_t>(pool_size), 0);
}

double
LineLockPool::poolUtilization() const
{
    if (perLock_.empty())
        return 0.0;
    std::size_t used = 0;
    for (auto c : perLock_) {
        if (c > 0)
            ++used;
    }
    return static_cast<double>(used) /
           static_cast<double>(perLock_.size());
}

} // namespace shasta
