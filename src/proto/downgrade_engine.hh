/**
 * @file
 * Intra-node downgrades and batch markers (Sections 3.3, 3.4.3,
 * 3.4.4).
 *
 * Incoming requests that reduce a node's rights to a block may not
 * simply flip the state table: a colocated processor might be between
 * its inline check and the checked access.  Instead, the handling
 * processor downgrades its own private entry, consults the other
 * private tables, and sends explicit downgrade messages to exactly
 * the processors that have accessed the block.  Each recipient
 * downgrades its private entry at a poll point; the one that handles
 * the *last* message executes the saved protocol action (snapshot the
 * data, write the invalid flag, send the reply).  Processors are
 * never stalled during a downgrade.
 *
 * The engine also owns the handlers for the request types that
 * *trigger* downgrades on a non-home node (forwarded reads,
 * forwarded read-exclusives, invalidations) and the batch-marker
 * machinery that defers invalid-flag fills while a batch is
 * mid-flight.
 */

#ifndef SHASTA_PROTO_DOWNGRADE_ENGINE_HH
#define SHASTA_PROTO_DOWNGRADE_ENGINE_HH

#include <coroutine>

#include "proto/downgrade_action.hh"
#include "proto/proto_core.hh"

namespace shasta
{

class DowngradeEngine
{
  public:
    explicit DowngradeEngine(ProtocolCore &core) : c_(core) {}

    /**
     * Downgrade the node's copy of a block, sending downgrade
     * messages to local processors whose private state requires it.
     * @p action runs (possibly on another local processor) once all
     * downgrades complete, against a pre-fill snapshot of the block
     * data.  Section 3.4.3.
     */
    void downgradeNode(Proc &p, LineIdx first, bool to_invalid,
                       DowngradeAction action);

    /** @{ Message handlers (dispatched via the core's table). */
    void onDowngrade(Proc &q, Message &&m);
    void onFwdReadReq(Proc &owner, Message &&m);
    void onFwdReadExReq(Proc &owner, Message &&m);
    void onFwdReadMigReq(Proc &owner, Message &&m);
    void onInvalReq(Proc &p, Message &&m);
    /** @} */

    /** @{ Batch support (Section 3.4.4). */
    bool batchLinesReady(const Proc &p, LineIdx first,
                         std::uint32_t n, bool is_write) const;
    void batchMark(NodeId node, LineIdx first, std::uint32_t n);
    void batchUnmark(Proc &p, LineIdx first, std::uint32_t n,
                     bool is_write, Addr store_base, int store_len);
    bool nodeHasMarks(NodeId node) const;
    void parkAcquire(Proc &p, std::coroutine_handle<> h);
    /** @} */

  private:
    /** If the block has a transient that must defer @p m (an active
     *  downgrade, or an in-flight data reply this request may have
     *  overtaken), queue it on the miss entry and return true. */
    bool queueIfTransient(Proc &p, LineIdx first, Message &m);

    /** Final step of a downgrade: snapshot, state change, flag fill
     *  (deferred if the block is batch-marked), then the action. */
    void completeDowngrade(Proc &p, LineIdx first, bool to_invalid,
                           const DowngradeAction &action);

    /** Execute a completed downgrade's saved protocol action with
     *  the pre-fill data snapshot. */
    void runAction(Proc &p, LineIdx first,
                   const DowngradeAction &action, Payload &&snapshot);

    /** Apply the invalid flag to a block, skipping dirty bytes and
     *  honoring batch markers. */
    void applyInvalidFill(NodeId node, LineIdx first);

    ProtocolCore &c_;
};

} // namespace shasta

#endif // SHASTA_PROTO_DOWNGRADE_ENGINE_HH
