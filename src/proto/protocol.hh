/**
 * @file
 * The Shasta / SMP-Shasta coherence protocol engine.
 *
 * One Protocol instance drives all coherence in a run.  It owns the
 * per-node memory images, shared and private state tables, miss
 * tables, epochs and line-lock pools, and the per-processor home
 * directories.  The DSM Context layer calls into it on inline-check
 * misses; the message layer calls into it to dispatch delivered
 * messages.
 *
 * Protocol summary (Sections 2.1 and 3.4 of the paper):
 *
 *  - Directory-based invalidation protocol with three request types
 *    (read, read-exclusive, upgrade).  A home processor per page
 *    keeps the owner pointer and sharer bit vector; requests that
 *    cannot be served at the home are forwarded to the owner.
 *    Transactions are serialized per block at the home (busy entries
 *    queue later requests).
 *  - Non-blocking stores: a write miss records its bytes in the miss
 *    entry's dirty mask and the processor continues; the eventual
 *    data reply is merged around the dirty bytes.
 *  - Eager release consistency: read-exclusive data may be used
 *    before all invalidation acks arrive; releases wait for the
 *    node's earlier-epoch writes (EpochTracker).
 *  - SMP extensions: processors on a node share the memory image and
 *    the shared state table; inline checks read per-processor private
 *    tables.  Incoming requests that downgrade the node's state send
 *    explicit downgrade messages to exactly the local processors
 *    whose private state shows they accessed the block; the processor
 *    that handles the last downgrade message executes the saved
 *    protocol action (data snapshot, flag fill, reply).
 */

#ifndef SHASTA_PROTO_PROTOCOL_HH
#define SHASTA_PROTO_PROTOCOL_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsm/config.hh"
#include "dsm/proc.hh"
#include "mem/node_memory.hh"
#include "mem/shared_heap.hh"
#include "net/network.hh"
#include "proto/directory.hh"
#include "proto/epoch.hh"
#include "proto/line_lock.hh"
#include "proto/miss_table.hh"
#include "proto/state_table.hh"
#include "stats/counters.hh"

namespace shasta
{

/** Result of attempting to resolve a miss without suspending. */
enum class MissOutcome
{
    /** The access may proceed against valid local data. */
    Resolved,
    /** A write may proceed non-blocking; the caller must store the
     *  bytes and the protocol has marked them dirty. */
    ResolvedPending,
    /** The caller must park as a load waiter (resumed when the data
     *  becomes valid; the load is then guaranteed to succeed). */
    WaitData,
    /** The caller must park as a retry waiter and re-run its check. */
    WaitRetry,
    /** The caller must park until the store throttle clears. */
    WaitThrottle,
};

/**
 * The coherence protocol engine.
 */
class Protocol
{
  public:
    Protocol(const DsmConfig &cfg, EventQueue &events, Network &net,
             SharedHeap &heap, std::vector<Proc> &procs);

    /** @{ Infrastructure accessors. */
    NodeMemory &memory(NodeId n) { return *memories_[n]; }
    NodeStateTable &table(NodeId n) { return *tables_[n]; }
    const NodeStateTable &table(NodeId n) const { return *tables_[n]; }
    EpochTracker &epochs(NodeId n) { return *epochs_[n]; }
    const EpochTracker &epochs(NodeId n) const { return *epochs_[n]; }
    ProtoCounters &counters() { return counters_; }
    const ProtoCounters &counters() const { return counters_; }
    const Topology &topology() const { return topo_; }
    const SharedHeap &heap() const { return heap_; }
    /** @} */

    /** @{ Audit accessors: the invariant auditor sweeps these
     *  structures read-only; the non-const variants exist for
     *  fault-injection tests. */
    MissTable &missTable(NodeId n) { return *missTables_[n]; }
    const MissTable &missTable(NodeId n) const
    {
        return *missTables_[n];
    }
    HomeDirectory &directory(ProcId p) { return *dirs_[p]; }
    const HomeDirectory &directory(ProcId p) const
    {
        return *dirs_[p];
    }
    /** @} */

    /** Home processor of @p line (page-granular, round-robin unless
     *  overridden by placement hints). */
    ProcId homeProc(LineIdx line) const;

    /** Override the home of the pages covering [base, base+len). */
    void setPageHome(Addr base, std::size_t len, ProcId home);

    /**
     * Register a fresh allocation: the home node of each line starts
     * with an exclusive, zero-filled copy; all other nodes start
     * invalid with the invalid flag written into their images.
     */
    void onAlloc(Addr base, std::size_t bytes);

    /** @{ Fast-path queries for the inline checks (no cost). */
    PState
    privState(const Proc &p, LineIdx line) const
    {
        return tables_[p.node]->priv(line, p.local);
    }

    LState
    nodeState(NodeId n, LineIdx line) const
    {
        return tables_[n]->shared(line);
    }
    /** @} */

    /**
     * Slow path of a load whose inline check failed.  Charges
     * protocol costs on @p p's clock.  On WaitData/WaitRetry the
     * caller parks via parkLoad()/parkRetry().
     */
    MissOutcome loadMiss(Proc &p, LineIdx line);

    /**
     * Slow path of a store whose inline check failed.  On
     * ResolvedPending the protocol has recorded [addr, addr+len) as
     * dirty; the caller then performs the store.
     */
    MissOutcome storeMiss(Proc &p, LineIdx line, Addr addr, int len);

    /** Park @p h on the block's miss entry until data is valid. */
    void parkLoad(Proc &p, LineIdx line, std::coroutine_handle<> h);

    /** Park @p h until the block's transient resolves; the caller
     *  re-runs its check on resume.  @p kind selects the stall
     *  bucket. */
    void parkRetry(Proc &p, LineIdx line, std::coroutine_handle<> h,
                   StallKind kind);

    /** Park @p h until the processor's store throttle clears. */
    void parkThrottle(Proc &p, std::coroutine_handle<> h);

    /**
     * Mark @p p blocked.  A blocked processor polls continuously, so
     * any mail already queued must still be handled: if the mailbox
     * is non-empty a drain event is scheduled at the processor's
     * current time.  Every transition to Blocked must go through
     * here.
     */
    void noteBlocked(Proc &p);

    /** @{ Batch support (Section 3.4.4). */
    /** True if every line in [first, first+n) is sufficient for the
     *  given access kind on @p p's private table. */
    bool batchLinesReady(const Proc &p, LineIdx first,
                         std::uint32_t n, bool is_write) const;

    /** Mark the blocks covering [first, first+n): invalidations of
     *  marked blocks defer their flag fill. */
    void batchMark(NodeId node, LineIdx first, std::uint32_t n);

    /** Unmark and apply any deferred flag fills; re-issues a write
     *  transaction for store ranges whose block lost exclusivity
     *  while the batch was waiting. */
    void batchUnmark(Proc &p, LineIdx first, std::uint32_t n,
                     bool is_write, Addr store_base, int store_len);

    /** Park @p h until the node has no marked blocks (acquires stall
     *  while a batch is mid-flight on the node, footnote 3). */
    bool nodeHasMarks(NodeId node) const;
    void parkAcquire(Proc &p, std::coroutine_handle<> h);
    /** @} */

    /**
     * Perform the release half of a synchronization operation: start
     * a new epoch and invoke @p done once all earlier-epoch writes of
     * the node have completed.
     */
    void releaseFence(Proc &p, std::function<void()> done);

    /** Dispatch one delivered message on processor @p p's clock. */
    void handleMessage(Proc &p, Message &&m);

    /**
     * Drain @p p's mailbox (used on delivery to non-running
     * processors and at poll points).  Reentrancy-safe.
     */
    void drainMailbox(Proc &p);

    /** Deliver callback installed on the network. */
    void deliver(Message &&m);

    /** Install a handler for synchronization message types. */
    using SyncHandler = std::function<void(Proc &, Message &&)>;
    void setSyncHandler(SyncHandler h) { syncHandler_ = std::move(h); }

    /** Send an arbitrary message (used by the synchronization
     *  managers); self-sends dispatch inline without a message. */
    void sendRaw(Proc &from, Message &&m);

    /** Whether stats are currently being accumulated. */
    void setMeasuring(bool on) { measuring_ = on; }
    bool measuring() const { return measuring_; }

    /** Zero all protocol counters. */
    void resetCounters() { counters_ = ProtoCounters{}; }

    /** Pending transactions across all nodes (for drain checks). */
    std::size_t pendingTransactions() const;

    /** Human-readable dump of every pending miss entry and busy
     *  directory entry (deadlock diagnostics). */
    std::string dumpPending() const;

  private:
    /** @{ Message handlers, one per type. */
    void onReadReq(Proc &home, Message &&m);
    void onReadExReq(Proc &home, Message &&m);
    void onUpgradeReq(Proc &home, Message &&m);
    void onFwdReadReq(Proc &owner, Message &&m);
    void onFwdReadExReq(Proc &owner, Message &&m);
    void onInvalReq(Proc &p, Message &&m);
    void onInvalAck(Proc &p, Message &&m);
    void onReadReply(Proc &p, Message &&m);
    void onReadExReply(Proc &p, Message &&m);
    void onUpgradeReply(Proc &p, Message &&m);
    void onSharingWriteback(Proc &home, Message &&m);
    void onOwnershipAck(Proc &home, Message &&m);
    void onDowngrade(Proc &p, Message &&m);
    /** @} */

    /** Send a message from @p from (handles accounting). */
    void sendMsg(Proc &from, MsgType type, ProcId dst, LineIdx block,
                 ProcId requester, int count = 0,
                 std::vector<std::uint8_t> data = {});

    /** Re-inject a message into @p dst's mailbox at the current time
     *  (used to replay queued requests). */
    void reinject(ProcId dst, Message &&m);

    /**
     * Downgrade the node's copy of a block, sending downgrade
     * messages to local processors whose private state requires it.
     * @p action runs (possibly on another local processor) once all
     * downgrades complete, receiving a pre-fill snapshot of the block
     * data.  Section 3.4.3.
     */
    using DowngradeAction =
        std::function<void(Proc &, std::vector<std::uint8_t> &&)>;
    void downgradeNode(Proc &p, LineIdx first, bool to_invalid,
                       DowngradeAction action);

    /** Final step of a downgrade: snapshot, state change, flag fill
     *  (deferred if the block is batch-marked), then the action. */
    void completeDowngrade(Proc &p, LineIdx first, bool to_invalid,
                           const DowngradeAction &action);

    /** Apply the invalid flag to a block, skipping dirty bytes and
     *  honoring batch markers. */
    void applyInvalidFill(NodeId node, LineIdx first);

    /** Start a read transaction (node state must be Invalid). */
    void startRead(Proc &p, LineIdx first);

    /** Start a write transaction; @p had_shared selects upgrade vs
     *  read-exclusive.  [dirty_addr, dirty_addr+dirty_len) is marked
     *  dirty *before* the request is sent, because a same-processor
     *  home can complete an ack-free upgrade synchronously. */
    void startWrite(Proc &p, LineIdx first, bool had_shared,
                    Addr dirty_addr, int dirty_len);

    /** Issue the deferred upgrade recorded in @p e (a store landed on
     *  a block whose read was still outstanding). */
    void issueDeferredWrite(Proc &p, MissEntry &e);

    /** Handle reply bookkeeping common to data replies. */
    void finishReadData(Proc &p, MissEntry &e, const Message &m);

    /** Complete the write transaction if data and all acks are in. */
    void checkWriteComplete(Proc &p, LineIdx first);

    /** Replay requests that arrived before the data reply. */
    void drainQueuedRemote(Proc &p, LineIdx first);

    /** Resume every load/retry waiter of an entry. */
    void resumeWaiters(MissEntry &e, bool loads, bool retries,
                       Tick when);

    /** Erase the entry if nothing references it anymore. */
    void maybeErase(LineIdx first);

    /** Classify and count a completed miss. */
    void countMissReply(Proc &p, const Message &m, bool is_read,
                        bool is_upgrade);

    /** Unbusy the directory entry and replay one queued request. */
    void unbusyAndPump(Proc &p, LineIdx first);

    /** Replay queued requests at the home while the entry is idle
     *  (needed after a serve that never set busy). */
    void pumpQueued(Proc &home, LineIdx first);

    /** Charge receive-dispatch plus @p handler cost (and the line
     *  lock when @p locked) on @p p's clock. */
    void chargeHandler(Proc &p, const Message &m, Tick handler,
                       bool locked, LineIdx line);

    /** Representative sharer of @p node in @p e, or -1. */
    ProcId sharerRepOf(const DirEntry &e, NodeId node) const;

    /** Block info helpers. */
    BlockInfo blockOf(LineIdx line) const { return heap_.blockOf(line); }
    int
    blockBytes(const BlockInfo &b) const
    {
        return static_cast<int>(b.numLines) * heap_.lineSize();
    }
    Addr
    blockAddr(const BlockInfo &b) const
    {
        return heap_.lineAddr(b.firstLine);
    }

    const DsmConfig &cfg_;
    EventQueue &events_;
    Network &net_;
    SharedHeap &heap_;
    std::vector<Proc> &procs_;
    Topology topo_;
    bool smp_;

    std::vector<std::unique_ptr<NodeMemory>> memories_;
    std::vector<std::unique_ptr<NodeStateTable>> tables_;
    std::vector<std::unique_ptr<MissTable>> missTables_;
    std::vector<std::unique_ptr<EpochTracker>> epochs_;
    std::vector<std::unique_ptr<LineLockPool>> locks_;
    std::vector<std::unique_ptr<HomeDirectory>> dirs_;

    /** Page home overrides (page number -> processor). */
    std::unordered_map<std::uint64_t, ProcId> pageHomes_;

    /** Per-node waiters for "no marked blocks" (acquire stalls). */
    std::vector<std::vector<Waiter>> acquireWaiters_;

    SyncHandler syncHandler_;
    ProtoCounters counters_;
    bool measuring_ = true;
};

} // namespace shasta

#endif // SHASTA_PROTO_PROTOCOL_HH
