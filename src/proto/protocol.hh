/**
 * @file
 * The Shasta / SMP-Shasta coherence protocol engine (facade).
 *
 * One Protocol instance drives all coherence in a run.  Since the
 * agent decomposition it is a thin facade over three agents that
 * share a ProtocolCore context:
 *
 *  - HomeAgent (home_agent.hh): directory-side request handling and
 *    per-block transaction serialization (busy entries, queue
 *    pumping).
 *  - RequesterAgent (requester_agent.hh): inline-check slow paths,
 *    transaction issue, reply handling, write-completion tracking.
 *  - DowngradeEngine (downgrade_engine.hh): intra-node selective
 *    downgrades, the handlers that trigger them (forwards and
 *    invalidations), and batch markers.
 *
 * The core (proto_core.hh) owns the per-node infrastructure and the
 * message plumbing, including the static per-type dispatch table that
 * routes a delivered message to the right agent handler.
 *
 * Protocol summary (Sections 2.1 and 3.4 of the paper):
 *
 *  - Directory-based invalidation protocol with three request types
 *    (read, read-exclusive, upgrade).  A home processor per page
 *    keeps the owner pointer and sharer bit vector; requests that
 *    cannot be served at the home are forwarded to the owner.
 *    Transactions are serialized per block at the home (busy entries
 *    queue later requests).
 *  - Non-blocking stores: a write miss records its bytes in the miss
 *    entry's dirty mask and the processor continues; the eventual
 *    data reply is merged around the dirty bytes.
 *  - Eager release consistency: read-exclusive data may be used
 *    before all invalidation acks arrive; releases wait for the
 *    node's earlier-epoch writes (EpochTracker).
 *  - SMP extensions: processors on a node share the memory image and
 *    the shared state table; inline checks read per-processor private
 *    tables.  Incoming requests that downgrade the node's state send
 *    explicit downgrade messages to exactly the local processors
 *    whose private state shows they accessed the block; the processor
 *    that handles the last downgrade message executes the saved
 *    protocol action (data snapshot, flag fill, reply).
 */

#ifndef SHASTA_PROTO_PROTOCOL_HH
#define SHASTA_PROTO_PROTOCOL_HH

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "proto/downgrade_engine.hh"
#include "proto/home_agent.hh"
#include "proto/proto_core.hh"
#include "proto/requester_agent.hh"

namespace shasta
{

/**
 * The coherence protocol engine.
 */
class Protocol
{
  public:
    Protocol(const DsmConfig &cfg, Transport &tx, SharedHeap &heap,
             std::vector<Proc> &procs);

    /** @{ Infrastructure accessors. */
    NodeMemory &memory(NodeId n) { return *core_.memories[n]; }
    NodeStateTable &table(NodeId n) { return *core_.tables[n]; }
    const NodeStateTable &
    table(NodeId n) const
    {
        return *core_.tables[n];
    }
    EpochTracker &epochs(NodeId n) { return *core_.epochs[n]; }
    const EpochTracker &
    epochs(NodeId n) const
    {
        return *core_.epochs[n];
    }
    /** Aggregate protocol counters across the per-node shards.  All
     *  fields are integer sums, so the merged view is exact (and
     *  byte-identical to the pre-shard single instance). */
    const ProtoCounters &
    counters() const
    {
        aggCounters_ = ProtoCounters{};
        for (const ProtoCounters &s : core_.ctrShards)
            aggCounters_ += s;
        return aggCounters_;
    }

    /** Node @p n's counter shard (slow paths increment the shard of
     *  the processor they run on, keeping the thread backend free of
     *  cross-thread counter writes). */
    ProtoCounters &
    countersFor(NodeId n)
    {
        return core_.ctr(n);
    }

    /** Aggregate latency histograms across the per-node shards. */
    const LatencyStats &
    latency() const
    {
        *aggLat_ = LatencyStats{};
        for (const auto &s : core_.latShards)
            *aggLat_ += *s;
        return *aggLat_;
    }

    /** Node @p n's latency shard. */
    LatencyStats &latencyFor(NodeId n) { return core_.latOf(n); }

    /** Record one latency sample on node @p n's shard. */
    void
    recordLatency(NodeId n, LatencyClass c, Tick v)
    {
        core_.latOf(n).record(c, v);
    }

    const Topology &topology() const { return core_.topo; }
    const SharedHeap &heap() const { return core_.heap; }
    /** @} */

    /** @{ Audit accessors: the invariant auditor sweeps these
     *  structures read-only; the non-const variants exist for
     *  fault-injection tests. */
    MissTable &missTable(NodeId n) { return *core_.missTables[n]; }
    const MissTable &
    missTable(NodeId n) const
    {
        return *core_.missTables[n];
    }
    HomeDirectory &directory(ProcId p) { return *core_.dirs[p]; }
    const HomeDirectory &
    directory(ProcId p) const
    {
        return *core_.dirs[p];
    }
    /** @} */

    /** Home processor of @p line (page-granular, round-robin unless
     *  overridden by placement hints). */
    ProcId homeProc(LineIdx line) const
    {
        return core_.homeProc(line);
    }

    /** Override the home of the pages covering [base, base+len). */
    void
    setPageHome(Addr base, std::size_t len, ProcId home)
    {
        core_.setPageHome(base, len, home);
    }

    /**
     * Register a fresh allocation: the home node of each line starts
     * with an exclusive, zero-filled copy; all other nodes start
     * invalid with the invalid flag written into their images.
     */
    void
    onAlloc(Addr base, std::size_t bytes)
    {
        core_.onAlloc(base, bytes);
    }

    /** @{ Fast-path queries for the inline checks (no cost). */
    PState
    privState(const Proc &p, LineIdx line) const
    {
        return core_.tables[p.node]->priv(line, p.local);
    }

    LState
    nodeState(NodeId n, LineIdx line) const
    {
        return core_.tables[n]->shared(line);
    }
    /** @} */

    /**
     * Slow path of a load whose inline check failed.  Charges
     * protocol costs on @p p's clock.  On WaitData/WaitRetry the
     * caller parks via parkLoad()/parkRetry().  @p mig_hint marks a
     * scalar load — a migratory-grant candidate when the migratory
     * knob is on; batch resolution passes false.
     */
    MissOutcome
    loadMiss(Proc &p, LineIdx line, bool mig_hint = false)
    {
        return requester_.loadMiss(p, line, mig_hint);
    }

    /**
     * Slow path of a store whose inline check failed.  On
     * ResolvedPending the protocol has recorded [addr, addr+len) as
     * dirty; the caller then performs the store.
     */
    MissOutcome
    storeMiss(Proc &p, LineIdx line, Addr addr, int len)
    {
        return requester_.storeMiss(p, line, addr, len);
    }

    /** Park @p h on the block's miss entry until data is valid. */
    void
    parkLoad(Proc &p, LineIdx line, std::coroutine_handle<> h)
    {
        requester_.parkLoad(p, line, h);
    }

    /** Park @p h until the block's transient resolves; the caller
     *  re-runs its check on resume.  @p kind selects the stall
     *  bucket. */
    void
    parkRetry(Proc &p, LineIdx line, std::coroutine_handle<> h,
              StallKind kind)
    {
        requester_.parkRetry(p, line, h, kind);
    }

    /** Park @p h until the processor's store throttle clears. */
    void
    parkThrottle(Proc &p, std::coroutine_handle<> h)
    {
        requester_.parkThrottle(p, h);
    }

    /**
     * Mark @p p blocked.  A blocked processor polls continuously, so
     * any mail already queued must still be handled: if the mailbox
     * is non-empty a drain event is scheduled at the processor's
     * current time.  Every transition to Blocked must go through
     * here.
     */
    void noteBlocked(Proc &p) { core_.noteBlocked(p); }

    /** @{ Batch support (Section 3.4.4). */
    /** True if every line in [first, first+n) is sufficient for the
     *  given access kind on @p p's private table. */
    bool
    batchLinesReady(const Proc &p, LineIdx first, std::uint32_t n,
                    bool is_write) const
    {
        return downgrade_.batchLinesReady(p, first, n, is_write);
    }

    /** Mark the blocks covering [first, first+n): invalidations of
     *  marked blocks defer their flag fill. */
    void
    batchMark(NodeId node, LineIdx first, std::uint32_t n)
    {
        downgrade_.batchMark(node, first, n);
    }

    /** Unmark and apply any deferred flag fills; re-issues a write
     *  transaction for store ranges whose block lost exclusivity
     *  while the batch was waiting. */
    void
    batchUnmark(Proc &p, LineIdx first, std::uint32_t n,
                bool is_write, Addr store_base, int store_len)
    {
        downgrade_.batchUnmark(p, first, n, is_write, store_base,
                               store_len);
    }

    /** Park @p h until the node has no marked blocks (acquires stall
     *  while a batch is mid-flight on the node, footnote 3). */
    bool
    nodeHasMarks(NodeId node) const
    {
        return downgrade_.nodeHasMarks(node);
    }

    void
    parkAcquire(Proc &p, std::coroutine_handle<> h)
    {
        downgrade_.parkAcquire(p, h);
    }
    /** @} */

    /**
     * Perform the release half of a synchronization operation: start
     * a new epoch and invoke @p done once all earlier-epoch writes of
     * the node have completed.
     */
    void
    releaseFence(Proc &p, EpochTracker::Ready done)
    {
        core_.epochs[p.node]->release(std::move(done));
    }

    /** Dispatch one delivered message on processor @p p's clock. */
    void
    handleMessage(Proc &p, Message &&m)
    {
        core_.handleMessage(p, std::move(m));
    }

    /**
     * Drain @p p's mailbox (used on delivery to non-running
     * processors and at poll points).  Reentrancy-safe.
     */
    void drainMailbox(Proc &p) { core_.drainMailbox(p); }

    /** Deliver callback installed on the network. */
    void deliver(Message &&m) { core_.deliver(std::move(m)); }

    /** Install a handler for synchronization message types. */
    using SyncHandler = ProtocolCore::SyncHandler;
    void
    setSyncHandler(SyncHandler h)
    {
        core_.syncHandler = std::move(h);
    }

    /** Send an arbitrary message (used by the synchronization
     *  managers); self-sends dispatch inline without a message. */
    void
    sendRaw(Proc &from, Message &&m)
    {
        core_.sendRaw(from, std::move(m));
    }

    /** Attach (or detach with nullptr) the adaptive-granularity
     *  profiler; the slow paths attribute misses/downgrades to its
     *  regions while present. */
    void
    setGranularityAdvisor(GranularityAdvisor *a)
    {
        core_.advisor = a;
    }

    /** Whether stats are currently being accumulated. */
    void setMeasuring(bool on) { core_.measuring = on; }
    bool measuring() const { return core_.measuring; }

    /** Zero all protocol counters and latency histograms. */
    void
    resetCounters()
    {
        for (ProtoCounters &s : core_.ctrShards)
            s = ProtoCounters{};
        for (auto &s : core_.latShards)
            *s = LatencyStats{};
    }

    /** Pending transactions across all nodes (for drain checks). */
    std::size_t
    pendingTransactions() const
    {
        return core_.pendingTransactions();
    }

    /** Human-readable dump of every pending miss entry and busy
     *  directory entry (deadlock diagnostics). */
    std::string dumpPending() const { return core_.dumpPending(); }

    /** Aggregated directory occupancy / shard-pressure counters. */
    DirCounters dirCounters() const { return core_.dirCounters(); }

  private:
    ProtocolCore core_;
    HomeAgent home_;
    RequesterAgent requester_;
    DowngradeEngine downgrade_;
    /** Merge caches for the aggregate counters()/latency() views
     *  (mutable: aggregation happens on const reads). */
    mutable ProtoCounters aggCounters_;
    mutable std::unique_ptr<LatencyStats> aggLat_ =
        std::make_unique<LatencyStats>();
};

} // namespace shasta

#endif // SHASTA_PROTO_PROTOCOL_HH
