#include "proto/state_table.hh"

#include <cassert>

namespace shasta
{

std::string_view
lstateName(LState s)
{
    switch (s) {
      case LState::Invalid: return "Invalid";
      case LState::Shared: return "Shared";
      case LState::Exclusive: return "Exclusive";
      case LState::PendRead: return "PendRead";
      case LState::PendEx: return "PendEx";
      case LState::PendDownShared: return "PendDownShared";
      case LState::PendDownInvalid: return "PendDownInvalid";
      default: return "?";
    }
}

std::string_view
pstateName(PState s)
{
    switch (s) {
      case PState::Invalid: return "Invalid";
      case PState::Shared: return "Shared";
      case PState::Exclusive: return "Exclusive";
      default: return "?";
    }
}

NodeStateTable::NodeStateTable(int procs_on_node)
    : procsOnNode_(procs_on_node)
{
    assert(procs_on_node >= 1);
    priv_.resize(static_cast<std::size_t>(procs_on_node));
}

void
NodeStateTable::growTo(LineIdx line) const
{
    if (line < shared_.size())
        return;
    const std::size_t want = static_cast<std::size_t>(line) + 1;
    // Grow geometrically to amortize, but never shrink.
    std::size_t cap = shared_.capacity() ? shared_.capacity() : 1024;
    while (cap < want)
        cap *= 2;
    shared_.reserve(cap);
    shared_.resize(want, LState::Invalid);
    for (auto &p : priv_) {
        p.reserve(cap);
        p.resize(want, PState::Invalid);
    }
    markCount_.reserve(cap);
    markCount_.resize(want, 0);
    deferredFill_.resize(want, false);
}

LState
NodeStateTable::shared(LineIdx line) const
{
    growTo(line);
    return shared_[line];
}

void
NodeStateTable::setShared(LineIdx first, std::uint32_t n, LState s)
{
    assert(n >= 1);
    growTo(first + n - 1);
    for (std::uint32_t i = 0; i < n; ++i)
        shared_[first + i] = s;
}

PState
NodeStateTable::priv(LineIdx line, int local) const
{
    assert(local >= 0 && local < procsOnNode_);
    growTo(line);
    return priv_[static_cast<std::size_t>(local)][line];
}

void
NodeStateTable::setPriv(LineIdx line, std::uint32_t n, int local,
                        PState s)
{
    assert(local >= 0 && local < procsOnNode_);
    assert(n >= 1);
    growTo(line + n - 1);
    auto &tab = priv_[static_cast<std::size_t>(local)];
    for (std::uint32_t i = 0; i < n; ++i)
        tab[line + i] = s;
}

std::vector<int>
NodeStateTable::downgradeTargets(LineIdx line, bool to_invalid,
                                 int except_local) const
{
    std::vector<int> out(static_cast<std::size_t>(procsOnNode_));
    out.resize(static_cast<std::size_t>(
        downgradeTargets(line, to_invalid, except_local, out.data())));
    return out;
}

int
NodeStateTable::downgradeTargets(LineIdx line, bool to_invalid,
                                 int except_local, int *out) const
{
    growTo(line);
    int n = 0;
    for (int p = 0; p < procsOnNode_; ++p) {
        if (p == except_local)
            continue;
        const PState s = priv_[static_cast<std::size_t>(p)][line];
        const bool needs = to_invalid ? (s != PState::Invalid)
                                      : (s == PState::Exclusive);
        if (needs)
            out[n++] = p;
    }
    return n;
}

void
NodeStateTable::downgradePriv(LineIdx first, std::uint32_t n, int local,
                              bool to_invalid)
{
    assert(local >= 0 && local < procsOnNode_);
    growTo(first + n - 1);
    auto &tab = priv_[static_cast<std::size_t>(local)];
    for (std::uint32_t i = 0; i < n; ++i) {
        PState &s = tab[first + i];
        if (to_invalid)
            s = PState::Invalid;
        else if (s == PState::Exclusive)
            s = PState::Shared;
    }
}

void
NodeStateTable::mark(LineIdx line)
{
    growTo(line);
    if (markCount_[line]++ == 0)
        ++markedCount_;
    assert(markCount_[line] != 0 && "marker overflow");
}

void
NodeStateTable::unmark(LineIdx line)
{
    growTo(line);
    assert(markCount_[line] > 0);
    if (--markCount_[line] == 0)
        --markedCount_;
}

bool
NodeStateTable::marked(LineIdx line) const
{
    growTo(line);
    return markCount_[line] > 0;
}

void
NodeStateTable::deferFlagFill(LineIdx line)
{
    growTo(line);
    deferredFill_[line] = true;
}

bool
NodeStateTable::flagFillDeferred(LineIdx line) const
{
    growTo(line);
    return deferredFill_[line];
}

void
NodeStateTable::clearDeferredFill(LineIdx line)
{
    growTo(line);
    deferredFill_[line] = false;
}

} // namespace shasta
