#include "proto/requester_agent.hh"

#include <algorithm>
#include <cassert>

#include "mem/granularity_advisor.hh"
#include "obs/trace_json.hh"
#include "sim/trace.hh"

namespace shasta
{

MissOutcome
RequesterAgent::loadMiss(Proc &p, LineIdx line, bool mig_hint)
{
    const BlockInfo b = c_.blockOf(line);
    const LineIdx first = b.firstLine;
    auto &tab = *c_.tables[p.node];
    p.now += c_.locks[p.node]->chargeOp(first);

    const LState s = tab.shared(first);
    switch (s) {
      case LState::Shared:
      case LState::Exclusive:
        // The node has the data; only this processor's private table
        // was behind.  Upgrade it to Shared (a store will upgrade it
        // further, Section 3.3).
        tab.setPriv(first, b.numLines, p.local, PState::Shared);
        p.now += c_.cfg.costs.privUpgrade;
        if (c_.measuring) {
            ++c_.ctr(p.node).privateUpgrades;
            p.bd.other += c_.cfg.costs.privUpgrade;
        }
        return MissOutcome::Resolved;

      case LState::PendRead:
        if (c_.measuring)
            ++c_.ctr(p.node).mergedMisses;
        p.now += c_.cfg.costs.missMerge;
        return MissOutcome::WaitData;

      case LState::PendEx: {
        MissEntry *e = c_.missTables[p.node]->find(first);
        assert(e && "PendEx without a miss entry");
        p.now += c_.cfg.costs.missMerge;
        if (c_.measuring)
            ++c_.ctr(p.node).mergedMisses;
        if (e->prior == LState::Shared) {
            // The pre-miss Shared copy (plus any local pending
            // stores) is still valid for reading.
            return MissOutcome::Resolved;
        }
        return MissOutcome::WaitData;
      }

      case LState::PendDownShared:
        // Prior state was Exclusive: readable.  Service from the
        // pre-downgrade state under the line lock (Section 3.4.3).
        p.now += c_.cfg.costs.missMerge;
        if (c_.measuring) {
            ++c_.ctr(p.node).pendDownServices;
            p.bd.other += c_.cfg.costs.missMerge;
        }
        return MissOutcome::Resolved;

      case LState::PendDownInvalid: {
        MissEntry *e = c_.missTables[p.node]->find(first);
        assert(e && "downgrade without a miss entry");
        p.now += c_.cfg.costs.missMerge;
        if (readableState(e->prior)) {
            if (c_.measuring) {
                ++c_.ctr(p.node).pendDownServices;
                p.bd.other += c_.cfg.costs.missMerge;
            }
            return MissOutcome::Resolved;
        }
        return MissOutcome::WaitRetry;
      }

      case LState::Invalid:
        startRead(p, first, mig_hint);
        return MissOutcome::WaitData;
    }
    assert(false);
    return MissOutcome::WaitRetry;
}

MissOutcome
RequesterAgent::storeMiss(Proc &p, LineIdx line, Addr addr, int len)
{
    const BlockInfo b = c_.blockOf(line);
    const LineIdx first = b.firstLine;
    auto &tab = *c_.tables[p.node];
    auto &mt = *c_.missTables[p.node];
    p.now += c_.locks[p.node]->chargeOp(first);

    const LState s = tab.shared(first);
    switch (s) {
      case LState::Exclusive:
        tab.setPriv(first, b.numLines, p.local, PState::Exclusive);
        p.now += c_.cfg.costs.privUpgrade;
        if (c_.measuring) {
            ++c_.ctr(p.node).privateUpgrades;
            p.bd.other += c_.cfg.costs.privUpgrade;
        }
        return MissOutcome::Resolved;

      case LState::Shared:
      case LState::Invalid: {
        if (p.outstandingWrites >= c_.cfg.maxOutstandingWrites) {
            if (c_.measuring)
                ++c_.ctr(p.node).writeThrottles;
            return MissOutcome::WaitThrottle;
        }
        startWrite(p, first, s == LState::Shared, addr, len);
        return MissOutcome::ResolvedPending;
      }

      case LState::PendEx: {
        MissEntry *e = mt.find(first);
        assert(e && e->wantWrite);
        p.now += c_.cfg.costs.missMerge;
        if (c_.measuring)
            ++c_.ctr(p.node).mergedMisses;
        e->markDirty(addr - c_.blockAddr(b),
                     static_cast<std::size_t>(len));
        return MissOutcome::ResolvedPending;
      }

      case LState::PendRead: {
        MissEntry *e = mt.find(first);
        assert(e);
        if (!e->wantWrite) {
            if (p.outstandingWrites >= c_.cfg.maxOutstandingWrites) {
                if (c_.measuring)
                    ++c_.ctr(p.node).writeThrottles;
                return MissOutcome::WaitThrottle;
            }
            // Record the write; the upgrade is issued once the
            // outstanding read completes.
            e->wantWrite = true;
            e->writeInitiator = p.id;
            e->epoch = c_.epochs[p.node]->startWrite();
            ++p.outstandingWrites;
        }
        p.now += c_.cfg.costs.missMerge;
        if (c_.measuring)
            ++c_.ctr(p.node).mergedMisses;
        e->markDirty(addr - c_.blockAddr(b),
                     static_cast<std::size_t>(len));
        return MissOutcome::ResolvedPending;
      }

      case LState::PendDownShared:
        // Prior state Exclusive: the store is ordered before the
        // downgrade completes, so it may simply be performed; the
        // completion snapshot will include it.
        p.now += c_.cfg.costs.missMerge;
        if (c_.measuring) {
            ++c_.ctr(p.node).pendDownServices;
            p.bd.other += c_.cfg.costs.missMerge;
        }
        return MissOutcome::Resolved;

      case LState::PendDownInvalid: {
        MissEntry *e = mt.find(first);
        assert(e);
        p.now += c_.cfg.costs.missMerge;
        if (e->prior == LState::Exclusive) {
            if (c_.measuring) {
                ++c_.ctr(p.node).pendDownServices;
                p.bd.other += c_.cfg.costs.missMerge;
            }
            return MissOutcome::Resolved;
        }
        return MissOutcome::WaitRetry;
      }
    }
    assert(false);
    return MissOutcome::WaitRetry;
}

void
RequesterAgent::parkLoad(Proc &p, LineIdx line,
                         std::coroutine_handle<> h)
{
    const LineIdx first = c_.blockOf(line).firstLine;
    MissEntry *e = c_.missTables[p.node]->find(first);
    assert(e && "parkLoad without a pending entry");
    e->loadWaiters.push_back(Waiter{h, p.id, p.now, StallKind::Read});
    c_.noteBlocked(p);
}

void
RequesterAgent::parkRetry(Proc &p, LineIdx line,
                          std::coroutine_handle<> h, StallKind kind)
{
    const LineIdx first = c_.blockOf(line).firstLine;
    MissEntry *e = c_.missTables[p.node]->find(first);
    assert(e && "parkRetry without a pending entry");
    e->retryWaiters.push_back(Waiter{h, p.id, p.now, kind});
    c_.noteBlocked(p);
}

void
RequesterAgent::parkThrottle(Proc &p, std::coroutine_handle<> h)
{
    assert(!p.throttleWaiter);
    p.throttleWaiter = h;
    p.throttleStall = p.now;
    c_.noteBlocked(p);
}

// ---------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------

void
RequesterAgent::startRead(Proc &p, LineIdx first, bool mig_hint)
{
    const BlockInfo b = c_.blockOf(first);
    MissEntry &e = c_.missTables[p.node]->ensure(first, b.numLines,
                                                 c_.blockBytes(b));
    assert(!e.readIssued && !e.wantWrite);
    e.prior = LState::Invalid;
    e.readIssued = true;
    e.initiator = p.id;
    e.issueTime = p.now;
    if (c_.advisor)
        c_.advisor->noteReadMiss(first);
    if (obs::traceJsonEnabled()) {
        obs::emitAsyncBegin(
            obs::spanId(obs::SpanKind::ReadMiss,
                        static_cast<std::uint64_t>(p.node), first),
            p.id, p.now, "read-miss", "miss");
    }
    c_.tables[p.node]->setShared(first, b.numLines, LState::PendRead);
    SHASTA_TRACE_EVENT(trace::Flag::Proto, p.now, p.id,
                       "read miss line %u -> home P%d",
                       static_cast<unsigned>(first),
                       c_.homeProc(first));
    // count carries the migratory-candidate hint (1 = scalar load);
    // it is only set when the knob is on so baseline message streams
    // stay byte-identical.
    c_.sendMsg(p, MsgType::ReadReq, c_.homeProc(first), first, p.id,
               (mig_hint && c_.cfg.opt.migratory) ? 1 : 0);
}

void
RequesterAgent::startWrite(Proc &p, LineIdx first, bool had_shared,
                           Addr dirty_addr, int dirty_len)
{
    const BlockInfo b = c_.blockOf(first);
    MissEntry &e = c_.missTables[p.node]->ensure(first, b.numLines,
                                                 c_.blockBytes(b));
    assert(!e.readIssued && !e.wantWrite);
    e.prior = had_shared ? LState::Shared : LState::Invalid;
    e.wantWrite = true;
    e.writeIssued = true;
    e.initiator = p.id;
    e.writeInitiator = p.id;
    e.issueTime = p.now;
    e.epoch = c_.epochs[p.node]->startWrite();
    ++p.outstandingWrites;
    if (c_.advisor)
        c_.advisor->noteWriteMiss(first);
    if (obs::traceJsonEnabled()) {
        obs::emitAsyncBegin(
            obs::spanId(obs::SpanKind::WriteMiss,
                        static_cast<std::uint64_t>(p.node), first),
            p.id, p.now, "write-miss", "miss");
    }
    c_.tables[p.node]->setShared(first, b.numLines, LState::PendEx);
    if (dirty_len > 0) {
        // Mark before sending: a same-processor home can complete an
        // ack-free upgrade synchronously, clearing the mask.
        e.markDirty(dirty_addr - c_.blockAddr(b),
                    static_cast<std::size_t>(dirty_len));
    }
    SHASTA_TRACE_EVENT(trace::Flag::Proto, p.now, p.id,
                       "%s miss line %u -> home P%d",
                       had_shared ? "upgrade" : "write",
                       static_cast<unsigned>(first),
                       c_.homeProc(first));
    c_.sendMsg(p,
               had_shared ? MsgType::UpgradeReq : MsgType::ReadExReq,
               c_.homeProc(first), first, p.id);
}

void
RequesterAgent::issueDeferredWrite(Proc &p, MissEntry &e)
{
    assert(e.wantWrite && !e.writeIssued);
    const BlockInfo b = c_.blockOf(e.firstLine);
    e.writeIssued = true;
    e.prior = LState::Shared;
    e.issueTime = p.now;
    if (c_.advisor)
        c_.advisor->noteWriteMiss(e.firstLine);
    if (obs::traceJsonEnabled()) {
        obs::emitAsyncBegin(
            obs::spanId(obs::SpanKind::WriteMiss,
                        static_cast<std::uint64_t>(p.node),
                        e.firstLine),
            p.id, p.now, "write-miss", "miss");
    }
    c_.tables[p.node]->setShared(e.firstLine, b.numLines,
                                 LState::PendEx);
    c_.sendMsg(p, MsgType::UpgradeReq, c_.homeProc(e.firstLine),
               e.firstLine, e.writeInitiator);
}

void
RequesterAgent::checkWriteComplete(Proc &p, LineIdx first)
{
    MissEntry *e = c_.missTables[p.node]->find(first);
    if (!e || !e->wantWrite || !e->writeIssued || !e->dataArrived)
        return;
    if (e->acksExpected < 0 || e->acksReceived < e->acksExpected)
        return;

    if (obs::traceJsonEnabled()) {
        obs::emitAsyncEnd(
            obs::spanId(obs::SpanKind::WriteMiss,
                        static_cast<std::uint64_t>(p.node), first),
            p.id, p.now, "write-miss", "miss");
    }

    // Transaction complete: clear the entry's write tracking FIRST --
    // the ownership ack below may (when this processor is the home)
    // synchronously pump a queued request that re-examines this very
    // entry, and a stale dirty mask would corrupt its flag fill.
    const ProcId write_initiator = e->writeInitiator;
    const std::uint64_t epoch = e->epoch;
    e->wantWrite = false;
    e->writeIssued = false;
    e->dataArrived = false;
    e->acksExpected = -1;
    e->acksReceived = 0;
    std::fill(e->dirty.begin(), e->dirty.end(), false);
    e->dirtyAny = false;
    e->writeInitiator = -1;
    c_.epochs[p.node]->completeWrite(epoch);
    Proc &ini = c_.procs[static_cast<std::size_t>(write_initiator)];
    assert(ini.outstandingWrites > 0);
    --ini.outstandingWrites;
    c_.sendMsg(p, MsgType::OwnershipAck, c_.homeProc(first), first,
               write_initiator);
    if (ini.throttleWaiter &&
        ini.outstandingWrites < c_.cfg.maxOutstandingWrites) {
        auto h = ini.throttleWaiter;
        ini.throttleWaiter = nullptr;
        ini.now = std::max(ini.now, p.now);
        if (c_.measuring)
            ini.bd.write += ini.now - ini.throttleStall;
        ini.status = ProcStatus::Running;
        h.resume();
    }
    c_.maybeErase(p.node, first);
}

void
RequesterAgent::finishReadData(Proc &p, MissEntry &e,
                               const Message &m)
{
    const BlockInfo b = c_.blockOf(e.firstLine);
    const Addr base = c_.blockAddr(b);
    NodeMemory &mem = *c_.memories[p.node];
    assert(static_cast<int>(m.data.size()) == c_.blockBytes(b));
    if (e.dirtyAny)
        mem.mergeIn(base, m.data.data(), m.data.size(), e.dirty);
    else
        mem.copyIn(base, m.data.data(), m.data.size());
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

void
RequesterAgent::countMissReply(Proc &p, const Message &m,
                               bool is_read, bool is_upgrade,
                               Tick latency)
{
    if (!c_.measuring)
        return;
    const LineIdx first = c_.heap.lineOf(m.addr);
    const bool three_hop = (m.src != c_.homeProc(first));
    MissClass cl;
    if (is_upgrade) {
        cl = three_hop ? MissClass::Upgrade3Hop
                       : MissClass::Upgrade2Hop;
    } else if (is_read) {
        cl = three_hop ? MissClass::Read3Hop : MissClass::Read2Hop;
    } else {
        cl = three_hop ? MissClass::Write3Hop : MissClass::Write2Hop;
    }
    c_.ctr(p.node).countMiss(cl);
    c_.latOf(p.node).record(ProtoCounters::latencyClassFor(cl), latency);
    (void)p;
}

void
RequesterAgent::onInvalAck(Proc &p, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(p, m, first);
    MissEntry *e = c_.missTables[p.node]->find(first);
    assert(e && e->wantWrite);
    ++e->acksReceived;
    checkWriteComplete(p, first);
}

void
RequesterAgent::onReadReply(Proc &p, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(p, m, first);
    MissEntry *e = c_.missTables[p.node]->find(first);
    assert(e && e->readIssued);
    const BlockInfo b = c_.blockOf(first);

    finishReadData(p, *e, m);
    c_.tables[p.node]->setShared(first, b.numLines, LState::Shared);
    const Proc &ini =
        c_.procs[static_cast<std::size_t>(e->initiator)];
    c_.tables[p.node]->setPriv(first, b.numLines, ini.local,
                               PState::Shared);
    countMissReply(p, m, true, false, m.arriveTime - e->issueTime);
    if (c_.measuring) {
        ++c_.ctr(p.node).readMissSamples;
        c_.ctr(p.node).readMissLatency += m.arriveTime - e->issueTime;
    }
    if (obs::traceJsonEnabled()) {
        obs::emitAsyncEnd(
            obs::spanId(obs::SpanKind::ReadMiss,
                        static_cast<std::uint64_t>(p.node), first),
            p.id, p.now, "read-miss", "miss");
    }
    e->readIssued = false;

    if (e->wantWrite && !e->writeIssued) {
        // A store landed while the read was outstanding; promote it
        // now that we have a Shared copy.  The upgrade can complete
        // synchronously (same-processor home, no acks), so re-find
        // the entry afterwards.
        issueDeferredWrite(p, *e);
        e = c_.missTables[p.node]->find(first);
        assert(e);
    }
    c_.resumeWaiters(*e, true, true, p.now);
    c_.drainQueuedRemote(p, first);
    c_.maybeErase(p.node, first);
}

void
RequesterAgent::onReadExReply(Proc &p, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(p, m, first);
    MissEntry *e = c_.missTables[p.node]->find(first);
    assert(e && e->wantWrite && e->writeIssued);
    const BlockInfo b = c_.blockOf(first);

    finishReadData(p, *e, m);
    c_.tables[p.node]->setShared(first, b.numLines,
                                 LState::Exclusive);
    const Proc &wi =
        c_.procs[static_cast<std::size_t>(e->writeInitiator)];
    c_.tables[p.node]->setPriv(first, b.numLines, wi.local,
                               PState::Exclusive);
    e->dataArrived = true;
    e->acksExpected = m.count;
    countMissReply(p, m, false, false, m.arriveTime - e->issueTime);
    c_.resumeWaiters(*e, true, true, p.now);
    checkWriteComplete(p, first);
    c_.drainQueuedRemote(p, first);
}

void
RequesterAgent::onReadMigReply(Proc &p, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(p, m, first);
    MissEntry *e = c_.missTables[p.node]->find(first);
    assert(e && e->readIssued);
    const BlockInfo b = c_.blockOf(first);

    // The home granted exclusive ownership to this *read* miss
    // (opt.migratory): install Exclusive so the predicted upcoming
    // store is a pure private-table upgrade, no second transaction.
    finishReadData(p, *e, m);
    c_.tables[p.node]->setShared(first, b.numLines,
                                 LState::Exclusive);
    const Proc &ini =
        c_.procs[static_cast<std::size_t>(e->initiator)];
    c_.tables[p.node]->setPriv(first, b.numLines, ini.local,
                               PState::Exclusive);
    countMissReply(p, m, true, false, m.arriveTime - e->issueTime);
    if (c_.measuring) {
        ++c_.ctr(p.node).readMissSamples;
        c_.ctr(p.node).readMissLatency += m.arriveTime - e->issueTime;
    }
    if (obs::traceJsonEnabled()) {
        obs::emitAsyncEnd(
            obs::spanId(obs::SpanKind::ReadMiss,
                        static_cast<std::uint64_t>(p.node), first),
            p.id, p.now, "read-miss", "miss");
    }
    e->readIssued = false;
    const ProcId initiator = e->initiator;

    if (e->wantWrite && !e->writeIssued) {
        // A store landed while the read was outstanding; the grant
        // already carries ownership, so the deferred upgrade is
        // satisfied without ever touching the wire.
        if (obs::traceJsonEnabled()) {
            obs::emitAsyncBegin(
                obs::spanId(obs::SpanKind::WriteMiss,
                            static_cast<std::uint64_t>(p.node),
                            first),
                p.id, p.now, "write-miss", "miss");
        }
        e->writeIssued = true;
        e->dataArrived = true;
        e->acksExpected = 0;
        c_.resumeWaiters(*e, true, true, p.now);
        checkWriteComplete(p, first); // sends the OwnershipAck
    } else {
        // No write yet: close the transaction at the directory (the
        // grant left the entry busy until ownership settles).
        // Resume load waiters *before* the ack — a colocated home
        // can synchronously pump a queued invalidation, and parked
        // loads must drain against valid data first.
        c_.resumeWaiters(*e, true, true, p.now);
        c_.sendMsg(p, MsgType::OwnershipAck, c_.homeProc(first),
                   first, initiator);
    }
    c_.drainQueuedRemote(p, first);
    c_.maybeErase(p.node, first);
}

void
RequesterAgent::onUpgradeReply(Proc &p, Message &&m)
{
    const LineIdx first = c_.heap.lineOf(m.addr);
    c_.chargeHandler(p, m, first);
    MissEntry *e = c_.missTables[p.node]->find(first);
    assert(e && e->wantWrite && e->writeIssued);
    assert(e->loadWaiters.empty() &&
           "loads cannot be parked across an upgrade");
    const BlockInfo b = c_.blockOf(first);

    c_.tables[p.node]->setShared(first, b.numLines,
                                 LState::Exclusive);
    const Proc &wi =
        c_.procs[static_cast<std::size_t>(e->writeInitiator)];
    c_.tables[p.node]->setPriv(first, b.numLines, wi.local,
                               PState::Exclusive);
    e->dataArrived = true;
    e->acksExpected = m.count;
    countMissReply(p, m, false, true, m.arriveTime - e->issueTime);
    c_.resumeWaiters(*e, false, true, p.now);
    checkWriteComplete(p, first);
    c_.drainQueuedRemote(p, first);
}

} // namespace shasta
