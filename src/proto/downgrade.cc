/**
 * @file
 * Downgrade machinery and batch markers (Sections 3.3, 3.4.3, 3.4.4).
 *
 * Incoming requests that reduce a node's rights to a block may not
 * simply flip the state table: a colocated processor might be between
 * its inline check and the checked access.  Instead, the handling
 * processor downgrades its own private entry, consults the other
 * private tables, and sends explicit downgrade messages to exactly
 * the processors that have accessed the block.  Each recipient
 * downgrades its private entry at a poll point; the one that handles
 * the *last* message executes the saved protocol action (snapshot the
 * data, write the invalid flag, send the reply).  Processors are
 * never stalled during a downgrade.
 */

#include "proto/protocol.hh"

#include <algorithm>
#include <cassert>

#include "sim/trace.hh"

namespace shasta
{

void
Protocol::applyInvalidFill(NodeId node, LineIdx first)
{
    auto &tab = *tables_[node];
    if (!cfg_.useInvalidFlag) {
        // Without the flag optimization no handler compares memory
        // against the flag, so the fill is unnecessary (Section 3.2
        // notes such protocols avoid the write entirely).
        return;
    }
    if (tab.marked(first)) {
        // A batch on this node is mid-flight: defer the fill so the
        // batched loads still read pre-invalidation data
        // (Section 3.4.4).
        tab.deferFlagFill(first);
        return;
    }
    const BlockInfo b = blockOf(first);
    const Addr base = blockAddr(b);
    const int bytes = blockBytes(b);
    NodeMemory &mem = *memories_[node];
    MissEntry *e = missTables_[node]->find(first);
    if (e && e->dirtyAny) {
        // Skip longwords holding locally stored (pending) data; they
        // carry values newer than the invalidation.
        for (int off = 0; off < bytes; off += 4) {
            bool dirty = false;
            for (int i = 0; i < 4; ++i)
                dirty = dirty || e->dirty[static_cast<std::size_t>(
                                      off + i)];
            if (!dirty) {
                mem.write<std::uint32_t>(base +
                                             static_cast<Addr>(off),
                                         kInvalidFlag);
            }
        }
    } else {
        mem.fillInvalidFlag(base, static_cast<std::size_t>(bytes));
    }
}

void
Protocol::downgradeNode(Proc &p, LineIdx first, bool to_invalid,
                        DowngradeAction action)
{
    const NodeId node = p.node;
    const BlockInfo b = blockOf(first);
    auto &tab = *tables_[node];

    std::vector<int> targets;
    if (cfg_.broadcastDowngrades) {
        // SoftFLASH-style: shoot down every other local processor on
        // every downgrade transition, ignoring the private tables.
        for (int t = 0; t < tab.procsOnNode(); ++t) {
            if (t != p.local)
                targets.push_back(t);
        }
    } else {
        targets = tab.downgradeTargets(first, to_invalid, p.local);
    }
    tab.downgradePriv(first, b.numLines, p.local, to_invalid);
    if (measuring_) {
        const std::size_t bucket =
            std::min<std::size_t>(targets.size(), 3);
        ++counters_.downgradeOps[bucket];
    }

    SHASTA_TRACE_EVENT(trace::Flag::Downgrade, p.now, p.id,
                       "downgrade line %u to %s: %d message(s)",
                       static_cast<unsigned>(first),
                       to_invalid ? "Invalid" : "Shared",
                       static_cast<int>(targets.size()));
    if (targets.empty()) {
        completeDowngrade(p, first, to_invalid, action);
        return;
    }

    MissEntry &e = missTables_[node]->ensure(first, b.numLines,
                                             blockBytes(b));
    assert(e.downgradesLeft == 0 && "overlapping downgrades");
    e.downgradesLeft = static_cast<int>(targets.size());
    e.downgradeStart = p.now;
    const LState s = tab.shared(first);
    if (!isPendingMiss(s)) {
        // Pure downgrade of a stable block: remember the prior state
        // so accesses during the window can be serviced from it.
        e.prior = s;
        tab.setShared(first, b.numLines,
                      to_invalid ? LState::PendDownInvalid
                                 : LState::PendDownShared);
    }
    e.savedAction = [this, first, to_invalid,
                     action = std::move(action)](Proc &q) {
        completeDowngrade(q, first, to_invalid, action);
    };
    const ProcId base_proc = topo_.firstProcOf(node);
    for (int t : targets) {
        sendMsg(p, MsgType::Downgrade, base_proc + t, first, p.id,
                to_invalid ? 1 : 0);
    }
}

void
Protocol::completeDowngrade(Proc &p, LineIdx first, bool to_invalid,
                            const DowngradeAction &action)
{
    const NodeId node = p.node;
    const BlockInfo b = blockOf(first);
    auto &tab = *tables_[node];

    // Snapshot the data before the invalid flag clobbers it; the
    // snapshot includes every local store serviced during the window,
    // which are ordered before the remote request.
    std::vector<std::uint8_t> snapshot;
    memories_[node]->copyOut(blockAddr(b),
                             static_cast<std::size_t>(blockBytes(b)),
                             snapshot);

    if (to_invalid)
        applyInvalidFill(node, first);

    const LState s = tab.shared(first);
    if (!isPendingMiss(s)) {
        tab.setShared(first, b.numLines,
                      to_invalid ? LState::Invalid : LState::Shared);
    }

    action(p, std::move(snapshot));

    MissEntry *e = missTables_[node]->find(first);
    if (e) {
        resumeWaiters(*e, false, true, p.now);
        std::deque<Message> queued;
        queued.swap(e->queuedRemote);
        for (auto &qm : queued) {
            const ProcId dst = qm.dst;
            reinject(dst, std::move(qm));
        }
        maybeErase(first);
    }
}

void
Protocol::onDowngrade(Proc &q, Message &&m)
{
    const LineIdx first = heap_.lineOf(m.addr);
    chargeHandler(q, m, cfg_.costs.downgradeHandler, true, first);
    const BlockInfo b = blockOf(first);
    const bool to_invalid = (m.count != 0);

    tables_[q.node]->downgradePriv(first, b.numLines, q.local,
                                   to_invalid);
    MissEntry *e = missTables_[q.node]->find(first);
    assert(e && e->downgradesLeft > 0 &&
           "downgrade message without an active downgrade");
    if (--e->downgradesLeft == 0) {
        // The last downgrader executes the saved protocol action
        // (Section 3.4.3).
        auto act = std::move(e->savedAction);
        e->savedAction = nullptr;
        act(q);
    }
}

// ---------------------------------------------------------------------
// Batch markers (Section 3.4.4)
// ---------------------------------------------------------------------

bool
Protocol::batchLinesReady(const Proc &p, LineIdx first,
                          std::uint32_t n, bool is_write) const
{
    auto &tab = *tables_[p.node];
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!privateSufficient(tab.priv(first + i, p.local), is_write))
            return false;
    }
    return true;
}

void
Protocol::batchMark(NodeId node, LineIdx first, std::uint32_t n)
{
    SHASTA_TRACE_EVENT(trace::Flag::Batch, events_.now(), -1,
                       "node %d marks lines %u+%u", node,
                       static_cast<unsigned>(first),
                       static_cast<unsigned>(n));
    auto &tab = *tables_[node];
    LineIdx line = first;
    while (line < first + n) {
        const BlockInfo b = blockOf(line);
        tab.mark(b.firstLine);
        line = b.firstLine + b.numLines;
    }
}

void
Protocol::batchUnmark(Proc &p, LineIdx first, std::uint32_t n,
                      bool is_write, Addr store_base, int store_len)
{
    const NodeId node = p.node;
    auto &tab = *tables_[node];
    auto &mt = *missTables_[node];

    LineIdx line = first;
    while (line < first + n) {
        const BlockInfo b = blockOf(line);
        const LineIdx bf = b.firstLine;
        tab.unmark(bf);

        if (is_write && store_len > 0) {
            // Re-propagate batched stores if the block lost its
            // exclusivity while the batch handler was waiting.
            const Addr baddr = blockAddr(b);
            const Addr lo = std::max(store_base, baddr);
            const Addr hi =
                std::min(store_base + static_cast<Addr>(store_len),
                         baddr + static_cast<Addr>(blockBytes(b)));
            if (lo < hi) {
                const LState s = tab.shared(bf);
                MissEntry *e = mt.find(bf);
                switch (s) {
                  case LState::Exclusive:
                  case LState::PendDownShared:
                  case LState::PendDownInvalid:
                    // Still writable, or mid-downgrade (the
                    // completion snapshot will carry the stores).
                    break;
                  case LState::PendEx:
                    assert(e && e->wantWrite);
                    e->markDirty(lo - baddr,
                                 static_cast<std::size_t>(hi - lo));
                    break;
                  case LState::PendRead:
                    assert(e);
                    if (!e->wantWrite) {
                        e->wantWrite = true;
                        e->writeInitiator = p.id;
                        e->epoch = epochs_[node]->startWrite();
                        ++p.outstandingWrites;
                    }
                    e->markDirty(lo - baddr,
                                 static_cast<std::size_t>(hi - lo));
                    break;
                  case LState::Shared:
                  case LState::Invalid:
                    // The store throttle is bypassed here: this is
                    // a synchronous cleanup path that cannot park.
                    startWrite(p, bf, s == LState::Shared, lo,
                               static_cast<int>(hi - lo));
                    break;
                }
            }
        }
        if (tab.flagFillDeferred(bf) && !tab.marked(bf)) {
            tab.clearDeferredFill(bf);
            const LState s = tab.shared(bf);
            // Apply the deferred fill AFTER the store re-propagation
            // above has marked its bytes dirty (the fill skips dirty
            // bytes), and only if the node still has no
            // valid data: a refetch may have completed during the
            // batch (possibly followed by an upgrade, leaving
            // PendEx with a Shared prior), and filling then would
            // plant the flag inside a valid copy.
            const MissEntry *fe = mt.find(bf);
            const bool no_valid_data =
                s == LState::Invalid || s == LState::PendRead ||
                (s == LState::PendEx && fe &&
                 fe->prior == LState::Invalid);
            if (no_valid_data)
                applyInvalidFill(node, bf);
        }

        line = bf + b.numLines;
    }

    if (tab.markedCount() == 0 &&
        !acquireWaiters_[static_cast<std::size_t>(node)].empty()) {
        std::vector<Waiter> waiters;
        waiters.swap(acquireWaiters_[static_cast<std::size_t>(node)]);
        for (auto &w : waiters) {
            Proc &wp = procs_[static_cast<std::size_t>(w.proc)];
            wp.now = std::max({wp.now, w.stallStart, p.now});
            if (measuring_)
                wp.bd.sync += wp.now - w.stallStart;
            wp.status = ProcStatus::Running;
            w.handle.resume();
        }
    }
}

bool
Protocol::nodeHasMarks(NodeId node) const
{
    return tables_[static_cast<std::size_t>(node)]->markedCount() > 0;
}

void
Protocol::parkAcquire(Proc &p, std::coroutine_handle<> h)
{
    acquireWaiters_[static_cast<std::size_t>(p.node)].push_back(
        Waiter{h, p.id, p.now, StallKind::Sync});
    noteBlocked(p);
}

} // namespace shasta
