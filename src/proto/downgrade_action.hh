/**
 * @file
 * The protocol action deferred across an intra-node downgrade.
 *
 * When a node's rights to a block are reduced, the handling processor
 * sends downgrade messages to the colocated processors whose private
 * state requires it, and the processor that handles the *last*
 * message executes the saved protocol action — snapshot the data,
 * write the invalid flag, send the reply (Section 3.4.3).
 *
 * The action is a plain value, not a callable: the protocol has
 * exactly five reply shapes, so saving one costs a few bytes in the
 * miss entry instead of a heap-allocated closure per downgrade.
 */

#ifndef SHASTA_PROTO_DOWNGRADE_ACTION_HH
#define SHASTA_PROTO_DOWNGRADE_ACTION_HH

#include <cstdint>

#include "net/topology.hh"

namespace shasta
{

struct DowngradeAction
{
    enum class Kind : std::uint8_t
    {
        None,
        /** Home served a read from its own exclusive copy: send
         *  ReadReply, then unbusy the directory entry and pump. */
        HomeReadServe,
        /** Home served a read-exclusive from its readable copy: send
         *  ReadExReply carrying the ack count. */
        HomeReadExReply,
        /** Owner serves a forwarded read: ReadReply to the requester
         *  plus a SharingWriteback copy to the home. */
        FwdReadServe,
        /** Owner surrenders to a forwarded read-exclusive: send
         *  ReadExReply carrying the ack count. */
        FwdReadExReply,
        /** Sharer invalidated: acknowledge to the requester. */
        InvalAck,
        /** Migratory grant (opt.migratory): the node surrenders its
         *  exclusive copy to a *read* miss, sending ReadMigReply
         *  (data plus ownership, no acks).  Used both when the home
         *  serves from its own copy and when the home forwarded a
         *  FwdReadMigReq to the owner. */
        ReadMigReply,
    };

    Kind kind = Kind::None;
    /** A racing local upgrade loses its Shared copy: clear the miss
     *  entry's prior state so the home's conversion to read-exclusive
     *  finds it Invalid (Section 3.4.2). */
    bool clearPrior = false;
    /** Requester the reply is addressed to. */
    ProcId req = -1;
    /** Invalidation acks the requester should expect. */
    int acks = 0;

    explicit operator bool() const { return kind != Kind::None; }

    /** Whether completing the downgrade must snapshot the block data
     *  before the invalid-flag fill clobbers it. */
    bool
    needsData() const
    {
        return kind == Kind::HomeReadServe ||
               kind == Kind::HomeReadExReply ||
               kind == Kind::FwdReadServe ||
               kind == Kind::FwdReadExReply ||
               kind == Kind::ReadMigReply;
    }
};

} // namespace shasta

#endif // SHASTA_PROTO_DOWNGRADE_ACTION_HH
