/**
 * @file
 * Coherence states for lines/blocks.
 *
 * The node-level ("shared") state table holds the basic
 * invalid/shared/exclusive states of Section 2.1 plus the transient
 * pending states used while a request or an intra-node downgrade is
 * outstanding (Sections 2.1 and 3.4.3).  The per-processor
 * ("private") state table holds only the three basic states; it is a
 * conservative summary of what that processor has actually accessed
 * and is the key to sending downgrade messages selectively
 * (Section 3.3).
 */

#ifndef SHASTA_PROTO_LINE_STATE_HH
#define SHASTA_PROTO_LINE_STATE_HH

#include <cstdint>
#include <string_view>

namespace shasta
{

/** Node-level (shared state table) line state. */
enum class LState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    /** Read request outstanding (was Invalid). */
    PendRead,
    /** Read-exclusive or upgrade outstanding; the pre-miss state is
     *  recorded in the miss entry. */
    PendEx,
    /** Downgrading Exclusive -> Shared; downgrade messages are in
     *  flight to local processors. */
    PendDownShared,
    /** Downgrading Exclusive or Shared -> Invalid. */
    PendDownInvalid,
};

/** Per-processor (private state table) line state. */
enum class PState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
};

/** Human-readable names for traces and test failures. */
std::string_view lstateName(LState s);
std::string_view pstateName(PState s);

/** True if the state is one of the three stable states. */
constexpr bool
isStable(LState s)
{
    return s == LState::Invalid || s == LState::Shared ||
           s == LState::Exclusive;
}

/** True if a request is outstanding for the line. */
constexpr bool
isPendingMiss(LState s)
{
    return s == LState::PendRead || s == LState::PendEx;
}

/** True if an intra-node downgrade is in progress. */
constexpr bool
isPendingDowngrade(LState s)
{
    return s == LState::PendDownShared || s == LState::PendDownInvalid;
}

/** True if a node in state @p s can satisfy a load locally. */
constexpr bool
readableState(LState s)
{
    return s == LState::Shared || s == LState::Exclusive;
}

/** True if a node in state @p s can satisfy a store locally. */
constexpr bool
writableState(LState s)
{
    return s == LState::Exclusive;
}

/** True if private state @p s suffices for the given access. */
constexpr bool
privateSufficient(PState s, bool is_write)
{
    return is_write ? (s == PState::Exclusive) : (s != PState::Invalid);
}

} // namespace shasta

#endif // SHASTA_PROTO_LINE_STATE_HH
