/**
 * @file
 * Per-processor simulation state.
 *
 * Each simulated processor owns a local clock that runs ahead of the
 * global event queue by at most the configured quantum (processors
 * only interact at poll points, mirroring Shasta's polling
 * discipline), a mailbox of delivered messages, and its share of the
 * statistics.
 */

#ifndef SHASTA_DSM_PROC_HH
#define SHASTA_DSM_PROC_HH

#include <coroutine>

#include "net/mailbox.hh"
#include "net/topology.hh"
#include "sim/task.hh"
#include "sim/ticks.hh"
#include "stats/breakdown.hh"
#include "stats/counters.hh"

namespace shasta
{

/** What a processor is doing, as seen by the message layer. */
enum class ProcStatus
{
    /** Executing application code; drains mail at poll points. */
    Running,
    /** Stalled in the protocol or at synchronization; polls
     *  continuously, so deliveries are handled immediately. */
    Blocked,
    /** Application coroutine finished; still services protocol
     *  messages (the real system keeps polling at exit barriers). */
    Done,
};

/** One simulated processor. */
struct Proc
{
    ProcId id = 0;
    NodeId node = 0;
    /** Index within the node's processors (private table index). */
    int local = 0;
    MachineId machine = 0;

    /** Local clock; never behind the event queue when interacting. */
    Tick now = 0;
    /** Local time of the last yield to the event queue. */
    Tick lastYield = 0;

    ProcStatus status = ProcStatus::Running;

    Mailbox mailbox;

    /** Guards against reentrant mailbox draining. */
    bool draining = false;

    /** Outstanding non-blocking write transactions issued by this
     *  processor (for the store throttle). */
    int outstandingWrites = 0;
    /** Parked coroutine waiting for the throttle to clear. */
    std::coroutine_handle<> throttleWaiter;
    Tick throttleStall = 0;

    /** @{ Statistics. */
    Breakdown bd;
    CheckCounters checks;
    /** Start of the measured region on this processor's clock. */
    Tick regionStart = 0;
    /** Local time when the application coroutine finished. */
    Tick finishTime = 0;
    /** @} */
};

} // namespace shasta

#endif // SHASTA_DSM_PROC_HH
