#include "dsm/runtime.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "audit/invariant_auditor.hh"
#include "audit/watchdog.hh"
#include "exec/thread_backend.hh"
#include "exec/thread_sync.hh"
#include "obs/stats_json.hh"
#include "obs/trace_json.hh"
#include "sim/pdes.hh"
#include "sim/trace.hh"
#include "stats/report.hh"

namespace shasta
{

Runtime::Runtime(const DsmConfig &cfg)
    : cfg_(cfg),
      heap_(cfg.lineSize),
      topo_(cfg.topology()),
      net_(events_, topo_, cfg.net)
{
    cfg_.fault.applyEnv();
    cfg_.retx.applyEnv();
    cfg_.applyBackendEnv();
    cfg_.opt.applyEnv();
    cfg_.validate();
    obs::initTraceJsonFromEnv();
    if (obs::traceJsonEnabled())
        obs::registerTraceRun(nullptr);
    procs_.resize(static_cast<std::size_t>(cfg_.numProcs));
    for (int i = 0; i < cfg_.numProcs; ++i) {
        Proc &p = procs_[static_cast<std::size_t>(i)];
        p.id = i;
        p.node = topo_.nodeOf(i);
        p.local = i - topo_.firstProcOf(p.node);
        p.machine = topo_.machineOf(i);
    }
    const bool threaded = cfg_.backend == BackendKind::Thread;
    if (threaded)
        threadBackend_ =
            std::make_unique<ThreadBackend>(cfg_, topo_, procs_);
    tx_ = threaded ? static_cast<Transport *>(threadBackend_.get())
                   : &net_;
    if (!threaded)
        net_.configureFaults(cfg_.fault, cfg_.retx);
    proto_ = std::make_unique<Protocol>(cfg_, *tx_, heap_, procs_);
    locks_ = std::make_unique<LockManager>(cfg_, events_, *proto_,
                                           procs_);
    barrier_ = std::make_unique<BarrierManager>(cfg_, events_,
                                                *proto_, procs_);
    lockApi_ = locks_.get();
    barrierApi_ = barrier_.get();
    if (threaded) {
        threadLocks_ = std::make_unique<ThreadLockManager>(
            cfg_, *threadBackend_, *proto_, procs_);
        threadBarrier_ = std::make_unique<ThreadBarrierManager>(
            cfg_, *threadBackend_, *proto_, procs_);
        lockApi_ = threadLocks_.get();
        barrierApi_ = threadBarrier_.get();
        threadBackend_->attachProtocol(*proto_);
    }
    tx_->setDeliver([this](Message &&m) {
        proto_->deliver(std::move(m));
    });
    // RetryDelay samples are recorded by the (single-threaded)
    // simulator only; shard 0 keeps the aggregate byte-identical to
    // the pre-sharding single instance.
    if (!threaded)
        net_.setLatencySink(&proto_->latencyFor(0));
    proto_->setSyncHandler([this](Proc &p, Message &&m) {
        switch (m.type) {
          case MsgType::LockReq:
          case MsgType::LockGrant:
          case MsgType::LockRelease:
            locks_->handle(p, std::move(m));
            return;
          case MsgType::BarrierArrive:
          case MsgType::BarrierRelease:
            barrier_->handle(p, std::move(m));
            return;
          default:
            assert(false);
        }
    });

    cfg_.audit.applyEnv();
    // The audit sublayer walks cross-node protocol state from
    // event-queue top level; it is simulator-only.
    if (!threaded && cfg_.protocolActive() && cfg_.audit.enabled()) {
        if (cfg_.audit.invariants)
            auditor_ = std::make_unique<InvariantAuditor>(*proto_,
                                                          procs_);
        if (cfg_.audit.watchdog) {
            watchdog_ = std::make_unique<Watchdog>(
                events_, *proto_, cfg_.audit.stallLimit,
                [this] { return dumpState(); }, &net_);
        }
        // The progress hook fires at event-queue top level, where a
        // throw propagates straight out of run() without crossing a
        // coroutine frame.
        events_.setProgressHook(cfg_.audit.interval, [this] {
            if (watchdog_)
                watchdog_->check();
            if (auditor_)
                runAuditSweep();
        });
        // The barrier episode hook, by contrast, can fire inside an
        // application coroutine (a poll draining the manager's
        // mailbox), so the sweep is deferred to a same-tick event.
        barrier_->setEpisodeHook([this] {
            if (auditor_) {
                events_.schedule(events_.now(),
                                 [this] { runAuditSweep(); });
            }
        });
    }

    // Parallel simulation engine (sim/pdes.hh), gated after every
    // applyEnv above so SHASTA_ENGINE_THREADS, SHASTA_TRACE and
    // SHASTA_AUDIT have all been seen.
    const int workers = effectiveEngineThreads();
    if (workers > 1) {
        engine_ = std::make_unique<ParallelEngine>(
            topo_.numMachines(), workers, net_.minRemoteLookahead());
        net_.attachEngine(engine_.get());
        // Per-machine RetryDelay sinks: a retransmit records into the
        // shard of its source machine's first node.  Aggregated
        // latency sums shards, so stats stay byte-identical to the
        // serial single-sink arrangement.
        std::vector<LatencyStats *> sinks(
            static_cast<std::size_t>(topo_.numMachines()));
        for (int m = 0; m < topo_.numMachines(); ++m) {
            const ProcId first = m * topo_.procsPerMachine();
            sinks[static_cast<std::size_t>(m)] =
                &proto_->latencyFor(topo_.nodeOf(first));
        }
        net_.setLatencySinks(std::move(sinks));
    }
}

int
Runtime::effectiveEngineThreads() const
{
    if (cfg_.engineThreads <= 1 ||
        cfg_.backend == BackendKind::Thread ||
        !cfg_.protocolActive() || cfg_.audit.enabled() ||
        obs::traceJsonEnabled() || topo_.numMachines() < 2)
        return 1;
    // Text tracing prints in execution order, which mid-window is
    // per-machine, not global: keep such runs serial so trace output
    // stays stable.
    for (int f = 0; f < static_cast<int>(trace::Flag::NumFlags); ++f)
        if (trace::enabled(static_cast<trace::Flag>(f)))
            return 1;
    return std::min(cfg_.engineThreads, topo_.numMachines());
}

Runtime::~Runtime() = default;

Addr
Runtime::alloc(std::size_t bytes, std::size_t block_bytes)
{
    if (advisor_) {
        block_bytes = advisor_->adviseBlock(cfg_.opt.adaptive, bytes,
                                            block_bytes);
    }
    const Addr a = heap_.alloc(bytes, block_bytes);
    if (advisor_) {
        advisor_->noteAlloc(
            heap_.lineOf(a),
            static_cast<std::uint32_t>(heap_.linesInUse() -
                                       heap_.lineOf(a)));
    }
    if (cfg_.protocolActive())
        proto_->onAlloc(a, bytes);
    return a;
}

Addr
Runtime::allocHomed(std::size_t bytes, std::size_t block_bytes,
                    ProcId home)
{
    if (advisor_) {
        block_bytes = advisor_->adviseBlock(cfg_.opt.adaptive, bytes,
                                            block_bytes);
    }
    // Pad the heap to a page boundary so the placement hint does not
    // capture earlier allocations sharing the page.
    const Addr brk = heap_.brk();
    const Addr next_page =
        (brk + kPageSize - 1) / kPageSize * kPageSize;
    if (next_page > brk)
        heap_.alloc(static_cast<std::size_t>(next_page - brk));

    const Addr a = heap_.alloc(bytes, block_bytes);
    if (advisor_) {
        advisor_->noteAlloc(
            heap_.lineOf(a),
            static_cast<std::uint32_t>(heap_.linesInUse() -
                                       heap_.lineOf(a)));
    }
    if (cfg_.protocolActive()) {
        proto_->setPageHome(a, bytes, home);
        proto_->onAlloc(a, bytes);
    }
    return a;
}

void
Runtime::annotate(Addr base, std::size_t bytes, RegionAnnot kind,
                  ProcId owner)
{
    if (kind == RegionAnnot::Private) {
        // A private region must live where its owner does: the home
        // serves every miss locally and never sees remote requests,
        // which is what licenses the full check bypass.  Catch a
        // mismatch at annotation time — loudly, not as silent
        // corruption later.
        const NodeId want = topo_.nodeOf(owner);
        const LineIdx first = heap_.lineOf(base);
        const LineIdx last = heap_.lineOf(base + bytes - 1);
        for (LineIdx l = first; l <= last;) {
            const BlockInfo b = heap_.blockOf(l);
            const NodeId hn =
                topo_.nodeOf(proto_->homeProc(b.firstLine));
            if (hn != want) {
                throw std::runtime_error(
                    "annotate(private): line " +
                    std::to_string(b.firstLine) + " is homed on node " +
                    std::to_string(hn) + " but owner P" +
                    std::to_string(owner) + " lives on node " +
                    std::to_string(want) +
                    " (home-place the region at the owner)");
            }
            l = b.firstLine + b.numLines;
        }
    }
    heap_.annotate(base, bytes, kind, owner);
}

void
Runtime::setGranularityAdvisor(GranularityAdvisor *advisor)
{
    assert(heap_.linesInUse() == 0 &&
           "attach the advisor before the first allocation");
    advisor_ = advisor;
    proto_->setGranularityAdvisor(advisor);
}

int
Runtime::allocLock()
{
    return lockApi_->allocLock();
}

Task
Runtime::procMain(Context &ctx, const ProcBody &body)
{
    Task t = body(ctx);
    co_await t;
    Proc &p = ctx.proc();
    p.finishTime = p.now;
    p.status = ProcStatus::Done;
    doneCount_.fetch_add(1, std::memory_order_release);
}

void
Runtime::run(const ProcBody &body)
{
    assert(!ran_ && "Runtime::run may only be called once");
    ran_ = true;

    ctxs_.reserve(procs_.size());
    roots_.reserve(procs_.size());
    for (auto &p : procs_)
        ctxs_.push_back(std::make_unique<Context>(*this, p));
    for (auto &c : ctxs_)
        roots_.push_back(procMain(*c, body));

    // A kernel that throws (audit violations, assertion-style
    // errors) strands its barrier peers, so the engine sees the
    // stall before anyone rethrows; surface the root cause instead
    // of a generic deadlock report.
    auto rethrowKernelFailure = [this] {
        for (auto &r : roots_)
            r.rethrowIfFailed();
    };

    if (threadBackend_) {
        // Pre-arm the measurement window before any worker starts so
        // regionOpen_ is read-only while threads run; each Context's
        // beginMeasure() still resets its own processor.
        openRegion();
        try {
            threadBackend_->run(roots_, *proto_, doneCount_,
                                [this] { return dumpState(); });
        } catch (...) {
            rethrowKernelFailure();
            throw;
        }
        rethrowKernelFailure();
        return;
    }

    if (engine_) {
        // Root coroutines start outside any event; pin each start to
        // its processor's machine so its schedule calls route to the
        // right wheel.  Starts run in processor order on this thread,
        // so gseq assignment matches the serial engine's.
        for (std::size_t i = 0; i < roots_.size(); ++i) {
            engine_->setActiveMachine(procs_[i].machine);
            roots_[i].start();
        }
        engine_->clearActiveMachine();
        // Serial-step the setup prologue (byte-identical by
        // construction), switch to lookahead windows once the
        // measured region opens, and serial-drain the tail.
        while (doneCount_.load(std::memory_order_relaxed) <
               cfg_.numProcs) {
            const bool ok = regionOpen_ ? engine_->runWindow()
                                        : engine_->stepSerial();
            if (!ok) {
                rethrowKernelFailure();
                throw std::runtime_error("simulation deadlock:\n" +
                                         dumpState());
            }
        }
        engine_->drain();
        rethrowKernelFailure();
        return;
    }

    for (auto &r : roots_)
        r.start();

    // Drive the event queue until every processor's coroutine has
    // completed.  An empty queue with unfinished processors is a
    // deadlock (a protocol or synchronization bug).
    while (doneCount_.load(std::memory_order_relaxed) <
           cfg_.numProcs) {
        if (!events_.step()) {
            rethrowKernelFailure();
            throw std::runtime_error("simulation deadlock:\n" +
                                     dumpState());
        }
    }
    // Drain in-flight protocol traffic (ownership acks etc.).
    events_.run();

    rethrowKernelFailure();
}

Tick
Runtime::wallTime() const
{
    Tick max_finish = 0;
    Tick min_start = procs_.empty() ? 0 : procs_[0].regionStart;
    for (const auto &p : procs_) {
        max_finish = std::max(max_finish, p.finishTime);
        min_start = std::min(min_start, p.regionStart);
    }
    return max_finish - min_start;
}

TimeBreakdown
Runtime::aggregateBreakdown() const
{
    TimeBreakdown out;
    for (const auto &p : procs_) {
        out.total += p.finishTime - p.regionStart;
        out.parts += p.bd;
    }
    return out;
}

TimeBreakdown
Runtime::procBreakdown(int i) const
{
    const Proc &p = procs_[static_cast<std::size_t>(i)];
    TimeBreakdown out;
    out.total = p.finishTime - p.regionStart;
    out.parts = p.bd;
    return out;
}

CheckCounters
Runtime::checkTotals() const
{
    CheckCounters out;
    for (const auto &p : procs_) {
        out.loads += p.checks.loads;
        out.stores += p.checks.stores;
        out.batchedAccesses += p.checks.batchedAccesses;
        out.batchChecks += p.checks.batchChecks;
        out.polls += p.checks.polls;
        out.checkCycles += p.checks.checkCycles;
        out.elidedChecks += p.checks.elidedChecks;
        out.elidedCheckCycles += p.checks.elidedCheckCycles;
    }
    return out;
}

obs::RunSummary
Runtime::runSummary() const
{
    obs::RunSummary s;
    switch (cfg_.mode) {
      case Mode::Hardware:
        s.mode = "hardware";
        break;
      case Mode::Base:
        s.mode = "base";
        break;
      case Mode::Smp:
        s.mode = "smp";
        break;
    }
    s.numProcs = cfg_.numProcs;
    s.clustering = cfg_.clustering;
    s.wallTime = wallTime();
    s.breakdown = aggregateBreakdown();
    s.counters = counters();
    s.lat = latency();
    s.net = netCounts();
    s.checks = checkTotals();
    s.dir = dirCounters();
    if (advisor_ && advisor_->applying() && cfg_.opt.adaptive) {
        s.adaptiveRegions = advisor_->regions();
        s.adaptiveShrunk = advisor_->shrunk();
        s.adaptiveGrown = advisor_->grown();
    }
    return s;
}

std::string
Runtime::statsJson() const
{
    return obs::toJson(runSummary()) + "\n";
}

void
Runtime::runAuditSweep()
{
    const AuditReport r = auditor_->sweep();
    if (!r.clean()) {
        throw AuditError("protocol invariant violation(s) at tick " +
                         std::to_string(events_.now()) + ":\n" +
                         r.str() + dumpState());
    }
}

AuditCounters
Runtime::auditTotals() const
{
    AuditCounters out;
    if (auditor_) {
        const AuditCounters &a = auditor_->totals();
        out.sweeps = a.sweeps;
        out.blocksChecked = a.blocksChecked;
        out.entriesChecked = a.entriesChecked;
        out.violations = a.violations;
    }
    if (watchdog_) {
        const AuditCounters &w = watchdog_->totals();
        out.watchdogChecks = w.watchdogChecks;
        out.stallsDetected = w.stallsDetected;
    }
    return out;
}

std::string
Runtime::dumpState() const
{
    std::string out;
    for (const auto &p : procs_) {
        out += "  proc " + std::to_string(p.id) + " node " +
               std::to_string(p.node) + " status ";
        switch (p.status) {
          case ProcStatus::Running: out += "Running"; break;
          case ProcStatus::Blocked: out += "Blocked"; break;
          case ProcStatus::Done: out += "Done"; break;
        }
        out += " now=" + std::to_string(p.now) +
               " outW=" + std::to_string(p.outstandingWrites) +
               " mail=" + std::to_string(p.mailbox.size()) + "\n";
    }
    out += proto_->dumpPending();
    const std::string audit = report::auditSummary(auditTotals());
    if (!audit.empty())
        out += "  " + audit + "\n";
    return out;
}

void
Runtime::openRegion()
{
    if (regionOpen_)
        return;
    regionOpen_ = true;
    resetMeasurement();
}

void
Runtime::resetMeasurement()
{
    proto_->resetCounters();
    tx_->resetCounts();
    proto_->setMeasuring(true);
    for (auto &p : procs_) {
        p.bd = Breakdown{};
        p.checks = CheckCounters{};
        p.regionStart = p.now;
    }
}

} // namespace shasta
