/**
 * @file
 * Run configuration for the DSM runtime.
 *
 * A DsmConfig describes one run: the execution mode (uninstrumented
 * sequential, hardware-coherent "ANL" run, Base-Shasta, SMP-Shasta),
 * the processor count and logical clustering, the line size, and all
 * timing parameters of the cost model.
 */

#ifndef SHASTA_DSM_CONFIG_HH
#define SHASTA_DSM_CONFIG_HH

#include <cstdint>

#include "check/check_model.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "sim/ticks.hh"

namespace shasta
{

/** Execution mode of a run. */
enum class Mode
{
    /** Uninstrumented run (the "original sequential application", or
     *  a hardware-coherent parallel run using the ANL macros,
     *  Section 4.3); no checks, no software protocol. */
    Hardware,
    /** Base-Shasta: message passing between all processors,
     *  clustering of 1. */
    Base,
    /** SMP-Shasta: processors on a node share memory and state. */
    Smp,
};

/** Protocol-operation costs (ticks = 300 MHz cycles). */
struct CostParams
{
    /** Enter a miss handler: save registers, range check, dispatch. */
    Tick protoEntry = usToTicks(1.2);
    /** Home handler for an incoming request: directory lookup,
     *  decide, prepare reply or forward. */
    Tick homeHandler = usToTicks(3.0);
    /** Owner handler for a forwarded request. */
    Tick fwdHandler = usToTicks(2.0);
    /** Requester processing of a data reply: merge, update tables,
     *  resume waiters. */
    Tick fillReply = usToTicks(2.0);
    /** Invalidation handler: state change plus flag fill. */
    Tick invalHandler = usToTicks(1.2);
    /** Ack bookkeeping at the requester. */
    Tick ackHandler = usToTicks(0.3);
    /** Home processing of writebacks / ownership acks. */
    Tick wbHandler = usToTicks(1.0);
    /** Requester processing of a (data-less) upgrade reply. */
    Tick upgradeReply = usToTicks(0.8);
    /** Receive dispatch per message, charged at the handler. */
    Tick recvRemote = usToTicks(1.0);
    Tick recvLocal = usToTicks(0.7);
    /** SMP-Shasta line-lock acquire/MB/release per protocol op. */
    Tick lineLock = usToTicks(0.4);
    /** Handle one intra-node downgrade message. */
    Tick downgradeHandler = usToTicks(1.0);
    /** Upgrade a private state table entry from the shared state. */
    Tick privUpgrade = usToTicks(0.8);
    /** Enter the protocol only to merge into a pending entry. */
    Tick missMerge = usToTicks(0.8);
    /** Slow-path cost of a false miss (range check, table lookup). */
    Tick falseMiss = usToTicks(0.5);

    /** @{ Synchronization primitive costs. */
    /** Software lock/barrier handler at the manager processor. */
    Tick lockHandler = usToTicks(0.8);
    Tick barrierHandler = usToTicks(0.5);
    /** Hardware-mode (ANL macro) primitives. */
    Tick hwLockAcquire = usToTicks(0.3);
    Tick hwLockHandoff = usToTicks(1.0);
    Tick hwBarrier = usToTicks(2.0);
    /** @} */
};

/**
 * Runtime self-checking knobs (the audit subsystem, src/audit/).
 *
 * Defaults are all-off: auditing costs a full state sweep per
 * interval, so production/benchmark runs leave it disabled while
 * torture and CI runs switch it on.  The SHASTA_AUDIT environment
 * variable overrides these per-process (see applyEnv()).
 */
struct AuditConfig
{
    /** Sweep coherence invariants at every interval and barrier. */
    bool invariants = false;
    /** Detect no-progress (stalled transactions, livelock). */
    bool watchdog = false;
    /** Processed-event count between periodic checks. */
    std::uint64_t interval = 8192;
    /** A pending transaction older than this many ticks with no
     *  progress is reported as a stall. */
    Tick stallLimit = usToTicks(500000.0); // 0.5 simulated seconds

    bool enabled() const { return invariants || watchdog; }

    /** Everything off (the default). */
    static AuditConfig off() { return AuditConfig{}; }
    /** Invariants + watchdog at the default interval. */
    static AuditConfig
    full()
    {
        AuditConfig a;
        a.invariants = true;
        a.watchdog = true;
        return a;
    }

    /**
     * Apply the SHASTA_AUDIT environment variable, if set.
     * Comma-separated tokens: "1"/"on"/"all" (both checkers),
     * "invariants", "watchdog", "0"/"off" (force-disable).
     * Unknown tokens are ignored.
     */
    void applyEnv();
};

/**
 * Protocol fast-path optimizations (the opt layer).
 *
 * Each technique is an independently-toggleable knob, all off by
 * default so the baseline protocol (and its golden statistics) are
 * untouched.  The SHASTA_OPT environment variable and the --opt=
 * bench flag accept a comma list of "migratory", "elide",
 * "adaptive", or the shorthands "all" / "none"; unknown, duplicate
 * or empty tokens are hard errors (exit 2), matching the strict
 * sim/env parsers.
 */
struct OptConfig
{
    /** Migratory-sharing detection: when a line's recent history is
     *  read-miss-then-write-upgrade by successive distinct
     *  processors, the home grants exclusive on the next read miss,
     *  eliminating the upgrade round-trip and its invalidation
     *  fan-out. */
    bool migratory = false;
    /** Ownership-driven check elision: region annotations
     *  (private / single-writer / read-only-after-barrier) let the
     *  check model charge zero cost for accesses the annotation
     *  proves safe. */
    bool elide = false;
    /** Adaptive per-region block granularity: a profiling pass feeds
     *  a GranularityAdvisor that picks per-region block sizes at
     *  allocation time. */
    bool adaptive = false;

    bool any() const { return migratory || elide || adaptive; }

    /** Apply the SHASTA_OPT environment variable, if set and
     *  non-empty.  Malformed values exit(2) naming the variable. */
    void applyEnv();

    /**
     * Strict parse of a comma token list ("migratory,elide", "all",
     * "none", ...).  @p what names the flag/variable for the
     * diagnostic; any unknown, duplicate, or empty token (or
     * "all"/"none" combined with other tokens) exits(2).
     */
    static OptConfig parseSpec(const char *what, const char *value);
};

/** Which execution substrate runs the processors. */
enum class BackendKind
{
    /** Single-threaded discrete-event simulation (EventQueue +
     *  Network): ticks are 300 MHz cycles, runs are deterministic,
     *  and golden statistics are byte-identical. */
    Sim,
    /** Real execution (src/exec/): one OS thread per node, messages
     *  over lock-free SPSC rings, ticks are wall-clock nanoseconds.
     *  Results are checksum-equivalent to the simulator, not
     *  stat-identical. */
    Thread,
};

/** Full configuration of a run. */
struct DsmConfig
{
    Mode mode = Mode::Base;
    int numProcs = 1;
    /** Logical clustering (processors sharing memory per node).
     *  Forced to 1 in Base mode and to min(numProcs, procsPerMachine)
     *  in Hardware mode by validate(). */
    int clustering = 1;
    int procsPerMachine = 4;
    int lineSize = 64;
    /** Max local-clock drift before a processor must yield. */
    Tick quantum = 512;
    /** Non-blocking store limit before the processor stalls. */
    int maxOutstandingWrites = 16;
    /** Independently-locked shards per home directory (power of two,
     *  1..1024).  Pure bookkeeping: replay order is serialized per
     *  block, so the shard count never changes schedules. */
    int dirShards = 8;
    std::uint64_t seed = 1;

    /** @{ Extensions and ablations. */
    /** Use the invalid-flag load optimization (Section 2.3).  Off,
     *  every load checks the state table and invalidations skip the
     *  flag fill -- the ablation quantifies the flag's value. */
    bool useInvalidFlag = true;
    /** SoftFLASH-style ablation: send downgrade messages to EVERY
     *  other processor on the node instead of consulting the private
     *  state tables (Section 5 contrasts Shasta's selective
     *  downgrades with SoftFLASH's broadcast TLB shootdowns). */
    bool broadcastDowngrades = false;
    /** Future-work extension from Sections 3.1/5: share the
     *  directory among colocated processors, so a request whose home
     *  is on the requester's node skips the internal message hop. */
    bool shareDirectory = false;
    /** @} */

    NetworkParams net = NetworkParams::defaults();
    CheckCosts checkCosts{};
    CostParams costs{};
    /** Runtime self-checking (invariant sweeps + watchdog). */
    AuditConfig audit{};
    /** Unreliable-transport fault injection (net/fault.hh).  All-off
     *  by default; SHASTA_DROP_PCT etc. override per-process (the
     *  Runtime constructor calls fault.applyEnv()). */
    FaultConfig fault{};
    /** Retransmission policy for the reliability sublayer, on either
     *  backend (SHASTA_RETX_* override per-process). */
    RetxParams retx{};
    /** Protocol fast-path optimizations (all off by default;
     *  SHASTA_OPT overrides per-process via opt.applyEnv(), which
     *  the Runtime constructor calls). */
    OptConfig opt{};

    /** @{ Execution backend selection + thread-backend knobs. */
    /** Which substrate runs the processors (SHASTA_BACKEND=sim|thread
     *  overrides per-process via applyBackendEnv, which the Runtime
     *  constructor calls). */
    BackendKind backend = BackendKind::Sim;
    /** Per-pair SPSC ring capacity in frames (power of two >= 2;
     *  SHASTA_RING_CAP). */
    int ringCapacity = 1024;
    /** Thread-backend stall watchdog: throw if no node makes
     *  progress for this many wall-clock milliseconds while work is
     *  outstanding (0 disables; SHASTA_THREAD_STALL_MS). */
    int threadStallMs = 10000;
    /** Thread-backend schedule fuzzer: nonzero seeds randomized
     *  yield/sleep injection before message handling, for shaking
     *  out ordering assumptions (SHASTA_THREAD_FUZZ). */
    std::uint64_t threadFuzzSeed = 0;
    /** Parallel simulation (sim backend only): worker threads for
     *  the conservative-lookahead engine (sim/pdes.hh).  1 runs the
     *  serial event loop unchanged; N > 1 partitions the timing
     *  wheel per machine and executes lookahead windows on N
     *  workers, with output byte-identical to the serial engine
     *  (SHASTA_ENGINE_THREADS / --engine-threads). */
    int engineThreads = 1;
    /** @} */

    /** Checking scheme implied by the mode. */
    CheckMode
    checkMode() const
    {
        switch (mode) {
          case Mode::Base: return CheckMode::Base;
          case Mode::Smp: return CheckMode::Smp;
          default: return CheckMode::None;
        }
    }

    /** True if the software coherence protocol is active. */
    bool
    protocolActive() const
    {
        return mode == Mode::Base || mode == Mode::Smp;
    }

    /** Effective clustering after mode rules. */
    int effectiveClustering() const;

    /** Topology implied by this configuration. */
    Topology topology() const;

    /** Check invariants; aborts with a message on bad configs. */
    void validate() const;

    /** Apply SHASTA_BACKEND / SHASTA_RING_CAP /
     *  SHASTA_THREAD_STALL_MS / SHASTA_THREAD_FUZZ /
     *  SHASTA_ENGINE_THREADS, if set. */
    void applyBackendEnv();

    /** @{ Convenience factories for the paper's configurations. */
    static DsmConfig sequential();
    static DsmConfig hardware(int num_procs);
    static DsmConfig base(int num_procs);
    static DsmConfig smp(int num_procs, int clustering);
    /** @} */
};

} // namespace shasta

#endif // SHASTA_DSM_CONFIG_HH
