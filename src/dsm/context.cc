#include "dsm/context.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "audit/invariant_auditor.hh"
#include "dsm/runtime.hh"

namespace shasta
{

Context::Context(Runtime &rt, Proc &proc)
    : rt_(rt),
      proc_(proc),
      cfg_(rt.config()),
      heap_(rt.heap()),
      proto_(rt.protocol()),
      mem_(&rt.protocol().memory(proc.node)),
      check_(rt.config().checkMode(), rt.config().checkCosts,
             rt.config().useInvalidFlag),
      // Multi-processor runs must interleave at quantum boundaries
      // even without a protocol (hardware mode), or a work-queue
      // app would be drained by whichever processor runs first.
      needYield_(rt.config().numProcs > 1),
      elide_(rt.config().opt.elide),
      auditAnnots_(rt.config().audit.invariants)
{
}

// ---------------------------------------------------------------------
// Region annotations (opt.elide + audit verifier)
// ---------------------------------------------------------------------

Context::AnnotAction
Context::annotAction(Addr a, bool store, Tick cost)
{
    // Both knobs default off and annotations are rare; one cached
    // bool plus one heap flag keep the un-annotated hot path intact.
    if (!(elide_ || auditAnnots_) || !heap_.hasAnnotations())
        return AnnotAction::Charge;
    const LineIdx line = heap_.lineOf(a);
    const RegionAnnot k = heap_.annotationOf(line);
    if (k == RegionAnnot::None)
        return AnnotAction::Charge;
    const bool is_owner = proc_.id == heap_.annotOwnerOf(line);
    if (auditAnnots_) {
        const bool bad =
            (k == RegionAnnot::Private && !is_owner) ||
            (k == RegionAnnot::SingleWriter && store && !is_owner) ||
            (k == RegionAnnot::ReadOnlyAfterBarrier && store);
        if (bad)
            annotViolation(line, k, store);
    }
    if (!elide_)
        return AnnotAction::Charge;
    switch (k) {
      case RegionAnnot::Private:
        if (!is_owner)
            return AnnotAction::Charge;
        countElided(cost);
        return AnnotAction::Bypass;
      case RegionAnnot::SingleWriter:
        // Only the owner's *stores* are provably safe; reads by
        // other processors still need real coherence checks.
        if (!store || !is_owner)
            return AnnotAction::Charge;
        countElided(cost);
        return AnnotAction::Elide;
      case RegionAnnot::ReadOnlyAfterBarrier:
        if (store)
            return AnnotAction::Charge;
        countElided(cost);
        return AnnotAction::Elide;
      default:
        return AnnotAction::Charge;
    }
}

bool
Context::batchElided(LineIdx first, std::uint32_t n, bool write)
{
    if (!(elide_ || auditAnnots_) || !heap_.hasAnnotations())
        return false;
    bool all = true;
    for (std::uint32_t i = 0; i < n; ++i) {
        const LineIdx line = first + i;
        const RegionAnnot k = heap_.annotationOf(line);
        if (k == RegionAnnot::None) {
            all = false;
            continue;
        }
        const bool is_owner = proc_.id == heap_.annotOwnerOf(line);
        if (auditAnnots_) {
            const bool bad =
                (k == RegionAnnot::Private && !is_owner) ||
                (k == RegionAnnot::SingleWriter && write &&
                 !is_owner) ||
                (k == RegionAnnot::ReadOnlyAfterBarrier && write);
            if (bad)
                annotViolation(line, k, write);
        }
        const bool ok =
            (k == RegionAnnot::Private && is_owner) ||
            (k == RegionAnnot::SingleWriter && write && is_owner) ||
            (k == RegionAnnot::ReadOnlyAfterBarrier && !write);
        all = all && ok;
    }
    return elide_ && all;
}

void
Context::annotViolation(LineIdx line, RegionAnnot kind,
                        bool store) const
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "annotation violation: P%d %s line %llu annotated"
                  " %s (owner P%d)",
                  proc_.id, store ? "stores to" : "loads from",
                  static_cast<unsigned long long>(line),
                  regionAnnotName(kind), heap_.annotOwnerOf(line));
    throw AuditError(buf);
}

int
Context::numProcs() const
{
    return cfg_.numProcs;
}

void
Context::PollAwait::await_suspend(std::coroutine_handle<> h)
{
    Proc &p = c->proc_;
    c->rt_.transport().deferAt(p.now, [this_c = c, h] {
        Proc &pp = this_c->proc_;
        pp.lastYield = pp.now;
        this_c->proto_.drainMailbox(pp);
        h.resume();
    });
}

void
Context::ReleaseFence::await_suspend(std::coroutine_handle<> h)
{
    Context *ctx = c;
    Proc &p = ctx->proc_;
    const Tick t0 = p.now;
    ctx->proto_.noteBlocked(p);
    ctx->proto_.releaseFence(p, [ctx, h, t0] {
        Proc &pp = ctx->proc_;
        pp.now = std::max(pp.now, ctx->rt_.transport().now());
        if (ctx->proto_.measuring())
            pp.bd.sync += pp.now - t0;
        pp.status = ProcStatus::Running;
        h.resume();
    });
}

// ---------------------------------------------------------------------
// Slow paths
// ---------------------------------------------------------------------

SlowOp
Context::loadSlow(Addr a, bool flag_checked)
{
    Proc &p = proc_;
    const LineIdx line = heap_.lineOf(a);
    p.now += cfg_.costs.protoEntry;

    if (flag_checked && readableFast(a)) {
        // False miss: the application data happened to equal the
        // flag value.  The slow routine's state lookup detects this
        // and simply returns (Section 2.3).
        p.now += cfg_.costs.falseMiss;
        if (proto_.measuring())
            ++proto_.countersFor(p.node).falseMisses;
        co_return;
    }

    for (;;) {
        // Scalar loads are migratory-grant candidates (batch reads
        // resolve with the hint off; see resolveBatchRegion).
        switch (proto_.loadMiss(p, line, true)) {
          case MissOutcome::Resolved:
            co_return;
          case MissOutcome::WaitData:
            co_await ParkLoad{this, line};
            co_return;
          case MissOutcome::WaitRetry:
            co_await ParkRetry{this, line, StallKind::Read};
            continue;
          default:
            assert(false && "unexpected load-miss outcome");
            co_return;
        }
    }
}

SlowOp
Context::storeSlow(Addr a, int len, std::uint64_t packed)
{
    Proc &p = proc_;
    const LineIdx line = heap_.lineOf(a);
    p.now += cfg_.costs.protoEntry;

    for (;;) {
        switch (proto_.storeMiss(p, line, a, len)) {
          case MissOutcome::Resolved:
          case MissOutcome::ResolvedPending: {
            std::uint8_t bytes[8];
            std::memcpy(bytes, &packed, 8);
            mem_->copyIn(a, bytes, static_cast<std::size_t>(len));
            co_return;
          }
          case MissOutcome::WaitThrottle:
            co_await ParkThrottle{this};
            continue;
          case MissOutcome::WaitRetry:
            co_await ParkRetry{this, line, StallKind::Write};
            continue;
          default:
            assert(false && "unexpected store-miss outcome");
            co_return;
        }
    }
}

// ---------------------------------------------------------------------
// Batching
// ---------------------------------------------------------------------

BatchRegion
Context::makeRegion(Addr base, int bytes, bool write, Addr store_base,
                    int store_len) const
{
    assert(bytes > 0);
    BatchRegion r;
    r.firstLine = heap_.lineOf(base);
    r.numLines = heap_.lineOf(base + static_cast<Addr>(bytes) - 1) -
                 r.firstLine + 1;
    r.write = write;
    if (write) {
        if (store_len < 0) {
            r.storeBase = base;
            r.storeLen = bytes;
        } else {
            r.storeBase = store_base;
            r.storeLen = store_len;
        }
    }
    return r;
}

Context::BatchAwait
Context::batch(Addr base, int bytes, bool write, Addr store_base,
               int store_len)
{
    return BatchAwait{
        this, makeRegion(base, bytes, write, store_base, store_len)};
}

Context::BatchSetAwait
Context::batchSet(BatchSpec a, BatchSpec b)
{
    BatchSet s;
    s.r[s.n++] = makeRegion(a.base, a.bytes, a.write, 0, -1);
    s.r[s.n++] = makeRegion(b.base, b.bytes, b.write, 0, -1);
    return BatchSetAwait{this, s};
}

Context::BatchSetAwait
Context::batchSet(BatchSpec a, BatchSpec b, BatchSpec c)
{
    BatchSet s;
    s.r[s.n++] = makeRegion(a.base, a.bytes, a.write, 0, -1);
    s.r[s.n++] = makeRegion(b.base, b.bytes, b.write, 0, -1);
    s.r[s.n++] = makeRegion(c.base, c.bytes, c.write, 0, -1);
    return BatchSetAwait{this, s};
}

Context::BatchSetAwait
Context::batchSet(BatchSpec a, BatchSpec b, BatchSpec c, BatchSpec d)
{
    BatchSet s;
    s.r[s.n++] = makeRegion(a.base, a.bytes, a.write, 0, -1);
    s.r[s.n++] = makeRegion(b.base, b.bytes, b.write, 0, -1);
    s.r[s.n++] = makeRegion(c.base, c.bytes, c.write, 0, -1);
    s.r[s.n++] = makeRegion(d.base, d.bytes, d.write, 0, -1);
    return BatchSetAwait{this, s};
}

bool
Context::batchRegionReady(const BatchRegion &r) const
{
    if (!r.write && check_.batchesUseFlag()) {
        // Base-Shasta loads-only batch: flag technique per line.
        for (std::uint32_t i = 0; i < r.numLines; ++i) {
            const Addr la = heap_.lineAddr(r.firstLine + i);
            if (mem_->longwordIsFlag(la))
                return false;
        }
        return true;
    }
    if (cfg_.mode == Mode::Smp) {
        return proto_.batchLinesReady(proc_, r.firstLine, r.numLines,
                                      r.write);
    }
    // Base-Shasta state-table batch check.
    for (std::uint32_t i = 0; i < r.numLines; ++i) {
        const LState s = proto_.nodeState(proc_.node, r.firstLine + i);
        const bool ok = r.write ? writableState(s) : readableState(s);
        if (!ok)
            return false;
    }
    return true;
}

bool
Context::BatchAwait::await_ready()
{
    Context *ctx = c;
    Proc &p = ctx->proc_;
    ++p.checks.batchChecks;
    const Tick cost = ctx->check_.batchCheck(
        static_cast<int>(r.numLines), !r.write);
    if (ctx->batchElided(r.firstLine, r.numLines, r.write)) {
        ++p.checks.elidedChecks;
        p.checks.elidedCheckCycles += cost;
    } else {
        p.now += cost;
        p.checks.checkCycles += cost;
    }
    if (!ctx->check_.enabled())
        return true;
    return ctx->batchRegionReady(r);
}

bool
Context::BatchSetAwait::await_ready()
{
    Context *ctx = c;
    Proc &p = ctx->proc_;
    ++p.checks.batchChecks;
    int lines = 0;
    bool loads_only = true;
    for (int i = 0; i < s.n; ++i) {
        lines += static_cast<int>(s.r[i].numLines);
        loads_only = loads_only && !s.r[i].write;
    }
    const Tick cost = ctx->check_.batchCheck(lines, loads_only);
    // Audit every range (no short-circuit); elide the combined cost
    // only if every range is provably redundant.
    bool all_elided = s.n > 0;
    for (int i = 0; i < s.n; ++i) {
        const bool e = ctx->batchElided(
            s.r[i].firstLine, s.r[i].numLines, s.r[i].write);
        all_elided = all_elided && e;
    }
    if (all_elided) {
        ++p.checks.elidedChecks;
        p.checks.elidedCheckCycles += cost;
    } else {
        p.now += cost;
        p.checks.checkCycles += cost;
    }
    if (!ctx->check_.enabled())
        return true;
    for (int i = 0; i < s.n; ++i) {
        if (!ctx->batchRegionReady(s.r[i]))
            return false;
    }
    return true;
}

Task
Context::resolveBatchRegion(BatchRegion *r)
{
    // The batch miss handler sends out requests for *all* missing
    // blocks first and only then waits for the replies, so the
    // fetches overlap (Section 3.4.4: "the batch miss handler sends
    // out requests for any missing blocks").
    //
    // Write transactions are only started AFTER a block's data is
    // locally valid: marking store bytes dirty while a data reply is
    // still in flight would make the merge skip bytes that the raw
    // stores have not written yet.
    Proc &p = proc_;
    const LineIdx end = r->firstLine + r->numLines;

    // Phase A: issue reads.  A miss on an Invalid block starts its
    // transaction and returns WaitData without parking.
    LineIdx line = r->firstLine;
    while (line < end) {
        const BlockInfo b = heap_.blockOf(line);
        const Addr la = heap_.lineAddr(line);
        if (!readableFast(la)) {
            for (;;) {
                const MissOutcome oc = proto_.loadMiss(p, line);
                if (oc == MissOutcome::Resolved ||
                    oc == MissOutcome::WaitData) {
                    break;
                }
                assert(oc == MissOutcome::WaitRetry);
                co_await ParkRetry{this, line, StallKind::Read};
                if (readableFast(la))
                    break;
            }
        }
        line = b.firstLine + b.numLines;
    }

    // Phase B: wait until every block's data is valid, then (for
    // write regions) start the non-blocking write transaction for
    // the store overlap.
    line = r->firstLine;
    while (line < end) {
        const BlockInfo b = heap_.blockOf(line);
        const Addr la = heap_.lineAddr(line);
        for (;;) {
            while (!readableFast(la)) {
                const MissOutcome oc = proto_.loadMiss(p, line);
                if (oc == MissOutcome::Resolved)
                    break;
                if (oc == MissOutcome::WaitData) {
                    co_await ParkLoad{this, line};
                    break;
                }
                assert(oc == MissOutcome::WaitRetry);
                co_await ParkRetry{this, line, StallKind::Read};
            }

            if (!r->write || r->storeLen <= 0)
                break;
            const Addr baddr = heap_.lineAddr(b.firstLine);
            const Addr bend =
                baddr + static_cast<Addr>(b.numLines) *
                            static_cast<Addr>(heap_.lineSize());
            const Addr lo = std::max(r->storeBase, baddr);
            const Addr hi = std::min(
                r->storeBase + static_cast<Addr>(r->storeLen), bend);
            if (lo >= hi || writableFast(la))
                break;

            // Acquire write permission WITHOUT pre-marking the store
            // range dirty: the raw stores have not executed yet, so
            // "dirty" bytes would be garbage in any snapshot or
            // merge.  If the block loses exclusivity before the raw
            // stores run, batchEnd() re-issues the write transaction
            // with the (then real) store values marked dirty.
            const MissOutcome oc = proto_.storeMiss(p, line, lo, 0);
            if (oc == MissOutcome::Resolved)
                break;
            if (oc == MissOutcome::ResolvedPending) {
                // A read-exclusive carries data that would overwrite
                // the raw stores if it landed after them; wait for
                // the data before returning to the application.
                while (!writableFast(la)) {
                    const MissOutcome w = proto_.loadMiss(p, line);
                    if (w == MissOutcome::Resolved)
                        break;
                    if (w == MissOutcome::WaitData) {
                        co_await ParkLoad{this, line};
                        continue;
                    }
                    assert(w == MissOutcome::WaitRetry);
                    co_await ParkRetry{this, line,
                                       StallKind::Write};
                }
                break;
            }
            if (oc == MissOutcome::WaitThrottle) {
                co_await ParkThrottle{this};
                continue;
            }
            assert(oc == MissOutcome::WaitRetry);
            co_await ParkRetry{this, line, StallKind::Write};
        }
        line = b.firstLine + b.numLines;
    }
}

SlowOp
Context::batchSlow(BatchRegion *r)
{
    Proc &p = proc_;
    p.now += cfg_.costs.protoEntry;
    if (proto_.measuring())
        ++proto_.countersFor(p.node).batchMisses;

    proto_.batchMark(p.node, r->firstLine, r->numLines);
    r->marked = true;
    co_await resolveBatchRegion(r);
}

SlowOp
Context::batchSetSlow(BatchSet *s)
{
    Proc &p = proc_;
    p.now += cfg_.costs.protoEntry;
    if (proto_.measuring())
        ++proto_.countersFor(p.node).batchMisses;

    // Mark every range before the first wait so invalidations of any
    // of them defer their flag fills for the whole batch.
    for (int i = 0; i < s->n; ++i) {
        proto_.batchMark(p.node, s->r[i].firstLine, s->r[i].numLines);
        s->r[i].marked = true;
    }
    for (int i = 0; i < s->n; ++i)
        co_await resolveBatchRegion(&s->r[i]);
}

void
Context::batchEnd(const BatchRegion &r)
{
    if (!r.marked)
        return;
    proto_.batchUnmark(proc_, r.firstLine, r.numLines, r.write,
                       r.storeBase, r.storeLen);
}

void
Context::batchEnd(const BatchSet &s)
{
    for (int i = 0; i < s.n; ++i)
        batchEnd(s.r[i]);
}

// ---------------------------------------------------------------------
// Synchronization
// ---------------------------------------------------------------------

SlowOp
Context::syncSlow(int op, int id)
{
    Proc &p = proc_;
    switch (op) {
      case 0: { // lock acquire
        // Stall at acquires while a batch is mid-flight on the node
        // (footnote 3 of the paper).
        while (proto_.nodeHasMarks(p.node))
            co_await ParkAcquire{this};

        struct LockPark
        {
            Context *c;
            int id;
            bool await_ready() { return false; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                c->rt_.lockApi().park(c->proc_, id, h);
            }
            void await_resume() {}
        };

        if (!rt_.lockApi().tryAcquire(p, id))
            co_await LockPark{this, id};
        co_return;
      }

      case 1: { // lock release
        co_await ReleaseFence{this};
        rt_.lockApi().release(p, id);
        co_return;
      }

      case 2: { // barrier
        co_await ReleaseFence{this};

        struct BarrierPark
        {
            Context *c;
            bool await_ready() { return false; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                c->rt_.barrierApi().park(c->proc_, h);
            }
            void await_resume() {}
        };

        if (!rt_.barrierApi().arrive(p))
            co_await BarrierPark{this};

        // Barrier exit is an acquire.
        while (proto_.nodeHasMarks(p.node))
            co_await ParkAcquire{this};
        co_return;
      }

      default:
        assert(false && "unknown sync op");
        co_return;
    }
}

void
Context::beginMeasure()
{
    rt_.openRegion();
    proc_.bd = Breakdown{};
    proc_.checks = CheckCounters{};
    proc_.regionStart = proc_.now;
}

} // namespace shasta
