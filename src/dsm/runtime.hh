/**
 * @file
 * Top-level DSM runtime: owns the simulated cluster for one run.
 *
 * Usage:
 *
 *   DsmConfig cfg = DsmConfig::smp(16, 4);
 *   Runtime rt(cfg);
 *   Addr a = rt.alloc(bytes);           // shared malloc
 *   int  l = rt.allocLock();
 *   rt.run([&](Context &c) { return myKernel(c, a, l); });
 *   auto t = rt.wallTime();
 */

#ifndef SHASTA_DSM_RUNTIME_HH
#define SHASTA_DSM_RUNTIME_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dsm/config.hh"
#include "dsm/context.hh"
#include "dsm/proc.hh"
#include "mem/granularity_advisor.hh"
#include "mem/shared_heap.hh"
#include "net/network.hh"
#include "obs/stats_json.hh"
#include "proto/protocol.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"
#include "stats/breakdown.hh"
#include "sync/barrier_manager.hh"
#include "sync/lock_manager.hh"

namespace shasta
{

class InvariantAuditor;
class Watchdog;
class ParallelEngine;
class ThreadBackend;
class ThreadLockManager;
class ThreadBarrierManager;

/**
 * One simulated cluster run.
 */
class Runtime
{
  public:
    explicit Runtime(const DsmConfig &cfg);
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** @{ Shared allocation (before run()). */
    /** Shared malloc with an optional coherence-granularity hint. */
    Addr alloc(std::size_t bytes, std::size_t block_bytes = 0);

    /** Shared malloc with home placement: the covered pages are homed
     *  at @p home (the paper's home placement optimization). */
    Addr allocHomed(std::size_t bytes, std::size_t block_bytes,
                    ProcId home);

    /** Create an application lock. */
    int allocLock();

    /**
     * Annotate an allocated shared region (the opt layer's elide
     * knob; see RegionAnnot).  Recording is unconditional and inert;
     * only opt.elide acts on it, and the audit verifier checks every
     * access against it.  Private regions must be homed on the
     * owner's node — a mismatch throws immediately.
     */
    void annotate(Addr base, std::size_t bytes, RegionAnnot kind,
                  ProcId owner = -1);

    /** Attach the adaptive-granularity profiler (opt.adaptive); the
     *  advisor observes allocations and protocol misses (profile
     *  pass) or overrides block sizes (apply pass).  Must be called
     *  before the first alloc(). */
    void setGranularityAdvisor(GranularityAdvisor *advisor);
    /** @} */

    /** Factory producing the application coroutine per processor. */
    using ProcBody = std::function<Task(Context &)>;

    /** Spawn one coroutine per processor and simulate to completion.
     *  Throws on deadlock or if a kernel throws. */
    void run(const ProcBody &body);

    /** @{ Results. */
    /** Elapsed simulated time of the measured region. */
    Tick wallTime() const;

    /** Aggregate breakdown (summed over processors). */
    TimeBreakdown aggregateBreakdown() const;

    /** Per-processor breakdown. */
    TimeBreakdown procBreakdown(int i) const;

    const ProtoCounters &counters() const { return proto_->counters(); }

    /** Latency histograms recorded by the protocol and sync layers. */
    const LatencyStats &latency() const { return proto_->latency(); }

    const NetworkCounts &netCounts() const { return tx_->counts(); }

    /** Sum of per-processor check counters. */
    CheckCounters checkTotals() const;

    /** Aggregated directory occupancy / shard-pressure counters. */
    DirCounters dirCounters() const { return proto_->dirCounters(); }

    /** All measured statistics of this run in one structure (the
     *  JSON run-summary schema; labels left empty). */
    obs::RunSummary runSummary() const;

    /** runSummary() rendered as a JSON object (trailing newline). */
    std::string statsJson() const;
    /** @} */

    /** @{ Component access. */
    const DsmConfig &config() const { return cfg_; }
    EventQueue &events() { return events_; }
    SharedHeap &heap() { return heap_; }
    Protocol &protocol() { return *proto_; }
    /** Active transport: the simulated Network, or the thread
     *  backend's ring mesh when cfg.backend == BackendKind::Thread. */
    Transport &transport() { return *tx_; }
    const Transport &transport() const { return *tx_; }
    /** Active lock/barrier implementations for the selected backend. */
    LockApi &lockApi() { return *lockApi_; }
    BarrierApi &barrierApi() { return *barrierApi_; }
    /** Simulator-backed managers (valid in every mode; only active
     *  when the sim backend is selected). */
    LockManager &lockMgr() { return *locks_; }
    BarrierManager &barrierMgr() { return *barrier_; }
    Network &network() { return net_; }
    const Network &network() const { return net_; }
    /** Parallel simulation engine, or null when the run executes on
     *  the serial event loop (engineThreads == 1, or a feature that
     *  forces serial execution is active — see
     *  effectiveEngineThreads()). */
    ParallelEngine *engine() { return engine_.get(); }
    Proc &proc(int i) { return procs_[static_cast<std::size_t>(i)]; }
    const std::vector<Proc> &procs() const { return procs_; }
    int numProcs() const { return cfg_.numProcs; }
    /** @} */

    /** Global side of Context::beginMeasure() (idempotent). */
    void openRegion();

    /**
     * Reset every measured statistic in one place: protocol counters,
     * network counts, per-processor breakdowns and check counters,
     * and the measurement window start.  A reset mid-run yields the
     * same measured numbers as starting measurement fresh at that
     * point.
     */
    void resetMeasurement();

    /** Human-readable snapshot of processor and protocol state (used
     *  in deadlock diagnostics and debugging). */
    std::string dumpState() const;

    /** Aggregated audit/watchdog counters (zeros when auditing is
     *  disabled). */
    AuditCounters auditTotals() const;

  private:
    Task procMain(Context &ctx, const ProcBody &body);

    /** Worker count for the parallel engine after feature gating: 1
     *  (serial) unless the sim backend runs a multi-machine protocol
     *  mode with tracing and auditing off — those features observe
     *  mid-window execution order, which only the serial engine
     *  defines. */
    int effectiveEngineThreads() const;

    /** Run one invariant sweep; throws AuditError on violations.
     *  Only called from event-queue top level. */
    void runAuditSweep();

    DsmConfig cfg_;
    EventQueue events_;
    SharedHeap heap_;
    Topology topo_;
    Network net_;
    // Destroyed after proto_ (declared before it): proto_ holds a
    // Transport& that may refer to the thread backend.
    std::unique_ptr<ThreadBackend> threadBackend_;
    std::vector<Proc> procs_;
    std::unique_ptr<Protocol> proto_;
    std::unique_ptr<LockManager> locks_;
    std::unique_ptr<BarrierManager> barrier_;
    std::unique_ptr<ThreadLockManager> threadLocks_;
    std::unique_ptr<ThreadBarrierManager> threadBarrier_;
    std::unique_ptr<InvariantAuditor> auditor_;
    std::unique_ptr<Watchdog> watchdog_;
    /** Present only when effectiveEngineThreads() > 1.  Declared
     *  after net_ so it is destroyed first: the wheels may still hold
     *  callbacks capturing the Network. */
    std::unique_ptr<ParallelEngine> engine_;
    std::vector<std::unique_ptr<Context>> ctxs_;
    std::vector<Task> roots_;
    Transport *tx_ = nullptr;
    LockApi *lockApi_ = nullptr;
    BarrierApi *barrierApi_ = nullptr;
    GranularityAdvisor *advisor_ = nullptr;
    std::atomic<int> doneCount_{0};
    bool regionOpen_ = false;
    bool ran_ = false;
};

} // namespace shasta

#endif // SHASTA_DSM_RUNTIME_HH
