#include "dsm/config.hh"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "sim/env.hh"

namespace shasta
{

void
AuditConfig::applyEnv()
{
    const char *env = std::getenv("SHASTA_AUDIT");
    if (!env)
        return;
    std::string_view rest(env);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        std::string_view tok = rest.substr(0, comma);
        rest = comma == std::string_view::npos
                   ? std::string_view{}
                   : rest.substr(comma + 1);
        if (tok == "1" || tok == "on" || tok == "all") {
            invariants = true;
            watchdog = true;
        } else if (tok == "invariants") {
            invariants = true;
        } else if (tok == "watchdog") {
            watchdog = true;
        } else if (tok == "0" || tok == "off") {
            invariants = false;
            watchdog = false;
        }
        // Unknown tokens are ignored, mirroring SHASTA_TRACE.
    }
}

OptConfig
OptConfig::parseSpec(const char *what, const char *value)
{
    auto bad = [&](std::string_view tok, const char *why) {
        std::fprintf(stderr,
                     "shasta: invalid %s='%s' (%s token '%.*s'; want "
                     "a comma list of migratory|elide|adaptive, or "
                     "all|none alone)\n",
                     what, value, why,
                     static_cast<int>(tok.size()), tok.data());
        std::exit(2);
    };
    OptConfig out;
    bool seen[3] = {false, false, false};
    bool seen_alias = false;
    int tokens = 0;
    std::string_view rest(value);
    for (;;) {
        const std::size_t comma = rest.find(',');
        const std::string_view tok = rest.substr(0, comma);
        ++tokens;
        if (tok.empty()) {
            bad(tok, "empty");
        } else if (tok == "migratory") {
            if (seen[0])
                bad(tok, "duplicate");
            seen[0] = out.migratory = true;
        } else if (tok == "elide") {
            if (seen[1])
                bad(tok, "duplicate");
            seen[1] = out.elide = true;
        } else if (tok == "adaptive") {
            if (seen[2])
                bad(tok, "duplicate");
            seen[2] = out.adaptive = true;
        } else if (tok == "all") {
            out.migratory = out.elide = out.adaptive = true;
            seen_alias = true;
        } else if (tok == "none") {
            out = OptConfig{};
            seen_alias = true;
        } else {
            bad(tok, "unknown");
        }
        if (comma == std::string_view::npos)
            break;
        rest = rest.substr(comma + 1);
    }
    if (seen_alias && tokens > 1)
        bad(value, "all/none must stand alone in");
    return out;
}

void
OptConfig::applyEnv()
{
    const char *e = std::getenv("SHASTA_OPT");
    if (!e || *e == '\0')
        return;
    *this = parseSpec("SHASTA_OPT", e);
}

int
DsmConfig::effectiveClustering() const
{
    if (mode == Mode::Base)
        return 1;
    if (mode == Mode::Hardware) {
        return numProcs < procsPerMachine ? numProcs
                                          : procsPerMachine;
    }
    return clustering;
}

Topology
DsmConfig::topology() const
{
    return Topology(numProcs, effectiveClustering(), procsPerMachine);
}

void
DsmConfig::validate() const
{
    auto fail = [](const char *msg) {
        std::fprintf(stderr, "DsmConfig: %s\n", msg);
        std::abort();
    };
    if (numProcs < 1)
        fail("numProcs must be >= 1");
    if (procsPerMachine < 1)
        fail("procsPerMachine must be >= 1");
    const int c = effectiveClustering();
    if (c < 1 || c > procsPerMachine)
        fail("clustering must be in [1, procsPerMachine]");
    if (procsPerMachine % c != 0)
        fail("clustering must tile the machine");
    if (mode == Mode::Hardware && numProcs > procsPerMachine)
        fail("hardware-coherent runs fit on one machine");
    if (lineSize < 16 || (lineSize & (lineSize - 1)) != 0)
        fail("lineSize must be a power of two >= 16");
    if (quantum < 16)
        fail("quantum too small");
    if (maxOutstandingWrites < 1)
        fail("maxOutstandingWrites must be >= 1");
    if (dirShards < 1 || dirShards > 1024 ||
        (dirShards & (dirShards - 1)) != 0)
        fail("dirShards must be a power of two in [1, 1024]");
    if (ringCapacity < 2 ||
        (ringCapacity & (ringCapacity - 1)) != 0)
        fail("ringCapacity must be a power of two >= 2");
    if (threadStallMs < 0)
        fail("threadStallMs must be >= 0");
    if (engineThreads < 1)
        fail("engineThreads must be >= 1");
    if (backend == BackendKind::Thread && !protocolActive())
        fail("the thread backend requires a protocol mode "
             "(Base or Smp)");
    fault.validate();
    retx.validate();
}

void
DsmConfig::applyBackendEnv()
{
    if (const char *e = std::getenv("SHASTA_BACKEND");
        e != nullptr && *e != '\0') {
        const std::string_view v(e);
        if (v == "thread")
            backend = BackendKind::Thread;
        else if (v == "sim")
            backend = BackendKind::Sim;
        else {
            std::fprintf(stderr,
                         "DsmConfig: bad SHASTA_BACKEND '%s' "
                         "(want sim|thread)\n",
                         e);
            std::abort();
        }
    }
    // Strict parses (sim/env.hh): a set-but-garbage knob names the
    // variable and value and exits instead of atoi-truncating.
    ringCapacity = static_cast<int>(env::envInt(
        "SHASTA_RING_CAP", 2, 1 << 30, ringCapacity));
    threadStallMs = static_cast<int>(env::envInt(
        "SHASTA_THREAD_STALL_MS", 0, 86400000, threadStallMs));
    threadFuzzSeed =
        env::envU64("SHASTA_THREAD_FUZZ", 0, threadFuzzSeed);
    engineThreads = static_cast<int>(env::envInt(
        "SHASTA_ENGINE_THREADS", 1, 4096, engineThreads));
    // Hardware/sequential runs are host-side cost models with no
    // protocol messages to carry: they stay on the simulator even
    // when the environment asks for the thread backend, so mixed
    // sweeps (parallel runs + sequential references) keep working.
    if (backend == BackendKind::Thread && !protocolActive())
        backend = BackendKind::Sim;
}

DsmConfig
DsmConfig::sequential()
{
    DsmConfig c;
    c.mode = Mode::Hardware;
    c.numProcs = 1;
    return c;
}

DsmConfig
DsmConfig::hardware(int num_procs)
{
    DsmConfig c;
    c.mode = Mode::Hardware;
    c.numProcs = num_procs;
    return c;
}

DsmConfig
DsmConfig::base(int num_procs)
{
    DsmConfig c;
    c.mode = Mode::Base;
    c.numProcs = num_procs;
    c.clustering = 1;
    return c;
}

DsmConfig
DsmConfig::smp(int num_procs, int clustering)
{
    DsmConfig c;
    c.mode = Mode::Smp;
    c.numProcs = num_procs;
    c.clustering = clustering;
    return c;
}

} // namespace shasta
