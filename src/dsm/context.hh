/**
 * @file
 * Per-processor application interface to the DSM.
 *
 * Application kernels run as coroutines and access shared memory
 * through a Context.  Each accessor returns an awaitable whose
 * await_ready() performs the *inline check* of the paper (charging
 * its cycle cost) and is true on a hit, so the common case never
 * suspends.  On a miss, the awaitable transfers control into a
 * detached slow-path coroutine that talks to the protocol, parks on
 * miss entries, and resumes the application when the access can
 * complete.
 *
 * The accessors mirror what Shasta's binary rewriter produces:
 *
 *  - loads of >= 4 bytes are checked against the invalid flag (one
 *    compare; the load and check form a single atomic event);
 *  - smaller loads and all stores are checked via the state table;
 *  - runs of accesses can be *batched*: one check per line covered,
 *    then unchecked ("raw") accesses inside the region
 *    (Section 2.3 / 3.4.4).
 */

#ifndef SHASTA_DSM_CONTEXT_HH
#define SHASTA_DSM_CONTEXT_HH

#include <array>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <cstring>
#include <initializer_list>

#include "check/check_model.hh"
#include "dsm/config.hh"
#include "dsm/proc.hh"
#include "mem/node_memory.hh"
#include "mem/shared_heap.hh"
#include "proto/protocol.hh"
#include "sim/task.hh"

namespace shasta
{

class Runtime;
class LockManager;
class BarrierManager;

/**
 * Self-destroying slow-path coroutine.
 *
 * Created inside an awaitable's await_suspend and symmetric-
 * transferred into; when it finishes it resumes the application
 * coroutine and destroys its own frame.
 */
class SlowOp
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;

        SlowOp
        get_return_object()
        {
            return SlowOp{
                std::coroutine_handle<promise_type>::from_promise(
                    *this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h)
                noexcept
            {
                auto cont = h.promise().continuation;
                h.destroy();
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void return_void() {}

        void unhandled_exception() { std::terminate(); }
    };

    explicit SlowOp(std::coroutine_handle<promise_type> h)
        : handle(h)
    {}

    std::coroutine_handle<promise_type> handle;
};

/** Description of one completed batch region. */
struct BatchRegion
{
    LineIdx firstLine = 0;
    std::uint32_t numLines = 0;
    bool write = false;
    Addr storeBase = 0;
    int storeLen = 0;
    /** True if the slow path marked the blocks (needs batchEnd
     *  bookkeeping). */
    bool marked = false;
};

/**
 * A batch covering several address ranges checked together, as the
 * rewriter does for interleaved accesses via multiple base registers
 * (Section 2.3).  Fixed capacity keeps the hot path allocation-free.
 */
struct BatchSet
{
    static constexpr int kMaxRanges = 4;
    std::array<BatchRegion, kMaxRanges> r{};
    int n = 0;
};

/**
 * The per-processor application interface.
 */
class Context
{
  public:
    Context(Runtime &rt, Proc &proc);

    Proc &proc() { return proc_; }
    ProcId id() const { return proc_.id; }
    int numProcs() const;
    const DsmConfig &config() const { return cfg_; }

    /** Advance the local clock by @p cycles of computation. */
    void compute(Tick cycles) { proc_.now += cycles; }

    /** Current local simulated time. */
    Tick now() const { return proc_.now; }

    // -----------------------------------------------------------------
    // Poll (loop backedge)
    // -----------------------------------------------------------------

    struct PollAwait
    {
        Context *c;

        bool
        await_ready()
        {
            Proc &p = c->proc_;
            p.now += c->check_.pollCost();
            ++p.checks.polls;
            if (p.mailbox.hasMail())
                c->proto_.drainMailbox(p);
            if (!c->needYield_)
                return true;
            return p.now - p.lastYield < c->cfg_.quantum;
        }

        void await_suspend(std::coroutine_handle<> h);

        void await_resume() {}
    };

    /** Poll for messages and yield if the quantum is exhausted.  Call
     *  at loop backedges, as Shasta's rewriter does. */
    PollAwait poll() { return PollAwait{this}; }

    // -----------------------------------------------------------------
    // Checked single accesses
    // -----------------------------------------------------------------

    template <typename T>
    static bool
    valueIsFlag(T v)
    {
        static_assert(sizeof(T) == 4 || sizeof(T) == 8);
        if constexpr (sizeof(T) == 8) {
            std::uint64_t u;
            std::memcpy(&u, &v, 8);
            return u == kInvalidFlag64;
        } else {
            std::uint32_t u;
            std::memcpy(&u, &v, 4);
            return u == kInvalidFlag;
        }
    }

    template <typename T, bool Fp>
    struct LoadAwait
    {
        Context *c;
        Addr a;

        bool
        await_ready()
        {
            Proc &p = c->proc_;
            ++p.checks.loads;
            Tick cost;
            if constexpr (sizeof(T) >= 4) {
                // Invalid-flag check: load, compare, branch (state
                // table when the flag optimization is disabled).
                cost = c->check_.accessCheck(
                    Fp ? AccessKind::LoadFp : AccessKind::LoadInt);
            } else {
                // Sub-longword loads cannot use the flag; they check
                // the state table like stores.
                cost = c->check_.enabled()
                           ? c->check_.costs().stateTable
                           : 0;
            }
            switch (c->annotAction(a, false, cost)) {
              case AnnotAction::Bypass:
                // Private region, owner access: the data can never
                // be remotely invalid, so the check (and any false
                // miss on the flag value) is skipped entirely.
                return true;
              case AnnotAction::Elide:
                break; // charge nothing; keep the check's logic
              case AnnotAction::Charge:
                p.now += cost;
                p.checks.checkCycles += cost;
                break;
            }
            if (!c->check_.enabled())
                return true;
            if constexpr (sizeof(T) >= 4) {
                if (!c->check_.loadsUseFlag())
                    return c->readableFast(a);
                const T v = c->mem_->read<T>(a);
                return !valueIsFlag(v);
            } else {
                return c->readableFast(a);
            }
        }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> h)
        {
            const bool flag_checked =
                sizeof(T) >= 4 && c->check_.loadsUseFlag();
            SlowOp op = c->loadSlow(a, flag_checked);
            op.handle.promise().continuation = h;
            return op.handle;
        }

        T await_resume() { return c->mem_->read<T>(a); }
    };

    /** Checked floating-point load (flag technique; atomic variant
     *  in SMP mode). */
    LoadAwait<double, true> loadFp(Addr a)
    {
        return LoadAwait<double, true>{this, a};
    }

    LoadAwait<float, true> loadFp32(Addr a)
    {
        return LoadAwait<float, true>{this, a};
    }

    /** Checked integer loads. */
    LoadAwait<std::int64_t, false> loadI64(Addr a)
    {
        return LoadAwait<std::int64_t, false>{this, a};
    }

    LoadAwait<std::int32_t, false> loadI32(Addr a)
    {
        return LoadAwait<std::int32_t, false>{this, a};
    }

    LoadAwait<std::uint64_t, false> loadU64(Addr a)
    {
        return LoadAwait<std::uint64_t, false>{this, a};
    }

    LoadAwait<std::uint8_t, false> loadU8(Addr a)
    {
        return LoadAwait<std::uint8_t, false>{this, a};
    }

    template <typename T>
    struct StoreAwait
    {
        Context *c;
        Addr a;
        T v;

        bool
        await_ready()
        {
            Proc &p = c->proc_;
            ++p.checks.stores;
            const Tick cost = c->check_.accessCheck(AccessKind::Store);
            switch (c->annotAction(a, true, cost)) {
              case AnnotAction::Bypass:
                // Private region, owner store: the data lives in
                // the owner node's memory (annotate() validated the
                // home) and no other processor ever touches it, so
                // the store needs no coherence work at all.
                c->mem_->write<T>(a, v);
                return true;
              case AnnotAction::Elide:
                break; // charge nothing; keep the store's logic
              case AnnotAction::Charge:
                p.now += cost;
                p.checks.checkCycles += cost;
                break;
            }
            if (!c->check_.enabled() || c->writableFast(a)) {
                c->mem_->write<T>(a, v);
                return true;
            }
            return false;
        }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> h)
        {
            SlowOp op = c->storeSlow(a, static_cast<int>(sizeof(T)),
                                     pack(v));
            op.handle.promise().continuation = h;
            return op.handle;
        }

        void await_resume() {}

        static std::uint64_t
        pack(T value)
        {
            std::uint64_t u = 0;
            std::memcpy(&u, &value, sizeof(T));
            return u;
        }
    };

    /** Checked stores. */
    StoreAwait<double> storeFp(Addr a, double v)
    {
        return StoreAwait<double>{this, a, v};
    }

    StoreAwait<float> storeFp32(Addr a, float v)
    {
        return StoreAwait<float>{this, a, v};
    }

    StoreAwait<std::int64_t> storeI64(Addr a, std::int64_t v)
    {
        return StoreAwait<std::int64_t>{this, a, v};
    }

    StoreAwait<std::int32_t> storeI32(Addr a, std::int32_t v)
    {
        return StoreAwait<std::int32_t>{this, a, v};
    }

    StoreAwait<std::uint64_t> storeU64(Addr a, std::uint64_t v)
    {
        return StoreAwait<std::uint64_t>{this, a, v};
    }

    StoreAwait<std::uint8_t> storeU8(Addr a, std::uint8_t v)
    {
        return StoreAwait<std::uint8_t>{this, a, v};
    }

    // -----------------------------------------------------------------
    // Batched accesses
    // -----------------------------------------------------------------

    struct BatchAwait
    {
        Context *c;
        BatchRegion r;

        bool await_ready();

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> h)
        {
            SlowOp op = c->batchSlow(&r);
            op.handle.promise().continuation = h;
            return op.handle;
        }

        BatchRegion await_resume() { return r; }
    };

    /**
     * Begin a batch region covering [base, base+bytes).
     *
     * @param write true if the region contains stores; the checked
     *   store range is [store_base, store_base+store_len) (defaults
     *   to the whole region).
     *
     * After the awaitable completes, perform the accesses with
     * rawLoad/rawStore (no co_await in between!) and then call
     * batchEnd() with the returned region.
     */
    BatchAwait batch(Addr base, int bytes, bool write,
                     Addr store_base = 0, int store_len = -1);

    /** Finish a batch region (applies deferred invalidation fills and
     *  re-propagates stores if needed). */
    void batchEnd(const BatchRegion &r);

    struct BatchSetAwait
    {
        Context *c;
        BatchSet s;

        bool await_ready();

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> h)
        {
            SlowOp op = c->batchSetSlow(&s);
            op.handle.promise().continuation = h;
            return op.handle;
        }

        BatchSet await_resume() { return s; }
    };

    /** One range of a multi-range batch. */
    struct BatchSpec
    {
        Addr base;
        int bytes;
        bool write;
    };

    /** @{ Begin a batch over several ranges, checked together (one
     *  check per line covered).  Overloads instead of an
     *  initializer_list: array-backed temporaries may not live
     *  across a co_await under GCC. */
    BatchSetAwait batchSet(BatchSpec a, BatchSpec b);
    BatchSetAwait batchSet(BatchSpec a, BatchSpec b, BatchSpec c);
    BatchSetAwait batchSet(BatchSpec a, BatchSpec b, BatchSpec c,
                           BatchSpec d);
    /** @} */

    /** Finish a multi-range batch. */
    void batchEnd(const BatchSet &s);

    /** @{ Unchecked accesses for use inside batch regions. */
    template <typename T>
    T
    rawLoad(Addr a) const
    {
        ++proc_.checks.batchedAccesses;
        return mem_->read<T>(a);
    }

    template <typename T>
    void
    rawStore(Addr a, T v)
    {
        ++proc_.checks.batchedAccesses;
        mem_->write<T>(a, v);
    }
    /** @} */

    // -----------------------------------------------------------------
    // Synchronization
    // -----------------------------------------------------------------

    struct SyncAwait
    {
        Context *c;
        int op; ///< 0 = lock, 1 = unlock, 2 = barrier
        int id;

        bool await_ready() { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> h)
        {
            SlowOp s = c->syncSlow(op, id);
            s.handle.promise().continuation = h;
            return s.handle;
        }

        void await_resume() {}
    };

    /** Acquire application lock @p id. */
    SyncAwait lock(int id) { return SyncAwait{this, 0, id}; }

    /** Release application lock @p id (a release point: waits for the
     *  node's outstanding stores first). */
    SyncAwait unlock(int id) { return SyncAwait{this, 1, id}; }

    /** Global barrier across all processors (also a release point). */
    SyncAwait barrier() { return SyncAwait{this, 2, 0}; }

    // -----------------------------------------------------------------
    // Measurement
    // -----------------------------------------------------------------

    /** Start the measured region on this processor (call on every
     *  processor right after a barrier). */
    void beginMeasure();

  private:
    friend struct PollAwait;

    /** True if the private (SMP) or node (Base) state allows a read. */
    bool
    readableFast(Addr a) const
    {
        const LineIdx line = heap_.lineOf(a);
        if (cfg_.mode == Mode::Smp)
            return privState_ReadOk(line);
        return readableState(proto_.nodeState(proc_.node, line));
    }

    bool
    writableFast(Addr a) const
    {
        const LineIdx line = heap_.lineOf(a);
        if (cfg_.mode == Mode::Smp) {
            return proto_.privState(proc_, line) == PState::Exclusive;
        }
        return writableState(proto_.nodeState(proc_.node, line));
    }

    bool
    privState_ReadOk(LineIdx line) const
    {
        return proto_.privState(proc_, line) != PState::Invalid;
    }

    // -----------------------------------------------------------------
    // Region annotations (opt.elide + audit verifier)
    // -----------------------------------------------------------------

    /** What a region annotation lets this access skip. */
    enum class AnnotAction : std::uint8_t
    {
        Charge, ///< no annotation applies: charge the check normally
        Elide,  ///< check provably redundant: zero cost, keep logic
        Bypass, ///< private region, owner access: skip the protocol
    };

    /**
     * Classify one access against the line's annotation, counting
     * elided checks and auditing for contradictions (a wrong
     * annotation throws AuditError when audit.invariants is on, and
     * is never silently acted upon).  Returns Charge in the common
     * un-annotated case.
     */
    AnnotAction annotAction(Addr a, bool store, Tick cost);

    /** Batch-check variant: true if every line of the region is
     *  annotated such that this processor's batch check is provably
     *  redundant.  Audits each line as a side effect. */
    bool batchElided(LineIdx first, std::uint32_t n, bool write);

    [[noreturn]] void annotViolation(LineIdx line, RegionAnnot kind,
                                     bool store) const;

    void
    countElided(Tick cost)
    {
        ++proc_.checks.elidedChecks;
        proc_.checks.elidedCheckCycles += cost;
    }

    /** @{ Slow paths (detached coroutines). */
    SlowOp loadSlow(Addr a, bool flag_checked);
    SlowOp storeSlow(Addr a, int len, std::uint64_t packed);
    SlowOp batchSlow(BatchRegion *r);
    SlowOp batchSetSlow(BatchSet *s);
    SlowOp syncSlow(int op, int id);

    /** Shared logic: make one region's blocks valid (and writable
     *  where required), marking them first. */
    Task resolveBatchRegion(BatchRegion *r);

    /** Fast-path check of one region (no marking). */
    bool batchRegionReady(const BatchRegion &r) const;

    /** Build a region from a spec. */
    BatchRegion makeRegion(Addr base, int bytes, bool write,
                           Addr store_base, int store_len) const;
    /** @} */

    /** Awaitables used inside the slow paths. */
    struct ParkLoad
    {
        Context *c;
        LineIdx line;
        bool await_ready() { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            c->proto_.parkLoad(c->proc_, line, h);
        }
        void await_resume() {}
    };

    struct ParkRetry
    {
        Context *c;
        LineIdx line;
        StallKind kind;
        bool await_ready() { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            c->proto_.parkRetry(c->proc_, line, h, kind);
        }
        void await_resume() {}
    };

    struct ParkThrottle
    {
        Context *c;
        bool await_ready() { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            c->proto_.parkThrottle(c->proc_, h);
        }
        void await_resume() {}
    };

    struct ParkAcquire
    {
        Context *c;
        bool await_ready() { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            c->proto_.parkAcquire(c->proc_, h);
        }
        void await_resume() {}
    };

    struct ReleaseFence
    {
        Context *c;
        bool
        await_ready()
        {
            // Quick check: nothing outstanding on the node.
            auto &ep = c->proto_.epochs(c->proc_.node);
            if (ep.outstanding() == 0) {
                ep.release([] {});
                return true;
            }
            return false;
        }

        void await_suspend(std::coroutine_handle<> h);

        void await_resume() {}
    };

    Runtime &rt_;
    Proc &proc_;
    const DsmConfig &cfg_;
    SharedHeap &heap_;
    Protocol &proto_;
    NodeMemory *mem_;
    CheckModel check_;
    bool needYield_;
    /** opt.elide: annotations may zero check costs. */
    bool elide_;
    /** audit.invariants: verify accesses against annotations. */
    bool auditAnnots_;
};

} // namespace shasta

#endif // SHASTA_DSM_CONTEXT_HH
