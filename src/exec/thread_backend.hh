/**
 * @file
 * Real-thread execution backend: the second Transport.
 *
 * One OS thread per logical node.  Each worker owns its node's
 * processors, coroutines, protocol tables and statistics shards, so
 * protocol code runs completely unsynchronized — exactly as in the
 * simulator, where node state is partitioned by construction.  The
 * only cross-thread edges are:
 *
 *  - per directed node pair, one SPSC ring of message frames
 *    (exec/spsc_ring.hh): the sending worker produces, the
 *    receiving worker consumes, acquire/release only;
 *  - a small mutex-guarded wake inbox per worker, through which the
 *    thread sync managers (exec/thread_sync.hh) queue coroutine
 *    resumptions for the owning worker;
 *  - a handful of global atomics for termination (in-flight frame
 *    count, unacked count, activity stamp, stop flag).
 *
 * Time is the wall clock: now() returns nanoseconds since backend
 * construction.  Processor-local clocks still advance by simulated
 * handler costs (harmless — they act as logical clocks driving the
 * quantum-yield heuristic) and are maxed with real arrival times,
 * so wallTime() measures real elapsed time.
 *
 * Fault injection mirrors the simulator's contract: remote
 * (inter-machine) frames are sequenced per directed node pair, the
 * stateless FaultModel decides drops/dups/delays, receivers dedup
 * and resequence, and senders retransmit from a wall-clock deadline
 * wheel (exec/deadline_wheel.hh) with capped exponential backoff,
 * giving up after RetxParams::maxAttempts.
 *
 * Termination is quiescence detection: every processor done, no
 * frame in flight or awaiting ack, every worker idle, and the
 * global activity stamp unchanged across the check (double read).
 * The same machinery detects deadlock (quiescent but processors
 * unfinished) and stalls (activity frozen for threadStallMs).
 */

#ifndef SHASTA_EXEC_THREAD_BACKEND_HH
#define SHASTA_EXEC_THREAD_BACKEND_HH

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dsm/config.hh"
#include "dsm/proc.hh"
#include "exec/deadline_wheel.hh"
#include "exec/spsc_ring.hh"
#include "exec/thread_sync.hh"
#include "net/network.hh"
#include "net/transport.hh"
#include "sim/task.hh"

namespace shasta
{

class Protocol;

class ThreadBackend : public Transport, public WakeSink
{
  public:
    ThreadBackend(const DsmConfig &cfg, const Topology &topo,
                  std::vector<Proc> &procs);
    ~ThreadBackend() override;

    /** Wire the protocol (for measuring()/recordLatency on wakes
     *  and retransmits).  Must precede run(). */
    void attachProtocol(Protocol &proto) { proto_ = &proto; }

    /** @{ Transport. */
    Tick now() const override;
    Tick send(Message msg, Tick send_time) override;
    /** Runs @p cb at the calling worker's next loop iteration (the
     *  thread-backend meaning of "defer to the owning thread at
     *  time >= t": wall time needs no explicit advancing). */
    void deferAt(Tick t, Callback cb) override;
    void setDeliver(Deliver d) override { deliver_ = std::move(d); }
    const NetworkCounts &counts() const override;
    void resetCounts() override;
    const Topology &topology() const override { return topo_; }
    /** @} */

    /** WakeSink: queue @p h onto the inbox of the worker owning
     *  @p p; that worker settles the clock/stall accounting and
     *  resumes. */
    void wake(ProcId p, std::coroutine_handle<> h, Tick stallStart,
              LatencyClass cls) override;

    /**
     * Execute the run: spawn one worker per node, start each root
     * coroutine on its owning worker, and block until quiescent.
     * Rethrows the first worker exception (protocol errors,
     * retransmit give-up, deadlock, stall).
     */
    void run(std::vector<Task> &roots, Protocol &proto,
             std::atomic<int> &done,
             std::function<std::string()> dumpState);

  private:
    enum : std::uint8_t { kData = 0, kAck = 1 };

    /** One ring slot.  Ack frames never reach the protocol: msg.src
     *  and msg.dst hold *node* ids and msg.relSeq() the cumulative
     *  ack. */
    struct Frame
    {
        Message msg;
        std::uint8_t kind = kData;
    };

    /** Sender-side reliability state for one directed node pair
     *  (owned by the sending worker). */
    struct PendingTx
    {
        std::uint32_t seq = 0;
        Message msg;
        Tick firstSend = 0;
        Tick rto = 0;
        int attempts = 0;
    };

    struct SendState
    {
        std::uint32_t sndNext = 1;
        std::uint64_t xmit = 0;
        /** Send order is serial order: cumulative acks prune a
         *  prefix. */
        std::deque<PendingTx> pending;
    };

    /** Receiver-side state for one incoming stream (owned by the
     *  receiving worker). */
    struct ParkedRx
    {
        std::uint32_t seq = 0;
        Message msg;
    };

    struct RecvState
    {
        std::uint32_t rcvNext = 1;
        std::uint32_t rcvLast = 0;
        std::uint64_t ackXmit = 0;
        std::vector<ParkedRx> buffer;
    };

    struct WakeEntry
    {
        ProcId pid = -1;
        std::coroutine_handle<> h;
        Tick stallStart = 0;
        LatencyClass cls = LatencyClass::LockWait;
    };

    /** A parked wall-clock deadline. */
    struct Deadline
    {
        enum Kind { Retx, DelayedFrame } kind = Retx;
        int dstNode = -1;
        std::uint32_t seq = 0;
        /** DelayedFrame only (fault dup/jitter path; allocation here
         *  is fine — the allocation-free guarantee covers the
         *  fault-free steady state). */
        std::unique_ptr<Frame> frame;
    };

    struct Worker
    {
        int node = 0;
        std::thread th;
        /** Same-node traffic (only this worker produces/consumes). */
        std::deque<Frame> loopback;
        /** deferAt continuations (ready queue). */
        std::vector<EventQueue::Callback> ready, readyScratch;
        /** Cross-thread wake inbox (thread sync managers). */
        std::mutex wakeM;
        std::vector<WakeEntry> wakes, wakeScratch;
        DeadlineWheel<Deadline> wheel;
        std::vector<SendState> sendTo;   ///< per destination node
        std::vector<RecvState> recvFrom; ///< per source node
        NetworkCounts counts;
        std::uint64_t fuzz = 0; ///< splitmix state; 0 = fuzz off
        std::atomic<bool> idle{false};
        int pushDepth = 0;
        /** Quiescence bookkeeping (worker 0 only). */
        std::uint64_t lastActivity = ~0ull;
        Tick lastChangeNs = 0;
        Tick quietSinceNs = -1;
    };

    Worker &workerOf(NodeId n) { return *workers_[static_cast<std::size_t>(n)]; }
    SpscRing<Frame> &ring(NodeId src, NodeId dst);

    void workerMain(int node);
    bool drainLoopback(Worker &w);
    bool drainRings(Worker &w);
    bool drainWakes(Worker &w);
    bool runReady(Worker &w);
    std::size_t advanceWheel(Worker &w);
    void handleFrame(Worker &w, NodeId srcNode, Frame &&f);

    /** Blocking ring push; keeps draining our own inbound while the
     *  ring is full so opposed full rings cannot deadlock. */
    void pushFrame(Worker &w, NodeId dstNode, Frame &&f,
                   bool counted = false);

    /** @{ Reliability (sequenced remote streams). */
    Tick relSend(Worker &w, Message &&msg, NodeId dstNode, Tick t);
    void transmit(Worker &w, NodeId dstNode, Message &&m);
    void onRetx(Worker &w, NodeId dstNode, std::uint32_t seq);
    void onSeqData(Worker &w, NodeId srcNode, Message &&m);
    void sendAck(Worker &w, NodeId srcNode);
    void onAck(Worker &w, NodeId peerNode, std::uint32_t cum);
    Tick initialRtoNs() const;
    /** @} */

    void checkQuiescence(Worker &w);
    void fail(std::exception_ptr e);
    void maybeFuzzPause(Worker &w, bool atIdle);

    const DsmConfig &cfg_;
    Topology topo_;
    std::vector<Proc> &procs_;
    Protocol *proto_ = nullptr;
    Deliver deliver_;
    std::vector<Task> *roots_ = nullptr;
    std::atomic<int> *done_ = nullptr;
    std::function<std::string()> dump_;

    int numNodes_ = 0;
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Dense mesh of SPSC rings, index src * numNodes_ + dst (null
     *  on the diagonal). */
    std::vector<std::unique_ptr<SpscRing<Frame>>> rings_;

    /** Wall-clock epoch (steady_clock at construction). */
    std::int64_t epochNs_ = 0;

    const bool faults_;
    std::unique_ptr<FaultModel> model_;

    /** Frames in rings/loopback-free path + delayed frames + wake
     *  inbox entries not yet fully handled. */
    std::atomic<std::int64_t> inflight_{0};
    /** Sequenced messages awaiting cumulative ack. */
    std::atomic<std::int64_t> unacked_{0};
    /** Bumped whenever any worker does work. */
    std::atomic<std::uint64_t> activity_{0};
    std::atomic<bool> stop_{false};

    std::mutex errorM_;
    std::exception_ptr error_;

    mutable NetworkCounts aggCounts_;

    /** The worker running on this thread (null off-worker). */
    static thread_local Worker *tlsWorker_;
};

} // namespace shasta

#endif // SHASTA_EXEC_THREAD_BACKEND_HH
