/**
 * @file
 * Real-thread lock and barrier managers (the thread backend's
 * LockApi/BarrierApi).
 *
 * The simulator's managers express locks and barriers as protocol
 * messages to a home processor; on real threads that costume is
 * unnecessary — a mutex-guarded queue per lock and a counting
 * barrier are the honest primitives.  What must be preserved is the
 * coroutine contract of sync/sync_api.hh: a parked continuation is
 * resumed *on the worker thread owning its processor*, never on the
 * releasing thread.  Both managers therefore hand wake-ups to a
 * WakeSink (implemented by ThreadBackend as a per-worker inbox);
 * the owning worker resumes the handle and settles the processor's
 * clock and stall accounting.
 *
 * The tryAcquire/park race (another thread releases between
 * tryAcquire returning false and park storing the handle) is closed
 * with a grant-pending flag checked under the same lock mutex:
 * park() observing a pending grant self-wakes through the sink,
 * which is safe because the inbox is drained only at worker loop
 * top level, strictly after the coroutine finished suspending.
 */

#ifndef SHASTA_EXEC_THREAD_SYNC_HH
#define SHASTA_EXEC_THREAD_SYNC_HH

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "dsm/config.hh"
#include "dsm/proc.hh"
#include "stats/histogram.hh"
#include "sync/sync_api.hh"

namespace shasta
{

class Protocol;

/**
 * Cross-thread resumption service: queue @p h to be resumed on the
 * worker that owns processor @p p, with sync-stall accounting from
 * @p stallStart charged under latency class @p cls.  Implemented by
 * ThreadBackend.
 */
class WakeSink
{
  public:
    virtual ~WakeSink() = default;

    virtual void wake(ProcId p, std::coroutine_handle<> h,
                      Tick stallStart, LatencyClass cls) = 0;
};

/** Mutex-queue application locks over real threads. */
class ThreadLockManager : public LockApi
{
  public:
    ThreadLockManager(const DsmConfig &cfg, WakeSink &sink,
                      Protocol &proto, std::vector<Proc> &procs);

    int allocLock() override;
    bool tryAcquire(Proc &p, int id) override;
    void park(Proc &p, int id, std::coroutine_handle<> h) override;
    void release(Proc &p, int id) override;

    int numLocks() const { return static_cast<int>(locks_.size()); }
    std::uint64_t acquires() const { return acquires_.load(); }
    std::uint64_t contended() const { return contended_.load(); }

  private:
    /** Non-movable (owns a mutex); locks_ is a deque so allocLock
     *  never relocates live elements. */
    struct LockState
    {
        std::mutex m;
        bool held = false;
        ProcId holder = -1;
        std::deque<ProcId> queue;
    };

    /** Guarded by the mutex of the lock the processor waits on (a
     *  processor waits on at most one lock at a time). */
    struct ParkedProc
    {
        std::coroutine_handle<> handle;
        Tick stallStart = 0;
        bool grantPending = false;
    };

    const DsmConfig &cfg_;
    WakeSink &sink_;
    Protocol &proto_;
    std::deque<LockState> locks_;
    std::vector<ParkedProc> parked_;
    std::atomic<std::uint64_t> acquires_{0};
    std::atomic<std::uint64_t> contended_{0};
};

/** Counting global barrier over real threads. */
class ThreadBarrierManager : public BarrierApi
{
  public:
    ThreadBarrierManager(const DsmConfig &cfg, WakeSink &sink,
                         Protocol &proto, std::vector<Proc> &procs);

    bool arrive(Proc &p) override;
    void park(Proc &p, std::coroutine_handle<> h) override;

    std::uint64_t episodes() const { return episodes_.load(); }

  private:
    /** Guarded by m_. */
    struct Waiter
    {
        std::coroutine_handle<> handle;
        Tick stallStart = 0;
        /** True from arrive() (non-last) until released; park()
         *  observing false self-wakes. */
        bool waiting = false;
    };

    const DsmConfig &cfg_;
    WakeSink &sink_;
    Protocol &proto_;
    std::mutex m_;
    int expected_;
    int arrived_ = 0;
    std::atomic<std::uint64_t> episodes_{0};
    std::vector<Waiter> w_;
};

} // namespace shasta

#endif // SHASTA_EXEC_THREAD_SYNC_HH
