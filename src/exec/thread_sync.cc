#include "exec/thread_sync.hh"

#include <cassert>

#include "proto/protocol.hh"

namespace shasta
{

ThreadLockManager::ThreadLockManager(const DsmConfig &cfg,
                                     WakeSink &sink, Protocol &proto,
                                     std::vector<Proc> &procs)
    : cfg_(cfg), sink_(sink), proto_(proto)
{
    parked_.resize(procs.size());
}

int
ThreadLockManager::allocLock()
{
    // Called before run() only (single-threaded setup), mirroring
    // Runtime::allocLock's contract.
    locks_.emplace_back();
    return static_cast<int>(locks_.size()) - 1;
}

bool
ThreadLockManager::tryAcquire(Proc &p, int id)
{
    assert(id >= 0 && id < numLocks());
    acquires_.fetch_add(1, std::memory_order_relaxed);

    LockState &l = locks_[static_cast<std::size_t>(id)];
    std::lock_guard<std::mutex> g(l.m);
    if (!l.held) {
        l.held = true;
        l.holder = p.id;
        return true;
    }
    contended_.fetch_add(1, std::memory_order_relaxed);
    parked_[static_cast<std::size_t>(p.id)].grantPending = false;
    l.queue.push_back(p.id);
    return false;
}

void
ThreadLockManager::park(Proc &p, int id, std::coroutine_handle<> h)
{
    LockState &l = locks_[static_cast<std::size_t>(id)];
    bool granted = false;
    {
        std::lock_guard<std::mutex> g(l.m);
        ParkedProc &pk = parked_[static_cast<std::size_t>(p.id)];
        pk.stallStart = p.now;
        if (pk.grantPending) {
            // release() granted us between tryAcquire and park.
            pk.grantPending = false;
            granted = true;
        } else {
            pk.handle = h;
        }
    }
    proto_.noteBlocked(p);
    if (granted)
        sink_.wake(p.id, h, p.now, LatencyClass::LockWait);
}

void
ThreadLockManager::release(Proc &p, int id)
{
    assert(id >= 0 && id < numLocks());
    LockState &l = locks_[static_cast<std::size_t>(id)];
    ProcId next = -1;
    std::coroutine_handle<> h{};
    Tick stallStart = 0;
    {
        std::lock_guard<std::mutex> g(l.m);
        assert(l.held && l.holder == p.id);
        if (l.queue.empty()) {
            l.held = false;
            l.holder = -1;
            return;
        }
        next = l.queue.front();
        l.queue.pop_front();
        l.holder = next;
        ParkedProc &pk = parked_[static_cast<std::size_t>(next)];
        if (pk.handle) {
            h = pk.handle;
            pk.handle = nullptr;
            stallStart = pk.stallStart;
        } else {
            // Waiter has not parked yet; its park() self-wakes.
            pk.grantPending = true;
        }
    }
    if (h)
        sink_.wake(next, h, stallStart, LatencyClass::LockWait);
}

ThreadBarrierManager::ThreadBarrierManager(const DsmConfig &cfg,
                                           WakeSink &sink,
                                           Protocol &proto,
                                           std::vector<Proc> &procs)
    : cfg_(cfg), sink_(sink), proto_(proto),
      expected_(cfg.numProcs)
{
    w_.resize(procs.size());
}

bool
ThreadBarrierManager::arrive(Proc &p)
{
    struct Wake
    {
        ProcId pid;
        std::coroutine_handle<> h;
        Tick stallStart;
    };
    // Worst case every other processor is parked; the vector is
    // small and arrive() is not a steady-state path.
    std::vector<Wake> wakes;
    {
        std::lock_guard<std::mutex> g(m_);
        if (++arrived_ < expected_) {
            Waiter &me = w_[static_cast<std::size_t>(p.id)];
            me.waiting = true;
            me.stallStart = p.now;
            return false;
        }
        // Last arriver: release the episode.
        arrived_ = 0;
        episodes_.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t q = 0; q < w_.size(); ++q) {
            Waiter &wq = w_[q];
            if (!wq.waiting)
                continue;
            wq.waiting = false;
            if (wq.handle) {
                wakes.push_back({static_cast<ProcId>(q), wq.handle,
                                 wq.stallStart});
                wq.handle = nullptr;
            }
            // else: released before park(); park() self-wakes.
        }
    }
    for (const Wake &wk : wakes)
        sink_.wake(wk.pid, wk.h, wk.stallStart,
                   LatencyClass::BarrierWait);
    return true;
}

void
ThreadBarrierManager::park(Proc &p, std::coroutine_handle<> h)
{
    bool released = false;
    {
        std::lock_guard<std::mutex> g(m_);
        Waiter &me = w_[static_cast<std::size_t>(p.id)];
        if (!me.waiting)
            released = true; // episode completed before we parked
        else
            me.handle = h;
    }
    proto_.noteBlocked(p);
    if (released)
        sink_.wake(p.id, h, p.now, LatencyClass::BarrierWait);
}

} // namespace shasta
