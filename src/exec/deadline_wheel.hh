/**
 * @file
 * Single-level hashed timing wheel for wall-clock deadlines.
 *
 * The thread backend arms a deadline per unacked message
 * (retransmit) and per fault-delayed frame.  Deadlines cluster
 * within a few RTOs of now, which a hashed wheel turns into O(1)
 * bucket appends; entries hashed into a bucket more than one lap
 * ahead simply stay parked (the due-time check filters them) until
 * the cursor comes around again.
 *
 * Single-threaded by design: each worker owns one wheel and both
 * adds and advances it, so there is no locking.  advance() fires
 * due entries through a caller-supplied visitor; the visitor may
 * add() new entries (retransmit backoff re-arms itself), which land
 * in the wheel without disturbing the in-progress sweep because due
 * entries are staged out of the buckets before any visitor runs.
 */

#ifndef SHASTA_EXEC_DEADLINE_WHEEL_HH
#define SHASTA_EXEC_DEADLINE_WHEEL_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace shasta
{

template <typename T>
class DeadlineWheel
{
  public:
    /** @p granularity is the bucket width in the caller's time unit
     *  (the thread backend uses nanoseconds); @p buckets must be a
     *  power of two. */
    explicit DeadlineWheel(Tick granularity = 1'000'000,
                           std::size_t buckets = 256)
        : gran_(granularity), mask_(buckets - 1), slots_(buckets)
    {
        assert(granularity > 0 && buckets >= 2 &&
               (buckets & (buckets - 1)) == 0);
    }

    /** Park @p v until @p when. */
    void
    add(Tick when, T v)
    {
        slots_[bucketOf(when) & mask_].push_back(
            Entry{when, std::move(v)});
        ++size_;
    }

    /**
     * Fire every entry due at @p now (when <= now) via
     * @p fire(T&&), in bucket order.  Returns the number fired.
     */
    template <typename F>
    std::size_t
    advance(Tick now, F &&fire)
    {
        const std::uint64_t nowB = bucketOf(now);
        if (size_ == 0) {
            cursor_ = nowB;
            return 0;
        }
        std::uint64_t span = nowB - cursor_;
        if (span > mask_)
            span = mask_; // a full lap covers every bucket
        for (std::uint64_t b = nowB - span; b <= nowB; ++b) {
            auto &slot = slots_[b & mask_];
            std::size_t keep = 0;
            for (std::size_t i = 0; i < slot.size(); ++i) {
                if (slot[i].when <= now)
                    due_.push_back(std::move(slot[i]));
                else
                    slot[keep++] = std::move(slot[i]);
            }
            slot.resize(keep);
        }
        cursor_ = nowB;
        const std::size_t fired = due_.size();
        size_ -= fired;
        // Staged before firing: visitors may add() re-arms freely.
        for (auto &e : due_)
            fire(std::move(e.v));
        due_.clear();
        return fired;
    }

    std::size_t size() const { return size_; }

  private:
    struct Entry
    {
        Tick when;
        T v;
    };

    std::uint64_t
    bucketOf(Tick t) const
    {
        return static_cast<std::uint64_t>(t) /
               static_cast<std::uint64_t>(gran_);
    }

    Tick gran_;
    std::size_t mask_;
    std::vector<std::vector<Entry>> slots_;
    std::vector<Entry> due_;
    std::uint64_t cursor_ = 0;
    std::size_t size_ = 0;
};

} // namespace shasta

#endif // SHASTA_EXEC_DEADLINE_WHEEL_HH
