#include "exec/thread_backend.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "net/reliable.hh"
#include "proto/protocol.hh"

namespace shasta
{

thread_local ThreadBackend::Worker *ThreadBackend::tlsWorker_ =
    nullptr;

namespace
{

std::int64_t
steadyNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** 300 MHz simulated ticks -> nanoseconds (1 tick = 10/3 ns). */
Tick
nsFromTicks(Tick t)
{
    return t * 10 / 3;
}

std::uint64_t
splitmix64(std::uint64_t &s)
{
    std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

} // namespace

ThreadBackend::ThreadBackend(const DsmConfig &cfg,
                             const Topology &topo,
                             std::vector<Proc> &procs)
    : cfg_(cfg),
      topo_(topo),
      procs_(procs),
      numNodes_(topo.numNodes()),
      faults_(cfg.fault.enabled())
{
    if (faults_)
        model_ = std::make_unique<FaultModel>(cfg_.fault);
    epochNs_ = steadyNs();

    const auto n = static_cast<std::size_t>(numNodes_);
    workers_.reserve(n);
    for (int i = 0; i < numNodes_; ++i) {
        auto w = std::make_unique<Worker>();
        w->node = i;
        w->sendTo.resize(n);
        w->recvFrom.resize(n);
        if (cfg_.threadFuzzSeed != 0)
            w->fuzz = cfg_.threadFuzzSeed ^
                      (0x9E3779B97F4A7C15ull *
                       static_cast<std::uint64_t>(i + 1));
        workers_.push_back(std::move(w));
    }
    rings_.resize(n * n);
    for (int s = 0; s < numNodes_; ++s) {
        for (int d = 0; d < numNodes_; ++d) {
            if (s != d)
                rings_[static_cast<std::size_t>(s) * n +
                       static_cast<std::size_t>(d)] =
                    std::make_unique<SpscRing<Frame>>(
                        static_cast<std::size_t>(cfg_.ringCapacity));
        }
    }
}

ThreadBackend::~ThreadBackend() = default;

SpscRing<ThreadBackend::Frame> &
ThreadBackend::ring(NodeId src, NodeId dst)
{
    return *rings_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(numNodes_) +
                   static_cast<std::size_t>(dst)];
}

Tick
ThreadBackend::now() const
{
    return static_cast<Tick>(steadyNs() - epochNs_);
}

void
ThreadBackend::deferAt(Tick t, Callback cb)
{
    (void)t; // wall time advances by itself
    Worker *w = tlsWorker_;
    if (w == nullptr)
        throw std::logic_error(
            "ThreadBackend::deferAt called off-worker");
    w->ready.push_back(std::move(cb));
}

void
ThreadBackend::wake(ProcId p, std::coroutine_handle<> h,
                    Tick stallStart, LatencyClass cls)
{
    Worker &w = workerOf(topo_.nodeOf(p));
    inflight_.fetch_add(1, std::memory_order_seq_cst);
    {
        std::lock_guard<std::mutex> g(w.wakeM);
        w.wakes.push_back(WakeEntry{p, h, stallStart, cls});
    }
    activity_.fetch_add(1, std::memory_order_relaxed);
}

Tick
ThreadBackend::send(Message msg, Tick send_time)
{
    Worker *w = tlsWorker_;
    if (w == nullptr)
        throw std::logic_error(
            "ThreadBackend::send called off-worker");
    if (msg.src < 0 || msg.src >= topo_.numProcs() || msg.dst < 0 ||
        msg.dst >= topo_.numProcs())
        throw std::logic_error(
            "ThreadBackend::send: processor id out of range");
    if (msg.src == msg.dst)
        throw std::logic_error(
            "ThreadBackend::send: self-sends must be handled "
            "locally");
    assert(w->node == topo_.nodeOf(msg.src) &&
           "messages are sent from their source's worker");

    const bool remote = !topo_.sameMachine(msg.src, msg.dst);
    const std::uint32_t bytes = msg.wireBytes();

    // Logical accounting, same classification as Network::send;
    // retransmissions and fabric duplicates land in counts.rel.
    ++w->counts.byType[static_cast<std::size_t>(msg.type)];
    if (msg.type == MsgType::Downgrade) {
        assert(!remote && "downgrades never cross machines");
        ++w->counts.downgradeMsgs;
        w->counts.localBytes += bytes;
    } else if (remote) {
        ++w->counts.remoteMsgs;
        w->counts.remoteBytes += bytes;
    } else {
        ++w->counts.localMsgs;
        w->counts.localBytes += bytes;
    }

    const Tick t = now();
    msg.sendTime = send_time;
    msg.arriveTime = t;

    const NodeId dstNode = topo_.nodeOf(msg.dst);
    if (dstNode == w->node) {
        w->loopback.push_back(Frame{std::move(msg), kData});
        return t;
    }
    if (faults_ && remote)
        return relSend(*w, std::move(msg), dstNode, t);

    pushFrame(*w, dstNode, Frame{std::move(msg), kData});
    return t;
}

void
ThreadBackend::pushFrame(Worker &w, NodeId dstNode, Frame &&f,
                         bool counted)
{
    if (!counted)
        inflight_.fetch_add(1, std::memory_order_seq_cst);
    SpscRing<Frame> &r = ring(w.node, dstNode);
    if (r.tryPush(std::move(f)))
        return;
    // Backpressure.  Keep consuming our own inbound rings while we
    // wait (reentrancy into the protocol is safe: mailbox draining
    // is guarded per processor), but only at depth 1 — nested
    // waits just spin and let the outer drain make progress.
    ++w.pushDepth;
    while (!r.tryPush(std::move(f))) {
        if (stop_.load(std::memory_order_acquire)) {
            inflight_.fetch_sub(1, std::memory_order_seq_cst);
            --w.pushDepth;
            throw std::runtime_error(
                "thread backend stopping with a frame unsent");
        }
        if (w.pushDepth == 1) {
            drainRings(w);
            advanceWheel(w);
        }
        cpuRelax();
    }
    --w.pushDepth;
}

// ---------------------------------------------------------------------
// Reliability (mirrors net/reliable.cc over wall-clock deadlines)
// ---------------------------------------------------------------------

Tick
ThreadBackend::initialRtoNs() const
{
    if (cfg_.retx.rtoUs > 0.0)
        return static_cast<Tick>(cfg_.retx.rtoUs * 1000.0);
    return 500'000; // 500 us: generous vs. ring hop, small vs. run
}

Tick
ThreadBackend::relSend(Worker &w, Message &&msg, NodeId dstNode,
                       Tick t)
{
    SendState &ss = w.sendTo[static_cast<std::size_t>(dstNode)];
    const std::uint32_t seq = ss.sndNext;
    ss.sndNext = relSeqNext(ss.sndNext);
    msg.setRelSeq(seq);

    ++w.counts.rel.dataMsgs;
    unacked_.fetch_add(1, std::memory_order_seq_cst);
    const Tick rto0 = initialRtoNs();
    ss.pending.push_back(PendingTx{seq, msg, t, rto0, 1});

    // transmit() may block on a full ring and drain inbound traffic
    // meanwhile, which can ack (and prune) the entry just pushed —
    // so no references into ss.pending survive this call.
    transmit(w, dstNode, std::move(msg));
    w.wheel.add(t + rto0,
                Deadline{Deadline::Retx, dstNode, seq, nullptr});
    return t;
}

void
ThreadBackend::transmit(Worker &w, NodeId dstNode, Message &&m)
{
    SendState &ss = w.sendTo[static_cast<std::size_t>(dstNode)];
    const std::uint64_t x = ss.xmit++;
    const FaultDecision d =
        model_->decide(w.node, dstNode, x, FaultSalt::Data);
    if (d.drop) {
        ++w.counts.rel.faultDrops;
        return;
    }
    if (d.duplicate) {
        ++w.counts.rel.faultDups;
        auto dup = std::make_unique<Frame>(Frame{m, kData});
        inflight_.fetch_add(1, std::memory_order_seq_cst);
        w.wheel.add(now() + std::max<Tick>(nsFromTicks(d.dupDelay), 1),
                    Deadline{Deadline::DelayedFrame, dstNode, 0,
                             std::move(dup)});
    }
    if (d.extraDelay > 0) {
        ++w.counts.rel.faultDelays;
        auto fr = std::make_unique<Frame>(Frame{std::move(m), kData});
        inflight_.fetch_add(1, std::memory_order_seq_cst);
        w.wheel.add(now() + nsFromTicks(d.extraDelay),
                    Deadline{Deadline::DelayedFrame, dstNode, 0,
                             std::move(fr)});
        return;
    }
    pushFrame(w, dstNode, Frame{std::move(m), kData});
}

void
ThreadBackend::onRetx(Worker &w, NodeId dstNode, std::uint32_t seq)
{
    SendState &ss = w.sendTo[static_cast<std::size_t>(dstNode)];
    auto it = std::find_if(
        ss.pending.begin(), ss.pending.end(),
        [seq](const PendingTx &p) { return p.seq == seq; });
    if (it == ss.pending.end())
        return; // acked since the timer was armed
    if (it->attempts >= cfg_.retx.maxAttempts) {
        throw std::runtime_error(
            "reliability: message unacked after " +
            std::to_string(it->attempts) +
            " transmissions (node " + std::to_string(w.node) +
            " -> " + std::to_string(dstNode) + ", seq " +
            std::to_string(seq) + ")");
    }
    ++it->attempts;
    ++w.counts.rel.retransmits;
    if (proto_ != nullptr && proto_->measuring())
        proto_->recordLatency(w.node, LatencyClass::RetryDelay,
                              now() - it->firstSend);
    it->rto = std::min<Tick>(it->rto * 2, initialRtoNs() *
                                              cfg_.retx.backoffCapMult);
    transmit(w, dstNode, Message(it->msg));
    w.wheel.add(now() + it->rto,
                Deadline{Deadline::Retx, dstNode, seq, nullptr});
}

void
ThreadBackend::onSeqData(Worker &w, NodeId srcNode, Message &&m)
{
    RecvState &rs = w.recvFrom[static_cast<std::size_t>(srcNode)];
    const std::uint32_t seq = m.relSeq();

    if (seq == rs.rcvNext) {
        rs.rcvLast = seq;
        rs.rcvNext = relSeqNext(seq);
        deliver_(std::move(m));
        // Release any buffered successors.
        while (!rs.buffer.empty() &&
               rs.buffer.front().seq == rs.rcvNext) {
            Message next = std::move(rs.buffer.front().msg);
            rs.buffer.erase(rs.buffer.begin());
            rs.rcvLast = rs.rcvNext;
            rs.rcvNext = relSeqNext(rs.rcvNext);
            deliver_(std::move(next));
        }
    } else if (relSeqLt(seq, rs.rcvNext) ||
               std::any_of(rs.buffer.begin(), rs.buffer.end(),
                           [seq](const ParkedRx &p) {
                               return p.seq == seq;
                           })) {
        ++w.counts.rel.dupDrops; // already delivered or buffered
    } else {
        ++w.counts.rel.reorderBuffered;
        auto pos = std::find_if(rs.buffer.begin(), rs.buffer.end(),
                                [seq](const ParkedRx &p) {
                                    return relSeqLt(seq, p.seq);
                                });
        rs.buffer.insert(pos, ParkedRx{seq, std::move(m)});
    }
    sendAck(w, srcNode);
}

void
ThreadBackend::sendAck(Worker &w, NodeId srcNode)
{
    RecvState &rs = w.recvFrom[static_cast<std::size_t>(srcNode)];
    const std::uint64_t x = rs.ackXmit++;
    ++w.counts.rel.acksSent;
    const FaultDecision d =
        model_->decide(srcNode, w.node, x, FaultSalt::Ack);
    if (d.drop) {
        ++w.counts.rel.ackDrops;
        return;
    }
    Frame f;
    f.kind = kAck;
    f.msg.src = w.node;    // node ids; ack frames never reach
    f.msg.dst = srcNode;   // the protocol
    f.msg.setRelSeq(rs.rcvLast);
    // Never block on an ack (blocking here could recurse through the
    // backpressure drain): cumulative acks are lossy-safe, so a full
    // reverse ring just counts as one more ack drop.
    inflight_.fetch_add(1, std::memory_order_seq_cst);
    if (!ring(w.node, srcNode).tryPush(std::move(f))) {
        inflight_.fetch_sub(1, std::memory_order_seq_cst);
        ++w.counts.rel.ackDrops;
    }
}

void
ThreadBackend::onAck(Worker &w, NodeId peerNode, std::uint32_t cum)
{
    ++w.counts.rel.acksReceived;
    if (cum == 0)
        return; // nothing delivered yet
    SendState &ss = w.sendTo[static_cast<std::size_t>(peerNode)];
    while (!ss.pending.empty() &&
           !relSeqLt(cum, ss.pending.front().seq)) {
        ss.pending.pop_front();
        unacked_.fetch_sub(1, std::memory_order_seq_cst);
    }
}

// ---------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------

bool
ThreadBackend::drainLoopback(Worker &w)
{
    bool did = false;
    while (!w.loopback.empty()) {
        Frame f = std::move(w.loopback.front());
        w.loopback.pop_front();
        deliver_(std::move(f.msg));
        did = true;
    }
    return did;
}

void
ThreadBackend::handleFrame(Worker &w, NodeId srcNode, Frame &&f)
{
    if (f.kind == kAck) {
        // An ack on ring (srcNode -> us) acknowledges our stream
        // (us -> srcNode).
        onAck(w, srcNode, f.msg.relSeq());
    } else if (faults_ && f.msg.relSeq() != 0) {
        onSeqData(w, srcNode, std::move(f.msg));
    } else {
        deliver_(std::move(f.msg));
    }
    inflight_.fetch_sub(1, std::memory_order_seq_cst);
}

bool
ThreadBackend::drainRings(Worker &w)
{
    bool did = false;
    Frame f;
    for (int s = 0; s < numNodes_; ++s) {
        if (s == w.node)
            continue;
        SpscRing<Frame> &r = ring(s, w.node);
        while (r.tryPop(f)) {
            did = true;
            maybeFuzzPause(w, /*atIdle=*/false);
            handleFrame(w, s, std::move(f));
        }
    }
    return did;
}

bool
ThreadBackend::drainWakes(Worker &w)
{
    {
        std::lock_guard<std::mutex> g(w.wakeM);
        if (w.wakes.empty())
            return false;
        w.wakes.swap(w.wakeScratch);
    }
    for (WakeEntry &e : w.wakeScratch) {
        Proc &p = procs_[static_cast<std::size_t>(e.pid)];
        assert(topo_.nodeOf(e.pid) == w.node);
        p.now = std::max(p.now, now());
        if (proto_ != nullptr && proto_->measuring()) {
            p.bd.sync += p.now - e.stallStart;
            proto_->recordLatency(p.node, e.cls,
                                  p.now - e.stallStart);
        }
        p.status = ProcStatus::Running;
        e.h.resume();
        inflight_.fetch_sub(1, std::memory_order_seq_cst);
    }
    w.wakeScratch.clear();
    return true;
}

bool
ThreadBackend::runReady(Worker &w)
{
    if (w.ready.empty())
        return false;
    w.ready.swap(w.readyScratch);
    for (auto &cb : w.readyScratch)
        cb();
    w.readyScratch.clear();
    return true;
}

std::size_t
ThreadBackend::advanceWheel(Worker &w)
{
    if (w.wheel.size() == 0)
        return 0;
    return w.wheel.advance(now(), [this, &w](Deadline &&d) {
        if (d.kind == Deadline::Retx)
            onRetx(w, d.dstNode, d.seq);
        else
            pushFrame(w, d.dstNode, std::move(*d.frame),
                      /*counted=*/true);
    });
}

void
ThreadBackend::maybeFuzzPause(Worker &w, bool atIdle)
{
    if (w.fuzz == 0)
        return;
    const std::uint64_t r = splitmix64(w.fuzz);
    // Occasionally yield or oversleep to shake out interleavings
    // (more aggressively at idle points, sparsely on the hot path).
    const std::uint64_t gate = atIdle ? 8 : 64;
    if ((r & (gate - 1)) != 0)
        return;
    if ((r >> 8) & 1)
        std::this_thread::yield();
    else
        std::this_thread::sleep_for(
            std::chrono::microseconds((r >> 9) % 50));
}

void
ThreadBackend::fail(std::exception_ptr e)
{
    {
        std::lock_guard<std::mutex> g(errorM_);
        if (!error_)
            error_ = std::move(e);
    }
    stop_.store(true, std::memory_order_release);
}

void
ThreadBackend::checkQuiescence(Worker &w)
{
    const Tick t = now();
    const std::uint64_t a0 =
        activity_.load(std::memory_order_seq_cst);
    if (a0 != w.lastActivity) {
        w.lastActivity = a0;
        w.lastChangeNs = t;
        w.quietSinceNs = -1;
    } else if (cfg_.threadStallMs > 0 &&
               t - w.lastChangeNs >
                   static_cast<Tick>(cfg_.threadStallMs) *
                       1'000'000 &&
               done_->load(std::memory_order_acquire) <
                   cfg_.numProcs) {
        throw std::runtime_error(
            "thread backend stall: no activity for " +
            std::to_string(cfg_.threadStallMs) + " ms\n" +
            (dump_ ? dump_() : std::string{}));
    }

    if (inflight_.load(std::memory_order_seq_cst) != 0 ||
        unacked_.load(std::memory_order_seq_cst) != 0) {
        w.quietSinceNs = -1;
        return;
    }
    for (const auto &other : workers_) {
        if (!other->idle.load(std::memory_order_acquire)) {
            w.quietSinceNs = -1;
            return;
        }
    }
    if (activity_.load(std::memory_order_seq_cst) != a0) {
        w.quietSinceNs = -1;
        return; // something moved during the check
    }
    if (done_->load(std::memory_order_acquire) >= cfg_.numProcs) {
        stop_.store(true, std::memory_order_release);
        return;
    }
    // Quiet but unfinished.  Nothing can make progress (no frames,
    // no unacked messages, no wakes, every worker idle), so this is
    // a deadlock — but insist on 100 ms of sustained quiet to be
    // robust against instruction-level interleavings the flags
    // cannot see.
    if (w.quietSinceNs < 0) {
        w.quietSinceNs = t;
        return;
    }
    if (t - w.quietSinceNs > 100'000'000) {
        throw std::runtime_error(
            "thread backend deadlock: all workers idle with "
            "unfinished processors\n" +
            (dump_ ? dump_() : std::string{}));
    }
}

void
ThreadBackend::workerMain(int node)
{
    Worker &w = workerOf(node);
    tlsWorker_ = &w;
    try {
        if (w.fuzz != 0) {
            // Stagger startup to vary the initial schedule.
            std::this_thread::sleep_for(std::chrono::microseconds(
                splitmix64(w.fuzz) % 200));
        }
        const ProcId first = topo_.firstProcOf(node);
        const int count = topo_.procsOn(node);
        for (ProcId p = first; p < first + count; ++p) {
            (*roots_)[static_cast<std::size_t>(p)].start();
            activity_.fetch_add(1, std::memory_order_relaxed);
        }
        std::uint64_t spins = 0;
        while (!stop_.load(std::memory_order_acquire)) {
            bool did = false;
            did |= drainLoopback(w);
            did |= drainRings(w);
            did |= advanceWheel(w) > 0;
            did |= drainWakes(w);
            did |= runReady(w);
            if (did) {
                activity_.fetch_add(1, std::memory_order_seq_cst);
                w.idle.store(false, std::memory_order_release);
                spins = 0;
                continue;
            }
            w.idle.store(true, std::memory_order_seq_cst);
            if (node == 0)
                checkQuiescence(w);
            maybeFuzzPause(w, /*atIdle=*/true);
            ++spins;
            if (spins < 64)
                cpuRelax();
            else if (spins < 1024)
                std::this_thread::yield();
            else
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
        }
    } catch (...) {
        fail(std::current_exception());
    }
    tlsWorker_ = nullptr;
}

void
ThreadBackend::run(std::vector<Task> &roots, Protocol &proto,
                   std::atomic<int> &done,
                   std::function<std::string()> dumpState)
{
    proto_ = &proto;
    done_ = &done;
    dump_ = std::move(dumpState);
    roots_ = &roots;
    assert(deliver_ && "setDeliver must precede run");

    stop_.store(false, std::memory_order_release);
    for (auto &w : workers_)
        w->th = std::thread(&ThreadBackend::workerMain, this,
                            w->node);
    for (auto &w : workers_)
        w->th.join();
    roots_ = nullptr;

    if (error_)
        std::rethrow_exception(error_);
}

const NetworkCounts &
ThreadBackend::counts() const
{
    aggCounts_ = NetworkCounts{};
    for (const auto &w : workers_)
        aggCounts_ += w->counts;
    return aggCounts_;
}

void
ThreadBackend::resetCounts()
{
    for (auto &w : workers_)
        w->counts = NetworkCounts{};
    aggCounts_ = NetworkCounts{};
}

} // namespace shasta
