/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring.
 *
 * The thread backend connects every directed node pair with one of
 * these: the sending worker is the only producer, the receiving
 * worker the only consumer, so the ring needs no CAS loops — one
 * release store per side, one acquire load of the opposite index,
 * and a cached copy of that index so the fast path does not even
 * touch the other core's cache line (the cache is refreshed only
 * when the ring looks full/empty).
 *
 * Head and tail live on separate cache lines (alignas) so producer
 * and consumer never false-share.  Capacity is fixed at
 * construction (a power of two) and the slot storage is allocated
 * once: the steady-state push -> pop cycle performs no heap
 * allocation (tests/spsc_ring_test.cc and the thread-backend
 * alloc test hold this as assertions).
 */

#ifndef SHASTA_EXEC_SPSC_RING_HH
#define SHASTA_EXEC_SPSC_RING_HH

#include <atomic>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace shasta
{

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : mask_(capacity - 1), slots_(capacity)
    {
        assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
               "SpscRing capacity must be a power of two");
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Producer side.  Moves from @p v only on success. */
    bool
    tryPush(T &&v)
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        if (t - cachedHead_ > mask_) {
            cachedHead_ = head_.load(std::memory_order_acquire);
            if (t - cachedHead_ > mask_)
                return false; // full
        }
        slots_[t & mask_] = std::move(v);
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. */
    bool
    tryPop(T &out)
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        if (h == cachedTail_) {
            cachedTail_ = tail_.load(std::memory_order_acquire);
            if (h == cachedTail_)
                return false; // empty
        }
        out = std::move(slots_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Snapshot emptiness (either side; exact only when the opposite
     *  side is quiescent, which is how the termination check uses
     *  it). */
    bool
    empty() const
    {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    const std::size_t mask_;
    std::vector<T> slots_;

    /** Consumer-owned index + the producer's cached copy of it. */
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::size_t cachedTail_ = 0;

    /** Producer-owned index + the consumer's cached copy of it. */
    alignas(64) std::atomic<std::size_t> tail_{0};
    alignas(64) std::size_t cachedHead_ = 0;
};

} // namespace shasta

#endif // SHASTA_EXEC_SPSC_RING_HH
