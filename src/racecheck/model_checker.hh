/**
 * @file
 * A small explicit-state model checker for inline-check races.
 *
 * The main simulator respects Shasta's polling discipline, so the
 * instruction-level races of Section 3.2 cannot occur there by
 * construction.  This module reproduces the paper's *argument*
 * directly: tiny programs (a few atomic steps per thread) are run
 * under every possible interleaving, and a violation predicate is
 * evaluated in every terminal state.  The scenarios of Figure 2 are
 * encoded in scenarios.hh, each in a "naive" variant (downgrade by
 * directly flipping the state) and in the SMP-Shasta variant
 * (explicit downgrade messages handled only at poll points): the
 * checker shows the naive variants lose updates or return the flag
 * value as data, and the message-based variants never do.
 */

#ifndef SHASTA_RACECHECK_MODEL_CHECKER_HH
#define SHASTA_RACECHECK_MODEL_CHECKER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace shasta::racecheck
{

/** Tiny shared state the scenario threads operate on. */
struct MiniState
{
    /** One shared longword of application data. */
    std::uint32_t memory = 0;
    /** Second word (used by the two-load FP check scenario). */
    std::uint32_t memory2 = 0;
    /** Node-level line state (0 invalid, 1 shared, 2 exclusive). */
    int sharedState = 0;
    /** Per-thread private line state. */
    int privState[2] = {0, 0};
    /** Per-thread downgrade mailboxes (payload: target state). */
    std::deque<int> mailbox[2];
    /** Scratch registers per thread. */
    std::uint32_t reg[2][4] = {{0, 0, 0, 0}, {0, 0, 0, 0}};
    /** Generic flags for scenario bookkeeping. */
    bool flag[4] = {false, false, false, false};

    bool operator==(const MiniState &) const = default;
};

/** One atomic step of a thread. */
struct Step
{
    std::string label;
    /** May this step run in the given state?  Unready steps block
     *  the thread (used for "wait for downgrade ack"). */
    std::function<bool(const MiniState &)> enabled;
    /** Execute the step. */
    std::function<void(MiniState &)> action;
    /**
     * Optional branch: return the next pc, or -1 to fall through to
     * pc+1.  Used to encode the "if state sufficient" inline check.
     */
    std::function<int(const MiniState &)> branch;
};

/** A thread: an ordered list of steps. */
using Thread = std::vector<Step>;

/** Outcome of exploring a scenario. */
struct ExploreResult
{
    /** Total terminal states reached. */
    std::uint64_t terminals = 0;
    /** Distinct interleavings explored (paths). */
    std::uint64_t paths = 0;
    /** Terminal states violating the predicate. */
    std::uint64_t violations = 0;
    /** States where no thread could run but some were unfinished. */
    std::uint64_t deadlocks = 0;
    /** One concrete violating trace (step labels), if any. */
    std::vector<std::string> witness;
};

/**
 * Exhaustive DFS over all interleavings of the given threads.
 */
class ModelChecker
{
  public:
    using Predicate = std::function<bool(const MiniState &)>;

    /**
     * @param violation returns true when a terminal state is bad.
     */
    ExploreResult explore(const std::vector<Thread> &threads,
                          const MiniState &initial,
                          const Predicate &violation) const;

    /** Safety limit on explored paths (guards scenario bugs). */
    static constexpr std::uint64_t kMaxPaths = 5'000'000;

  private:
    struct Frame
    {
        MiniState state;
        std::vector<int> pc;
    };

    void dfs(const std::vector<Thread> &threads, Frame frame,
             std::vector<std::string> &trace,
             const Predicate &violation, ExploreResult &out) const;
};

} // namespace shasta::racecheck

#endif // SHASTA_RACECHECK_MODEL_CHECKER_HH
