#include "racecheck/scenarios.hh"

namespace shasta::racecheck
{

namespace
{

/** Flag indices in MiniState::flag. */
constexpr int kStoreDone = 0;  ///< P1 performed the checked access
constexpr int kMissPath = 1;   ///< P1's inline check failed
constexpr int kAcked = 2;      ///< P1 handled the downgrade message

/** P1 poll step: handle a pending downgrade message, if any. */
Step
pollStep(const char *label)
{
    return Step{
        label, nullptr,
        [](MiniState &s) {
            if (!s.mailbox[0].empty()) {
                s.privState[0] = s.mailbox[0].front();
                s.mailbox[0].pop_front();
                s.flag[kAcked] = true;
            }
        },
        nullptr};
}

/**
 * P1's final poll: the real processor polls at every loop backedge
 * forever, so model "keep polling until the downgrade is handled".
 * Enabled only when there is mail (or it was already handled), which
 * keeps the DFS finite and deadlock-free.
 */
Step
pollUntilDowngraded()
{
    return Step{
        "poll-until-downgraded",
        [](const MiniState &s) {
            return !s.mailbox[0].empty() || s.flag[kAcked];
        },
        [](MiniState &s) {
            if (!s.mailbox[0].empty()) {
                s.privState[0] = s.mailbox[0].front();
                s.mailbox[0].pop_front();
                s.flag[kAcked] = true;
            }
        },
        nullptr};
}

/**
 * P1's inline-checked *store* sequence.
 * @param via_priv true: check the private state table (SMP); false:
 *   check the shared state table directly (naive).
 * @param with_polls bracket the sequence with poll points.
 */
Thread
checkedStore(bool via_priv, bool with_polls)
{
    Thread t;
    if (with_polls)
        t.push_back(pollStep("poll-before"));
    const int check_pc = static_cast<int>(t.size());
    const int store_pc = check_pc + 1;
    const int skip_pc = store_pc + 1; // the trailing poll (or end)
    t.push_back(Step{
        "check-state", nullptr,
        [via_priv](MiniState &s) {
            s.reg[0][0] = static_cast<std::uint32_t>(
                via_priv ? s.privState[0] : s.sharedState);
        },
        [store_pc, skip_pc](const MiniState &s) {
            // Exclusive? fall into the store; else take the miss
            // path (the protocol would merge the store correctly).
            return s.reg[0][0] == 2 ? store_pc : skip_pc;
        }});
    t.push_back(Step{"store", nullptr,
                     [](MiniState &s) {
                         s.memory = kNewValue;
                         s.flag[kStoreDone] = true;
                     },
                     nullptr});
    if (with_polls)
        t.push_back(pollUntilDowngraded());
    return t;
}

/** P1's state-table-checked *load* sequence (Figure 2(c)). */
Thread
checkedLoad(bool via_priv, bool with_polls)
{
    Thread t;
    if (with_polls)
        t.push_back(pollStep("poll-before"));
    const int check_pc = static_cast<int>(t.size());
    const int load_pc = check_pc + 1;
    const int skip_pc = load_pc + 1; // the trailing poll (or end)
    t.push_back(Step{
        "check-state", nullptr,
        [via_priv](MiniState &s) {
            s.reg[0][0] = static_cast<std::uint32_t>(
                via_priv ? s.privState[0] : s.sharedState);
        },
        [load_pc, skip_pc](const MiniState &s) {
            return s.reg[0][0] >= 1 ? load_pc : skip_pc;
        }});
    t.push_back(Step{"load", nullptr,
                     [](MiniState &s) {
                         s.reg[0][1] = s.memory;
                         s.flag[kStoreDone] = true; // "access done"
                     },
                     nullptr});
    if (with_polls)
        t.push_back(pollUntilDowngraded());
    return t;
}

/**
 * P2 servicing the remote request.
 * @param target downgraded state (0 invalid, 1 shared).
 * @param smp send a downgrade message and wait for the ack before
 *   completing; naive otherwise.
 * @param flag_first naive only: write the flag before the state.
 */
Thread
downgrader(int target, bool smp, bool flag_first)
{
    Thread t;
    if (smp) {
        t.push_back(Step{"send-downgrade", nullptr,
                         [target](MiniState &s) {
                             s.mailbox[0].push_back(target);
                         },
                         nullptr});
        t.push_back(Step{"wait-ack",
                         [](const MiniState &s) {
                             return s.flag[kAcked];
                         },
                         [](MiniState &) {}, nullptr});
    }
    Step read_data{"read-data", nullptr,
                   [](MiniState &s) { s.reg[1][0] = s.memory; },
                   nullptr};
    Step set_state{"set-state", nullptr,
                   [target](MiniState &s) {
                       s.sharedState = target;
                   },
                   nullptr};
    Step write_flag{"write-flag", nullptr,
                    [](MiniState &s) { s.memory = kFlagValue; },
                    nullptr};
    if (target == 0) {
        if (flag_first) {
            t.push_back(read_data);
            t.push_back(write_flag);
            t.push_back(set_state);
        } else {
            t.push_back(read_data);
            t.push_back(set_state);
            t.push_back(write_flag);
        }
    } else {
        // Exclusive-to-shared: data is read for the reply; no flag.
        t.push_back(read_data);
        t.push_back(set_state);
    }
    return t;
}

MiniState
initialState(int shared_state, int p1_priv)
{
    MiniState s;
    s.memory = kOldValue;
    s.sharedState = shared_state;
    s.privState[0] = p1_priv;
    return s;
}

} // namespace

Scenario
figure2a(bool smp_protocol)
{
    Scenario sc;
    sc.name = smp_protocol ? "fig2a-smp" : "fig2a-naive";
    sc.description =
        "store vs exclusive-to-invalid downgrade (incoming write)";
    sc.init = initialState(2, 2);
    sc.threads = {checkedStore(smp_protocol, smp_protocol),
                  downgrader(0, smp_protocol, false)};
    // Lost update: P1 stored under an exclusive check, yet the data
    // shipped to the new owner misses the store.
    sc.violation = [](const MiniState &s) {
        return s.flag[kStoreDone] && s.reg[1][0] != kNewValue;
    };
    sc.expectViolations = !smp_protocol;
    return sc;
}

Scenario
figure2b(bool smp_protocol)
{
    Scenario sc;
    sc.name = smp_protocol ? "fig2b-smp" : "fig2b-naive";
    sc.description =
        "store vs exclusive-to-shared downgrade (incoming read)";
    sc.init = initialState(2, 2);
    sc.threads = {checkedStore(smp_protocol, smp_protocol),
                  downgrader(1, smp_protocol, false)};
    // Incoherent copies: the new sharer received data without P1's
    // store even though P1's check saw exclusive.
    sc.violation = [](const MiniState &s) {
        return s.flag[kStoreDone] && s.reg[1][0] != kNewValue;
    };
    sc.expectViolations = !smp_protocol;
    return sc;
}

Scenario
figure2c(bool smp_protocol, bool flag_first)
{
    Scenario sc;
    sc.name = std::string(smp_protocol ? "fig2c-smp"
                                       : "fig2c-naive") +
              (flag_first ? "-flagfirst" : "");
    sc.description = "state-checked load vs shared-to-invalid "
                     "downgrade (flag returned as data)";
    sc.init = initialState(1, 1);
    sc.threads = {checkedLoad(smp_protocol, smp_protocol),
                  downgrader(0, smp_protocol, flag_first)};
    // The load returned the invalid-flag pattern as application
    // data.
    sc.violation = [](const MiniState &s) {
        return s.flag[kStoreDone] && s.reg[0][1] == kFlagValue;
    };
    sc.expectViolations = !smp_protocol;
    return sc;
}

Scenario
fpFlagCheck(bool atomic_variant)
{
    Scenario sc;
    sc.name = atomic_variant ? "fpflag-atomic" : "fpflag-two-load";
    sc.description =
        "floating-point flag check vs invalidation; flag-checked "
        "loads never update the private table, so no downgrade "
        "message protects them";
    sc.init = initialState(1, /*p1_priv=*/0);

    Thread p1;
    if (atomic_variant) {
        // SMP-Shasta: FP value stored to the stack and reloaded into
        // an integer register -- one atomic load+compare.
        p1.push_back(Step{"fp-load-atomic", nullptr,
                          [](MiniState &s) {
                              s.reg[0][0] = s.memory; // FP value
                              s.reg[0][1] = s.reg[0][0]; // compare
                          },
                          nullptr});
    } else {
        // Base-Shasta: the inserted integer load (the check) and the
        // FP load are separate instructions.
        p1.push_back(Step{"int-load-check", nullptr,
                          [](MiniState &s) {
                              s.reg[0][1] = s.memory;
                          },
                          nullptr});
        p1.push_back(Step{"fp-load", nullptr,
                          [](MiniState &s) {
                              s.reg[0][0] = s.memory;
                          },
                          nullptr});
    }
    const int end_pc = static_cast<int>(p1.size()) + 2;
    p1.push_back(Step{
        "compare", nullptr, [](MiniState &) {},
        [end_pc](const MiniState &s) {
            return s.reg[0][1] == kFlagValue
                       ? end_pc       // miss path: protocol handles
                       : -1;          // proceed: consume reg[0][0]
        }});
    p1.push_back(Step{"consume", nullptr,
                      [](MiniState &s) {
                          s.flag[kStoreDone] = true;
                      },
                      nullptr});

    // P2 legitimately completes without a downgrade message to P1:
    // P1's private state is Invalid (flag loads do not upgrade it).
    Thread p2;
    p2.push_back(Step{"set-state", nullptr,
                      [](MiniState &s) { s.sharedState = 0; },
                      nullptr});
    p2.push_back(Step{"write-flag", nullptr,
                      [](MiniState &s) { s.memory = kFlagValue; },
                      nullptr});

    sc.threads = {std::move(p1), std::move(p2)};
    // P1 consumed the flag pattern as application data.
    sc.violation = [](const MiniState &s) {
        return s.flag[kStoreDone] && s.reg[0][0] == kFlagValue;
    };
    sc.expectViolations = !atomic_variant;
    return sc;
}

Scenario
pollPlacement(bool poll_between)
{
    Scenario sc;
    sc.name = poll_between ? "poll-between-check-and-store"
                           : "poll-at-backedges-only";
    sc.description =
        "downgrade-message protocol with a poll point inserted "
        "between the inline check and the checked store";
    sc.init = initialState(2, 2);

    Thread p1;
    p1.push_back(pollStep("poll-before"));
    const int check_pc = 1;
    const int store_pc = poll_between ? 3 : 2;
    const int skip_pc = store_pc + 1;
    p1.push_back(Step{
        "check-state", nullptr,
        [](MiniState &s) {
            s.reg[0][0] =
                static_cast<std::uint32_t>(s.privState[0]);
        },
        [store_pc, skip_pc](const MiniState &s) {
            return s.reg[0][0] == 2 ? (store_pc == 3 ? 2 : store_pc)
                                    : skip_pc;
        }});
    (void)check_pc;
    if (poll_between) {
        // The illegal poll point: the downgrade may be handled (and
        // acknowledged) after the check already succeeded.
        p1.push_back(pollStep("poll-ILLEGAL"));
    }
    p1.push_back(Step{"store", nullptr,
                      [](MiniState &s) {
                          s.memory = kNewValue;
                          s.flag[kStoreDone] = true;
                      },
                      nullptr});
    p1.push_back(pollUntilDowngraded());

    sc.threads = {std::move(p1), downgrader(0, true, false)};
    sc.violation = [](const MiniState &s) {
        return s.flag[kStoreDone] && s.reg[1][0] != kNewValue;
    };
    sc.expectViolations = poll_between;
    return sc;
}

// --------------------------------------------------------------------
// Fault-schedule scenarios: what the reliability sublayer must
// guarantee so the downgrade protocol above stays correct when the
// fabric drops, duplicates, or reorders messages.
// --------------------------------------------------------------------

namespace
{

/** Flags reused by the fault-schedule family (these scenarios build
 *  their own threads, so kAcked's slot is free). */
constexpr int kAllHandled = 2; ///< P1 applied the final downgrade
constexpr int kLateRead = 3;   ///< P2 performed its gated read

/** Mailbox encoding for sequenced downgrades: seq * 4 + operand.
 *  The operand is a line index (duplicate scenario) or a target
 *  state (reorder scenario). */
constexpr int
seqMsg(int seq, int operand)
{
    return seq * 4 + operand;
}

Step
pushMsg(const char *label, int msg)
{
    return Step{label, nullptr,
                [msg](MiniState &s) {
                    s.mailbox[0].push_back(msg);
                },
                nullptr};
}

/**
 * P1's handler for the duplicate scenario.  Payload: seq * 4 + line
 * (line 0 = the word P1 stores to, line 1 = an unrelated word); the
 * downgrade target is always Invalid.  reg[0][1] is the highest
 * sequence applied, reg[1][1] the naive anonymous ack counter, and
 * reg[1][2] the highest sequence acknowledged.
 */
void
handleDupMsg(MiniState &s, bool seq_dedup)
{
    if (s.mailbox[0].empty())
        return;
    const int m = s.mailbox[0].front();
    s.mailbox[0].pop_front();
    const std::uint32_t seq = static_cast<std::uint32_t>(m / 4);
    const int line = m % 4;
    if (seq_dedup && seq <= s.reg[0][1]) {
        // Duplicate: drop it, but re-acknowledge the highest
        // sequence applied so the sender can still make progress.
        s.reg[1][2] = s.reg[0][1];
        return;
    }
    s.reg[0][1] = seq;
    s.privState[line] = 0;
    if (line == 0)
        s.flag[kAllHandled] = true;
    ++s.reg[1][1];
    s.reg[1][2] = seq;
}

/**
 * P1's handler for the reorder scenario.  Payload: seq * 4 + target
 * state, both downgrades for the line P1 loads from; invalidation
 * stomps the line with the flag pattern (as the real handler does).
 * reg[0][2] is the last sequence applied in order; reg[0][3] holds a
 * buffered out-of-order message + 1 (0 = empty).
 */
void
handleReorderMsg(MiniState &s, bool resequence)
{
    if (s.mailbox[0].empty())
        return;
    const auto apply = [](MiniState &st, int target) {
        st.privState[0] = target;
        if (target == 0)
            st.memory = kFlagValue;
    };
    const int m = s.mailbox[0].front();
    s.mailbox[0].pop_front();
    if (!resequence) {
        apply(s, m % 4);
        ++s.reg[0][2]; // counts applied messages in this variant
        if (s.reg[0][2] == 2)
            s.flag[kAllHandled] = true;
        return;
    }
    const std::uint32_t seq = static_cast<std::uint32_t>(m / 4);
    if (seq != s.reg[0][2] + 1) {
        s.reg[0][3] = static_cast<std::uint32_t>(m) + 1;
        return;
    }
    apply(s, m % 4);
    s.reg[0][2] = seq;
    if (s.reg[0][3] != 0 &&
        (s.reg[0][3] - 1) / 4 == s.reg[0][2] + 1) {
        const int buffered = static_cast<int>(s.reg[0][3]) - 1;
        s.reg[0][3] = 0;
        apply(s, buffered % 4);
        s.reg[0][2] = static_cast<std::uint32_t>(buffered / 4);
    }
    if (s.reg[0][2] == 2)
        s.flag[kAllHandled] = true;
}

/** An unguarded poll point running @p handler once. */
Step
faultPoll(const char *label, void (*handler)(MiniState &, bool),
          bool strict)
{
    return Step{label, nullptr,
                [handler, strict](MiniState &s) {
                    handler(s, strict);
                },
                nullptr};
}

/**
 * P1's trailing drain loop: keep handling messages until the final
 * downgrade has been applied, then fall through.  Enabled only when
 * there is mail or nothing is left to do, which keeps the DFS
 * finite.
 */
Step
drainLoop(int own_pc, void (*handler)(MiniState &, bool),
          bool strict)
{
    return Step{"drain", [](const MiniState &s) {
                    return !s.mailbox[0].empty() ||
                           s.flag[kAllHandled];
                },
                [handler, strict](MiniState &s) {
                    handler(s, strict);
                },
                [own_pc](const MiniState &s) {
                    return s.flag[kAllHandled] ? -1 : own_pc;
                }};
}

} // namespace

Scenario
faultDropDowngrade(bool with_retransmit)
{
    Scenario sc;
    sc.name = with_retransmit ? "fault-drop-retransmit"
                              : "fault-drop-no-retransmit";
    sc.description =
        "network drops the downgrade message; retransmission timer "
        "present or absent";
    sc.init = initialState(2, 2);

    Thread p2;
    // The fabric eats the first copy: nothing reaches P1's mailbox.
    p2.push_back(Step{"send-downgrade-DROPPED", nullptr,
                      [](MiniState &) {}, nullptr});
    if (with_retransmit) {
        // The retry timer fires and the second copy gets through.
        p2.push_back(Step{"retransmit-downgrade", nullptr,
                          [](MiniState &s) {
                              s.mailbox[0].push_back(0);
                          },
                          nullptr});
    }
    p2.push_back(Step{"wait-ack",
                      [](const MiniState &s) {
                          return s.flag[kAcked];
                      },
                      [](MiniState &) {}, nullptr});
    p2.push_back(Step{"read-data", nullptr,
                      [](MiniState &s) { s.reg[1][0] = s.memory; },
                      nullptr});
    p2.push_back(Step{"set-state", nullptr,
                      [](MiniState &s) { s.sharedState = 0; },
                      nullptr});
    p2.push_back(Step{"write-flag", nullptr,
                      [](MiniState &s) { s.memory = kFlagValue; },
                      nullptr});

    sc.threads = {checkedStore(true, true), std::move(p2)};
    sc.violation = [](const MiniState &s) {
        return s.flag[kStoreDone] && s.reg[1][0] != kNewValue;
    };
    sc.expectViolations = false;
    sc.expectDeadlocks = !with_retransmit;
    return sc;
}

Scenario
faultDuplicateDowngrade(bool seq_dedup)
{
    Scenario sc;
    sc.name = seq_dedup ? "fault-dup-seq-dedup" : "fault-dup-naive";
    sc.description =
        "network duplicates a sequenced downgrade; receiver either "
        "re-acks it blindly or dedups by sequence number";
    sc.init = initialState(2, 2);
    sc.init.memory2 = kOldValue;
    sc.init.privState[1] = 2; // the unrelated line, also exclusive

    Thread p1;
    p1.push_back(faultPoll("poll-1", handleDupMsg, seq_dedup));
    p1.push_back(faultPoll("poll-2", handleDupMsg, seq_dedup));
    p1.push_back(Step{
        "check-state", nullptr,
        [](MiniState &s) {
            s.reg[0][0] =
                static_cast<std::uint32_t>(s.privState[0]);
        },
        [](const MiniState &s) {
            return s.reg[0][0] == 2 ? 3 : 4;
        }});
    p1.push_back(Step{"store", nullptr,
                      [](MiniState &s) {
                          s.memory = kNewValue;
                          s.flag[kStoreDone] = true;
                      },
                      nullptr});
    p1.push_back(drainLoop(4, handleDupMsg, seq_dedup));

    const auto ackAtLeast = [seq_dedup](std::uint32_t n) {
        return [seq_dedup, n](const MiniState &s) {
            return (seq_dedup ? s.reg[1][2] : s.reg[1][1]) >= n;
        };
    };
    Thread p2;
    p2.push_back(pushMsg("send-dgB-seq1", seqMsg(1, 1)));
    p2.push_back(pushMsg("dup-dgB-seq1", seqMsg(1, 1)));
    p2.push_back(Step{"wait-ack-1", ackAtLeast(1),
                      [](MiniState &) {}, nullptr});
    p2.push_back(Step{"read-B", nullptr,
                      [](MiniState &s) { s.reg[1][3] = s.memory2; },
                      nullptr});
    p2.push_back(pushMsg("send-dgA-seq2", seqMsg(2, 0)));
    p2.push_back(Step{"wait-ack-2", ackAtLeast(2),
                      [](MiniState &) {}, nullptr});
    p2.push_back(Step{"read-A", nullptr,
                      [](MiniState &s) {
                          s.reg[1][0] = s.memory;
                          s.flag[kLateRead] = true;
                      },
                      nullptr});

    sc.threads = {std::move(p1), std::move(p2)};
    // P2's gated read of line A missed P1's store: the stale ack of
    // the duplicated seq-1 message stood in for seq 2's ack.
    sc.violation = [](const MiniState &s) {
        return s.flag[kStoreDone] && s.flag[kLateRead] &&
               s.reg[1][0] != kNewValue;
    };
    sc.expectViolations = !seq_dedup;
    return sc;
}

Scenario
faultReorderDowngrade(bool resequence)
{
    Scenario sc;
    sc.name = resequence ? "fault-reorder-resequenced"
                         : "fault-reorder-naive";
    sc.description =
        "network reorders exclusive-to-shared (seq 1) behind "
        "shared-to-invalid (seq 2); receiver applies in arrival "
        "order or resequences";
    sc.init = initialState(2, 2);

    Thread p1;
    p1.push_back(faultPoll("poll-1", handleReorderMsg, resequence));
    p1.push_back(faultPoll("poll-2", handleReorderMsg, resequence));
    p1.push_back(Step{
        "check-state", nullptr,
        [](MiniState &s) {
            s.reg[0][0] =
                static_cast<std::uint32_t>(s.privState[0]);
        },
        [](const MiniState &s) {
            return s.reg[0][0] >= 1 ? 3 : 4;
        }});
    p1.push_back(Step{"load", nullptr,
                      [](MiniState &s) {
                          s.reg[0][1] = s.memory;
                          s.flag[kStoreDone] = true; // access done
                      },
                      nullptr});
    p1.push_back(drainLoop(4, handleReorderMsg, resequence));

    Thread p2;
    p2.push_back(
        pushMsg("send-dg2-seq2-first", seqMsg(2, /*invalid=*/0)));
    p2.push_back(
        pushMsg("send-dg1-seq1-late", seqMsg(1, /*shared=*/1)));

    sc.threads = {std::move(p1), std::move(p2)};
    // The state-checked load returned the invalid-flag pattern: the
    // line read Shared in the table but had already been stomped by
    // the out-of-order invalidation.
    sc.violation = [](const MiniState &s) {
        return s.flag[kStoreDone] && s.reg[0][1] == kFlagValue;
    };
    sc.expectViolations = !resequence;
    return sc;
}

// --------------------------------------------------------------------
// Annotation-violation scenarios: the elide knob's audit contract.
// --------------------------------------------------------------------

namespace
{

/** Flag slot: the audit verifier refused an access (these scenarios
 *  do not use the fault family's kLateRead slot). */
constexpr int kAuditTrap = 3;

} // namespace

Scenario
annotPrivateViolation(bool audited)
{
    Scenario sc;
    sc.name = audited ? "annot-private-audited"
                      : "annot-private-naive";
    sc.description =
        "wrong private(P1) annotation: a foreign processor accesses "
        "the region while elision has bypassed P1's checks and "
        "skipped its downgrade messages";
    sc.init = initialState(2, 2);

    // P1 owns the region.  Under elide the annotation removes the
    // inline check entirely: the store is a direct memory write with
    // no state consulted and no poll points needed.
    Thread p1;
    p1.push_back(Step{"bypass-store", nullptr,
                      [](MiniState &s) {
                          s.memory = kNewValue;
                          s.flag[kStoreDone] = true;
                      },
                      nullptr});

    // P2 services the foreign access.  The elision skip means no
    // downgrade message ever reaches P1 — exactly the naive fig2a
    // downgrader, minus even the possibility of P1 noticing.
    Thread p2;
    p2.push_back(Step{"read-data", nullptr,
                      [](MiniState &s) { s.reg[1][0] = s.memory; },
                      nullptr});
    p2.push_back(Step{"set-state", nullptr,
                      [](MiniState &s) { s.sharedState = 0; },
                      nullptr});
    p2.push_back(Step{"write-flag", nullptr,
                      [](MiniState &s) { s.memory = kFlagValue; },
                      nullptr});
    if (audited) {
        // The foreign processor's own access check validates against
        // the annotation BEFORE performing the access
        // (Context::annotAction throws AuditError), so the request
        // that would have reached P2's service agent never executes.
        const int end_pc = static_cast<int>(p2.size()) + 1;
        p2.insert(p2.begin(),
                  Step{"audit-trap", nullptr,
                       [](MiniState &s) {
                           s.flag[kAuditTrap] = true;
                       },
                       [end_pc](const MiniState &) {
                           return end_pc;
                       }});
    }

    sc.threads = {std::move(p1), std::move(p2)};
    if (audited) {
        // Caught in EVERY interleaving, and never silently corrupt:
        // a terminal state is bad if the foreign access went through
        // unflagged, or if the trap somehow failed to fire.
        sc.violation = [](const MiniState &s) {
            const bool lost =
                s.flag[kStoreDone] && s.reg[1][0] != 0 &&
                s.reg[1][0] != kNewValue;
            return lost || !s.flag[kAuditTrap];
        };
        sc.expectViolations = false;
    } else {
        // Silent lost update: the foreign read shipped data without
        // P1's store, and nobody will ever know.
        sc.violation = [](const MiniState &s) {
            return s.flag[kStoreDone] && s.reg[1][0] != kNewValue;
        };
        sc.expectViolations = true;
    }
    return sc;
}

Scenario
annotSingleWriterSkip(bool keep_messages)
{
    Scenario sc;
    sc.name = keep_messages ? "annot-sw-messaged"
                            : "annot-sw-skip-naive";
    sc.description =
        "correct single-writer(P1) annotation; a legitimate reader "
        "needs P1 downgraded to shared — skipping that downgrade "
        "loses P1's update, so the elide knob only waives the "
        "writer's check cost and keeps the messages";
    sc.init = initialState(2, 2);

    if (keep_messages) {
        // The shipped protocol: the writer's store-check cost is
        // elided (its *outcome* is unchanged — the private table is
        // still consulted), and the exclusive-to-shared downgrade is
        // a full fig2b-smp exchange.
        sc.threads = {checkedStore(true, true),
                      downgrader(1, true, false)};
    } else {
        // A naive elision treats the annotation as license to skip
        // the downgrade: P1's private state stays Exclusive, its
        // checked store sails through, and the reader's copy was
        // read before the store in some interleavings.
        sc.threads = {checkedStore(true, false),
                      downgrader(1, false, false)};
    }
    // Incoherent copies: P1 stored under its single-writer right,
    // yet the reader's data misses the store.
    sc.violation = [](const MiniState &s) {
        return s.flag[kStoreDone] && s.reg[1][0] != kNewValue;
    };
    sc.expectViolations = !keep_messages;
    return sc;
}

std::vector<Scenario>
allScenarios()
{
    return {
        figure2a(false),
        figure2a(true),
        figure2b(false),
        figure2b(true),
        figure2c(false),
        figure2c(false, true),
        figure2c(true),
        fpFlagCheck(false),
        fpFlagCheck(true),
        pollPlacement(false),
        pollPlacement(true),
        faultDropDowngrade(false),
        faultDropDowngrade(true),
        faultDuplicateDowngrade(false),
        faultDuplicateDowngrade(true),
        faultReorderDowngrade(false),
        faultReorderDowngrade(true),
        annotPrivateViolation(false),
        annotPrivateViolation(true),
        annotSingleWriterSkip(false),
        annotSingleWriterSkip(true),
    };
}

} // namespace shasta::racecheck
