#include "racecheck/model_checker.hh"

#include <cassert>

namespace shasta::racecheck
{

ExploreResult
ModelChecker::explore(const std::vector<Thread> &threads,
                      const MiniState &initial,
                      const Predicate &violation) const
{
    ExploreResult out;
    Frame frame;
    frame.state = initial;
    frame.pc.assign(threads.size(), 0);
    std::vector<std::string> trace;
    dfs(threads, std::move(frame), trace, violation, out);
    return out;
}

void
ModelChecker::dfs(const std::vector<Thread> &threads, Frame frame,
                  std::vector<std::string> &trace,
                  const Predicate &violation,
                  ExploreResult &out) const
{
    if (out.paths >= kMaxPaths)
        return;

    bool any_ran = false;
    bool any_unfinished = false;

    for (std::size_t t = 0; t < threads.size(); ++t) {
        const int pc = frame.pc[t];
        if (pc >= static_cast<int>(threads[t].size()))
            continue;
        any_unfinished = true;
        const Step &step = threads[t][static_cast<std::size_t>(pc)];
        if (step.enabled && !step.enabled(frame.state))
            continue;
        any_ran = true;

        Frame next = frame;
        step.action(next.state);
        int target = -1;
        if (step.branch)
            target = step.branch(next.state);
        next.pc[t] = (target >= 0) ? target : pc + 1;

        trace.push_back("T" + std::to_string(t) + ":" + step.label);
        dfs(threads, std::move(next), trace, violation, out);
        trace.pop_back();
    }

    if (!any_unfinished) {
        ++out.paths;
        ++out.terminals;
        if (violation(frame.state)) {
            ++out.violations;
            if (out.witness.empty())
                out.witness = trace;
        }
        return;
    }
    if (!any_ran) {
        ++out.paths;
        ++out.deadlocks;
        return;
    }
}

} // namespace shasta::racecheck
