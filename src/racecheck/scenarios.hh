/**
 * @file
 * Encodings of the paper's Figure 2 race conditions.
 *
 * Each scenario pits P1 (an application processor executing an
 * inline check followed by the checked load or store) against P2 (a
 * colocated processor servicing an incoming remote request that
 * downgrades the node's state).  The "naive" variants downgrade
 * state and write the invalid flag directly, as a protocol without
 * Section 3.3's machinery would; the "smp" variants send an explicit
 * downgrade message that P1 only handles at poll points, and P2
 * waits for it before completing.  The checker proves the naive
 * variants have violating interleavings and the smp variants none.
 */

#ifndef SHASTA_RACECHECK_SCENARIOS_HH
#define SHASTA_RACECHECK_SCENARIOS_HH

#include <string>
#include <vector>

#include "racecheck/model_checker.hh"

namespace shasta::racecheck
{

/** A named, ready-to-explore scenario. */
struct Scenario
{
    std::string name;
    std::string description;
    std::vector<Thread> threads;
    MiniState init;
    ModelChecker::Predicate violation;
    /** Whether the paper predicts violating interleavings. */
    bool expectViolations;
    /** Whether every schedule is expected to wedge (used by the
     *  fault-schedule scenarios: a dropped downgrade with no
     *  retransmission deadlocks the protocol in all interleavings,
     *  so there are no terminal states at all). */
    bool expectDeadlocks = false;
};

/** Application data values used by the scenarios. */
constexpr std::uint32_t kOldValue = 0xAAAA5555u;
constexpr std::uint32_t kNewValue = 0xBBBB7777u;
/** Must equal the protocol's invalid-flag pattern. */
constexpr std::uint32_t kFlagValue = 0xF10AF10Au;

/** Figure 2(a): store vs exclusive-to-invalid downgrade. */
Scenario figure2a(bool smp_protocol);

/** Figure 2(b): store vs exclusive-to-shared downgrade. */
Scenario figure2b(bool smp_protocol);

/**
 * Figure 2(c): state-table-checked load vs shared-to-invalid
 * downgrade (the flag value is returned as data).
 * @param flag_first if true, P2 writes the flag before the state --
 *   the paper notes reordering P2 does not remove the race.
 */
Scenario figure2c(bool smp_protocol, bool flag_first = false);

/**
 * Section 3.4.1: the floating-point flag check.  In Base-Shasta the
 * compare uses a second integer load, which is not atomic with the
 * FP load; because flag-checked loads never update the private state
 * table, the invalidating processor may legitimately proceed without
 * sending P1 a downgrade message, and the flag write can land
 * between the two loads.  The SMP variant (store to stack, reload)
 * is atomic.
 */
Scenario fpFlagCheck(bool atomic_variant);

/**
 * Why the polling discipline matters: SMP-Shasta's correctness rests
 * on messages never being handled between a successful inline check
 * and its access (Section 2.1/3.3).  This scenario runs the
 * downgrade-message protocol but inserts a poll *between* P1's check
 * and its store; handling the downgrade there acknowledges it, the
 * remote request completes, and P1's store is lost.
 * @param poll_between insert the illegal poll point.
 */
Scenario pollPlacement(bool poll_between);

/**
 * Fault schedule: the network drops the downgrade message outright.
 * Without a retransmission timer P2 waits for an acknowledgement
 * that can never arrive and P1 waits for mail that was never
 * delivered -- every schedule deadlocks.  With retransmission the
 * scenario is exactly as safe as fig2a-smp.
 * @param with_retransmit model the reliability sublayer's retry.
 */
Scenario faultDropDowngrade(bool with_retransmit);

/**
 * Fault schedule: the network duplicates an in-flight downgrade.
 * P2 issues two sequenced downgrades (first for an unrelated line,
 * then for the line P1 is about to store to) and counts
 * acknowledgements.  A naive receiver re-applies and re-acks the
 * duplicate, so the stale ack is mistaken for the ack of the second
 * downgrade and P2 reads the line before P1's store lands.  With
 * sequence-number dedup the duplicate is dropped and re-acked by
 * sequence number, so P2 can never run ahead.
 * @param seq_dedup suppress duplicates by sequence number.
 */
Scenario faultDuplicateDowngrade(bool seq_dedup);

/**
 * Fault schedule: the network reorders two sequenced downgrades for
 * the same line (exclusive-to-shared seq 1, then shared-to-invalid
 * seq 2, delivered 2 before 1).  A naive receiver applies them in
 * arrival order and ends in Shared with the invalid-flag pattern in
 * memory, so a state-checked load returns the flag as data.  A
 * resequencing receiver buffers seq 2 until seq 1 has been applied.
 * @param resequence buffer out-of-order deliveries.
 */
Scenario faultReorderDowngrade(bool resequence);

/**
 * The opt layer's check-elision contract (ownership annotations).
 * A region annotated `private(P1)` lets the elide knob bypass P1's
 * inline checks *and* skip incoming downgrade messages for the
 * region — sound only while the annotation is true.  This pair
 * models a WRONG annotation: a foreign processor accesses the line.
 * @param audited false: the foreign access proceeds against the
 *   skipped downgrade and silently loses P1's update in some
 *   interleavings.  true: the access is validated against the
 *   annotation before it executes (Context::annotAction) and trips
 *   the auditor in EVERY interleaving — wrong annotation = loud
 *   error, never silent corruption.
 */
Scenario annotPrivateViolation(bool audited);

/**
 * Why single-writer regions keep their downgrade messages.  The
 * annotation here is CORRECT (only P1 ever writes), but readers are
 * legitimate and rely on downgrade messages to drop stale private
 * rights.
 * @param keep_messages false: a naive elision also skips the
 *   downgrade for single-writer regions, and the reader's copy
 *   misses the writer's update in some interleavings.  true: the
 *   shipped protocol — elision only waives the *writer's check
 *   cost*, downgrade messaging stays — and no interleaving loses
 *   the update.
 */
Scenario annotSingleWriterSkip(bool keep_messages);

/** Every scenario, for exhaustive sweeps and the demo binary. */
std::vector<Scenario> allScenarios();

} // namespace shasta::racecheck

#endif // SHASTA_RACECHECK_SCENARIOS_HH
