/**
 * @file
 * Encodings of the paper's Figure 2 race conditions.
 *
 * Each scenario pits P1 (an application processor executing an
 * inline check followed by the checked load or store) against P2 (a
 * colocated processor servicing an incoming remote request that
 * downgrades the node's state).  The "naive" variants downgrade
 * state and write the invalid flag directly, as a protocol without
 * Section 3.3's machinery would; the "smp" variants send an explicit
 * downgrade message that P1 only handles at poll points, and P2
 * waits for it before completing.  The checker proves the naive
 * variants have violating interleavings and the smp variants none.
 */

#ifndef SHASTA_RACECHECK_SCENARIOS_HH
#define SHASTA_RACECHECK_SCENARIOS_HH

#include <string>
#include <vector>

#include "racecheck/model_checker.hh"

namespace shasta::racecheck
{

/** A named, ready-to-explore scenario. */
struct Scenario
{
    std::string name;
    std::string description;
    std::vector<Thread> threads;
    MiniState init;
    ModelChecker::Predicate violation;
    /** Whether the paper predicts violating interleavings. */
    bool expectViolations;
};

/** Application data values used by the scenarios. */
constexpr std::uint32_t kOldValue = 0xAAAA5555u;
constexpr std::uint32_t kNewValue = 0xBBBB7777u;
/** Must equal the protocol's invalid-flag pattern. */
constexpr std::uint32_t kFlagValue = 0xF10AF10Au;

/** Figure 2(a): store vs exclusive-to-invalid downgrade. */
Scenario figure2a(bool smp_protocol);

/** Figure 2(b): store vs exclusive-to-shared downgrade. */
Scenario figure2b(bool smp_protocol);

/**
 * Figure 2(c): state-table-checked load vs shared-to-invalid
 * downgrade (the flag value is returned as data).
 * @param flag_first if true, P2 writes the flag before the state --
 *   the paper notes reordering P2 does not remove the race.
 */
Scenario figure2c(bool smp_protocol, bool flag_first = false);

/**
 * Section 3.4.1: the floating-point flag check.  In Base-Shasta the
 * compare uses a second integer load, which is not atomic with the
 * FP load; because flag-checked loads never update the private state
 * table, the invalidating processor may legitimately proceed without
 * sending P1 a downgrade message, and the flag write can land
 * between the two loads.  The SMP variant (store to stack, reload)
 * is atomic.
 */
Scenario fpFlagCheck(bool atomic_variant);

/**
 * Why the polling discipline matters: SMP-Shasta's correctness rests
 * on messages never being handled between a successful inline check
 * and its access (Section 2.1/3.3).  This scenario runs the
 * downgrade-message protocol but inserts a poll *between* P1's check
 * and its store; handling the downgrade there acknowledges it, the
 * remote request completes, and P1's store is lost.
 * @param poll_between insert the illegal poll point.
 */
Scenario pollPlacement(bool poll_between);

/** Every scenario, for exhaustive sweeps and the demo binary. */
std::vector<Scenario> allScenarios();

} // namespace shasta::racecheck

#endif // SHASTA_RACECHECK_SCENARIOS_HH
