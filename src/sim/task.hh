/**
 * @file
 * Coroutine task type for simulated processors.
 *
 * Every simulated processor runs its application program as a C++20
 * coroutine of type Task.  Shared-memory accessors return awaitables
 * whose await_ready() is true on a hit, so the common case never
 * suspends; on a miss the coroutine parks in the protocol's miss table
 * and is resumed by the reply handler at the correct simulated time.
 *
 * Task supports nesting (a Task may co_await another Task) with
 * symmetric transfer, so application kernels can be decomposed into
 * ordinary-looking helper coroutines without stack growth.
 */

#ifndef SHASTA_SIM_TASK_HH
#define SHASTA_SIM_TASK_HH

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

namespace shasta
{

/**
 * Lazily-started coroutine task with void result.
 *
 * A Task does not run until it is either co_awaited by another Task or
 * explicitly start()ed as a root task.  The Task object owns the
 * coroutine frame; a root task's frame stays alive (suspended at its
 * final suspend point) until the Task is destroyed, so completion can
 * be observed via done().
 */
class Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type
    {
        /** Coroutine to resume when this task completes (may be null). */
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;

        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(Handle h) noexcept
            {
                auto &p = h.promise();
                if (p.continuation)
                    return p.continuation;
                return std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void return_void() {}

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    Task() = default;

    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True if this Task owns a coroutine frame. */
    bool valid() const { return static_cast<bool>(handle_); }

    /** True once the coroutine has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /**
     * Start a root task: runs until its first suspension point.
     * Must not be used on a task that will also be co_awaited.
     */
    void
    start()
    {
        assert(handle_ && !handle_.done());
        handle_.resume();
    }

    /**
     * Rethrow any exception that escaped the coroutine body.  Call
     * after done() becomes true on a root task.
     */
    void
    rethrowIfFailed() const
    {
        if (handle_ && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

    /** Awaiter used when a Task is co_awaited by a parent Task. */
    struct Awaiter
    {
        Handle handle;

        bool await_ready() const noexcept { return !handle; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            handle.promise().continuation = parent;
            return handle;
        }

        void
        await_resume() const
        {
            if (handle && handle.promise().exception)
                std::rethrow_exception(handle.promise().exception);
        }
    };

    Awaiter operator co_await() const noexcept { return Awaiter{handle_}; }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_;
};

/**
 * One-shot suspension point resumable by external code.
 *
 * A coroutine does `co_await suspender.wait()`; protocol code later
 * calls resume() (inside an event, at the proper simulated time) to
 * continue it.  Exactly one waiter at a time.
 */
class Suspender
{
  public:
    Suspender() = default;
    Suspender(const Suspender &) = delete;
    Suspender &operator=(const Suspender &) = delete;

    /** True while a coroutine is parked here. */
    bool pending() const { return static_cast<bool>(waiter_); }

    /** Resume the parked coroutine (must be pending). */
    void
    resume()
    {
        assert(waiter_);
        auto h = std::exchange(waiter_, nullptr);
        h.resume();
    }

    struct Awaiter
    {
        Suspender *self;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            assert(!self->waiter_ && "Suspender already has a waiter");
            self->waiter_ = h;
        }

        void await_resume() const noexcept {}
    };

    Awaiter wait() { return Awaiter{this}; }

  private:
    std::coroutine_handle<> waiter_;
};

} // namespace shasta

#endif // SHASTA_SIM_TASK_HH
