#include "sim/trace.hh"

#include <array>
#include <atomic>
#include <cstdarg>
#include <mutex>
#include <string>
#include <cstdlib>
#include <cstring>

namespace shasta::trace
{

namespace
{

// Flags and the sink are process-global but written only during
// setup; relaxed atomics keep the hot enabled() check one load while
// letting sweep-runner workers race with a late enable() safely.
// Line emission itself serializes on a mutex so concurrent Runtimes
// never interleave partial lines.
std::array<std::atomic<bool>, static_cast<std::size_t>(Flag::NumFlags)>
    flags{};
std::atomic<std::FILE *> sink{nullptr};
std::once_flag envOnce;
std::mutex outMutex;

/** Configuration label prepended to this thread's trace lines so a
 *  parallel sweep's interleaved output stays attributable. */
thread_local std::string threadLabel;

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(Flag::NumFlags)>
    kNames{"proto", "net", "sync", "downgrade", "batch"};

} // namespace

std::string_view
flagName(Flag f)
{
    return kNames[static_cast<std::size_t>(f)];
}

bool
parseFlag(std::string_view name, Flag &out)
{
    for (std::size_t i = 0; i < kNames.size(); ++i) {
        if (kNames[i] == name) {
            out = static_cast<Flag>(i);
            return true;
        }
    }
    return false;
}

void
enable(Flag f)
{
    flags[static_cast<std::size_t>(f)].store(
        true, std::memory_order_relaxed);
}

void
disable(Flag f)
{
    flags[static_cast<std::size_t>(f)].store(
        false, std::memory_order_relaxed);
}

void
disableAll()
{
    for (auto &f : flags)
        f.store(false, std::memory_order_relaxed);
}

void
enableList(std::string_view list)
{
    constexpr std::string_view ws = " \t\r\n";
    while (!list.empty()) {
        const std::size_t comma = list.find(',');
        std::string_view name = list.substr(0, comma);
        // Trim whitespace and tolerate empty segments so lists like
        // "proto, downgrade" or "proto,,net" behave as expected.
        if (const auto b = name.find_first_not_of(ws);
            b == std::string_view::npos) {
            name = {};
        } else {
            name.remove_suffix(name.size() - 1 -
                               name.find_last_not_of(ws));
            name.remove_prefix(b);
        }
        if (name.empty()) {
            // Skip the empty segment.
        } else if (name == "all") {
            for (auto &f : flags)
                f.store(true, std::memory_order_relaxed);
        } else {
            Flag f;
            if (parseFlag(name, f))
                enable(f);
        }
        if (comma == std::string_view::npos)
            break;
        list.remove_prefix(comma + 1);
    }
}

void
initFromEnv()
{
    std::call_once(envOnce, [] {
        if (const char *env = std::getenv("SHASTA_TRACE"))
            enableList(env);
    });
}

bool
enabled(Flag f)
{
    initFromEnv();
    return flags[static_cast<std::size_t>(f)].load(
        std::memory_order_relaxed);
}

void
setSink(std::FILE *s)
{
    sink.store(s, std::memory_order_release);
}

void
setThreadLabel(std::string_view label)
{
    threadLabel = label;
}

void
out(Flag f, Tick when, int proc, const char *fmt, ...)
{
    // The SHASTA_TRACE_EVENT macro checks enabled() before paying
    // for argument evaluation, but out() is also callable directly;
    // honor the flag gate here too instead of writing untraced
    // categories to the sink.
    if (!enabled(f))
        return;
    std::FILE *dst = sink.load(std::memory_order_acquire);
    if (!dst)
        dst = stderr;
    const std::lock_guard<std::mutex> lock(outMutex);
    if (!threadLabel.empty())
        std::fprintf(dst, "{%s} ", threadLabel.c_str());
    std::fprintf(dst, "[%12lld] P%-2d %-9s: ",
                 static_cast<long long>(when), proc,
                 std::string(flagName(f)).c_str());
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(dst, fmt, args);
    va_end(args);
    std::fputc('\n', dst);
}

} // namespace shasta::trace
