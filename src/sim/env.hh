/**
 * @file
 * Strict environment-variable parsing for tuning knobs.
 *
 * Every SHASTA_* knob used to go through atoi/atof, which silently
 * accepts trailing junk ("64x" -> 64), truncates overflow, and turns
 * garbage into 0.  A knob that is set but unparseable is always a
 * user error worth stopping for: these helpers consume the entire
 * value, range-check it, and on any violation print a diagnostic
 * naming the variable and the offending value, then exit(2).
 *
 * Unset (or empty) variables return the caller's default, so call
 * sites read `knob = envInt("SHASTA_X", lo, hi, knob)`.
 */

#ifndef SHASTA_SIM_ENV_HH
#define SHASTA_SIM_ENV_HH

#include <cstdint>

namespace shasta::env
{

/** Base-10 integer in [lo, hi]; @p defv when unset/empty. */
long long envInt(const char *name, long long lo, long long hi,
                 long long defv);

/** Unsigned 64-bit integer, @p base as in strtoull (0 = auto
 *  0x/0-prefix detection); @p defv when unset/empty. */
std::uint64_t envU64(const char *name, int base, std::uint64_t defv);

/** Finite double in [lo, hi]; @p defv when unset/empty. */
double envDouble(const char *name, double lo, double hi, double defv);

/**
 * Strict parse of an explicit string (argv values reuse the same
 * rules as env values).  @p what names the flag/variable for the
 * diagnostic.  Exits(2) on garbage, trailing junk, or range error.
 */
long long parseIntArg(const char *what, const char *value,
                      long long lo, long long hi);

} // namespace shasta::env

#endif // SHASTA_SIM_ENV_HH
