#include "sim/rng.hh"

namespace shasta
{

namespace
{

/** SplitMix64 step, used only for seed expansion. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitMixHash(std::uint64_t x)
{
    // The SplitMix64 output function over x itself (not a stream
    // position), giving a stateless avalanche with the same quality.
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits mapped to [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace shasta
