#include "sim/event_queue.hh"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace shasta
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_) {
        throw std::logic_error(
            "EventQueue::schedule: event at tick " +
            std::to_string(when) + " is before now=" +
            std::to_string(now_));
    }
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    assert(delay >= 0);
    schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never compare the moved-from
    // entry again.
    Entry entry = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    now_ = entry.when;
    ++processed_;
    entry.cb();
    if (hook_ && ++sinceHook_ >= hookEvery_) {
        sinceHook_ = 0;
        hook_();
    }
    return true;
}

void
EventQueue::setProgressHook(std::uint64_t every_events,
                            ProgressHook hook)
{
    assert(every_events > 0 || !hook);
    hook_ = std::move(hook);
    hookEvery_ = every_events;
    sinceHook_ = 0;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

bool
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty()) {
        if (heap_.top().when > limit)
            return false;
        step();
    }
    return true;
}

} // namespace shasta
