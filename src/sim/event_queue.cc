#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace shasta
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    assert(when >= now_ && "event scheduled in the simulated past");
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    assert(delay >= 0);
    schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never compare the moved-from
    // entry again.
    Entry entry = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    now_ = entry.when;
    ++processed_;
    entry.cb();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

bool
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty()) {
        if (heap_.top().when > limit)
            return false;
        step();
    }
    return true;
}

} // namespace shasta
