#include "sim/event_queue.hh"

#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace shasta
{

EventQueue::EventQueue()
{
    nodes_.reserve(64);
}

std::uint32_t
EventQueue::allocNode(Tick when, std::uint64_t tag, Callback &&cb)
{
    if (freeHead_ != kNil) {
        const std::uint32_t idx = freeHead_;
        Node &n = nodes_[idx];
        freeHead_ = n.next;
        n.when = when;
        n.next = kNil;
        n.tag = tag;
        n.cb = std::move(cb);
        return idx;
    }
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{when, kNil, tag, std::move(cb)});
    return idx;
}

void
EventQueue::freeNode(std::uint32_t idx)
{
    nodes_[idx].next = freeHead_;
    freeHead_ = idx;
}

int
EventQueue::levelFor(Tick when) const
{
    const std::uint64_t diff = static_cast<std::uint64_t>(when) ^
                               static_cast<std::uint64_t>(cursor_);
    if (diff == 0)
        return 0;
    const int high_bit = 63 - std::countl_zero(diff);
    return high_bit / kLevelBits;
}

void
EventQueue::place(std::uint32_t idx)
{
    const Tick when = nodes_[idx].when;
    const int level = levelFor(when);
    if (level >= kLevels) {
        overflow_.push_back(idx);
        return;
    }
    const int slot = static_cast<int>(
        (static_cast<std::uint64_t>(when) >> (kLevelBits * level)) &
        (kSlots - 1));
    Slot &s = slots_[level][slot];
    nodes_[idx].next = kNil;
    if (s.tail == kNil) {
        s.head = s.tail = idx;
        bitmap_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
    } else {
        nodes_[s.tail].next = idx;
        s.tail = idx;
    }
}

std::uint32_t
EventQueue::popSlotHead(int level, int slot)
{
    Slot &s = slots_[level][slot];
    const std::uint32_t idx = s.head;
    assert(idx != kNil);
    s.head = nodes_[idx].next;
    if (s.head == kNil) {
        s.tail = kNil;
        bitmap_[level][slot >> 6] &=
            ~(std::uint64_t{1} << (slot & 63));
    }
    return idx;
}

void
EventQueue::cascade(int level, int slot)
{
    Slot &s = slots_[level][slot];
    std::uint32_t idx = s.head;
    s.head = s.tail = kNil;
    bitmap_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    // Re-place in list order: same-tick events keep their relative
    // scheduling order (the FIFO-per-tick determinism contract).
    while (idx != kNil) {
        const std::uint32_t next = nodes_[idx].next;
        place(idx);
        idx = next;
    }
}

void
EventQueue::rehomeOverflow()
{
    // All wheel levels are empty: the earliest pending event lives in
    // the overflow list.  Jump the cursor to that event's top-level
    // block and re-place every overflow node in scheduling order
    // (nodes still beyond the horizon just return to the list).
    assert(!overflow_.empty());
    Tick min_when = nodes_[overflow_.front()].when;
    for (const std::uint32_t idx : overflow_)
        min_when = std::min(min_when, nodes_[idx].when);
    constexpr int top_shift = kLevelBits * kLevels;
    cursor_ = static_cast<Tick>(
        (static_cast<std::uint64_t>(min_when) >> top_shift)
        << top_shift);
    overflowScratch_.clear();
    overflowScratch_.swap(overflow_);
    for (const std::uint32_t idx : overflowScratch_)
        place(idx);
}

int
EventQueue::findSetFrom(const std::uint64_t *bm, int from)
{
    int word = from >> 6;
    std::uint64_t w = bm[word] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
        if (w != 0)
            return (word << 6) + std::countr_zero(w);
        if (++word == kBitmapWords)
            return -1;
        w = bm[word];
    }
}

Tick
EventQueue::peekNext() const
{
    assert(size_ > 0);
    const auto cursor = static_cast<std::uint64_t>(cursor_);
    // Level 0 maps one tick per slot, so the first occupied slot at
    // or after the cursor's position is the exact earliest tick.
    int slot = findSetFrom(bitmap_[0],
                           static_cast<int>(cursor & (kSlots - 1)));
    if (slot >= 0) {
        return static_cast<Tick>(
            (cursor & ~static_cast<std::uint64_t>(kSlots - 1)) |
            static_cast<std::uint64_t>(slot));
    }
    // Higher levels: the first occupied slot bounds the earliest
    // event, but the slot spans many ticks — scan its list for the
    // minimum.  Later levels cannot hold anything earlier.
    for (int level = 1; level < kLevels; ++level) {
        const int cur = static_cast<int>(
            (cursor >> (kLevelBits * level)) & (kSlots - 1));
        slot = findSetFrom(bitmap_[level], cur);
        if (slot < 0)
            continue;
        std::uint32_t idx = slots_[level][slot].head;
        Tick min_when = nodes_[idx].when;
        for (idx = nodes_[idx].next; idx != kNil;
             idx = nodes_[idx].next)
            min_when = std::min(min_when, nodes_[idx].when);
        return min_when;
    }
    Tick min_when = nodes_[overflow_.front()].when;
    for (const std::uint32_t idx : overflow_)
        min_when = std::min(min_when, nodes_[idx].when);
    return min_when;
}

void
EventQueue::headKey(Tick &when, std::uint64_t &tag) const
{
    assert(size_ > 0);
    const auto cursor = static_cast<std::uint64_t>(cursor_);
    // Mirrors peekNext(), but resolves down to a node.  At every
    // tick the list order is insertion order, and insertions for one
    // tick carry increasing tags (scheduleTagged's contract), so the
    // first node found at the minimum tick holds the minimum tag.
    int slot = findSetFrom(bitmap_[0],
                           static_cast<int>(cursor & (kSlots - 1)));
    if (slot >= 0) {
        const Node &n = nodes_[slots_[0][slot].head];
        when = n.when;
        tag = n.tag;
        return;
    }
    for (int level = 1; level < kLevels; ++level) {
        const int cur = static_cast<int>(
            (cursor >> (kLevelBits * level)) & (kSlots - 1));
        slot = findSetFrom(bitmap_[level], cur);
        if (slot < 0)
            continue;
        std::uint32_t best = slots_[level][slot].head;
        for (std::uint32_t idx = nodes_[best].next; idx != kNil;
             idx = nodes_[idx].next) {
            if (nodes_[idx].when < nodes_[best].when)
                best = idx;
        }
        when = nodes_[best].when;
        tag = nodes_[best].tag;
        return;
    }
    std::uint32_t best = overflow_.front();
    for (const std::uint32_t idx : overflow_) {
        if (nodes_[idx].when < nodes_[best].when)
            best = idx;
    }
    when = nodes_[best].when;
    tag = nodes_[best].tag;
}

std::uint32_t
EventQueue::popEarliest()
{
    for (;;) {
        const auto cursor = static_cast<std::uint64_t>(cursor_);
        const int slot0 = findSetFrom(
            bitmap_[0], static_cast<int>(cursor & (kSlots - 1)));
        if (slot0 >= 0) {
            const std::uint32_t idx = popSlotHead(0, slot0);
            cursor_ = nodes_[idx].when;
            return idx;
        }
        bool cascaded = false;
        for (int level = 1; level < kLevels; ++level) {
            const int shift = kLevelBits * level;
            const int cur = static_cast<int>(
                (cursor >> shift) & (kSlots - 1));
            const int slot = findSetFrom(bitmap_[level], cur);
            if (slot < 0)
                continue;
            // Advance the cursor to the start of that slot's span
            // and re-home its events one level down.  No pending
            // event lies before the span (lower levels and earlier
            // slots are empty), so the jump skips only dead time.
            const std::uint64_t upper =
                cursor >> (shift + kLevelBits);
            cursor_ = static_cast<Tick>(
                ((upper << kLevelBits) |
                 static_cast<std::uint64_t>(slot))
                << shift);
            cascade(level, slot);
            cascaded = true;
            break;
        }
        if (!cascaded)
            rehomeOverflow();
    }
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_) {
        throw std::logic_error(
            "EventQueue::schedule: event at tick " +
            std::to_string(when) + " is before now=" +
            std::to_string(now_));
    }
    place(allocNode(when, 0, std::move(cb)));
    ++size_;
}

void
EventQueue::scheduleTagged(Tick when, std::uint64_t tag, Callback cb)
{
    if (when < now_) {
        throw std::logic_error(
            "EventQueue::scheduleTagged: event at tick " +
            std::to_string(when) + " is before now=" +
            std::to_string(now_));
    }
    place(allocNode(when, tag, std::move(cb)));
    ++size_;
}

void
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    assert(delay >= 0);
    if (delay > std::numeric_limits<Tick>::max() - now_) {
        throw std::logic_error(
            "EventQueue::scheduleAfter: delay " +
            std::to_string(delay) + " from now=" +
            std::to_string(now_) + " overflows Tick");
    }
    schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::step()
{
    if (size_ == 0)
        return false;
    const std::uint32_t idx = popEarliest();
    Node &n = nodes_[idx];
    now_ = n.when;
    runningTag_ = n.tag;
    // Move the callback out and recycle the node before invoking:
    // the callback may schedule new events, which can reuse the slot
    // or grow the slab.
    Callback cb = std::move(n.cb);
    freeNode(idx);
    --size_;
    ++processed_;
    cb();
    if (hook_ && ++sinceHook_ >= hookEvery_) {
        sinceHook_ = 0;
        hook_();
    }
    return true;
}

void
EventQueue::setProgressHook(std::uint64_t every_events,
                            ProgressHook hook)
{
    assert(every_events > 0 || !hook);
    hook_ = std::move(hook);
    hookEvery_ = every_events;
    sinceHook_ = 0;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

bool
EventQueue::runUntil(Tick limit)
{
    while (size_ > 0) {
        if (peekNext() > limit)
            return false;
        step();
    }
    return true;
}

} // namespace shasta
