/**
 * @file
 * Lightweight categorized tracing (gem5's DPRINTF, in miniature).
 *
 * Trace categories are enabled via the SHASTA_TRACE environment
 * variable (comma-separated: e.g. SHASTA_TRACE=proto,downgrade) or
 * programmatically.  Disabled categories cost one branch.  Output
 * goes to a configurable sink (stderr by default) as
 *
 *   [tick] P<proc> <category>: <message>
 */

#ifndef SHASTA_SIM_TRACE_HH
#define SHASTA_SIM_TRACE_HH

#include <cstdio>
#include <string_view>

#include "sim/ticks.hh"

namespace shasta::trace
{

/** Trace categories. */
enum class Flag
{
    Proto,     ///< protocol transactions and handlers
    Net,       ///< message sends and deliveries
    Sync,      ///< locks and barriers
    Downgrade, ///< intra-node downgrade machinery
    Batch,     ///< batch miss handling and markers
    NumFlags
};

/** Name of a category (lower-case, as used in SHASTA_TRACE). */
std::string_view flagName(Flag f);

/** Parse a category name; returns false if unknown. */
bool parseFlag(std::string_view name, Flag &out);

/** @{ Enable / disable categories. */
void enable(Flag f);
void disable(Flag f);
void disableAll();
/** Parse a comma-separated list ("proto,net"); unknown names are
 *  ignored.  "all" enables everything. */
void enableList(std::string_view list);
/** Apply SHASTA_TRACE from the environment (called lazily on first
 *  query; safe to call again). */
void initFromEnv();
/** @} */

/** True if @p f is enabled. */
bool enabled(Flag f);

/** Redirect output (tests use a tmpfile); null restores stderr. */
void setSink(std::FILE *sink);

/** Label prepended (as "{label} ") to trace lines emitted by the
 *  calling thread — the sweep runner sets each worker's label to its
 *  configuration name so interleaved output stays attributable.
 *  Empty clears it. */
void setThreadLabel(std::string_view label);

/** Emit one trace line (printf-style). */
void out(Flag f, Tick when, int proc, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace shasta::trace

/** Convenience macro: evaluates arguments only when enabled. */
#define SHASTA_TRACE_EVENT(flag, when, proc, ...)                     \
    do {                                                              \
        if (shasta::trace::enabled(flag))                             \
            shasta::trace::out(flag, when, proc, __VA_ARGS__);        \
    } while (0)

#endif // SHASTA_SIM_TRACE_HH
