/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * The simulator must be bit-reproducible across runs, so every
 * stochastic component (workload generators, hash seeds) draws from
 * this explicitly-seeded generator rather than from std::random_device
 * or global state.  The core is xoshiro256**, seeded via SplitMix64.
 */

#ifndef SHASTA_SIM_RNG_HH
#define SHASTA_SIM_RNG_HH

#include <cstdint>

namespace shasta
{

/**
 * Stateless SplitMix64-style avalanche of @p x.
 *
 * Used wherever a deterministic hash of explicit inputs must replace
 * stateful generator draws — e.g. the network fault model hashes
 * (seed, src, dst, transmission index) so every injection decision
 * is a pure function of the run configuration, independent of event
 * ordering or sweep parallelism.
 */
std::uint64_t splitMixHash(std::uint64_t x);

/** Order-sensitive combine of a hash state with one more word. */
inline std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t v)
{
    return splitMixHash(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) +
                             (h >> 2)));
}

/**
 * Deterministic xoshiro256** generator.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can be
 * used with standard distributions, though the helpers below are
 * preferred because their results are identical across platforms.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct with a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x5A57A5EEDULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()();

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t s_[4];
};

} // namespace shasta

#endif // SHASTA_SIM_RNG_HH
