#include "sim/pdes.hh"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace shasta
{

namespace
{

/** Machine context of the calling thread.  Workers pin it around
 *  runUntil; the main thread pins it around serial steps and root
 *  coroutine starts.  Keyed by engine so nested Runtimes (sweep
 *  workers each own one) never cross wires. */
struct TlsCtx
{
    ParallelEngine *eng = nullptr;
    int machine = 0;
    bool inWindow = false;
};

thread_local TlsCtx tlsCtx;

} // namespace

ParallelEngine::ParallelEngine(int machines, int threads,
                               Tick lookahead)
    : machines_(machines),
      threads_(std::min(threads, machines)),
      lookahead_(lookahead),
      ms_(static_cast<std::size_t>(machines))
{
    assert(machines >= 1 && threads >= 1 && lookahead >= 1);
}

ParallelEngine::~ParallelEngine()
{
    if (poolStarted_) {
        stop_.store(true, std::memory_order_relaxed);
        gen_.fetch_add(1, std::memory_order_release);
        gen_.notify_all();
        for (std::thread &t : pool_)
            t.join();
    }
}

void
ParallelEngine::startPool()
{
    if (poolStarted_)
        return;
    poolStarted_ = true;
    pool_.reserve(static_cast<std::size_t>(threads_));
    for (int w = 0; w < threads_; ++w)
        pool_.emplace_back([this, w] { workerLoop(w); });
}

void
ParallelEngine::scheduleOn(int machine, Tick when, Callback cb)
{
    assert(machine >= 0 && machine < machines_);
    if (tlsCtx.eng == this && tlsCtx.inWindow) {
        MachineState &src = ms_[tlsCtx.machine];
        EventQueue &q = src.queue;
        Record r;
        r.parentTick = q.now();
        r.parentRef = q.runningTag();
        r.when = when;
        r.dstMachine = machine;
        if (machine == tlsCtx.machine && when < windowEnd_) {
            // Same-machine, in-window: goes straight into our own
            // wheel under a provisional tag so it executes this
            // window; the barrier merge back-fills the final gseq.
            const std::uint32_t w = src.winCount++;
            r.winIdx = w;
            q.scheduleTagged(when, kProvisional | w, std::move(cb));
        } else {
            if (machine != tlsCtx.machine && when < windowEnd_) {
                throw std::logic_error(
                    "ParallelEngine: cross-machine event at tick " +
                    std::to_string(when) +
                    " violates lookahead window ending at " +
                    std::to_string(windowEnd_));
            }
            r.winIdx = kNoWinIdx;
            r.cb = std::move(cb);
        }
        src.records.push_back(std::move(r));
        return;
    }
    // Serial phase (or setup code): the caller IS the global order,
    // so assign the final gseq immediately.
    ms_[machine].queue.scheduleTagged(when, nextGseq_++,
                                      std::move(cb));
}

Tick
ParallelEngine::now() const
{
    if (tlsCtx.eng == this)
        return ms_[tlsCtx.machine].queue.now();
    return globalNow_;
}

int
ParallelEngine::activeMachine() const
{
    return tlsCtx.eng == this ? tlsCtx.machine : 0;
}

void
ParallelEngine::setActiveMachine(int m)
{
    assert(m >= 0 && m < machines_);
    tlsCtx = TlsCtx{this, m, false};
}

void
ParallelEngine::clearActiveMachine()
{
    tlsCtx = TlsCtx{};
}

bool
ParallelEngine::empty() const
{
    for (const MachineState &s : ms_)
        if (!s.queue.empty())
            return false;
    return true;
}

std::uint64_t
ParallelEngine::processed() const
{
    std::uint64_t n = 0;
    for (const MachineState &s : ms_)
        n += s.queue.processed();
    return n;
}

bool
ParallelEngine::stepSerial()
{
    int best = -1;
    Tick bestWhen = 0;
    std::uint64_t bestTag = 0;
    for (int m = 0; m < machines_; ++m) {
        const EventQueue &q = ms_[m].queue;
        if (q.empty())
            continue;
        Tick when = 0;
        std::uint64_t tag = 0;
        q.headKey(when, tag);
        if (best < 0 || when < bestWhen ||
            (when == bestWhen && tag < bestTag)) {
            best = m;
            bestWhen = when;
            bestTag = tag;
        }
    }
    if (best < 0)
        return false;
    tlsCtx = TlsCtx{this, best, false};
    ms_[best].queue.step();
    tlsCtx = TlsCtx{};
    globalNow_ = bestWhen;
    return true;
}

void
ParallelEngine::drain()
{
    while (stepSerial()) {
    }
}

bool
ParallelEngine::runWindow()
{
    Tick base = 0;
    bool any = false;
    for (const MachineState &s : ms_) {
        if (s.queue.empty())
            continue;
        const Tick h = s.queue.headTick();
        if (!any || h < base) {
            base = h;
            any = true;
        }
    }
    if (!any)
        return false;
    // Checked in Release, like EventQueue::scheduleAfter: a window
    // base near the Tick ceiling must not wrap past the horizon.
    if (lookahead_ > std::numeric_limits<Tick>::max() - base) {
        throw std::logic_error(
            "ParallelEngine: window base " + std::to_string(base) +
            " + lookahead " + std::to_string(lookahead_) +
            " overflows Tick");
    }
    windowEnd_ = base + lookahead_;

    startPool();
    pending_.store(threads_, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    gen_.notify_all();
    for (;;) {
        const int p = pending_.load(std::memory_order_acquire);
        if (p == 0)
            break;
        pending_.wait(p, std::memory_order_acquire);
    }
    ++windows_;
    globalNow_ = windowEnd_ - 1;

    for (MachineState &s : ms_) {
        if (s.error) {
            std::exception_ptr e = s.error;
            for (MachineState &t : ms_)
                t.error = nullptr;
            std::rethrow_exception(e);
        }
    }
    mergeCommit();
    return true;
}

void
ParallelEngine::workerLoop(int worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        gen_.wait(seen, std::memory_order_acquire);
        seen = gen_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_relaxed))
            return;
        runMachinesOf(worker);
        pending_.fetch_sub(1, std::memory_order_release);
        pending_.notify_one();
    }
}

void
ParallelEngine::runMachinesOf(int worker)
{
    for (int m = worker; m < machines_; m += threads_) {
        MachineState &s = ms_[m];
        if (s.queue.empty() || s.queue.headTick() >= windowEnd_)
            continue;
        tlsCtx = TlsCtx{this, m, true};
        try {
            s.queue.runUntil(windowEnd_ - 1);
        } catch (...) {
            s.error = std::current_exception();
        }
        tlsCtx = TlsCtx{};
    }
}

std::uint64_t
ParallelEngine::resolveRef(int machine, std::uint64_t ref) const
{
    if ((ref & kProvisional) == 0)
        return ref;
    // The record that created this winIdx sits earlier in the same
    // machine's list (the parent was scheduled before it executed),
    // so by the time this record reaches the head its tag is final.
    return ms_[machine].winTag[ref & ~kProvisional];
}

void
ParallelEngine::mergeCommit()
{
    // Replay the serial engine's schedule interleaving: records are
    // consumed per machine in order, globally sorted by the parent
    // key (parentTick, parentGseq) — exactly the order the parents
    // executed in the serial engine — and final gseqs are assigned
    // from the same counter the serial phase uses.
    const auto later = [](const HeapEntry &a, const HeapEntry &b) {
        if (a.parentTick != b.parentTick)
            return a.parentTick > b.parentTick;
        if (a.parentGseq != b.parentGseq)
            return a.parentGseq > b.parentGseq;
        return a.machine > b.machine;
    };
    heap_.clear();
    const auto pushHead = [this, &later](int m, std::size_t pos) {
        MachineState &s = ms_[m];
        if (pos >= s.records.size())
            return;
        const Record &r = s.records[pos];
        heap_.push_back(HeapEntry{r.parentTick,
                                  resolveRef(m, r.parentRef), m,
                                  pos});
        std::push_heap(heap_.begin(), heap_.end(), later);
    };
    for (int m = 0; m < machines_; ++m) {
        ms_[m].winTag.resize(ms_[m].winCount);
        pushHead(m, 0);
    }
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        const HeapEntry e = heap_.back();
        heap_.pop_back();
        MachineState &s = ms_[e.machine];
        Record &r = s.records[e.pos];
        const std::uint64_t g = nextGseq_++;
        if (r.winIdx != kNoWinIdx) {
            s.winTag[r.winIdx] = g;
        } else {
            ms_[r.dstMachine].queue.scheduleTagged(r.when, g,
                                                   std::move(r.cb));
        }
        pushHead(e.machine, e.pos + 1);
    }
    for (MachineState &s : ms_) {
        s.records.clear();
        s.winCount = 0;
    }
}

} // namespace shasta
