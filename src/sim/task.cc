#include "sim/task.hh"

// Task and Suspender are header-only; this translation unit exists so
// the build has a home for any future out-of-line helpers and so the
// header is compiled standalone at least once.

namespace shasta
{
} // namespace shasta
