/**
 * @file
 * Conservative-lookahead parallel discrete-event engine (PDES).
 *
 * The serial EventQueue executes the whole cluster's events in
 * (tick, scheduling order).  This engine partitions the event stream
 * into one timing wheel per physical machine and executes windows of
 * width L — the minimum cross-machine network latency — on a pool of
 * worker threads.  Within a window a machine only sees events it
 * scheduled for itself (cross-machine effects always land >= L in
 * the future), so workers run race-free between two barriers.
 *
 * Determinism contract: the committed execution order is byte-
 * identical to the serial engine's.  Every event carries the global
 * FIFO sequence number (gseq) the serial engine would have assigned
 * at its schedule() call.  Serial-engine schedule order is fully
 * determined by the executing parent: events are scheduled by the
 * event running at (parentTick, parentGseq), in call order.  So
 * workers record each schedule call with its parent key, and at the
 * window barrier the main thread merges the per-machine record lists
 * by (parentTick, parentGseq) — reproducing the serial interleaving
 * exactly — and assigns final gseqs from one counter.  Same-machine
 * events that fall inside the window are inserted immediately under
 * a provisional tag (resolved at the barrier); everything else is
 * deferred and inserted at merge time.  Per-tick wheel FIFO order
 * then equals gseq order with no pop-time comparisons (DESIGN.md,
 * "Parallel simulation engine", proves the insertion discipline).
 *
 * Outside the parallel phase (before the measured region opens and
 * while draining at the end) the engine steps serially: it pops the
 * globally minimum (tick, gseq) event across all machine wheels on
 * the calling thread, assigning gseqs directly.  Both phases produce
 * the same total order, so switching between them is free.
 *
 * Allocation discipline: record lists, merge heap, provisional-tag
 * tables and the wheels themselves all recycle their storage, so the
 * steady state allocates nothing per event (alloc_test holds this).
 */

#ifndef SHASTA_SIM_PDES_HH
#define SHASTA_SIM_PDES_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace shasta
{

class ParallelEngine
{
  public:
    using Callback = EventQueue::Callback;

    /**
     * @param machines  partition count (one wheel per machine)
     * @param threads   worker threads (clamped to machines)
     * @param lookahead minimum cross-machine latency in ticks; a
     *                  schedule call from machine A targeting
     *                  machine B != A must land >= lookahead after
     *                  A's current tick.
     */
    ParallelEngine(int machines, int threads, Tick lookahead);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    int machines() const { return machines_; }
    int threads() const { return threads_; }
    Tick lookahead() const { return lookahead_; }

    /**
     * Schedule @p cb on @p machine at absolute tick @p when.  Called
     * from inside an executing event this routes through the record
     * protocol (parallel phase) or tags directly (serial phase);
     * called from outside any event (setup code) it tags directly.
     */
    void scheduleOn(int machine, Tick when, Callback cb);

    /**
     * Current tick as seen by the calling thread: the active
     * machine's wheel clock, or the global commit horizon when no
     * machine context is active.
     */
    Tick now() const;

    /** Machine whose event is executing on this thread (0 if none —
     *  setup code before the run belongs to machine 0). */
    int activeMachine() const;

    /** Pin the calling thread's machine context (root coroutine
     *  starts run outside any event but schedule on behalf of a
     *  specific processor's machine). */
    void setActiveMachine(int m);
    void clearActiveMachine();

    bool empty() const;

    /**
     * Execute the single globally earliest event (serial phase).
     * @return false if no events remain.
     */
    bool stepSerial();

    /**
     * Execute one conservative window [T, T + lookahead) across all
     * machines on the worker pool, then merge-commit the scheduled
     * records.  @return false if no events remain.  Throws the
     * lowest-machine worker exception, if any.
     */
    bool runWindow();

    /** Serial-step until every wheel drains. */
    void drain();

    std::uint64_t processed() const;

    /** Windows executed (observability / tests). */
    std::uint64_t windows() const { return windows_; }

  private:
    /** One schedule call recorded during a window, keyed by the
     *  scheduling parent so the barrier can replay serial order. */
    struct Record
    {
        Tick parentTick;
        /** Parent's gseq; provisional (kProvisional | winIdx) when
         *  the parent itself was scheduled earlier in this window. */
        std::uint64_t parentRef;
        Tick when;
        std::int32_t dstMachine;
        /** Index into winTag_[m] when inserted in-window (callback
         *  already lives in the wheel); kNoWinIdx when deferred. */
        std::uint32_t winIdx;
        Callback cb;
    };

    static constexpr std::uint64_t kProvisional = std::uint64_t{1}
                                                  << 63;
    static constexpr std::uint32_t kNoWinIdx = 0xffffffffu;

    struct MachineState
    {
        EventQueue queue;
        std::vector<Record> records;
        /** winIdx -> final gseq, filled during the barrier merge. */
        std::vector<std::uint64_t> winTag;
        std::uint32_t winCount = 0;
        std::exception_ptr error;
    };

    void workerLoop(int worker);
    void runMachinesOf(int worker);
    void mergeCommit();
    std::uint64_t resolveRef(int machine, std::uint64_t ref) const;

    const int machines_;
    const int threads_;
    const Tick lookahead_;

    std::vector<MachineState> ms_;

    /** Next final gseq; equals the count the serial engine would
     *  have assigned.  Main thread only. */
    std::uint64_t nextGseq_ = 1;

    Tick windowEnd_ = 0;
    std::uint64_t windows_ = 0;
    /** Commit horizon: now() outside any machine context. */
    Tick globalNow_ = 0;

    /** Merge heap of (parentTick, parentGseq, machine), reused. */
    struct HeapEntry
    {
        Tick parentTick;
        std::uint64_t parentGseq;
        int machine;
        std::size_t pos;
    };
    std::vector<HeapEntry> heap_;

    /** Worker synchronization: main bumps gen_ to release a window,
     *  workers decrement pending_ when their machines finish.  Both
     *  sides block in std::atomic wait (futex), never spin. */
    std::vector<std::thread> pool_;
    std::atomic<std::uint64_t> gen_{0};
    std::atomic<int> pending_{0};
    std::atomic<bool> stop_{false};
    bool poolStarted_ = false;

    void startPool();
};

} // namespace shasta

#endif // SHASTA_SIM_PDES_HH
