/**
 * @file
 * Global discrete-event queue driving the cluster simulation.
 *
 * Everything that happens "between" processor poll points — message
 * deliveries, processor resumptions after a quantum yield, timeouts in
 * tests — is an event.  Events at equal ticks fire in insertion order
 * so the simulation is deterministic.
 *
 * The queue is a hierarchical timing wheel rather than a comparison
 * heap: the simulator's event delays cluster tightly in the near
 * future (fixed network latencies of a few hundred to a few thousand
 * ticks, ~1500-tick poll quanta), which a wheel turns into O(1)
 * bucket appends and bitmap scans instead of O(log n) sift
 * operations that shuffle whole callback objects around the heap.
 * Callbacks are stored in a recycled node slab as InplaceFn objects,
 * so the steady-state schedule -> fire -> recycle cycle performs no
 * heap allocation (tests/alloc_test.cc holds this as an assertion).
 *
 * Determinism contract (relied on by tests/golden_test.cc): events
 * fire in (tick, scheduling order) — FIFO per tick.  The wheel
 * preserves this structurally: each slot is an append-only FIFO
 * list, and cascading a higher-level slot re-distributes its nodes
 * in list order, so two events for the same tick always end up in
 * the same slot in their original scheduling order (see the design
 * notes in DESIGN.md).
 */

#ifndef SHASTA_SIM_EVENT_QUEUE_HH
#define SHASTA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/inplace_fn.hh"
#include "sim/ticks.hh"

namespace shasta
{

/**
 * Deterministic timing-wheel queue of timed callbacks.
 *
 * Equal-time events fire in the order they were scheduled.
 */
class EventQueue
{
  public:
    /** Non-allocating callable: every scheduling site's capture must
     *  fit the inline buffer (enforced at compile time). */
    using Callback = InplaceFn<void()>;
    using ProgressHook = std::function<void()>;

    EventQueue();

    /** Current simulated time; advances as events are processed. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to fire at absolute time @p when.
     *
     * Scheduling in the past is a programming error; it throws
     * std::logic_error naming both ticks (always on, even in
     * Release -- a past-time event would silently break simulated-
     * time monotonicity).
     */
    void schedule(Tick when, Callback cb);

    /**
     * Schedule @p cb to fire @p delay ticks from now.  A delay large
     * enough to wrap Tick arithmetic past the representable maximum
     * throws the same std::logic_error the past-time check does.
     */
    void scheduleAfter(Tick delay, Callback cb);

    /**
     * Schedule with an explicit FIFO tag (the parallel engine's
     * global sequence number).  The caller must preserve the per-tick
     * discipline the wheel's determinism rests on: successive
     * insertions for the same tick carry increasing tags, so the
     * slot lists stay sorted by tag without any pop-time comparison.
     * schedule() is scheduleTagged() with tag 0 (the serial engine
     * never reads tags).
     */
    void scheduleTagged(Tick when, std::uint64_t tag, Callback cb);

    /** Tag of the event currently executing inside step(). */
    std::uint64_t runningTag() const { return runningTag_; }

    /** Earliest pending tick (queue must be non-empty). */
    Tick headTick() const { return peekNext(); }

    /**
     * (tick, tag) of the event step() would pop next — the key the
     * parallel engine's serial phase merges queues by.  Queue must be
     * non-empty.
     */
    void headKey(Tick &when, std::uint64_t &tag) const;

    /** True when no events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Total number of events processed so far. */
    std::uint64_t processed() const { return processed_; }

    /**
     * Pop and run the earliest event.  @return false if queue empty.
     */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p limit.  Events at exactly @p limit still run.
     * @return true if the queue drained.
     */
    bool runUntil(Tick limit);

    /**
     * Install a hook that fires after every @p every_events processed
     * events (the audit subsystem's heartbeat).  The hook runs at top
     * level in step(), after the event's callback returns, so it may
     * throw: the exception propagates out of step()/run() rather than
     * through any coroutine frame.  Pass an empty hook to uninstall.
     */
    void setProgressHook(std::uint64_t every_events, ProgressHook hook);

  private:
    /** 256 slots per level; level L spans 256^(L+1) ticks. */
    static constexpr int kLevelBits = 8;
    static constexpr int kSlots = 1 << kLevelBits;
    /** Four levels cover 2^32 ticks (~14 simulated seconds) beyond
     *  the cursor; rarer, farther events overflow to a side list. */
    static constexpr int kLevels = 4;
    static constexpr int kBitmapWords = kSlots / 64;
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** One pending event, linked into a slot's FIFO list.  Nodes
     *  live in a slab (nodes_) and are recycled through freeHead_;
     *  links are indices so slab growth never invalidates them. */
    struct Node
    {
        Tick when;
        std::uint32_t next;
        std::uint64_t tag;
        Callback cb;
    };

    struct Slot
    {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };

    std::uint32_t allocNode(Tick when, std::uint64_t tag,
                            Callback &&cb);
    void freeNode(std::uint32_t idx);

    /** Level an event belongs to, relative to the cursor: the
     *  highest kLevelBits-sized digit where when and cursor differ
     *  (kLevels when the event is beyond the wheel horizon). */
    int levelFor(Tick when) const;

    /** Append node @p idx to its slot (or the overflow list). */
    void place(std::uint32_t idx);

    /** Pop the head of (level, slot); maintains the bitmap. */
    std::uint32_t popSlotHead(int level, int slot);

    /** Move every node of (level, slot), in list order, down to its
     *  new level relative to the advanced cursor. */
    void cascade(int level, int slot);

    /** Refill the wheels from the overflow list once they drain. */
    void rehomeOverflow();

    /** Earliest pending tick (no structural changes; queue must be
     *  non-empty). */
    Tick peekNext() const;

    /** Unlink and return the earliest node, advancing the cursor and
     *  cascading as needed (queue must be non-empty). */
    std::uint32_t popEarliest();

    /** First set bit >= @p from in a level's bitmap, or -1. */
    static int findSetFrom(const std::uint64_t *bm, int from);

    std::vector<Node> nodes_;
    std::uint32_t freeHead_ = kNil;
    Slot slots_[kLevels][kSlots];
    std::uint64_t bitmap_[kLevels][kBitmapWords] = {};
    /** Events beyond the wheel horizon, in scheduling order. */
    std::vector<std::uint32_t> overflow_;
    std::vector<std::uint32_t> overflowScratch_;

    /** Wheel anchor: placement levels are computed relative to this.
     *  Invariant between step() calls: cursor_ <= now_, and every
     *  queued node sits at levelFor(when) relative to cursor_. */
    Tick cursor_ = 0;
    Tick now_ = 0;
    std::size_t size_ = 0;
    std::uint64_t processed_ = 0;
    std::uint64_t runningTag_ = 0;

    ProgressHook hook_;
    std::uint64_t hookEvery_ = 0;
    std::uint64_t sinceHook_ = 0;
};

} // namespace shasta

#endif // SHASTA_SIM_EVENT_QUEUE_HH
