/**
 * @file
 * Global discrete-event queue driving the cluster simulation.
 *
 * Everything that happens "between" processor poll points — message
 * deliveries, processor resumptions after a quantum yield, timeouts in
 * tests — is an event.  Events at equal ticks fire in insertion order
 * so the simulation is deterministic.
 */

#ifndef SHASTA_SIM_EVENT_QUEUE_HH
#define SHASTA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/ticks.hh"

namespace shasta
{

/**
 * Deterministic priority queue of timed callbacks.
 *
 * Equal-time events fire in the order they were scheduled (FIFO
 * tie-break via a monotonically increasing sequence number).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;
    using ProgressHook = std::function<void()>;

    EventQueue() = default;

    /** Current simulated time; advances as events are processed. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to fire at absolute time @p when.
     *
     * Scheduling in the past is a programming error; it throws
     * std::logic_error naming both ticks (always on, even in
     * Release -- a past-time event would silently break simulated-
     * time monotonicity).
     */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to fire @p delay ticks from now. */
    void scheduleAfter(Tick delay, Callback cb);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Total number of events processed so far. */
    std::uint64_t processed() const { return processed_; }

    /**
     * Pop and run the earliest event.  @return false if queue empty.
     */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p limit.  Events at exactly @p limit still run.
     * @return true if the queue drained.
     */
    bool runUntil(Tick limit);

    /**
     * Install a hook that fires after every @p every_events processed
     * events (the audit subsystem's heartbeat).  The hook runs at top
     * level in step(), after the event's callback returns, so it may
     * throw: the exception propagates out of step()/run() rather than
     * through any coroutine frame.  Pass an empty hook to uninstall.
     */
    void setProgressHook(std::uint64_t every_events, ProgressHook hook);

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;

    ProgressHook hook_;
    std::uint64_t hookEvery_ = 0;
    std::uint64_t sinceHook_ = 0;
};

} // namespace shasta

#endif // SHASTA_SIM_EVENT_QUEUE_HH
