/**
 * @file
 * Fixed-capacity, non-allocating callable wrapper.
 *
 * std::function heap-allocates any callable larger than its small-
 * buffer (two pointers on libstdc++), which puts an allocation on
 * every protocol transaction that stores a continuation — release
 * fences, epoch waiters.  InplaceFn stores the callable inline in a
 * fixed buffer and refuses (at compile time) anything that does not
 * fit, so storing and invoking one never touches the heap.
 *
 * Move-only, like the coroutine handles it typically captures.
 */

#ifndef SHASTA_SIM_INPLACE_FN_HH
#define SHASTA_SIM_INPLACE_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace shasta
{

template <typename Sig, std::size_t Cap = 48>
class InplaceFn;

template <typename R, typename... Args, std::size_t Cap>
class InplaceFn<R(Args...), Cap>
{
  public:
    InplaceFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFn>>>
    InplaceFn(F f) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Cap,
                      "callable too large for InplaceFn buffer");
        static_assert(alignof(Fn) <= alignof(std::max_align_t));
        static_assert(
            std::is_nothrow_move_constructible_v<Fn>,
            "InplaceFn requires nothrow-movable callables");
        ::new (static_cast<void *>(buf_)) Fn(std::move(f));
        vt_ = &vtableFor<Fn>;
    }

    InplaceFn(InplaceFn &&o) noexcept
    {
        if (o.vt_) {
            o.vt_->relocate(o.buf_, buf_);
            vt_ = o.vt_;
            o.vt_ = nullptr;
        }
    }

    InplaceFn &
    operator=(InplaceFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            if (o.vt_) {
                o.vt_->relocate(o.buf_, buf_);
                vt_ = o.vt_;
                o.vt_ = nullptr;
            }
        }
        return *this;
    }

    InplaceFn(const InplaceFn &) = delete;
    InplaceFn &operator=(const InplaceFn &) = delete;

    ~InplaceFn() { reset(); }

    void
    reset()
    {
        if (vt_) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

    explicit operator bool() const { return vt_ != nullptr; }

    R
    operator()(Args... args)
    {
        return vt_->call(buf_, std::forward<Args>(args)...);
    }

  private:
    struct VTable
    {
        R (*call)(void *, Args &&...);
        /** Move-construct into @p dst, destroy the source. */
        void (*relocate)(void *src, void *dst);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr VTable vtableFor = {
        [](void *p, Args &&...args) -> R {
            return (*static_cast<Fn *>(p))(
                std::forward<Args>(args)...);
        },
        [](void *src, void *dst) {
            Fn *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    alignas(std::max_align_t) unsigned char buf_[Cap];
    const VTable *vt_ = nullptr;
};

} // namespace shasta

#endif // SHASTA_SIM_INPLACE_FN_HH
