/**
 * @file
 * Simulated time base for the SMP-Shasta cluster model.
 *
 * All simulated time is counted in processor cycles of the 300 MHz
 * Alpha 21164 used in the paper's prototype cluster (WRL 97/3,
 * Section 4.1).  One microsecond is therefore exactly 300 ticks,
 * which keeps every latency parameter in the paper integral.
 */

#ifndef SHASTA_SIM_TICKS_HH
#define SHASTA_SIM_TICKS_HH

#include <cstdint>

namespace shasta
{

/** Simulated time in 300 MHz processor cycles. */
using Tick = std::int64_t;

/** Clock frequency of the modeled processors, in Hz. */
constexpr double kClockHz = 300.0e6;

/** Ticks per microsecond (300 cycles at 300 MHz). */
constexpr Tick kTicksPerUs = 300;

/** Convert microseconds to ticks (rounding to nearest cycle). */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs) + 0.5);
}

/** Convert ticks to microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / kClockHz;
}

/** Convert seconds to ticks. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * kClockHz + 0.5);
}

} // namespace shasta

#endif // SHASTA_SIM_TICKS_HH
