#include "sim/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace shasta::env
{

namespace
{

[[noreturn]] void
die(const char *name, const char *value, const char *expected)
{
    std::fprintf(stderr, "shasta: invalid %s='%s' (expected %s)\n",
                 name, value, expected);
    std::exit(2);
}

} // namespace

long long
parseIntArg(const char *what, const char *value, long long lo,
            long long hi)
{
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE || v < lo ||
        v > hi) {
        char expected[96];
        std::snprintf(expected, sizeof expected,
                      "an integer in [%lld, %lld]", lo, hi);
        die(what, value, expected);
    }
    return v;
}

long long
envInt(const char *name, long long lo, long long hi, long long defv)
{
    const char *e = std::getenv(name);
    if (e == nullptr || *e == '\0')
        return defv;
    return parseIntArg(name, e, lo, hi);
}

std::uint64_t
envU64(const char *name, int base, std::uint64_t defv)
{
    const char *e = std::getenv(name);
    if (e == nullptr || *e == '\0')
        return defv;
    errno = 0;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(e, &end, base);
    // strtoull silently negates "-1"; a seed knob should reject it.
    if (end == e || *end != '\0' || errno == ERANGE || *e == '-')
        die(name, e, "an unsigned 64-bit integer");
    return v;
}

double
envDouble(const char *name, double lo, double hi, double defv)
{
    const char *e = std::getenv(name);
    if (e == nullptr || *e == '\0')
        return defv;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(e, &end);
    if (end == e || *end != '\0' || errno == ERANGE ||
        !std::isfinite(v) || v < lo || v > hi) {
        char expected[96];
        std::snprintf(expected, sizeof expected,
                      "a number in [%g, %g]", lo, hi);
        die(name, e, expected);
    }
    return v;
}

} // namespace shasta::env
