/**
 * @file
 * Adaptive per-region block granularity (the opt layer's `adaptive`
 * knob).
 *
 * The Table 2 experiments show the best coherence granularity is a
 * per-data-structure property: migratory or falsely-shared regions
 * want small blocks (less invalidation amplification), read-mostly
 * regions want large ones (fewer misses per byte).  The advisor
 * automates that choice with a two-pass protocol:
 *
 *  1. *Profile pass*: a default-constructed advisor is attached to a
 *     Runtime (Runtime::setGranularityAdvisor).  Every shared
 *     allocation registers its line extent, and the protocol's
 *     existing miss/downgrade slow paths attribute read misses, write
 *     misses, and downgrade operations to the covering region.
 *  2. finalize() converts the per-region profile into a block-size
 *     plan (see decide()).
 *  3. *Apply pass*: the same advisor is attached to a fresh Runtime
 *     running the same program.  Allocations replay in the same
 *     order, and adviseBlock() substitutes the planned block size for
 *     the application's hint.
 *
 * The advisor is always an explicit object threaded through AppParams
 * — never process-global state — so concurrently sweeping runs
 * (SweepRunner at --jobs=N) cannot observe each other and schedules
 * stay byte-identical across job counts.  With no advisor attached
 * (every normal run), the adaptive knob is a no-op.
 */

#ifndef SHASTA_MEM_GRANULARITY_ADVISOR_HH
#define SHASTA_MEM_GRANULARITY_ADVISOR_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/shared_heap.hh"

namespace shasta
{

class GranularityAdvisor
{
  public:
    /** Planned block size for read-mostly regions.  Matches the
     *  largest granularity the Table 2 sweep exercises. */
    static constexpr std::size_t kLargeBlock = 2048;

    bool applying() const { return applying_; }

    /**
     * Runtime::alloc consults the advisor before carving.  Profile
     * pass: records the hint and returns it unchanged.  Apply pass:
     * returns the planned size for this allocation index (the hint
     * when the knob is off or the replay ran past the profile).
     */
    std::size_t
    adviseBlock(bool adaptive_on, std::size_t bytes, std::size_t hint)
    {
        if (!applying_) {
            regions_.push_back(Region{0, 0, bytes, hint, 0, 0, 0, 0});
            return hint;
        }
        const std::size_t i = cursor_++;
        if (!adaptive_on || i >= regions_.size())
            return hint;
        return regions_[i].planned;
    }

    /** Profile pass: record the just-carved extent of the most recent
     *  adviseBlock() allocation.  Apply pass: no-op. */
    void
    noteAlloc(LineIdx first, std::uint32_t num_lines)
    {
        if (applying_ || regions_.empty())
            return;
        regions_.back().first = first;
        regions_.back().lines = num_lines;
    }

    /** @{ Miss/downgrade attribution hooks, called from the protocol
     *  slow paths of the profile run (noteDowngrade only for
     *  *invalidating* downgrades — exclusive-to-shared transitions
     *  are cold-read residue, not write sharing).  No-ops once
     *  applying. */
    void
    noteReadMiss(LineIdx line)
    {
        if (Region *r = regionOf(line))
            ++r->reads;
    }

    void
    noteWriteMiss(LineIdx line)
    {
        if (Region *r = regionOf(line))
            ++r->writes;
    }

    void
    noteDowngrade(LineIdx line)
    {
        if (Region *r = regionOf(line))
            ++r->downgrades;
    }
    /** @} */

    /**
     * Close the profile and compute the plan; subsequent runs with
     * this advisor attached replay it.  @p line_size is the heap's
     * line size (the "small" granularity).
     */
    void
    finalize(int line_size)
    {
        for (Region &r : regions_) {
            const Verdict v =
                decide(r, static_cast<std::size_t>(line_size));
            r.planned = v.block;
            shrunk_ += v.kind == Verdict::Shrink;
            grown_ += v.kind == Verdict::Grow;
        }
        applying_ = true;
        cursor_ = 0;
    }

    /** Rewind the apply cursor so one finalized advisor can drive
     *  several apply runs. */
    void rewind() { cursor_ = 0; }

    /** @{ Plan summary (reporting). */
    int regions() const { return static_cast<int>(regions_.size()); }
    int shrunk() const { return shrunk_; }
    int grown() const { return grown_; }
    /** @} */

  private:
    struct Region
    {
        LineIdx first;
        std::uint32_t lines;
        std::size_t bytes;
        std::size_t hint;
        std::uint64_t reads;
        std::uint64_t writes;
        std::uint64_t downgrades;
        std::size_t planned;
    };

    struct Verdict
    {
        enum Kind
        {
            Keep,
            Shrink,
            Grow
        };
        std::size_t block;
        Kind kind;
    };

    /**
     * Policy: write-shared regions (write misses and downgrades rival
     * the read misses) get single-line blocks, cutting false sharing
     * and invalidation amplification; read-mostly regions (reads
     * dwarf write activity) get large blocks, amortizing misses; the
     * quiet middle keeps the application's hint.  Thresholds keep
     * cold regions untouched.
     */
    static Verdict
    decide(const Region &r, std::size_t line_size)
    {
        const std::uint64_t write_activity = r.writes + r.downgrades;
        if (write_activity >= 16 && write_activity * 2 >= r.reads)
            return Verdict{line_size, Verdict::Shrink};
        if (r.reads >= 64 && write_activity * 8 <= r.reads) {
            return Verdict{std::max(r.hint, kLargeBlock),
                           Verdict::Grow};
        }
        return Verdict{r.hint, Verdict::Keep};
    }

    /** Region covering @p line (profile pass; nullptr once applying
     *  or for lines outside any recorded region). */
    Region *
    regionOf(LineIdx line)
    {
        if (applying_ || regions_.empty())
            return nullptr;
        // Regions are ascending (bump allocator): find the last one
        // starting at or before the line.
        auto it = std::upper_bound(
            regions_.begin(), regions_.end(), line,
            [](LineIdx l, const Region &r) { return l < r.first; });
        if (it == regions_.begin())
            return nullptr;
        --it;
        if (line >= it->first + it->lines)
            return nullptr;
        return &*it;
    }

    std::vector<Region> regions_;
    std::size_t cursor_ = 0;
    int shrunk_ = 0;
    int grown_ = 0;
    bool applying_ = false;
};

} // namespace shasta

#endif // SHASTA_MEM_GRANULARITY_ADVISOR_HH
