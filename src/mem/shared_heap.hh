/**
 * @file
 * Shared heap allocator with variable coherence granularity.
 *
 * Shasta divides the shared address space into fixed-size *lines*
 * (state-table granularity, typically 64 or 128 bytes) and groups
 * lines into *blocks*, the unit of fetching and coherence.  Uniquely,
 * the block size may differ across data structures: the application
 * passes a granularity hint to a modified malloc (Section 2.1 and the
 * Table 2 experiments).  By default, objects smaller than 1024 bytes
 * get a block equal to the (line-rounded) object size, larger objects
 * use single-line blocks (Section 4.3).
 */

#ifndef SHASTA_MEM_SHARED_HEAP_HH
#define SHASTA_MEM_SHARED_HEAP_HH

#include <cstdint>
#include <vector>

#include "mem/addr.hh"

namespace shasta
{

/** Index of a line within the shared heap. */
using LineIdx = std::uint32_t;

/** A block: a run of consecutive lines kept coherent as a unit. */
struct BlockInfo
{
    LineIdx firstLine;
    std::uint32_t numLines;
};

/**
 * Ownership annotation of a shared region (the opt layer's `elide`
 * knob).  Annotations are declarations by the application about who
 * touches a region; the check model uses them to charge zero cost
 * for accesses the annotation proves safe, and the audit subsystem
 * verifies every access against them so a wrong annotation is a loud
 * error, never silent corruption.
 */
enum class RegionAnnot : std::uint8_t
{
    None = 0,
    /** Touched (read or written) only by the owning processor.  The
     *  region must be homed on the owner's node; the owner's
     *  accesses then bypass the inline checks entirely. */
    Private,
    /** Written only by the owning processor; read by anyone.  The
     *  owner's store checks charge zero cost (modeling a dedicated
     *  always-cache-hit revocation flag); coherence traffic is
     *  unchanged. */
    SingleWriter,
    /** Never written after the annotation point (typically the
     *  post-initialization barrier).  Load checks charge zero cost
     *  everywhere; any later store is an annotation violation. */
    ReadOnlyAfterBarrier,
};

/** Human-readable annotation name (audit diagnostics and tests). */
constexpr const char *
regionAnnotName(RegionAnnot a)
{
    switch (a) {
      case RegionAnnot::None: return "none";
      case RegionAnnot::Private: return "private";
      case RegionAnnot::SingleWriter: return "single-writer";
      case RegionAnnot::ReadOnlyAfterBarrier:
        return "read-only-after-barrier";
    }
    return "?";
}

/**
 * Bump allocator over the shared region that records, for every
 * allocated line, which block it belongs to.
 */
class SharedHeap
{
  public:
    /** @param line_size line size in bytes (power of two, >= 16). */
    explicit SharedHeap(int line_size = 64);

    int lineSize() const { return lineSize_; }

    /**
     * Allocate @p bytes of shared memory.
     *
     * @param block_bytes coherence-granularity hint: 0 applies the
     *   default policy; otherwise it is rounded up to a whole number
     *   of lines and used as the block size for this object.
     * @return the (line-aligned) base address.
     */
    Addr alloc(std::size_t bytes, std::size_t block_bytes = 0);

    /** Line index containing @p a. */
    LineIdx
    lineOf(Addr a) const
    {
        return static_cast<LineIdx>((a - kSharedBase) >> lineBits_);
    }

    /** Base address of line @p line. */
    Addr
    lineAddr(LineIdx line) const
    {
        return kSharedBase +
               (static_cast<Addr>(line) << lineBits_);
    }

    /** Block containing @p line.  Unallocated lines are their own
     *  single-line block. */
    BlockInfo blockOf(LineIdx line) const;

    /** Base address of the block containing @p line. */
    Addr
    blockAddr(LineIdx line) const
    {
        return lineAddr(blockOf(line).firstLine);
    }

    /** Size in bytes of the block containing @p line. */
    std::size_t
    blockBytes(LineIdx line) const
    {
        return static_cast<std::size_t>(blockOf(line).numLines) *
               static_cast<std::size_t>(lineSize_);
    }

    /**
     * Annotate the allocated region [base, base+bytes) (the opt
     * layer's elide knob).  @p owner is required for Private and
     * SingleWriter.  Annotations are recorded unconditionally (they
     * are inert declarations); only the elide knob acts on them.
     */
    void annotate(Addr base, std::size_t bytes, RegionAnnot kind,
                  int owner = -1);

    /** Annotation covering @p line (None when unannotated). */
    RegionAnnot
    annotationOf(LineIdx line) const
    {
        return line < annots_.size()
                   ? static_cast<RegionAnnot>(annots_[line])
                   : RegionAnnot::None;
    }

    /** Owning processor of @p line's annotation (-1 if none). */
    int
    annotOwnerOf(LineIdx line) const
    {
        return line < annotOwners_.size() ? annotOwners_[line] : -1;
    }

    /** Whether any region has been annotated (fast gate for the
     *  audit verifier and the elision fast paths). */
    bool hasAnnotations() const { return hasAnnotations_; }

    /** Total lines spanned by allocations so far. */
    LineIdx linesInUse() const { return nextLine_; }

    /** Total bytes handed out (before line rounding). */
    std::size_t bytesAllocated() const { return bytesAllocated_; }

    /** First address past the current heap break. */
    Addr brk() const { return lineAddr(nextLine_); }

    /** Default block policy threshold (Section 4.3). */
    static constexpr std::size_t kSmallObjectLimit = 1024;

  private:
    int lineSize_;
    int lineBits_;
    LineIdx nextLine_ = 0;
    std::size_t bytesAllocated_ = 0;

    /** For each allocated line: first line of its block and length. */
    std::vector<BlockInfo> lineBlocks_;

    /** @{ Per-line ownership annotations (elide knob); sized lazily
     *  on the first annotate() call. */
    std::vector<std::uint8_t> annots_;
    std::vector<int> annotOwners_;
    bool hasAnnotations_ = false;
    /** @} */
};

} // namespace shasta

#endif // SHASTA_MEM_SHARED_HEAP_HH
