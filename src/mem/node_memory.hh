/**
 * @file
 * Per-node image of the shared heap.
 *
 * In SMP-Shasta all processors of a logical node share one copy of
 * application memory through the SMP's hardware cache coherence; each
 * node therefore holds its own image of the shared address space, with
 * copies of a block residing at the same virtual address on every
 * node (Section 2).  Pages are allocated lazily so a 256 MB address
 * space costs only what is touched.
 *
 * The invalid-flag optimization (Section 2.3) is implemented for
 * real: when a line is invalidated the protocol writes the flag value
 * into every longword of the line, and flag-checked loads compare the
 * loaded value against it.
 */

#ifndef SHASTA_MEM_NODE_MEMORY_HH
#define SHASTA_MEM_NODE_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "mem/addr.hh"

namespace shasta
{

/**
 * The "invalid flag" pattern stored in every longword (4 bytes) of an
 * invalidated line.  Application data can legitimately contain this
 * value; such "false misses" are detected by the slow path via the
 * state table and simply return the value.
 */
constexpr std::uint32_t kInvalidFlag = 0xF10AF10Au;

/** The flag pattern widened to a 64-bit load. */
constexpr std::uint64_t kInvalidFlag64 =
    (static_cast<std::uint64_t>(kInvalidFlag) << 32) | kInvalidFlag;

/**
 * Sparse byte image of the shared heap for one logical node.
 */
class NodeMemory
{
  public:
    NodeMemory();

    /** Typed read of @p T at @p addr (must lie within one page). */
    template <typename T>
    T
    read(Addr a) const
    {
        T v;
        std::memcpy(&v, peek(a, sizeof(T)), sizeof(T));
        return v;
    }

    /** Typed write of @p T at @p addr. */
    template <typename T>
    void
    write(Addr a, T v)
    {
        std::memcpy(poke(a, sizeof(T)), &v, sizeof(T));
    }

    /** Copy @p len bytes starting at @p a into @p out. */
    void copyOut(Addr a, std::size_t len,
                 std::vector<std::uint8_t> &out) const;

    /** Copy @p len bytes starting at @p a into the raw buffer
     *  @p out (which must hold at least @p len bytes). */
    void copyOut(Addr a, std::size_t len, std::uint8_t *out) const;

    /** Copy @p len bytes from @p src into memory at @p a. */
    void copyIn(Addr a, const std::uint8_t *src, std::size_t len);

    /**
     * Copy @p len bytes from @p src into memory at @p a, skipping any
     * byte whose bit is set in @p dirty (dirty bytes hold newer local
     * stores that must survive the reply merge, Section 2.1).
     */
    void mergeIn(Addr a, const std::uint8_t *src, std::size_t len,
                 const std::vector<bool> &dirty);

    /** Fill [a, a+len) with the invalid-flag longword pattern. */
    void fillInvalidFlag(Addr a, std::size_t len);

    /** True if the aligned longword containing @p a equals the flag. */
    bool longwordIsFlag(Addr a) const;

    /** Number of pages materialized so far. */
    std::size_t pagesAllocated() const { return pagesAllocated_; }

    /** Raw pointer to @p len bytes at @p a (must fit in one page). */
    const std::uint8_t *peek(Addr a, std::size_t len) const;

    /** Mutable raw pointer to @p len bytes at @p a. */
    std::uint8_t *poke(Addr a, std::size_t len);

  private:
    std::uint8_t *pagePtr(std::uint64_t page) const;

    mutable std::vector<std::unique_ptr<std::uint8_t[]>> pages_;
    mutable std::size_t pagesAllocated_ = 0;
};

} // namespace shasta

#endif // SHASTA_MEM_NODE_MEMORY_HH
