#include "mem/node_memory.hh"

#include <algorithm>
#include <cassert>

namespace shasta
{

namespace
{
constexpr std::uint64_t kNumPages =
    (kSharedLimit - kSharedBase) / kPageSize;
} // namespace

NodeMemory::NodeMemory() = default;

std::uint8_t *
NodeMemory::pagePtr(std::uint64_t page) const
{
    assert(page < kNumPages);
    // The page-pointer table itself grows lazily: sizing it for the
    // full address space up front costs a 256 KB zero-fill per node
    // at construction and a 256 KB walk at destruction, which
    // dominates short runs (many Runtimes per process).  Grow
    // geometrically so repeated ascending touches stay amortized.
    if (page >= pages_.size()) {
        std::size_t cap = pages_.capacity() ? pages_.capacity() : 64;
        while (cap < page + 1)
            cap *= 2;
        pages_.reserve(std::min<std::size_t>(cap, kNumPages));
        pages_.resize(static_cast<std::size_t>(page) + 1);
    }
    auto &slot = pages_[page];
    if (!slot) {
        slot = std::make_unique<std::uint8_t[]>(kPageSize);
        std::memset(slot.get(), 0, kPageSize);
        ++pagesAllocated_;
    }
    return slot.get();
}

const std::uint8_t *
NodeMemory::peek(Addr a, std::size_t len) const
{
    assert(isShared(a));
    const std::uint64_t off = a - kSharedBase;
    const std::uint64_t page = off / kPageSize;
    const std::uint64_t in_page = off % kPageSize;
    assert(in_page + len <= kPageSize && "access crosses a page");
    (void)len;
    return pagePtr(page) + in_page;
}

std::uint8_t *
NodeMemory::poke(Addr a, std::size_t len)
{
    return const_cast<std::uint8_t *>(peek(a, len));
}

void
NodeMemory::copyOut(Addr a, std::size_t len,
                    std::vector<std::uint8_t> &out) const
{
    out.resize(len);
    copyOut(a, len, out.data());
}

void
NodeMemory::copyOut(Addr a, std::size_t len, std::uint8_t *out) const
{
    std::size_t done = 0;
    while (done < len) {
        const Addr cur = a + done;
        const std::uint64_t in_page = (cur - kSharedBase) % kPageSize;
        const std::size_t chunk =
            std::min(len - done, static_cast<std::size_t>(
                                     kPageSize - in_page));
        std::memcpy(out + done, peek(cur, chunk), chunk);
        done += chunk;
    }
}

void
NodeMemory::copyIn(Addr a, const std::uint8_t *src, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const Addr cur = a + done;
        const std::uint64_t in_page = (cur - kSharedBase) % kPageSize;
        const std::size_t chunk =
            std::min(len - done, static_cast<std::size_t>(
                                     kPageSize - in_page));
        std::memcpy(poke(cur, chunk), src + done, chunk);
        done += chunk;
    }
}

void
NodeMemory::mergeIn(Addr a, const std::uint8_t *src, std::size_t len,
                    const std::vector<bool> &dirty)
{
    assert(dirty.size() >= len);
    for (std::size_t i = 0; i < len; ++i) {
        if (!dirty[i])
            poke(a + i, 1)[0] = src[i];
    }
}

void
NodeMemory::fillInvalidFlag(Addr a, std::size_t len)
{
    assert(a % 4 == 0 && len % 4 == 0 &&
           "lines are longword aligned");
    for (std::size_t i = 0; i < len; i += 4)
        write<std::uint32_t>(a + i, kInvalidFlag);
}

bool
NodeMemory::longwordIsFlag(Addr a) const
{
    const Addr aligned = a & ~Addr{3};
    return read<std::uint32_t>(aligned) == kInvalidFlag;
}

} // namespace shasta
