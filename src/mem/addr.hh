/**
 * @file
 * Simulated address space layout.
 *
 * Shasta divides each processor's virtual address space into private
 * and shared regions (Section 2 of the paper).  Only the shared region
 * is modeled here; private (stack/static) data never reaches the
 * protocol because the binary rewriter skips checks on it.
 */

#ifndef SHASTA_MEM_ADDR_HH
#define SHASTA_MEM_ADDR_HH

#include <cstdint>

namespace shasta
{

/** Simulated virtual address. */
using Addr = std::uint64_t;

/** Base of the shared heap; everything below is private. */
constexpr Addr kSharedBase = 0x1000'0000ULL;

/** One past the maximum shared address (256 MB shared heap). */
constexpr Addr kSharedLimit = kSharedBase + 0x1000'0000ULL;

/** Virtual page size used for home assignment (8 KB, as in Shasta). */
constexpr std::uint64_t kPageSize = 8192;

/** True if @p a lies in the shared region. */
constexpr bool
isShared(Addr a)
{
    return a >= kSharedBase && a < kSharedLimit;
}

/** Page number of a shared address (relative to the heap base). */
constexpr std::uint64_t
pageOf(Addr a)
{
    return (a - kSharedBase) / kPageSize;
}

} // namespace shasta

#endif // SHASTA_MEM_ADDR_HH
