#include "mem/shared_heap.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace shasta
{

SharedHeap::SharedHeap(int line_size) : lineSize_(line_size)
{
    assert(line_size >= 16 && line_size <= 4096);
    assert(std::has_single_bit(static_cast<unsigned>(line_size)));
    assert(static_cast<std::uint64_t>(line_size) <= kPageSize);
    lineBits_ = std::countr_zero(static_cast<unsigned>(line_size));
}

Addr
SharedHeap::alloc(std::size_t bytes, std::size_t block_bytes)
{
    assert(bytes > 0);
    const auto line_sz = static_cast<std::size_t>(lineSize_);

    // Resolve the block size.
    std::size_t block = block_bytes;
    if (block == 0) {
        // Default policy: small objects become one block; large
        // objects use single-line blocks.
        block = (bytes < kSmallObjectLimit) ? bytes : line_sz;
    }
    // Round block and allocation size up to whole lines.
    const auto block_lines = static_cast<std::uint32_t>(
        (block + line_sz - 1) / line_sz);
    const auto total_lines = static_cast<std::uint32_t>(
        (bytes + line_sz - 1) / line_sz);

    const Addr base = lineAddr(nextLine_);
    assert(base + bytes <= kSharedLimit && "shared heap exhausted");

    // Carve the allocation into blocks of block_lines (the tail block
    // may be shorter).
    std::uint32_t done = 0;
    while (done < total_lines) {
        const std::uint32_t n =
            std::min(block_lines, total_lines - done);
        const LineIdx first = nextLine_ + done;
        for (std::uint32_t i = 0; i < n; ++i)
            lineBlocks_.push_back(BlockInfo{first, n});
        done += n;
    }
    nextLine_ += total_lines;
    bytesAllocated_ += bytes;
    return base;
}

void
SharedHeap::annotate(Addr base, std::size_t bytes, RegionAnnot kind,
                     int owner)
{
    assert(bytes > 0);
    assert(kind != RegionAnnot::None);
    assert((kind == RegionAnnot::ReadOnlyAfterBarrier ||
            owner >= 0) &&
           "private/single-writer annotations need an owner");
    const LineIdx first = lineOf(base);
    const LineIdx last = lineOf(base + static_cast<Addr>(bytes) - 1);
    assert(last < nextLine_ && "annotating unallocated memory");
    if (annots_.size() < nextLine_) {
        annots_.resize(nextLine_, 0);
        annotOwners_.resize(nextLine_, -1);
    }
    for (LineIdx l = first; l <= last; ++l) {
        annots_[l] = static_cast<std::uint8_t>(kind);
        annotOwners_[l] = owner;
    }
    hasAnnotations_ = true;
}

BlockInfo
SharedHeap::blockOf(LineIdx line) const
{
    if (line < lineBlocks_.size())
        return lineBlocks_[line];
    return BlockInfo{line, 1};
}

} // namespace shasta
