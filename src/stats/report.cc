#include "stats/report.hh"

#include <algorithm>
#include <cmath>

namespace shasta::report
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::addRule()
{
    rows_.push_back({});
}

void
Table::print(std::FILE *out) const
{
    // Size to the widest row, not just the headers: a row may carry
    // more cells than the header line, and printCsv emits them, so
    // dropping them here would silently desynchronize the formats.
    std::size_t cols = headers_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());
    std::vector<std::size_t> width(cols, 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto rule = [&] {
        for (std::size_t c = 0; c < width.size(); ++c) {
            std::fputc('+', out);
            for (std::size_t i = 0; i < width[c] + 2; ++i)
                std::fputc('-', out);
        }
        std::fputs("+\n", out);
    };
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string &v =
                c < cells.size() ? cells[c] : std::string();
            std::fprintf(out, "| %-*s ",
                         static_cast<int>(width[c]), v.c_str());
        }
        std::fputs("|\n", out);
    };

    rule();
    line(headers_);
    rule();
    for (const auto &row : rows_) {
        if (row.empty())
            rule();
        else
            line(row);
    }
    rule();
}

void
Table::printCsv(std::FILE *out) const
{
    // RFC 4180: quote any cell containing a comma, quote, CR or LF,
    // and double embedded quotes.
    auto field = [&](const std::string &v) {
        if (v.find_first_of(",\"\r\n") == std::string::npos) {
            std::fputs(v.c_str(), out);
            return;
        }
        std::fputc('"', out);
        for (const char ch : v) {
            if (ch == '"')
                std::fputc('"', out);
            std::fputc(ch, out);
        }
        std::fputc('"', out);
    };
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                std::fputc(',', out);
            field(cells[c]);
        }
        std::fputc('\n', out);
    };
    line(headers_);
    for (const auto &row : rows_) {
        if (!row.empty())
            line(row);
    }
}

std::string
fmtSeconds(Tick t)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3fs", ticksToSeconds(t));
    return buf;
}

std::string
fmtPercent(double frac)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * frac);
    return buf;
}

std::string
fmtDouble(double v, int prec)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
fmtCount(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

namespace
{

void
emitSegments(const std::vector<std::pair<double, char>> &segs,
             double norm, int width, std::FILE *out)
{
    double total = 0;
    for (const auto &[v, g] : segs)
        total += v;
    int emitted = 0;
    for (const auto &[v, g] : segs) {
        const int chars = static_cast<int>(
            std::lround(v / norm * width));
        for (int i = 0; i < chars; ++i)
            std::fputc(g, out);
        emitted += chars;
    }
    (void)emitted;
    (void)total;
}

} // namespace

void
printBreakdownBar(const std::string &label, const TimeBreakdown &bd,
                  Tick norm, int width, std::FILE *out)
{
    std::fprintf(out, "  %-14s |", label.c_str());
    emitSegments({{static_cast<double>(bd.task()), 't'},
                  {static_cast<double>(bd.parts.read), 'r'},
                  {static_cast<double>(bd.parts.write), 'w'},
                  {static_cast<double>(bd.parts.sync), 's'},
                  {static_cast<double>(bd.parts.msg), 'm'},
                  {static_cast<double>(bd.parts.other), 'o'}},
                 static_cast<double>(norm), width, out);
    std::fprintf(out, "  %.0f%%\n",
                 100.0 * static_cast<double>(bd.total) /
                     static_cast<double>(norm));
}

void
printBarLegend(std::FILE *out)
{
    std::fputs("  legend: t=task r=read w=write s=sync m=message "
               "o=other (bar length = time, normalized)\n",
               out);
}

void
printSegmentBar(const std::string &label,
                const std::vector<std::pair<double, char>> &segs,
                double norm, int width, std::FILE *out)
{
    std::fprintf(out, "  %-14s |", label.c_str());
    emitSegments(segs, norm, width, out);
    double total = 0;
    for (const auto &[v, g] : segs)
        total += v;
    std::fprintf(out, "  %.0f%%\n", 100.0 * total / norm);
}

std::string
auditSummary(const AuditCounters &a)
{
    if (a.sweeps == 0 && a.watchdogChecks == 0)
        return {};
    std::string s = "audit: " + std::to_string(a.sweeps) +
                    " sweep(s), " + std::to_string(a.blocksChecked) +
                    " block(s), " + std::to_string(a.entriesChecked) +
                    " entr(ies), " + std::to_string(a.violations) +
                    " violation(s)";
    if (a.watchdogChecks > 0) {
        s += "; watchdog: " + std::to_string(a.watchdogChecks) +
             " check(s), " + std::to_string(a.stallsDetected) +
             " stall(s)";
    }
    return s;
}

} // namespace shasta::report
