/**
 * @file
 * Execution-time breakdown, mirroring Figure 4 of the paper.
 *
 * Task time is everything the processor does for the application,
 * including inline miss checks and the code to enter the protocol;
 * read/write time is stall time for misses satisfied through the
 * software protocol; synchronization time is stall for application
 * locks and barriers (including waiting for outstanding stores at
 * releases); message time is time spent handling messages when the
 * processor is not already stalled (handling while stalled is hidden
 * inside the stall categories); "other" covers non-blocking store
 * bookkeeping, private state table upgrades, and pending-downgrade
 * servicing.
 */

#ifndef SHASTA_STATS_BREAKDOWN_HH
#define SHASTA_STATS_BREAKDOWN_HH

#include <cassert>

#include "sim/ticks.hh"

namespace shasta
{

/** Stacked execution-time components for one processor. */
struct Breakdown
{
    Tick read = 0;
    Tick write = 0;
    Tick sync = 0;
    Tick msg = 0;
    Tick other = 0;

    /** Sum of the non-task components. */
    Tick
    nonTask() const
    {
        return read + write + sync + msg + other;
    }

    Breakdown &
    operator+=(const Breakdown &o)
    {
        read += o.read;
        write += o.write;
        sync += o.sync;
        msg += o.msg;
        other += o.other;
        return *this;
    }
};

/** A full per-run breakdown: total elapsed plus the components. */
struct TimeBreakdown
{
    Tick total = 0;
    Breakdown parts;

    /** Task time is derived so the components always sum to total.
     *  Component attribution can overshoot `total` by a few ticks
     *  (overlapping stalls round up independently), which would make
     *  the derived task time negative; clamp to zero, and treat a
     *  large overshoot as an accounting bug in debug builds. */
    Tick
    task() const
    {
        const Tick t = total - parts.nonTask();
        assert(t >= -kTicksPerUs &&
               "breakdown components exceed total by more than "
               "rounding slack");
        return t < 0 ? 0 : t;
    }
};

} // namespace shasta

#endif // SHASTA_STATS_BREAKDOWN_HH
