#include "stats/breakdown.hh"

// Breakdown is header-only; this translation unit compiles the header
// standalone.

namespace shasta
{
} // namespace shasta
