#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define SHASTA_LATENCY_STATS_MMAP 1
#endif

namespace shasta
{

#ifdef SHASTA_LATENCY_STATS_MMAP
namespace
{
/** Recycled LatencyStats mappings.  Workloads that construct many
 *  Runtimes in sequence (benchmarks, sweeps) reuse the same pages,
 *  so the steady state pays neither mmap traffic nor fresh page
 *  faults.  The cache is thread-local: the sweep runner constructs
 *  and destroys each Runtime entirely on one worker thread, so no
 *  locking is needed; mappings still cached when a thread exits are
 *  unmapped by the destructor. */
constexpr int kMaxFreeBlocks = 8;

struct BlockCache
{
    void *blocks[kMaxFreeBlocks];
    int num = 0;

    ~BlockCache()
    {
        while (num > 0)
            ::munmap(blocks[--num], sizeof(LatencyStats));
    }
};

BlockCache &
cache()
{
    thread_local BlockCache c;
    return c;
}
} // namespace
#endif

void *
LatencyStats::operator new(std::size_t n)
{
#ifdef SHASTA_LATENCY_STATS_MMAP
    BlockCache &c = cache();
    if (n == sizeof(LatencyStats) && c.num > 0)
        return c.blocks[--c.num];
    void *p = ::mmap(nullptr, n, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED)
        throw std::bad_alloc{};
    return p;
#else
    return ::operator new(n);
#endif
}

void
LatencyStats::operator delete(void *p, std::size_t n) noexcept
{
#ifdef SHASTA_LATENCY_STATS_MMAP
    if (p == nullptr)
        return;
    BlockCache &c = cache();
    if (n == sizeof(LatencyStats) && c.num < kMaxFreeBlocks) {
        c.blocks[c.num++] = p;
        return;
    }
    ::munmap(p, n);
#else
    ::operator delete(p, n);
#endif
}

Tick
Log2Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (target == 0)
        target = 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cum += buckets_[i];
        if (cum >= target) {
            const Tick ub =
                i == 0 ? 0 : (Tick{1} << i) - 1;
            return std::min(ub, max_);
        }
    }
    return max_;
}

const char *
latencyClassName(LatencyClass c)
{
    switch (c) {
      case LatencyClass::ReadMiss2Hop:
        return "readMiss2Hop";
      case LatencyClass::ReadMiss3Hop:
        return "readMiss3Hop";
      case LatencyClass::WriteMiss2Hop:
        return "writeMiss2Hop";
      case LatencyClass::WriteMiss3Hop:
        return "writeMiss3Hop";
      case LatencyClass::UpgradeMiss2Hop:
        return "upgradeMiss2Hop";
      case LatencyClass::UpgradeMiss3Hop:
        return "upgradeMiss3Hop";
      case LatencyClass::DowngradeService:
        return "downgradeService";
      case LatencyClass::LockWait:
        return "lockWait";
      case LatencyClass::BarrierWait:
        return "barrierWait";
      case LatencyClass::RetryDelay:
        return "retryDelay";
      case LatencyClass::NumClasses:
        break;
    }
    return "?";
}

} // namespace shasta
