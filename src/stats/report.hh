/**
 * @file
 * Text reporting helpers for the benchmark harness: fixed-width
 * tables and ASCII stacked bars matching the paper's figures.
 */

#ifndef SHASTA_STATS_REPORT_HH
#define SHASTA_STATS_REPORT_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "stats/breakdown.hh"
#include "stats/counters.hh"

namespace shasta::report
{

/** Simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal rule before the next row. */
    void addRule();

    void print(std::FILE *out = stdout) const;

    /** Comma-separated output for post-processing. */
    void printCsv(std::FILE *out = stdout) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** @{ Cell formatting. */
std::string fmtSeconds(Tick t);
std::string fmtPercent(double frac);
std::string fmtDouble(double v, int prec = 2);
std::string fmtCount(std::uint64_t v);
/** @} */

/**
 * Print one stacked horizontal bar of an execution-time breakdown,
 * normalized so that @p norm ticks correspond to @p width chars.
 * Legend: t = task, r = read, w = write, s = sync, m = message,
 * o = other.
 */
void printBreakdownBar(const std::string &label,
                       const TimeBreakdown &bd, Tick norm,
                       int width = 60, std::FILE *out = stdout);

/** Print the bar legend once. */
void printBarLegend(std::FILE *out = stdout);

/** One-line audit summary ("audit: N sweeps, M blocks, 0
 *  violations..."); empty string when no sweeps or checks ran. */
std::string auditSummary(const AuditCounters &a);

/**
 * Print a segmented percentage bar (for the miss / message count
 * figures): segments are (value, glyph) pairs, normalized so that
 * @p norm corresponds to @p width chars.
 */
void printSegmentBar(const std::string &label,
                     const std::vector<std::pair<double, char>> &segs,
                     double norm, int width = 60,
                     std::FILE *out = stdout);

} // namespace shasta::report

#endif // SHASTA_STATS_REPORT_HH
