/**
 * @file
 * Protocol event counters for the paper's Figures 6-8.
 */

#ifndef SHASTA_STATS_COUNTERS_HH
#define SHASTA_STATS_COUNTERS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/ticks.hh"
#include "stats/histogram.hh"

namespace shasta
{

/** Classification of a completed miss (Figure 6's six segments). */
enum class MissClass
{
    Read2Hop,
    Read3Hop,
    Write2Hop,
    Write3Hop,
    Upgrade2Hop,
    Upgrade3Hop,
    NumClasses
};

/** Protocol-level counters, aggregated over all processors. */
struct ProtoCounters
{
    /** Misses by class (request type x hops). */
    std::array<std::uint64_t,
               static_cast<std::size_t>(MissClass::NumClasses)>
        misses{};

    /** Downgrade operations by number of downgrade messages sent
     *  (index min(n, 3); Figure 8 plots 0..3). */
    std::array<std::uint64_t, 4> downgradeOps{};

    /** Misses on the private table satisfied from the node's shared
     *  state without any message (the clustering win). */
    std::uint64_t privateUpgrades = 0;

    /** Misses merged into an already-pending entry (no new request). */
    std::uint64_t mergedMisses = 0;

    /** Flag-checked loads whose data happened to equal the flag. */
    std::uint64_t falseMisses = 0;

    /** Batch checks that required the batch miss handler. */
    std::uint64_t batchMisses = 0;

    /** Write misses that stalled on the outstanding-store limit. */
    std::uint64_t writeThrottles = 0;

    /** Accesses serviced during a pending-downgrade window from the
     *  pre-downgrade state (Section 3.4.3). */
    std::uint64_t pendDownServices = 0;

    /** Remote requests that arrived during a downgrade and had to be
     *  queued. */
    std::uint64_t queuedDuringDowngrade = 0;

    /** @{ Read-miss latency accumulation (Section 4.4). */
    std::uint64_t readMissSamples = 0;
    Tick readMissLatency = 0;
    /** @} */

    /** @{ Protocol fast paths (the opt layer; zero and unreported
     *  unless the corresponding knob is on). */
    /** Read misses granted exclusive by the migratory detector. */
    std::uint64_t migGrants = 0;
    /** Downgrade messages suppressed on annotated regions. */
    std::uint64_t elideDowngradesSkipped = 0;
    /** @} */

    /** LatencyClass mirroring a completed miss's MissClass. */
    static LatencyClass
    latencyClassFor(MissClass c)
    {
        return static_cast<LatencyClass>(static_cast<int>(c));
    }

    void
    countMiss(MissClass c)
    {
        ++misses[static_cast<std::size_t>(c)];
    }

    std::uint64_t
    missCount(MissClass c) const
    {
        return misses[static_cast<std::size_t>(c)];
    }

    std::uint64_t
    totalMisses() const
    {
        std::uint64_t s = 0;
        for (auto m : misses)
            s += m;
        return s;
    }

    std::uint64_t
    totalDowngradeOps() const
    {
        std::uint64_t s = 0;
        for (auto d : downgradeOps)
            s += d;
        return s;
    }

    double
    avgReadMissUs() const
    {
        if (readMissSamples == 0)
            return 0.0;
        return ticksToUs(readMissLatency) /
               static_cast<double>(readMissSamples);
    }

    /** Merge another instance in (used to aggregate the per-node
     *  shards; every field is a sum, so merging is exact). */
    ProtoCounters &
    operator+=(const ProtoCounters &o)
    {
        for (std::size_t i = 0; i < misses.size(); ++i)
            misses[i] += o.misses[i];
        for (std::size_t i = 0; i < downgradeOps.size(); ++i)
            downgradeOps[i] += o.downgradeOps[i];
        privateUpgrades += o.privateUpgrades;
        mergedMisses += o.mergedMisses;
        falseMisses += o.falseMisses;
        batchMisses += o.batchMisses;
        writeThrottles += o.writeThrottles;
        pendDownServices += o.pendDownServices;
        queuedDuringDowngrade += o.queuedDuringDowngrade;
        readMissSamples += o.readMissSamples;
        readMissLatency += o.readMissLatency;
        migGrants += o.migGrants;
        elideDowngradesSkipped += o.elideDowngradesSkipped;
        return *this;
    }
};

/** Counters from the runtime audit subsystem (src/audit/). */
struct AuditCounters
{
    /** Invariant sweeps performed (periodic + barrier-triggered). */
    std::uint64_t sweeps = 0;
    /** Blocks examined across all sweeps. */
    std::uint64_t blocksChecked = 0;
    /** Miss entries examined across all sweeps. */
    std::uint64_t entriesChecked = 0;
    /** Invariant violations found (a clean run reports 0). */
    std::uint64_t violations = 0;
    /** Watchdog progress checks performed. */
    std::uint64_t watchdogChecks = 0;
    /** Stalls / livelocks detected (a clean run reports 0). */
    std::uint64_t stallsDetected = 0;
};

/**
 * Directory occupancy and shard-pressure counters, aggregated over
 * every home at export time (the sharded HomeDirectory keeps the
 * per-shard numbers; see proto/directory.hh).
 *
 * shardEntries[k] / shardPeakQueued[k] aggregate shard k across all
 * homes (sum and max respectively): a skewed distribution across k
 * means the shard hash is failing to spread the hot blocks.
 */
struct DirCounters
{
    /** Shards per home directory (the configured dirShards). */
    int shardsPerHome = 0;
    /** Directory entries materialized across all homes. */
    std::uint64_t entries = 0;
    /** Entries busy (transaction in flight) at export time. */
    std::uint64_t busy = 0;
    /** Requests parked on busy entries at export time. */
    std::uint64_t queued = 0;
    /** Requests ever parked behind a busy entry. */
    std::uint64_t queuedTotal = 0;
    /** Max simultaneous parked requests on any one shard. */
    std::uint64_t peakQueued = 0;
    /** entry() lookups across all homes. */
    std::uint64_t lookups = 0;
    /** Entries per shard index, summed over homes. */
    std::vector<std::uint64_t> shardEntries;
    /** Peak queue depth per shard index, max over homes. */
    std::vector<std::uint64_t> shardPeakQueued;

    bool any() const { return entries != 0 || lookups != 0; }
};

/** Per-access counters from the checking layer. */
struct CheckCounters
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t batchedAccesses = 0;
    std::uint64_t batchChecks = 0;
    std::uint64_t polls = 0;
    Tick checkCycles = 0; ///< total cycles spent in inline checks
    /** @{ Check elision (opt.elide): checks whose cost an ownership
     *  annotation reduced to zero, and the cycles they would have
     *  charged.  Zero unless the knob is on. */
    std::uint64_t elidedChecks = 0;
    Tick elidedCheckCycles = 0;
    /** @} */
};

} // namespace shasta

#endif // SHASTA_STATS_COUNTERS_HH
