#include "stats/counters.hh"

// Counters are header-only; this translation unit compiles the header
// standalone.

namespace shasta
{
} // namespace shasta
