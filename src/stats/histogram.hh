/**
 * @file
 * Fixed-bucket log2 latency histograms.
 *
 * Each bucket i holds samples whose value v satisfies
 * bit_width(v) == i, i.e. the half-open power-of-two range
 * [2^(i-1), 2^i).  The bucket upper bound is (2^i)-1 ticks, so a
 * percentile query answers "at most this many ticks", clamped to the
 * largest value actually observed.  Recording is an array increment
 * and two adds -- cheap enough to stay on even in benchmark runs --
 * and the storage is a fixed array, so the steady-state hot path
 * stays allocation-free.
 */

#ifndef SHASTA_STATS_HISTOGRAM_HH
#define SHASTA_STATS_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "sim/ticks.hh"

namespace shasta
{

/** Power-of-two bucketed histogram of Tick-valued samples. */
class Log2Histogram
{
  public:
    /** bit_width(Tick) tops out at 63 for positive ticks; 48 buckets
     *  cover ~15 simulated minutes, far beyond any run here. */
    static constexpr std::size_t kBuckets = 48;

    void
    record(Tick v)
    {
        if (v < 0)
            v = 0;
        const auto u = static_cast<std::uint64_t>(v);
        std::size_t i = static_cast<std::size_t>(std::bit_width(u));
        if (i >= kBuckets)
            i = kBuckets - 1;
        ++buckets_[i];
        ++count_;
        sum_ += u;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    Tick max() const { return max_; }
    std::uint64_t sum() const { return sum_; }

    double
    mean() const
    {
        if (count_ == 0)
            return 0.0;
        return static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /** Upper bound on the q-quantile (0 <= q <= 1): the smallest
     *  bucket boundary covering at least ceil(q * count) samples,
     *  clamped to the observed maximum.  Returns 0 when empty. */
    Tick percentile(double q) const;

    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_[i];
    }

    Log2Histogram &
    operator+=(const Log2Histogram &o)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            buckets_[i] += o.buckets_[i];
        count_ += o.count_;
        sum_ += o.sum_;
        if (o.max_ > max_)
            max_ = o.max_;
        return *this;
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    Tick max_ = 0;
};

/** Latency populations tracked by the observability layer.  The
 *  first six mirror MissClass one-to-one (same order). */
enum class LatencyClass
{
    ReadMiss2Hop,
    ReadMiss3Hop,
    WriteMiss2Hop,
    WriteMiss3Hop,
    UpgradeMiss2Hop,
    UpgradeMiss3Hop,
    DowngradeService,
    LockWait,
    BarrierWait,
    /** Sojourn of a retransmitted message (first send to the retry
     *  that fired), recorded by the reliability sublayer; empty (and
     *  omitted from reports) unless fault injection is active. */
    RetryDelay,
    NumClasses
};

/** Stable lower-camel name for JSON keys and reports. */
const char *latencyClassName(LatencyClass c);

/** One histogram per latency class.  Several KB of fixed storage, so
 *  it lives behind a pointer in ProtocolCore rather than inside
 *  ProtoCounters, which is snapshotted and reset by value; the
 *  RunSummary / AppResult snapshots copy it once per completed run. */
struct LatencyStats
{
    std::array<Log2Histogram,
               static_cast<std::size_t>(LatencyClass::NumClasses)>
        hist{};

    void
    record(LatencyClass c, Tick v)
    {
        hist[static_cast<std::size_t>(c)].record(v);
    }

    /** The histograms are a multi-KB cold block allocated while the
     *  simulator's data structures are being laid out.  Heap
     *  instances come from their own anonymous pages instead of the
     *  malloc arena, so every later allocation lands at the same
     *  address it would have without statistics and attaching them
     *  cannot shift the hot structures' cache layout. */
    static void *operator new(std::size_t n);
    static void operator delete(void *p, std::size_t n) noexcept;

    const Log2Histogram &
    of(LatencyClass c) const
    {
        return hist[static_cast<std::size_t>(c)];
    }

    /** Merge another instance in (used to aggregate the per-node
     *  shards; buckets are counts, so merging is exact). */
    LatencyStats &
    operator+=(const LatencyStats &o)
    {
        for (std::size_t i = 0; i < hist.size(); ++i)
            hist[i] += o.hist[i];
        return *this;
    }
};

} // namespace shasta

#endif // SHASTA_STATS_HISTOGRAM_HH
