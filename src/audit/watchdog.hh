/**
 * @file
 * No-progress watchdog for the simulation.
 *
 * A wedged protocol historically spun until the test timeout with no
 * diagnosis: the event queue keeps processing (pollers reschedule
 * themselves) so the deadlock check in Runtime::run never trips.  The
 * watchdog piggybacks on the event queue's progress hook and fails
 * fast in two situations while transactions are pending:
 *
 *  - *livelock*: simulated time stops advancing across several
 *    consecutive checks (events fire but only at one tick);
 *  - *stall*: the oldest pending transaction (miss entry, parked
 *    waiter, or queued directory request) has made no progress for
 *    longer than the configured stall limit.
 *
 * On detection it throws WatchdogError carrying the runtime's full
 * state dump (pending transactions, per-processor park states,
 * mailbox depths).
 */

#ifndef SHASTA_AUDIT_WATCHDOG_HH
#define SHASTA_AUDIT_WATCHDOG_HH

#include <functional>
#include <stdexcept>
#include <string>

#include "proto/protocol.hh"
#include "sim/event_queue.hh"
#include "stats/counters.hh"

namespace shasta
{

class Network;

/** Thrown when the watchdog detects a stall or livelock. */
class WatchdogError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

class Watchdog
{
  public:
    /** Produces the state dump attached to a failure. */
    using DumpFn = std::function<std::string()>;

    /** @p net, when given and running with fault injection active,
     *  lets the stall check tell a retry storm (reliability counters
     *  still moving -- tolerated, the backoff will get there) from a
     *  true stall (counters frozen -- fail as usual). */
    Watchdog(const EventQueue &events, const Protocol &proto,
             Tick stall_limit, DumpFn dump,
             const Network *net = nullptr);

    /**
     * One progress check (call from the event queue's progress hook).
     * Throws WatchdogError on a detected stall or livelock; cheap
     * no-op while nothing is pending.
     */
    void check();

    const AuditCounters &totals() const { return counters_; }

  private:
    /** Reference tick of the oldest pending work item; returns false
     *  if nothing carries a usable timestamp. */
    bool oldestPending(Tick &out, std::string &what) const;

    [[noreturn]] void fail(const std::string &msg);

    const EventQueue &events_;
    const Protocol &proto_;
    Tick stallLimit_;
    DumpFn dump_;
    const Network *net_;

    AuditCounters counters_;
    Tick lastNow_ = 0;
    int sameNowChecks_ = 0;
    /** Reliability progress stamp at the last over-limit check. */
    std::uint64_t lastRelStamp_ = 0;

    /** Consecutive same-tick checks (interval events apart each)
     *  before declaring a livelock. */
    static constexpr int kLivelockChecks = 4;
};

} // namespace shasta

#endif // SHASTA_AUDIT_WATCHDOG_HH
