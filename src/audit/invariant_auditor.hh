/**
 * @file
 * Runtime invariant auditor for the coherence engine.
 *
 * The protocol's correctness argument rests on a set of cross-
 * structure invariants (directory vs. state tables vs. miss tables
 * vs. epochs) that asserts only spot-check at individual transition
 * sites.  The auditor sweeps every structure between events — at
 * configurable event-count intervals and at every barrier episode —
 * and reports any state the protocol should never be able to reach.
 *
 * The sweep runs at a point where no handler is mid-flight, so
 * *transient* states (PendRead/PendEx/PendDown*, in-flight acks under
 * eager release consistency) are legal and the invariants are phrased
 * to accommodate them; see the individual checks in the .cc.
 */

#ifndef SHASTA_AUDIT_INVARIANT_AUDITOR_HH
#define SHASTA_AUDIT_INVARIANT_AUDITOR_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "dsm/proc.hh"
#include "proto/protocol.hh"
#include "stats/counters.hh"

namespace shasta
{

/** Thrown by the runtime when a sweep finds violations. */
class AuditError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Result of one invariant sweep. */
struct AuditReport
{
    /** Human-readable violation descriptions (capped; the full count
     *  is in the auditor's totals). */
    std::vector<std::string> violations;
    std::uint64_t blocksChecked = 0;
    std::uint64_t entriesChecked = 0;

    bool clean() const { return violations.empty(); }

    /** All violations joined, one per line. */
    std::string str() const;
};

/**
 * Read-only sweeper over the protocol's state.
 *
 * Uses only non-growing accessors (peekShared/peekPriv and the
 * directory's find/forEachEntry), so a sweep never mutates the
 * structures it audits.
 */
class InvariantAuditor
{
  public:
    InvariantAuditor(const Protocol &proto,
                     const std::vector<Proc> &procs);

    /** Run one full sweep; never throws, never mutates protocol
     *  state. */
    AuditReport sweep();

    /** Counters accumulated over all sweeps. */
    const AuditCounters &totals() const { return counters_; }

  private:
    void checkBlock(LineIdx first, std::uint32_t num_lines,
                    AuditReport &r);
    void checkEntries(NodeId n, AuditReport &r);
    void checkNodeAggregates(NodeId n, AuditReport &r);
    void violation(AuditReport &r, std::string msg);

    const Protocol &proto_;
    const std::vector<Proc> &procs_;
    AuditCounters counters_;
};

} // namespace shasta

#endif // SHASTA_AUDIT_INVARIANT_AUDITOR_HH
