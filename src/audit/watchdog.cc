#include "audit/watchdog.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "net/network.hh"

namespace shasta
{

Watchdog::Watchdog(const EventQueue &events, const Protocol &proto,
                   Tick stall_limit, DumpFn dump, const Network *net)
    : events_(events), proto_(proto), stallLimit_(stall_limit),
      dump_(std::move(dump)), net_(net)
{
}

void
Watchdog::fail(const std::string &msg)
{
    ++counters_.stallsDetected;
    std::string full = "watchdog: " + msg;
    if (dump_)
        full += "\n" + dump_();
    throw WatchdogError(full);
}

bool
Watchdog::oldestPending(Tick &out, std::string &what) const
{
    Tick oldest = std::numeric_limits<Tick>::max();
    std::string tag;
    auto consider = [&](Tick t, NodeId n, LineIdx first,
                        const char *kind) {
        if (t < oldest) {
            oldest = t;
            tag = std::string(kind) + " (node " + std::to_string(n) +
                  " block " + std::to_string(first) + ")";
        }
    };

    const Topology &topo = proto_.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        for (const auto &[first, e] : proto_.missTable(n).entries()) {
            if (e.readIssued || e.writeIssued || e.wantWrite)
                consider(e.issueTime, n, first, "pending request");
            if (e.downgradeActive())
                consider(e.downgradeStart, n, first,
                         "pending downgrade");
            for (const Waiter &w : e.loadWaiters)
                consider(w.stallStart, n, first, "parked load");
            for (const Waiter &w : e.retryWaiters)
                consider(w.stallStart, n, first, "parked retry");
            for (const Message &m : e.queuedRemote)
                consider(m.arriveTime, n, first,
                         "queued remote request");
        }
    }
    for (ProcId p = 0; p < topo.numProcs(); ++p) {
        proto_.directory(p).forEachEntry(
            [&](LineIdx first, const DirEntry &de) {
                for (const Message &m : de.waiting) {
                    consider(m.arriveTime, topo.nodeOf(p), first,
                             "request queued at busy directory "
                             "entry");
                }
            });
    }

    if (oldest == std::numeric_limits<Tick>::max())
        return false;
    out = oldest;
    what = std::move(tag);
    return true;
}

void
Watchdog::check()
{
    ++counters_.watchdogChecks;
    if (proto_.pendingTransactions() == 0) {
        sameNowChecks_ = 0;
        lastNow_ = events_.now();
        return;
    }

    // Livelock: events keep firing but simulated time is pinned.
    if (events_.now() == lastNow_) {
        if (++sameNowChecks_ >= kLivelockChecks) {
            fail("simulated time stuck at tick " +
                 std::to_string(events_.now()) + " across " +
                 std::to_string(sameNowChecks_) +
                 " progress checks with " +
                 std::to_string(proto_.pendingTransactions()) +
                 " pending transaction(s)");
        }
    } else {
        lastNow_ = events_.now();
        sameNowChecks_ = 0;
    }

    // Stall: the oldest pending work item is too old.
    Tick oldest = 0;
    std::string what;
    if (oldestPending(oldest, what) && events_.now() > oldest &&
        events_.now() - oldest > stallLimit_) {
        // Under fault injection a transaction can legitimately age
        // past the limit while its messages are being retransmitted.
        // As long as the reliability sublayer keeps doing *anything*
        // (its counters are monotone), this is a retry storm, not a
        // stall; only a frozen stamp across consecutive over-limit
        // checks fails.
        if (net_ != nullptr && net_->faultsActive()) {
            const std::uint64_t stamp = net_->relProgress();
            if (stamp != lastRelStamp_) {
                lastRelStamp_ = stamp;
                return;
            }
        }
        fail("no progress on " + what + " for " +
             std::to_string(events_.now() - oldest) +
             " ticks (limit " + std::to_string(stallLimit_) + ")");
    }
}

} // namespace shasta
