#include "audit/invariant_auditor.hh"

#include <utility>

namespace shasta
{
namespace
{

/** Cap on violation strings kept per sweep (counters track all). */
constexpr std::size_t kMaxReported = 64;

int
stableStrength(LState s)
{
    switch (s) {
      case LState::Exclusive: return 2;
      case LState::Shared: return 1;
      default: return 0;
    }
}

int
privStrength(PState s)
{
    switch (s) {
      case PState::Exclusive: return 2;
      case PState::Shared: return 1;
      default: return 0;
    }
}

std::string
blockTag(NodeId n, LineIdx first)
{
    return "node " + std::to_string(n) + " block " +
           std::to_string(first);
}

} // namespace

std::string
AuditReport::str() const
{
    std::string out;
    for (const auto &v : violations)
        out += "  " + v + "\n";
    return out;
}

InvariantAuditor::InvariantAuditor(const Protocol &proto,
                                   const std::vector<Proc> &procs)
    : proto_(proto), procs_(procs)
{
}

void
InvariantAuditor::violation(AuditReport &r, std::string msg)
{
    ++counters_.violations;
    if (r.violations.size() < kMaxReported)
        r.violations.push_back(std::move(msg));
}

AuditReport
InvariantAuditor::sweep()
{
    AuditReport r;
    ++counters_.sweeps;
    const SharedHeap &heap = proto_.heap();
    const LineIdx in_use = heap.linesInUse();
    for (LineIdx line = 0; line < in_use;) {
        const BlockInfo b = heap.blockOf(line);
        checkBlock(b.firstLine, b.numLines, r);
        ++r.blocksChecked;
        line = b.firstLine + b.numLines;
    }
    const int nodes = proto_.topology().numNodes();
    for (NodeId n = 0; n < nodes; ++n) {
        checkEntries(n, r);
        checkNodeAggregates(n, r);
    }
    counters_.blocksChecked += r.blocksChecked;
    counters_.entriesChecked += r.entriesChecked;
    return r;
}

void
InvariantAuditor::checkBlock(LineIdx first, std::uint32_t num_lines,
                             AuditReport &r)
{
    const Topology &topo = proto_.topology();
    const int nodes = topo.numNodes();
    int exclusive_ish = 0;
    bool quiescent = true;

    for (NodeId n = 0; n < nodes; ++n) {
        const NodeStateTable &tab = proto_.table(n);
        const LState s = tab.peekShared(first);
        for (std::uint32_t i = 1; i < num_lines; ++i) {
            if (tab.peekShared(first + i) != s) {
                violation(r, blockTag(n, first) +
                                 ": non-uniform shared state (" +
                                 std::string(lstateName(s)) +
                                 " vs " +
                                 std::string(lstateName(
                                     tab.peekShared(first + i))) +
                                 " at line " +
                                 std::to_string(first + i) + ")");
                break;
            }
        }

        const MissEntry *e = proto_.missTable(n).find(first);
        if (e || !isStable(s))
            quiescent = false;

        if (!isStable(s) && !e) {
            violation(r, blockTag(n, first) + ": transient state " +
                             std::string(lstateName(s)) +
                             " without a miss entry");
        }
        if (isPendingDowngrade(s) && e && !e->downgradeActive()) {
            violation(r, blockTag(n, first) +
                             ": pending-downgrade state with no "
                             "downgrades outstanding");
        }
        if (s == LState::PendRead && e && !e->readIssued) {
            violation(r, blockTag(n, first) +
                             ": PendRead without an issued read");
        }
        if (s == LState::PendEx && e && !e->wantWrite) {
            violation(r, blockTag(n, first) +
                             ": PendEx without a pending write");
        }

        // Private states may never be stronger than what the node
        // holds.  During transients the node effectively holds the
        // pre-transient state recorded in the miss entry.
        const int allowed =
            isStable(s)
                ? stableStrength(s)
                : stableStrength(e ? e->prior : LState::Invalid);
        for (int l = 0; l < tab.procsOnNode(); ++l) {
            const PState ps = tab.peekPriv(first, l);
            if (privStrength(ps) > allowed) {
                violation(r, blockTag(n, first) + " local " +
                                 std::to_string(l) +
                                 ": private state " +
                                 std::string(pstateName(ps)) +
                                 " stronger than node state " +
                                 std::string(lstateName(s)));
            }
        }

        if (tab.peekDeferredFill(first) && !tab.peekMarked(first)) {
            violation(r, blockTag(n, first) +
                             ": deferred flag fill on an unmarked "
                             "block");
        }

        if (s == LState::Exclusive ||
            (isPendingDowngrade(s) && e &&
             e->prior == LState::Exclusive)) {
            ++exclusive_ish;
        }
    }

    if (exclusive_ish > 1) {
        violation(r, "block " + std::to_string(first) + ": " +
                         std::to_string(exclusive_ish) +
                         " nodes hold (or are downgrading from) an "
                         "exclusive copy");
    }

    // Directory cross-checks apply only to quiescent blocks: with a
    // transaction in flight, sharer bits legitimately run ahead of
    // the node states (eager release consistency).
    const ProcId home = proto_.homeProc(first);
    const HomeDirectory &dir = proto_.directory(home);
    const DirEntry *de = dir.find(first);
    if (de && (de->busy || !de->waiting.empty()))
        quiescent = false;
    if (!quiescent)
        return;

    const NodeId home_node = topo.nodeOf(home);
    if (!de) {
        // Never requested: only the home node can hold the data.
        for (NodeId n = 0; n < nodes; ++n) {
            const LState s = proto_.table(n).peekShared(first);
            if (n != home_node && s != LState::Invalid) {
                violation(r, blockTag(n, first) + ": state " +
                                 std::string(lstateName(s)) +
                                 " but the home directory has no "
                                 "entry");
            }
        }
        return;
    }

    std::vector<bool> node_shares(static_cast<std::size_t>(nodes),
                                  false);
    for (ProcId q : de->sharerList())
        node_shares[static_cast<std::size_t>(topo.nodeOf(q))] = true;
    for (NodeId n = 0; n < nodes; ++n) {
        const LState s = proto_.table(n).peekShared(first);
        const bool shares = node_shares[static_cast<std::size_t>(n)];
        if (readableState(s) != shares) {
            violation(r, blockTag(n, first) + ": node state " +
                             std::string(lstateName(s)) +
                             (shares ? " but the directory lists a "
                                       "sharer on the node"
                                     : " but the directory lists no "
                                       "sharer on the node"));
        }
        if (s == LState::Exclusive) {
            if (de->owner < 0 || topo.nodeOf(de->owner) != n) {
                violation(r, blockTag(n, first) +
                                 ": exclusive but directory owner "
                                 "is proc " +
                                 std::to_string(de->owner));
            }
            for (ProcId q : de->sharerList()) {
                if (topo.nodeOf(q) != n) {
                    violation(r, blockTag(n, first) +
                                     ": exclusive but proc " +
                                     std::to_string(q) +
                                     " on another node is a sharer");
                }
            }
        }
    }
}

void
InvariantAuditor::checkEntries(NodeId n, AuditReport &r)
{
    const NodeStateTable &tab = proto_.table(n);
    for (const auto &[first, e] : proto_.missTable(n).entries()) {
        ++r.entriesChecked;
        const LState s = tab.peekShared(first);
        const bool live = e.readIssued || e.wantWrite ||
                          e.downgradeActive() ||
                          !e.loadWaiters.empty() ||
                          !e.retryWaiters.empty() ||
                          !e.queuedRemote.empty();
        if (!live) {
            violation(r, blockTag(n, first) +
                             ": zombie miss entry (no request, "
                             "downgrade, waiter, or queued message)");
        }
        if (e.dirtyAny && !e.wantWrite) {
            violation(r, blockTag(n, first) +
                             ": dirty mask without a pending write");
        }
        if (e.acksExpected >= 0 && e.acksReceived > e.acksExpected) {
            violation(r, blockTag(n, first) + ": " +
                             std::to_string(e.acksReceived) +
                             " acks received, only " +
                             std::to_string(e.acksExpected) +
                             " expected");
        }
        if (e.readIssued && s != LState::PendRead) {
            violation(r, blockTag(n, first) +
                             ": read issued but node state is " +
                             std::string(lstateName(s)));
        }
        if (e.writeIssued && !e.dataArrived && s != LState::PendEx) {
            violation(r, blockTag(n, first) +
                             ": write issued (no data yet) but node "
                             "state is " +
                             std::string(lstateName(s)));
        }
        if (e.downgradeActive() && !e.savedAction) {
            violation(r, blockTag(n, first) +
                             ": active downgrade without a saved "
                             "action");
        }
    }
}

void
InvariantAuditor::checkNodeAggregates(NodeId n, AuditReport &r)
{
    const MissTable &mt = proto_.missTable(n);
    int want_writes = 0;
    for (const auto &[first, e] : mt.entries()) {
        if (e.wantWrite)
            ++want_writes;
    }
    if (proto_.epochs(n).outstanding() != want_writes) {
        violation(r, "node " + std::to_string(n) + ": epoch tracker "
                         "reports " +
                         std::to_string(proto_.epochs(n).outstanding()) +
                         " outstanding writes, miss table holds " +
                         std::to_string(want_writes));
    }

    for (const Proc &p : procs_) {
        if (p.node != n)
            continue;
        int mine = 0;
        for (const auto &[first, e] : mt.entries()) {
            if (e.wantWrite && e.writeInitiator == p.id)
                ++mine;
        }
        if (p.outstandingWrites != mine) {
            violation(r, "proc " + std::to_string(p.id) +
                             ": outstandingWrites=" +
                             std::to_string(p.outstandingWrites) +
                             " but the miss table holds " +
                             std::to_string(mine) +
                             " of its write transactions");
        }
    }

    const NodeStateTable &tab = proto_.table(n);
    int marked = 0;
    for (LineIdx l = 0; l < tab.knownLines(); ++l) {
        if (tab.peekMarked(l))
            ++marked;
    }
    if (marked != tab.markedCount()) {
        violation(r, "node " + std::to_string(n) +
                         ": markedCount=" +
                         std::to_string(tab.markedCount()) + " but " +
                         std::to_string(marked) +
                         " lines carry marks");
    }
}

} // namespace shasta
