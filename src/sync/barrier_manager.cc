#include "sync/barrier_manager.hh"

#include <algorithm>
#include <cassert>

#include "obs/trace_json.hh"
#include "proto/protocol.hh"

namespace shasta
{

BarrierManager::BarrierManager(const DsmConfig &cfg,
                               EventQueue &events, Protocol &proto,
                               std::vector<Proc> &procs)
    : cfg_(cfg),
      events_(events),
      proto_(proto),
      procs_(procs),
      expected_(cfg.numProcs)
{
    parked_.resize(procs_.size());
}

bool
BarrierManager::arrive(Proc &p)
{
    if (hardware()) {
        if (++arrived_ < expected_)
            return false; // caller parks
        // Last arriver: release everyone.
        arrived_ = 0;
        ++episodes_;
        if (episodeHook_)
            episodeHook_();
        const Tick release = p.now + cfg_.costs.hwBarrier;
        for (ProcId q = 0; q < cfg_.numProcs; ++q) {
            if (q != p.id)
                resumeParked(q, release);
        }
        if (proto_.measuring())
            p.bd.sync += release - p.now;
        p.now = release;
        return true;
    }

    Message m;
    m.type = MsgType::BarrierArrive;
    m.dst = 0;
    m.requester = p.id;
    proto_.sendRaw(p, std::move(m));

    ParkedProc &pk = parked_[static_cast<std::size_t>(p.id)];
    if (pk.pendingRelease) {
        // Release arrived synchronously (single processor, or this
        // processor was the last arriver and is also the manager).
        pk.pendingRelease = false;
        p.now = std::max(p.now, pk.releaseTime);
        return true;
    }
    return false;
}

void
BarrierManager::park(Proc &p, std::coroutine_handle<> h)
{
    ParkedProc &pk = parked_[static_cast<std::size_t>(p.id)];
    assert(!pk.handle && !pk.pendingRelease);
    pk.handle = h;
    pk.stallStart = p.now;
    if (obs::traceJsonEnabled()) {
        obs::emitAsyncBegin(
            obs::spanId(obs::SpanKind::Barrier, 0,
                        static_cast<std::uint64_t>(p.id)),
            p.id, p.now, "barrier-wait", "sync");
    }
    proto_.noteBlocked(p);
}

void
BarrierManager::resumeParked(ProcId who, Tick when)
{
    events_.schedule(std::max(when, events_.now()),
                     [this, who, when] {
                         ParkedProc &pk =
                             parked_[static_cast<std::size_t>(who)];
                         assert(pk.handle);
                         Proc &wp =
                             procs_[static_cast<std::size_t>(who)];
                         wp.now = std::max(wp.now, when);
                         if (proto_.measuring()) {
                             wp.bd.sync += wp.now - pk.stallStart;
                             proto_.recordLatency(
                                 wp.node, LatencyClass::BarrierWait,
                                 wp.now - pk.stallStart);
                         }
                         if (obs::traceJsonEnabled()) {
                             obs::emitAsyncEnd(
                                 obs::spanId(
                                     obs::SpanKind::Barrier, 0,
                                     static_cast<std::uint64_t>(who)),
                                 who, wp.now, "barrier-wait", "sync");
                         }
                         auto h = pk.handle;
                         pk.handle = nullptr;
                         wp.status = ProcStatus::Running;
                         h.resume();
                     });
}

void
BarrierManager::handle(Proc &p, Message &&m)
{
    Tick recv = 0;
    if (m.src != p.id) {
        recv = proto_.topology().sameMachine(m.src, p.id)
                   ? cfg_.costs.recvLocal
                   : cfg_.costs.recvRemote;
    }
    p.now += recv + cfg_.costs.barrierHandler;

    switch (m.type) {
      case MsgType::BarrierArrive:
        assert(p.id == 0 && "barrier manager lives on processor 0");
        if (++arrived_ == expected_) {
            arrived_ = 0;
            ++episodes_;
            if (episodeHook_)
                episodeHook_();
            for (ProcId q = 0; q < cfg_.numProcs; ++q) {
                Message rel;
                rel.type = MsgType::BarrierRelease;
                rel.dst = q;
                rel.requester = q;
                proto_.sendRaw(p, std::move(rel));
            }
        }
        return;

      case MsgType::BarrierRelease: {
        ParkedProc &pk = parked_[static_cast<std::size_t>(p.id)];
        if (pk.handle) {
            if (proto_.measuring()) {
                p.bd.sync += p.now - pk.stallStart;
                proto_.recordLatency(p.node, LatencyClass::BarrierWait,
                                     p.now - pk.stallStart);
            }
            if (obs::traceJsonEnabled()) {
                obs::emitAsyncEnd(
                    obs::spanId(obs::SpanKind::Barrier, 0,
                                static_cast<std::uint64_t>(p.id)),
                    p.id, p.now, "barrier-wait", "sync");
            }
            auto h = pk.handle;
            pk.handle = nullptr;
            p.status = ProcStatus::Running;
            h.resume();
        } else {
            pk.pendingRelease = true;
            pk.releaseTime = p.now;
        }
        return;
      }

      default:
        assert(false && "not a barrier message");
    }
}

} // namespace shasta
