/**
 * @file
 * Application-level locks.
 *
 * Shasta implements application locks with explicit messages to a
 * manager (home) processor per lock; the paper notes the SMP-Shasta
 * primitives are deliberately *not* SMP-optimized (Section 4.3), so
 * both protocols use the same message-based queue lock here.  In
 * Hardware (ANL) mode the lock is a hardware spinlock modeled with
 * small fixed costs and a handoff latency.
 */

#ifndef SHASTA_SYNC_LOCK_MANAGER_HH
#define SHASTA_SYNC_LOCK_MANAGER_HH

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "dsm/config.hh"
#include "dsm/proc.hh"
#include "net/message.hh"
#include "sim/event_queue.hh"
#include "sync/sync_api.hh"

namespace shasta
{

class Protocol;

/**
 * Central manager for all application locks in a run (the
 * simulator's LockApi).
 */
class LockManager : public LockApi
{
  public:
    LockManager(const DsmConfig &cfg, EventQueue &events,
                Protocol &proto, std::vector<Proc> &procs);

    /** Create a new lock; returns its id. */
    int allocLock() override;

    /** Number of locks allocated. */
    int numLocks() const { return static_cast<int>(locks_.size()); }

    /**
     * Try to acquire @p id for processor @p p.
     * @return true if acquired synchronously; false if the caller
     *   must park via park().
     */
    bool tryAcquire(Proc &p, int id) override;

    /** Park @p h until the lock is granted. */
    void park(Proc &p, int id, std::coroutine_handle<> h) override;

    /** Release @p id (release-consistency fence already done). */
    void release(Proc &p, int id) override;

    /** Handle a lock protocol message (wired via Protocol). */
    void handle(Proc &p, Message &&m);

    /** Total acquires observed (statistic). */
    std::uint64_t
    acquires() const
    {
        return acquires_.load(std::memory_order_relaxed);
    }

    /** Acquires that found the lock contended. */
    std::uint64_t
    contended() const
    {
        return contended_.load(std::memory_order_relaxed);
    }

  private:
    struct LockState
    {
        bool held = false;
        ProcId holder = -1;
        std::deque<ProcId> queue;
    };

    struct ParkedProc
    {
        std::coroutine_handle<> handle;
        Tick stallStart = 0;
        bool pendingGrant = false;
        Tick grantTime = 0;
    };

    ProcId homeOf(int id) const;
    void grant(Proc &granter, int id, ProcId to);
    void resumeGranted(ProcId to, Tick when);
    bool hardware() const { return !cfg_.protocolActive(); }

    const DsmConfig &cfg_;
    EventQueue &events_;
    Protocol &proto_;
    std::vector<Proc> &procs_;

    std::vector<LockState> locks_;
    std::vector<ParkedProc> parked_;

    /** Atomic: under the parallel engine the client-side increment
     *  (tryAcquire, requester's worker) and the contended count (home
     *  handler, manager's worker) can land on different threads.
     *  Sums are order-independent, so stats stay byte-identical. */
    std::atomic<std::uint64_t> acquires_{0};
    std::atomic<std::uint64_t> contended_{0};
};

} // namespace shasta

#endif // SHASTA_SYNC_LOCK_MANAGER_HH
