/**
 * @file
 * Backend-neutral synchronization interfaces.
 *
 * The blocking awaitables in dsm/context call locks and barriers
 * through these two interfaces only, so the execution backend picks
 * the implementation: the simulator uses the message-based
 * LockManager/BarrierManager (sync/), the thread backend uses the
 * std::atomic/mutex-based ThreadLockManager/ThreadBarrierManager
 * (exec/thread_sync.hh).  The contract mirrors the coroutine shape
 * of the call sites:
 *
 *  - tryAcquire()/arrive() return true when the caller may continue
 *    synchronously; false means the caller suspends and then calls
 *    park() with its continuation handle;
 *  - park() stores the handle; the implementation resumes it on the
 *    thread owning the parked processor, with the processor's clock
 *    and stall accounting already settled.
 */

#ifndef SHASTA_SYNC_SYNC_API_HH
#define SHASTA_SYNC_SYNC_API_HH

#include <coroutine>

#include "dsm/proc.hh"

namespace shasta
{

class LockApi
{
  public:
    virtual ~LockApi() = default;

    /** Create a new lock; returns its id. */
    virtual int allocLock() = 0;

    /** Try to acquire @p id for @p p; false means park(). */
    virtual bool tryAcquire(Proc &p, int id) = 0;

    /** Park @p h until the lock is granted to @p p. */
    virtual void park(Proc &p, int id, std::coroutine_handle<> h) = 0;

    /** Release @p id (release-consistency fence already done). */
    virtual void release(Proc &p, int id) = 0;
};

class BarrierApi
{
  public:
    virtual ~BarrierApi() = default;

    /** Arrive at the barrier; false means park(). */
    virtual bool arrive(Proc &p) = 0;

    /** Park @p h until the episode releases. */
    virtual void park(Proc &p, std::coroutine_handle<> h) = 0;
};

} // namespace shasta

#endif // SHASTA_SYNC_SYNC_API_HH
