/**
 * @file
 * Global application barrier.
 *
 * Software mode: a centralized, message-based barrier managed at
 * processor 0 (arrivals counted there; a release message is sent to
 * every processor), matching the unoptimized primitives the paper
 * describes.  Hardware (ANL) mode: a shared-memory barrier with a
 * fixed release cost.
 */

#ifndef SHASTA_SYNC_BARRIER_MANAGER_HH
#define SHASTA_SYNC_BARRIER_MANAGER_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "dsm/config.hh"
#include "dsm/proc.hh"
#include "net/message.hh"
#include "sim/event_queue.hh"
#include "sync/sync_api.hh"

namespace shasta
{

class Protocol;

/**
 * Central manager for the global barrier (the simulator's
 * BarrierApi).
 */
class BarrierManager : public BarrierApi
{
  public:
    BarrierManager(const DsmConfig &cfg, EventQueue &events,
                   Protocol &proto, std::vector<Proc> &procs);

    /**
     * Arrive at the barrier.
     * @return true if the processor may continue without parking.
     */
    bool arrive(Proc &p) override;

    /** Park until released. */
    void park(Proc &p, std::coroutine_handle<> h) override;

    /** Handle a barrier protocol message (wired via Protocol). */
    void handle(Proc &p, Message &&m);

    /** Barrier episodes completed. */
    std::uint64_t episodes() const { return episodes_; }

    /**
     * Install a hook invoked once per completed barrier episode (the
     * audit subsystem sweeps at barriers).  The hook may run inside a
     * coroutine frame, so it must not throw directly — defer any
     * throwing work via the event queue.
     */
    void setEpisodeHook(std::function<void()> hook)
    {
        episodeHook_ = std::move(hook);
    }

  private:
    struct ParkedProc
    {
        std::coroutine_handle<> handle;
        Tick stallStart = 0;
        bool pendingRelease = false;
        Tick releaseTime = 0;
    };

    void resumeParked(ProcId who, Tick when);
    bool hardware() const { return !cfg_.protocolActive(); }

    const DsmConfig &cfg_;
    EventQueue &events_;
    Protocol &proto_;
    std::vector<Proc> &procs_;

    int expected_;
    int arrived_ = 0;
    std::uint64_t episodes_ = 0;
    std::function<void()> episodeHook_;
    std::vector<ParkedProc> parked_;
};

} // namespace shasta

#endif // SHASTA_SYNC_BARRIER_MANAGER_HH
