#include "sync/lock_manager.hh"

#include <algorithm>
#include <cassert>

#include "obs/trace_json.hh"
#include "proto/protocol.hh"
#include "sim/trace.hh"

namespace shasta
{

LockManager::LockManager(const DsmConfig &cfg, EventQueue &events,
                         Protocol &proto, std::vector<Proc> &procs)
    : cfg_(cfg), events_(events), proto_(proto), procs_(procs)
{
    parked_.resize(procs_.size());
}

int
LockManager::allocLock()
{
    locks_.emplace_back();
    parked_.resize(procs_.size());
    return static_cast<int>(locks_.size()) - 1;
}

ProcId
LockManager::homeOf(int id) const
{
    return id % cfg_.numProcs;
}

bool
LockManager::tryAcquire(Proc &p, int id)
{
    assert(id >= 0 && id < numLocks());
    ++acquires_;

    if (hardware()) {
        LockState &l = locks_[static_cast<std::size_t>(id)];
        if (!l.held) {
            l.held = true;
            l.holder = p.id;
            p.now += cfg_.costs.hwLockAcquire;
            return true;
        }
        ++contended_;
        l.queue.push_back(p.id);
        return false;
    }

    Message m;
    m.type = MsgType::LockReq;
    m.dst = homeOf(id);
    m.addr = static_cast<Addr>(id);
    m.requester = p.id;
    proto_.sendRaw(p, std::move(m));

    ParkedProc &pk = parked_[static_cast<std::size_t>(p.id)];
    if (pk.pendingGrant) {
        // The grant arrived synchronously (this processor is the
        // lock's home and the lock was free).
        pk.pendingGrant = false;
        p.now = std::max(p.now, pk.grantTime);
        return true;
    }
    return false;
}

void
LockManager::park(Proc &p, int id, std::coroutine_handle<> h)
{
    (void)id;
    ParkedProc &pk = parked_[static_cast<std::size_t>(p.id)];
    assert(!pk.handle && !pk.pendingGrant);
    pk.handle = h;
    pk.stallStart = p.now;
    if (obs::traceJsonEnabled()) {
        obs::emitAsyncBegin(
            obs::spanId(obs::SpanKind::Lock, 0,
                        static_cast<std::uint64_t>(p.id)),
            p.id, p.now, "lock-wait", "sync");
    }
    proto_.noteBlocked(p);
}

void
LockManager::release(Proc &p, int id)
{
    assert(id >= 0 && id < numLocks());
    LockState &l = locks_[static_cast<std::size_t>(id)];

    if (hardware()) {
        assert(l.held && l.holder == p.id);
        p.now += cfg_.costs.hwLockAcquire;
        if (!l.queue.empty()) {
            const ProcId next = l.queue.front();
            l.queue.pop_front();
            l.holder = next;
            resumeGranted(next, p.now + cfg_.costs.hwLockHandoff);
        } else {
            l.held = false;
            l.holder = -1;
        }
        return;
    }

    Message m;
    m.type = MsgType::LockRelease;
    m.dst = homeOf(id);
    m.addr = static_cast<Addr>(id);
    m.requester = p.id;
    proto_.sendRaw(p, std::move(m));
}

void
LockManager::grant(Proc &granter, int id, ProcId to)
{
    Message m;
    m.type = MsgType::LockGrant;
    m.dst = to;
    m.addr = static_cast<Addr>(id);
    m.requester = to;
    proto_.sendRaw(granter, std::move(m));
}

void
LockManager::resumeGranted(ProcId to, Tick when)
{
    // Hardware handoff: the waiter resumes at the grant time.
    events_.schedule(when, [this, to, when] {
        ParkedProc &pk = parked_[static_cast<std::size_t>(to)];
        assert(pk.handle);
        Proc &wp = procs_[static_cast<std::size_t>(to)];
        wp.now = std::max(wp.now, when);
        if (proto_.measuring()) {
            wp.bd.sync += wp.now - pk.stallStart;
            proto_.recordLatency(wp.node, LatencyClass::LockWait,
                                 wp.now - pk.stallStart);
        }
        if (obs::traceJsonEnabled()) {
            obs::emitAsyncEnd(
                obs::spanId(obs::SpanKind::Lock, 0,
                            static_cast<std::uint64_t>(to)),
                to, wp.now, "lock-wait", "sync");
        }
        auto h = pk.handle;
        pk.handle = nullptr;
        wp.status = ProcStatus::Running;
        h.resume();
    });
}

void
LockManager::handle(Proc &p, Message &&m)
{
    Tick recv = 0;
    if (m.src != p.id) {
        recv = proto_.topology().sameMachine(m.src, p.id)
                   ? cfg_.costs.recvLocal
                   : cfg_.costs.recvRemote;
    }
    p.now += recv + cfg_.costs.lockHandler;

    const int id = static_cast<int>(m.addr);
    LockState &l = locks_[static_cast<std::size_t>(id)];

    switch (m.type) {
      case MsgType::LockReq:
        SHASTA_TRACE_EVENT(trace::Flag::Sync, p.now, p.id,
                           "lock %d requested by P%d (%s)", id,
                           m.requester,
                           l.held ? "queued" : "granted");
        if (!l.held) {
            l.held = true;
            l.holder = m.requester;
            grant(p, id, m.requester);
        } else {
            ++contended_;
            l.queue.push_back(m.requester);
        }
        return;

      case MsgType::LockGrant: {
        ParkedProc &pk = parked_[static_cast<std::size_t>(p.id)];
        if (pk.handle) {
            if (proto_.measuring()) {
                p.bd.sync += p.now - pk.stallStart;
                proto_.recordLatency(p.node, LatencyClass::LockWait,
                                     p.now - pk.stallStart);
            }
            if (obs::traceJsonEnabled()) {
                obs::emitAsyncEnd(
                    obs::spanId(obs::SpanKind::Lock, 0,
                                static_cast<std::uint64_t>(p.id)),
                    p.id, p.now, "lock-wait", "sync");
            }
            auto h = pk.handle;
            pk.handle = nullptr;
            p.status = ProcStatus::Running;
            h.resume();
        } else {
            pk.pendingGrant = true;
            pk.grantTime = p.now;
        }
        return;
      }

      case MsgType::LockRelease:
        assert(l.held);
        if (!l.queue.empty()) {
            const ProcId next = l.queue.front();
            l.queue.pop_front();
            l.holder = next;
            grant(p, id, next);
        } else {
            l.held = false;
            l.holder = -1;
        }
        return;

      default:
        assert(false && "not a lock message");
    }
}

} // namespace shasta
