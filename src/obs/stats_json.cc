#include "obs/stats_json.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace shasta::obs
{

namespace
{

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

/** Fixed-point microsecond rendering keeps the output deterministic
 *  across libc float formatting quirks. */
void
appendUs(std::string &out, double v)
{
    appendf(out, "%.4f", v);
}

} // namespace

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                appendf(out, "\\u%04x",
                        static_cast<unsigned>(
                            static_cast<unsigned char>(ch)));
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
toJson(const RunSummary &s, int indent)
{
    const std::string in0(static_cast<std::size_t>(indent), ' ');
    const std::string in1 = in0 + "  ";
    const std::string in2 = in1 + "  ";
    std::string o;
    o += "{\n";

    if (!s.app.empty())
        o += in1 + "\"app\": \"" + jsonEscape(s.app) + "\",\n";
    if (!s.config.empty())
        o += in1 + "\"config\": \"" + jsonEscape(s.config) + "\",\n";
    o += in1 + "\"mode\": \"" + jsonEscape(s.mode) + "\",\n";
    appendf(o, "%s\"numProcs\": %d,\n", in1.c_str(), s.numProcs);
    appendf(o, "%s\"clustering\": %d,\n", in1.c_str(), s.clustering);
    appendf(o, "%s\"wallTimeTicks\": %lld,\n", in1.c_str(),
            static_cast<long long>(s.wallTime));
    o += in1 + "\"wallTimeSeconds\": ";
    appendf(o, "%.9f", ticksToSeconds(s.wallTime));
    o += ",\n";

    const Breakdown &b = s.breakdown.parts;
    o += in1 + "\"breakdown\": {\n";
    appendf(o, "%s\"taskTicks\": %lld,\n", in2.c_str(),
            static_cast<long long>(s.breakdown.task()));
    appendf(o, "%s\"readTicks\": %lld,\n", in2.c_str(),
            static_cast<long long>(b.read));
    appendf(o, "%s\"writeTicks\": %lld,\n", in2.c_str(),
            static_cast<long long>(b.write));
    appendf(o, "%s\"syncTicks\": %lld,\n", in2.c_str(),
            static_cast<long long>(b.sync));
    appendf(o, "%s\"msgTicks\": %lld,\n", in2.c_str(),
            static_cast<long long>(b.msg));
    appendf(o, "%s\"otherTicks\": %lld,\n", in2.c_str(),
            static_cast<long long>(b.other));
    appendf(o, "%s\"totalTicks\": %lld\n", in2.c_str(),
            static_cast<long long>(s.breakdown.total));
    o += in1 + "},\n";

    const ProtoCounters &c = s.counters;
    o += in1 + "\"misses\": {\n";
    static constexpr const char *kMissKeys[] = {
        "read2Hop",    "read3Hop",    "write2Hop",
        "write3Hop",   "upgrade2Hop", "upgrade3Hop",
    };
    for (std::size_t i = 0; i < c.misses.size(); ++i) {
        appendf(o, "%s\"%s\": %llu,\n", in2.c_str(), kMissKeys[i],
                static_cast<unsigned long long>(c.misses[i]));
    }
    appendf(o, "%s\"total\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(c.totalMisses()));
    appendf(o, "%s\"merged\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(c.mergedMisses));
    appendf(o, "%s\"false\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(c.falseMisses));
    appendf(o, "%s\"batch\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(c.batchMisses));
    appendf(o, "%s\"privateUpgrades\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(c.privateUpgrades));
    appendf(o, "%s\"writeThrottles\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(c.writeThrottles));
    appendf(o, "%s\"pendDownServices\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(c.pendDownServices));
    appendf(o, "%s\"queuedDuringDowngrade\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(c.queuedDuringDowngrade));
    o += in2 + "\"avgReadMissUs\": ";
    appendUs(o, c.avgReadMissUs());
    o += "\n" + in1 + "},\n";

    o += in1 + "\"downgrades\": {\n";
    o += in2 + "\"ops\": [";
    for (std::size_t i = 0; i < c.downgradeOps.size(); ++i) {
        appendf(o, "%s%llu", i == 0 ? "" : ", ",
                static_cast<unsigned long long>(c.downgradeOps[i]));
    }
    o += "],\n";
    appendf(o, "%s\"total\": %llu\n", in2.c_str(),
            static_cast<unsigned long long>(c.totalDowngradeOps()));
    o += in1 + "},\n";

    const NetworkCounts &n = s.net;
    o += in1 + "\"messages\": {\n";
    appendf(o, "%s\"remote\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(n.remoteMsgs));
    appendf(o, "%s\"local\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(n.localMsgs));
    appendf(o, "%s\"downgrade\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(n.downgradeMsgs));
    appendf(o, "%s\"remoteBytes\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(n.remoteBytes));
    appendf(o, "%s\"localBytes\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(n.localBytes));
    appendf(o, "%s\"total\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(n.total()));
    o += in2 + "\"byType\": {";
    bool firstType = true;
    for (std::size_t i = 0; i < n.byType.size(); ++i) {
        if (n.byType[i] == 0)
            continue;
        appendf(o, "%s\"%s\": %llu", firstType ? "" : ", ",
                std::string(msgTypeName(static_cast<MsgType>(i)))
                    .c_str(),
                static_cast<unsigned long long>(n.byType[i]));
        firstType = false;
    }
    o += "}\n" + in1 + "},\n";

    // Reliability-sublayer activity: present only when something
    // happened, so faults-off output stays byte-identical to builds
    // that predate fault injection.
    if (n.rel.any()) {
        const RelCounts &r = n.rel;
        o += in1 + "\"reliability\": {\n";
        appendf(o, "%s\"dataMsgs\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(r.dataMsgs));
        appendf(o, "%s\"retransmits\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(r.retransmits));
        appendf(o, "%s\"faultDrops\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(r.faultDrops));
        appendf(o, "%s\"faultDups\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(r.faultDups));
        appendf(o, "%s\"faultDelays\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(r.faultDelays));
        appendf(o, "%s\"dupDrops\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(r.dupDrops));
        appendf(o, "%s\"reorderBuffered\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(r.reorderBuffered));
        appendf(o, "%s\"acksSent\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(r.acksSent));
        appendf(o, "%s\"ackDrops\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(r.ackDrops));
        appendf(o, "%s\"acksReceived\": %llu\n", in2.c_str(),
                static_cast<unsigned long long>(r.acksReceived));
        o += in1 + "},\n";
    }

    // Directory occupancy / shard pressure: present only for runs
    // that exercised the software protocol, so hardware-mode output
    // stays byte-identical to builds that predate sharding.
    if (s.dir.any()) {
        const DirCounters &d = s.dir;
        o += in1 + "\"directory\": {\n";
        appendf(o, "%s\"shardsPerHome\": %d,\n", in2.c_str(),
                d.shardsPerHome);
        appendf(o, "%s\"entries\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(d.entries));
        appendf(o, "%s\"busy\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(d.busy));
        appendf(o, "%s\"queued\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(d.queued));
        appendf(o, "%s\"queuedTotal\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(d.queuedTotal));
        appendf(o, "%s\"peakQueued\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(d.peakQueued));
        appendf(o, "%s\"lookups\": %llu,\n", in2.c_str(),
                static_cast<unsigned long long>(d.lookups));
        o += in2 + "\"shardEntries\": [";
        for (std::size_t i = 0; i < d.shardEntries.size(); ++i) {
            appendf(o, "%s%llu", i == 0 ? "" : ", ",
                    static_cast<unsigned long long>(
                        d.shardEntries[i]));
        }
        o += "],\n";
        o += in2 + "\"shardPeakQueued\": [";
        for (std::size_t i = 0; i < d.shardPeakQueued.size(); ++i) {
            appendf(o, "%s%llu", i == 0 ? "" : ", ",
                    static_cast<unsigned long long>(
                        d.shardPeakQueued[i]));
        }
        o += "]\n";
        o += in1 + "},\n";
    }

    // Protocol fast paths (the opt layer): each knob's counters are
    // present only when that knob actually fired, and the whole block
    // only when at least one did — opts-off output stays
    // byte-identical to builds that predate the opt layer.
    {
        const bool mig = c.migGrants != 0;
        const bool elide = c.elideDowngradesSkipped != 0 ||
                           s.checks.elidedChecks != 0;
        const bool adaptive = s.adaptiveRegions != 0;
        if (mig || elide || adaptive) {
            std::vector<std::string> fields;
            auto field = [&](const char *key, long long v) {
                std::string f = in2 + "\"" + key + "\": ";
                appendf(f, "%lld", v);
                fields.push_back(std::move(f));
            };
            if (mig) {
                field("migGrants",
                      static_cast<long long>(c.migGrants));
            }
            if (elide) {
                field("elideDowngradesSkipped",
                      static_cast<long long>(
                          c.elideDowngradesSkipped));
                field("elidedChecks",
                      static_cast<long long>(s.checks.elidedChecks));
                field("elidedCheckCycles",
                      static_cast<long long>(
                          s.checks.elidedCheckCycles));
            }
            if (adaptive) {
                field("adaptiveRegions", s.adaptiveRegions);
                field("adaptiveShrunk", s.adaptiveShrunk);
                field("adaptiveGrown", s.adaptiveGrown);
            }
            o += in1 + "\"opt\": {\n";
            for (std::size_t i = 0; i < fields.size(); ++i) {
                o += fields[i];
                o += i + 1 < fields.size() ? ",\n" : "\n";
            }
            o += in1 + "},\n";
        }
    }

    const CheckCounters &k = s.checks;
    o += in1 + "\"checks\": {\n";
    appendf(o, "%s\"loads\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(k.loads));
    appendf(o, "%s\"stores\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(k.stores));
    appendf(o, "%s\"batchedAccesses\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(k.batchedAccesses));
    appendf(o, "%s\"batchChecks\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(k.batchChecks));
    appendf(o, "%s\"polls\": %llu,\n", in2.c_str(),
            static_cast<unsigned long long>(k.polls));
    appendf(o, "%s\"checkCycles\": %lld\n", in2.c_str(),
            static_cast<long long>(k.checkCycles));
    o += in1 + "},\n";

    o += in1 + "\"latency\": {\n";
    // RetryDelay only exists under fault injection; omit it when
    // empty so faults-off output matches the pre-fault format.
    std::vector<LatencyClass> latClasses;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(LatencyClass::NumClasses);
         ++i) {
        const auto cls = static_cast<LatencyClass>(i);
        if (cls == LatencyClass::RetryDelay &&
            s.lat.of(cls).count() == 0)
            continue;
        latClasses.push_back(cls);
    }
    const std::size_t classes = latClasses.size();
    for (std::size_t i = 0; i < classes; ++i) {
        const LatencyClass cls = latClasses[i];
        const Log2Histogram &h = s.lat.of(cls);
        appendf(o, "%s\"%s\": {\"count\": %llu, \"p50Us\": ",
                in2.c_str(), latencyClassName(cls),
                static_cast<unsigned long long>(h.count()));
        appendUs(o, ticksToUs(h.percentile(0.50)));
        o += ", \"p90Us\": ";
        appendUs(o, ticksToUs(h.percentile(0.90)));
        o += ", \"p99Us\": ";
        appendUs(o, ticksToUs(h.percentile(0.99)));
        o += ", \"maxUs\": ";
        appendUs(o, ticksToUs(h.max()));
        o += ", \"meanUs\": ";
        appendUs(o, h.mean() / kTicksPerUs);
        o += i + 1 < classes ? "},\n" : "}\n";
    }
    o += in1 + "}\n";

    o += in0 + "}";
    return o;
}

} // namespace shasta::obs
