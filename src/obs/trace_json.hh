/**
 * @file
 * Chrome-trace-event / Perfetto JSON exporter.
 *
 * When enabled (`SHASTA_TRACE_JSON=<file>` or openTraceJson()), the
 * protocol agents, network, and sync managers emit a timeline that
 * loads directly in ui.perfetto.dev or chrome://tracing:
 *
 *  - one track per simulated processor (pid 0 / tid = proc id);
 *  - complete events ("X") for every protocol message handler;
 *  - async spans ("b"/"e") for protocol transactions: read miss,
 *    write miss, intra-node downgrade fan-out, lock and barrier
 *    waits -- from issue to transaction close;
 *  - flow arrows ("s"/"f") from every network send to its delivery;
 *  - instant events ("i") for downgrade fan-outs and requests queued
 *    behind a busy directory entry.
 *
 * Simulated Ticks are converted to microseconds (the trace-event
 * "ts" unit) via ticksToUs.  Every hook in the simulator costs one
 * predictable branch on `traceJsonEnabled()` when the exporter is
 * off; the exporter itself never runs during benchmark or golden
 * runs unless explicitly requested.  Emission is purely an
 * accounting side channel: it never touches simulated clocks or
 * message flow, so enabling it cannot perturb results.
 */

#ifndef SHASTA_OBS_TRACE_JSON_HH
#define SHASTA_OBS_TRACE_JSON_HH

#include <atomic>
#include <cstdint>
#include <string_view>

#include "sim/ticks.hh"

namespace shasta::obs
{

namespace detail
{
extern std::atomic<bool> traceJsonOn;
} // namespace detail

/** The single hot-path gate: false unless an output file is open. */
inline bool
traceJsonEnabled()
{
    return detail::traceJsonOn.load(std::memory_order_relaxed);
}

/** Apply `SHASTA_TRACE_JSON=<file>` (idempotent; called by the
 *  Runtime constructor so every binary honors the variable). */
void initTraceJsonFromEnv();

/** Open @p path for writing and start the trace-event envelope.
 *  Returns false (and stays disabled) if the file cannot be opened.
 *  Closes any previously open trace first. */
bool openTraceJson(const char *path);

/** Finish the JSON envelope and close the file.  Safe to call when
 *  nothing is open; also installed via atexit on env activation. */
void closeTraceJson();

/**
 * Register a run with the open trace: assigns the next trace-event
 * "pid", emits its process_name/process_sort_index metadata, and
 * makes subsequent emissions from the calling thread use that pid.
 * The Runtime constructor calls this, so each Runtime instance gets
 * its own process group in the viewer and concurrent sweep
 * configurations stay attributable.  @p label names the process
 * group; null or empty falls back to the thread's pending label
 * (setTraceRunLabel) and then to "shasta-sim".  Returns the pid
 * (0 when no trace is open).
 */
std::uint32_t registerTraceRun(const char *label);

/** Set the calling thread's label for its next registered run (the
 *  sweep runner stamps each worker with the configuration name
 *  before constructing the Runtime).  Empty clears it. */
void setTraceRunLabel(std::string_view label);

/** Async-span id space: kind tag in the top bits keeps concurrent
 *  transactions on different lines/locks from colliding. */
enum class SpanKind : std::uint64_t
{
    ReadMiss = 1,
    WriteMiss = 2,
    Downgrade = 3,
    Lock = 4,
    Barrier = 5,
};

constexpr std::uint64_t
spanId(SpanKind k, std::uint64_t scope, std::uint64_t key)
{
    return (static_cast<std::uint64_t>(k) << 56) | (scope << 40) |
           (key & ((std::uint64_t{1} << 40) - 1));
}

/** Next message-flow correlation id: monotonic per trace file (the
 *  counter resets when a file is opened), so ids stay unique when
 *  several Runtime instances write into one file, and identical runs
 *  produce byte-identical traces.  32 bits so it packs into a
 *  padding hole of Message; a trace long enough to wrap would be
 *  hundreds of gigabytes. */
std::uint32_t nextFlowId();

/** @{ Event emitters.  Callers must check traceJsonEnabled() first
 *  (the emitters re-check defensively, so a missed gate is a
 *  performance bug, not a crash). */
void emitComplete(int proc, Tick start, Tick dur, const char *name,
                  const char *cat);
void emitAsyncBegin(std::uint64_t id, int proc, Tick ts,
                    const char *name, const char *cat);
void emitAsyncEnd(std::uint64_t id, int proc, Tick ts,
                  const char *name, const char *cat);
void emitFlowStart(std::uint64_t id, int proc, Tick ts,
                   const char *name);
void emitFlowEnd(std::uint64_t id, int proc, Tick ts,
                 const char *name);
void emitInstant(int proc, Tick ts, const char *name,
                 const char *cat, std::int64_t arg = -1);
/** @} */

} // namespace shasta::obs

#endif // SHASTA_OBS_TRACE_JSON_HH
