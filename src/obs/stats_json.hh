/**
 * @file
 * Machine-readable run summaries.
 *
 * One RunSummary captures everything the text reports print --
 * Figure 4's execution-time breakdown, Figure 6's miss classes,
 * Figure 7's message counts, Figure 8's downgrade distribution, the
 * checking-overhead counters, and the log2 latency percentiles --
 * and toJson() renders it as a self-contained JSON object.  The
 * bench harness (bench/bench_common.hh, `--stats-json=FILE`)
 * accumulates one summary per run; `Runtime::statsJson()` exports a
 * single run programmatically.
 */

#ifndef SHASTA_OBS_STATS_JSON_HH
#define SHASTA_OBS_STATS_JSON_HH

#include <string>
#include <string_view>

#include "net/network.hh"
#include "stats/breakdown.hh"
#include "stats/counters.hh"

namespace shasta::obs
{

/** The full statistics of one completed run, plus identifying
 *  labels (empty labels are omitted from the JSON). */
struct RunSummary
{
    std::string app;    ///< application name, e.g. "lu"
    std::string config; ///< configuration label, e.g. "smp-16x4"
    std::string mode;   ///< "hardware" / "base" / "smp"
    int numProcs = 0;
    int clustering = 1;

    Tick wallTime = 0;
    TimeBreakdown breakdown;
    ProtoCounters counters;
    LatencyStats lat;
    NetworkCounts net;
    CheckCounters checks;
    /** Directory occupancy / shard pressure (all-zero when the run
     *  had no software protocol; omitted from the JSON then). */
    DirCounters dir;
    /** @{ Adaptive-granularity plan summary (opt.adaptive with an
     *  advisor attached; all-zero — and omitted — otherwise). */
    int adaptiveRegions = 0;
    int adaptiveShrunk = 0;
    int adaptiveGrown = 0;
    /** @} */
};

/** RFC 8259 string escaping (quotes, backslash, control chars). */
std::string jsonEscape(std::string_view s);

/** Render @p s as one JSON object.  @p indent is the indentation of
 *  the opening brace; members are indented two further spaces. */
std::string toJson(const RunSummary &s, int indent = 0);

} // namespace shasta::obs

#endif // SHASTA_OBS_STATS_JSON_HH
