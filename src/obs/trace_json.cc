#include "obs/trace_json.hh"

#include <array>
#include <cstdio>
#include <cstdlib>

namespace shasta::obs
{

namespace detail
{
bool traceJsonOn = false;
} // namespace detail

namespace
{

FILE *out = nullptr;
bool firstEvent = true;
bool envApplied = false;
bool atexitInstalled = false;
std::uint32_t flowCounter = 0;

/** Tracks which processors have had their track metadata emitted. */
constexpr std::size_t kMaxProcs = 1024;
std::array<bool, kMaxProcs> procSeen{};

void
sep()
{
    std::fputs(firstEvent ? "\n" : ",\n", out);
    firstEvent = false;
}

double
us(Tick t)
{
    return ticksToUs(t);
}

/** Lazily name each processor's track the first time it appears. */
void
noteProc(int proc)
{
    if (proc < 0 || static_cast<std::size_t>(proc) >= kMaxProcs ||
        procSeen[static_cast<std::size_t>(proc)])
        return;
    procSeen[static_cast<std::size_t>(proc)] = true;
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                 "\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"P%d\"}}",
                 proc, proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                 "\"name\":\"thread_sort_index\","
                 "\"args\":{\"sort_index\":%d}}",
                 proc, proc);
}

} // namespace

std::uint32_t
nextFlowId()
{
    return ++flowCounter;
}

void
initTraceJsonFromEnv()
{
    if (envApplied)
        return;
    envApplied = true;
    const char *path = std::getenv("SHASTA_TRACE_JSON");
    if (path == nullptr || *path == '\0')
        return;
    if (openTraceJson(path) && !atexitInstalled) {
        atexitInstalled = true;
        std::atexit(closeTraceJson);
    }
}

bool
openTraceJson(const char *path)
{
    closeTraceJson();
    out = std::fopen(path, "w");
    if (out == nullptr)
        return false;
    firstEvent = true;
    flowCounter = 0;
    procSeen.fill(false);
    std::fputs("{\"traceEvents\":[", out);
    sep();
    std::fputs("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
               "\"args\":{\"name\":\"shasta-sim\"}}",
               out);
    detail::traceJsonOn = true;
    return true;
}

void
closeTraceJson()
{
    if (out == nullptr)
        return;
    std::fputs("\n]}\n", out);
    std::fclose(out);
    out = nullptr;
    detail::traceJsonOn = false;
}

void
emitComplete(int proc, Tick start, Tick dur, const char *name,
             const char *cat)
{
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.4f,"
                 "\"dur\":%.4f,\"name\":\"%s\",\"cat\":\"%s\"}",
                 proc, us(start), us(dur), name, cat);
}

void
emitAsyncBegin(std::uint64_t id, int proc, Tick ts, const char *name,
               const char *cat)
{
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"b\",\"pid\":0,\"tid\":%d,"
                 "\"id\":\"0x%llx\",\"ts\":%.4f,"
                 "\"name\":\"%s\",\"cat\":\"%s\"}",
                 proc, static_cast<unsigned long long>(id), us(ts),
                 name, cat);
}

void
emitAsyncEnd(std::uint64_t id, int proc, Tick ts, const char *name,
             const char *cat)
{
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"e\",\"pid\":0,\"tid\":%d,"
                 "\"id\":\"0x%llx\",\"ts\":%.4f,"
                 "\"name\":\"%s\",\"cat\":\"%s\"}",
                 proc, static_cast<unsigned long long>(id), us(ts),
                 name, cat);
}

void
emitFlowStart(std::uint64_t id, int proc, Tick ts, const char *name)
{
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"s\",\"pid\":0,\"tid\":%d,"
                 "\"id\":\"0x%llx\",\"ts\":%.4f,"
                 "\"name\":\"%s\",\"cat\":\"net\"}",
                 proc, static_cast<unsigned long long>(id), us(ts),
                 name);
}

void
emitFlowEnd(std::uint64_t id, int proc, Tick ts, const char *name)
{
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":%d,"
                 "\"id\":\"0x%llx\",\"ts\":%.4f,"
                 "\"name\":\"%s\",\"cat\":\"net\"}",
                 proc, static_cast<unsigned long long>(id), us(ts),
                 name);
}

void
emitInstant(int proc, Tick ts, const char *name, const char *cat,
            std::int64_t arg)
{
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    if (arg >= 0) {
        std::fprintf(out,
                     "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                     "\"tid\":%d,\"ts\":%.4f,\"name\":\"%s\","
                     "\"cat\":\"%s\",\"args\":{\"n\":%lld}}",
                     proc, us(ts), name, cat,
                     static_cast<long long>(arg));
    } else {
        std::fprintf(out,
                     "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                     "\"tid\":%d,\"ts\":%.4f,\"name\":\"%s\","
                     "\"cat\":\"%s\"}",
                     proc, us(ts), name, cat);
    }
}

} // namespace shasta::obs
