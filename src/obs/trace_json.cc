#include "obs/trace_json.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_set>

namespace shasta::obs
{

namespace detail
{
std::atomic<bool> traceJsonOn{false};
} // namespace detail

namespace
{

/** Guards the stream state (out, firstEvent, procSeen, pidCounter):
 *  the sweep runner drives several Runtimes concurrently into one
 *  trace file, so every emission serializes here.  Hot paths never
 *  reach this when the exporter is off — traceJsonEnabled() is a
 *  single relaxed load. */
std::mutex mu;

FILE *out = nullptr;
bool firstEvent = true;
std::once_flag envOnce;
bool atexitInstalled = false;
std::atomic<std::uint32_t> flowCounter{0};

/** Trace-event "pid" per registered run: each Runtime registers
 *  itself (registerTraceRun) and gets its own process group in the
 *  viewer, so concurrent configurations stay attributable. */
std::uint32_t pidCounter = 0;
thread_local std::uint32_t currentPid = 0;
thread_local std::string pendingLabel;

/** (pid << 32 | proc) pairs whose track metadata has been emitted. */
std::unordered_set<std::uint64_t> procSeen;

void
sep()
{
    std::fputs(firstEvent ? "\n" : ",\n", out);
    firstEvent = false;
}

double
us(Tick t)
{
    return ticksToUs(t);
}

/** Lazily name each processor's track the first time it appears.
 *  Caller holds mu. */
void
noteProc(int proc)
{
    if (proc < 0)
        return;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(currentPid) << 32) |
        static_cast<std::uint32_t>(proc);
    if (!procSeen.insert(key).second)
        return;
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%u,\"tid\":%d,"
                 "\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"P%d\"}}",
                 currentPid, proc, proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%u,\"tid\":%d,"
                 "\"name\":\"thread_sort_index\","
                 "\"args\":{\"sort_index\":%d}}",
                 currentPid, proc, proc);
}

/** Close the stream.  Caller holds mu. */
void
closeLocked()
{
    if (out == nullptr)
        return;
    std::fputs("\n]}\n", out);
    std::fclose(out);
    out = nullptr;
    detail::traceJsonOn.store(false, std::memory_order_relaxed);
}

} // namespace

std::uint32_t
nextFlowId()
{
    return flowCounter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void
setTraceRunLabel(std::string_view label)
{
    pendingLabel = label;
}

std::uint32_t
registerTraceRun(const char *label)
{
    const std::lock_guard<std::mutex> lock(mu);
    if (out == nullptr)
        return 0;
    const std::uint32_t pid = pidCounter++;
    currentPid = pid;
    const char *name = (label != nullptr && *label != '\0')
                           ? label
                           : (pendingLabel.empty()
                                  ? "shasta-sim"
                                  : pendingLabel.c_str());
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                 "\"args\":{\"name\":\"%s\"}}",
                 pid, name);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%u,"
                 "\"name\":\"process_sort_index\","
                 "\"args\":{\"sort_index\":%u}}",
                 pid, pid);
    return pid;
}

void
initTraceJsonFromEnv()
{
    std::call_once(envOnce, [] {
        const char *path = std::getenv("SHASTA_TRACE_JSON");
        if (path == nullptr || *path == '\0')
            return;
        if (openTraceJson(path) && !atexitInstalled) {
            atexitInstalled = true;
            std::atexit(closeTraceJson);
        }
    });
}

bool
openTraceJson(const char *path)
{
    const std::lock_guard<std::mutex> lock(mu);
    closeLocked();
    out = std::fopen(path, "w");
    if (out == nullptr)
        return false;
    firstEvent = true;
    flowCounter.store(0, std::memory_order_relaxed);
    pidCounter = 0;
    currentPid = 0;
    procSeen.clear();
    std::fputs("{\"traceEvents\":[", out);
    detail::traceJsonOn.store(true, std::memory_order_relaxed);
    return true;
}

void
closeTraceJson()
{
    const std::lock_guard<std::mutex> lock(mu);
    closeLocked();
}

void
emitComplete(int proc, Tick start, Tick dur, const char *name,
             const char *cat)
{
    const std::lock_guard<std::mutex> lock(mu);
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"X\",\"pid\":%u,\"tid\":%d,\"ts\":%.4f,"
                 "\"dur\":%.4f,\"name\":\"%s\",\"cat\":\"%s\"}",
                 currentPid, proc, us(start), us(dur), name, cat);
}

void
emitAsyncBegin(std::uint64_t id, int proc, Tick ts, const char *name,
               const char *cat)
{
    const std::lock_guard<std::mutex> lock(mu);
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"b\",\"pid\":%u,\"tid\":%d,"
                 "\"id\":\"0x%llx\",\"ts\":%.4f,"
                 "\"name\":\"%s\",\"cat\":\"%s\"}",
                 currentPid, proc,
                 static_cast<unsigned long long>(id), us(ts), name,
                 cat);
}

void
emitAsyncEnd(std::uint64_t id, int proc, Tick ts, const char *name,
             const char *cat)
{
    const std::lock_guard<std::mutex> lock(mu);
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"e\",\"pid\":%u,\"tid\":%d,"
                 "\"id\":\"0x%llx\",\"ts\":%.4f,"
                 "\"name\":\"%s\",\"cat\":\"%s\"}",
                 currentPid, proc,
                 static_cast<unsigned long long>(id), us(ts), name,
                 cat);
}

void
emitFlowStart(std::uint64_t id, int proc, Tick ts, const char *name)
{
    const std::lock_guard<std::mutex> lock(mu);
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"s\",\"pid\":%u,\"tid\":%d,"
                 "\"id\":\"0x%llx\",\"ts\":%.4f,"
                 "\"name\":\"%s\",\"cat\":\"net\"}",
                 currentPid, proc,
                 static_cast<unsigned long long>(id), us(ts), name);
}

void
emitFlowEnd(std::uint64_t id, int proc, Tick ts, const char *name)
{
    const std::lock_guard<std::mutex> lock(mu);
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":%u,\"tid\":%d,"
                 "\"id\":\"0x%llx\",\"ts\":%.4f,"
                 "\"name\":\"%s\",\"cat\":\"net\"}",
                 currentPid, proc,
                 static_cast<unsigned long long>(id), us(ts), name);
}

void
emitInstant(int proc, Tick ts, const char *name, const char *cat,
            std::int64_t arg)
{
    const std::lock_guard<std::mutex> lock(mu);
    if (out == nullptr)
        return;
    noteProc(proc);
    sep();
    if (arg >= 0) {
        std::fprintf(out,
                     "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,"
                     "\"tid\":%d,\"ts\":%.4f,\"name\":\"%s\","
                     "\"cat\":\"%s\",\"args\":{\"n\":%lld}}",
                     currentPid, proc, us(ts), name, cat,
                     static_cast<long long>(arg));
    } else {
        std::fprintf(out,
                     "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,"
                     "\"tid\":%d,\"ts\":%.4f,\"name\":\"%s\","
                     "\"cat\":\"%s\"}",
                     currentPid, proc, us(ts), name, cat);
    }
}

} // namespace shasta::obs
