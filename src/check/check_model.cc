#include "check/check_model.hh"

// CheckModel is header-only; see check_model.hh.  This translation
// unit compiles the header standalone.

namespace shasta
{
} // namespace shasta
