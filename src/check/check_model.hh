/**
 * @file
 * Cost model of the inline shared-miss checks.
 *
 * The real Shasta inserts Alpha code before loads and stores
 * (Figure 1 of the paper: a 7-instruction state-table check for
 * stores; a compare-against-the-invalid-flag for loads; batched
 * checks covering runs of accesses).  The simulator charges each
 * simulated access the cycle cost of the sequence the binary
 * rewriter would have inserted.  Costs differ between Base-Shasta
 * and SMP-Shasta (Section 3.4.1):
 *
 *  - A floating-point load's flag check must be made *atomic* in
 *    SMP-Shasta: the value is stored to the stack and reloaded into
 *    an integer register instead of issuing a second (non-atomic)
 *    integer load, adding several cycles.
 *  - Batched checks in SMP-Shasta must always consult the private
 *    state table; Base-Shasta may flag-check loads-only batches.
 *    This is typically the largest source of extra overhead.
 */

#ifndef SHASTA_CHECK_CHECK_MODEL_HH
#define SHASTA_CHECK_CHECK_MODEL_HH

#include "sim/ticks.hh"

namespace shasta
{

/** Which checking scheme is compiled into the application. */
enum class CheckMode
{
    /** No checks at all: the uninstrumented sequential binary, or a
     *  hardware-coherent (ANL macro) run. */
    None,
    /** Base-Shasta checks (message passing between all processors). */
    Base,
    /** SMP-Shasta checks (atomic FP-flag check, private-table
     *  batches). */
    Smp,
};

/** Kind of a single checked access. */
enum class AccessKind
{
    LoadInt,
    LoadFp,
    Store,
};

/** Per-check cycle costs; defaults model the paper's sequences. */
struct CheckCosts
{
    /** Flag-checked integer load: cmp + branch. */
    Tick loadIntFlag = 2;
    /** Flag-checked FP load, Base: extra integer load + cmp + branch. */
    Tick loadFpFlagBase = 5;
    /** Flag-checked FP load, SMP: store to stack + integer reload +
     *  cmp + branch (atomic variant). */
    Tick loadFpFlagSmp = 9;
    /** Full state-table check (Figure 1): address shifts, table load,
     *  byte extract, branches. */
    Tick stateTable = 7;
    /** Per-line cost of a loads-only batch check via the flag (Base). */
    Tick batchLineFlag = 3;
    /** Per-line cost of a batch check via the state table. */
    Tick batchLineTable = 7;
    /** Per-line batch check via the *private* state table (SMP); the
     *  extra indirection costs one more cycle. */
    Tick batchLineSmp = 8;
    /** Poll for messages at a loop backedge (three instructions). */
    Tick poll = 3;
};

/**
 * Computes the inline-check cost of each access for a given mode.
 */
class CheckModel
{
  public:
    explicit CheckModel(CheckMode mode, CheckCosts costs = CheckCosts{},
                        bool use_flag = true)
        : mode_(mode), costs_(costs), useFlag_(use_flag)
    {}

    CheckMode mode() const { return mode_; }

    bool enabled() const { return mode_ != CheckMode::None; }

    /** Cost of the inline check before a single load/store. */
    Tick
    accessCheck(AccessKind kind) const
    {
        if (mode_ == CheckMode::None)
            return 0;
        switch (kind) {
          case AccessKind::LoadInt:
            return useFlag_ ? costs_.loadIntFlag
                            : costs_.stateTable;
          case AccessKind::LoadFp:
            if (!useFlag_)
                return costs_.stateTable;
            return mode_ == CheckMode::Smp ? costs_.loadFpFlagSmp
                                           : costs_.loadFpFlagBase;
          case AccessKind::Store:
            return costs_.stateTable;
        }
        return 0;
    }

    /**
     * Cost of a batched check covering @p lines lines.
     *
     * @param loads_only true if the batch contains only loads, which
     *   lets Base-Shasta use the cheaper flag technique.
     */
    Tick
    batchCheck(int lines, bool loads_only) const
    {
        if (mode_ == CheckMode::None)
            return 0;
        Tick per_line;
        if (mode_ == CheckMode::Smp)
            per_line = costs_.batchLineSmp;
        else
            per_line = loads_only ? costs_.batchLineFlag
                                  : costs_.batchLineTable;
        return per_line * lines;
    }

    /** Cost of one poll at a loop backedge. */
    Tick
    pollCost() const
    {
        return mode_ == CheckMode::None ? 0 : costs_.poll;
    }

    /**
     * True if single loads use the invalid-flag technique (both modes
     * do; the flag combines the load and the check into one atomic
     * event, Section 2.3).
     */
    bool
    loadsUseFlag() const
    {
        return mode_ != CheckMode::None && useFlag_;
    }

    /**
     * True if loads-only batches may use the flag technique.  Only
     * Base-Shasta: the batched loads are not atomic with the batch
     * check, so SMP-Shasta must use the private state table
     * (Section 3.4.1).
     */
    bool
    batchesUseFlag() const
    {
        return mode_ == CheckMode::Base && useFlag_;
    }

    const CheckCosts &costs() const { return costs_; }

  private:
    CheckMode mode_;
    CheckCosts costs_;
    bool useFlag_;
};

} // namespace shasta

#endif // SHASTA_CHECK_CHECK_MODEL_HH
