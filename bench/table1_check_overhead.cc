/**
 * @file
 * Table 1: sequential times and checking overheads.
 *
 * Each application runs on one processor four times: uninstrumented
 * (the "original sequential application"), with Base-Shasta miss
 * checks, with SMP-Shasta miss checks, and with SMP-Shasta checks
 * under the elide knob and the app's ownership annotations (apps
 * without a sound annotation keep their full SMP cost, so the last
 * column shows the check-cost delta annotations buy directly).  The
 * paper's headline numbers: Base averages 14.7%, SMP averages 24.0%,
 * with Raytrace and the two Waters most affected by the SMP changes
 * (Section 3.4.1).
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Table 1: sequential times and checking overheads",
           "Table 1");

    report::Table t({"app", "problem", "sequential", "Base checks",
                     "Base ovh", "SMP checks", "SMP ovh",
                     "SMP elided", "elided ovh"});
    double sum_base = 0, sum_smp = 0, sum_elided = 0;
    int count = 0;
    SweepRunner sweep;
    for (const auto &name : appNames()) {
        if (!appSelected(name))
            continue;
        const AppParams p = defaultParams(*createApp(name));
        // Commit order guarantees seq, base, smp, then elided: the
        // shared snapshots are filled before the row is assembled.
        auto seqT = std::make_shared<Tick>(0);
        auto baseT = std::make_shared<Tick>(0);
        auto smpT = std::make_shared<Tick>(0);
        sweep.add(name, DsmConfig::sequential(), p,
                  [seqT](const AppResult &seq) {
                      *seqT = seq.wallTime;
                  });
        sweep.add(name, DsmConfig::base(1), p,
                  [baseT](const AppResult &base) {
                      *baseT = base.wallTime;
                  });
        sweep.add(name, DsmConfig::smp(1, 1), p,
                  [smpT](const AppResult &smp) {
                      *smpT = smp.wallTime;
                  });
        DsmConfig elideCfg = DsmConfig::smp(1, 1);
        elideCfg.opt.elide = true;
        AppParams elideP = p;
        elideP.annotate = true;
        sweep.add(
            name, elideCfg, elideP,
            [&, name, p, seqT, baseT, smpT](const AppResult &el) {
                const double base_ovh =
                    static_cast<double>(*baseT - *seqT) /
                    static_cast<double>(*seqT);
                const double smp_ovh =
                    static_cast<double>(*smpT - *seqT) /
                    static_cast<double>(*seqT);
                const double elided_ovh =
                    static_cast<double>(el.wallTime - *seqT) /
                    static_cast<double>(*seqT);
                sum_base += base_ovh;
                sum_smp += smp_ovh;
                sum_elided += elided_ovh;
                ++count;

                t.addRow({name, "n=" + std::to_string(p.n),
                          report::fmtSeconds(*seqT),
                          report::fmtSeconds(*baseT),
                          report::fmtPercent(base_ovh),
                          report::fmtSeconds(*smpT),
                          report::fmtPercent(smp_ovh),
                          report::fmtSeconds(el.wallTime),
                          report::fmtPercent(elided_ovh)});
            });
    }
    sweep.finish();
    t.addRule();
    t.addRow({"average", "", "", "",
              report::fmtPercent(sum_base / count), "",
              report::fmtPercent(sum_smp / count), "",
              report::fmtPercent(sum_elided / count)});
    t.print();

    std::printf("\npaper: Base average 14.7%%, SMP average 24.0%%; "
                "SMP > Base for every app, with Raytrace and the "
                "Water codes most affected.  The elided column "
                "shows the same SMP checks after ownership "
                "annotations delete the provably redundant ones "
                "(unannotated apps keep the full cost).\n");
    return 0;
}
