/**
 * @file
 * Figure 7: protocol messages in 8- and 16-processor runs, split
 * into remote (inter-machine), local (intra-machine), and downgrade
 * messages, normalized to the Base-Shasta total.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);
    banner("Figure 7: messages (remote / local / downgrade) vs "
           "clustering",
           "Figure 7");
    std::printf("  legend: x = remote, l = local, d = downgrade\n");

    for (int np : {8, 16}) {
        std::printf("\n----- %d-processor runs (bars normalized to "
                    "Base total) -----\n",
                    np);
        for (const auto &name : appNames()) {
            if (!appSelected(name))
                continue;
            const AppParams p = withStandardOptions(
                name, defaultParams(*createApp(name)));
            std::printf("\n%s:\n", name.c_str());
            const AppResult b = run(name, DsmConfig::base(np), p);
            const double norm = static_cast<double>(b.net.total());
            auto segs = [](const NetworkCounts &n) {
                return std::vector<std::pair<double, char>>{
                    {static_cast<double>(n.remoteMsgs), 'x'},
                    {static_cast<double>(n.localMsgs), 'l'},
                    {static_cast<double>(n.downgradeMsgs), 'd'},
                };
            };
            report::printSegmentBar("Base", segs(b.net), norm);
            for (int c : {2, 4}) {
                const AppResult s =
                    run(name, DsmConfig::smp(np, c), p);
                report::printSegmentBar("SMP C" + std::to_string(c),
                                        segs(s.net), norm);
                std::fflush(stdout);
            }
        }
    }

    std::printf("\npaper: 40-60%% of Base-Shasta's messages at 8 "
                "procs (20-40%% at 16) are local; with clustering "
                "4 local messages become a small fraction, and "
                "downgrades are typically a small fraction too "
                "(the Waters are the exceptions).\n");
    return 0;
}
