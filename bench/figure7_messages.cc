/**
 * @file
 * Figure 7: protocol messages in 8- and 16-processor runs, split
 * into remote (inter-machine), local (intra-machine), and downgrade
 * messages, normalized to the Base-Shasta total.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Figure 7: messages (remote / local / downgrade) vs "
           "clustering",
           "Figure 7");
    std::printf("  legend: x = remote, l = local, d = downgrade\n");

    auto segs = [](const NetworkCounts &n) {
        return std::vector<std::pair<double, char>>{
            {static_cast<double>(n.remoteMsgs), 'x'},
            {static_cast<double>(n.localMsgs), 'l'},
            {static_cast<double>(n.downgradeMsgs), 'd'},
        };
    };
    SweepRunner sweep;
    for (int np : {8, 16}) {
        sweep.then([np] {
            std::printf("\n----- %d-processor runs (bars "
                        "normalized to Base total) -----\n",
                        np);
        });
        for (const auto &name : appNames()) {
            if (!appSelected(name))
                continue;
            const AppParams p = withStandardOptions(
                name, defaultParams(*createApp(name)));
            sweep.then([name] {
                std::printf("\n%s:\n", name.c_str());
            });
            auto norm = std::make_shared<double>(0.0);
            sweep.add(name, DsmConfig::base(np), p,
                      [segs, norm](const AppResult &b) {
                          *norm = static_cast<double>(
                              b.net.total());
                          report::printSegmentBar(
                              "Base", segs(b.net), *norm);
                      });
            for (int c : {2, 4}) {
                sweep.add(name, DsmConfig::smp(np, c), p,
                          [segs, c, norm](const AppResult &s) {
                              report::printSegmentBar(
                                  "SMP C" + std::to_string(c),
                                  segs(s.net), *norm);
                              std::fflush(stdout);
                          });
            }
        }
    }
    sweep.finish();

    std::printf("\npaper: 40-60%% of Base-Shasta's messages at 8 "
                "procs (20-40%% at 16) are local; with clustering "
                "4 local messages become a small fraction, and "
                "downgrades are typically a small fraction too "
                "(the Waters are the exceptions).\n");
    return 0;
}
