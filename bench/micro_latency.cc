/**
 * @file
 * Microbenchmarks of Sections 4.1 and 4.4:
 *
 *  - Base-Shasta 64-byte fetch latency: ~20 us remote (two hops),
 *    ~11 us from a processor on the same SMP.
 *  - SMP-Shasta's protocol operations cost a few microseconds more
 *    (line locking).
 *  - Downgrade cost: a read that triggers 1 downgrade adds ~10 us;
 *    each additional downgrade adds ~5 us.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

namespace
{

Task
readerKernel(Context &c, Addr a, ProcId reader, Tick *stall)
{
    if (c.id() == reader) {
        const Tick t0 = c.now();
        (void)co_await c.loadFp(a);
        *stall = c.now() - t0;
    }
    co_return;
}

Tick
fetchLatency(DsmConfig cfg, ProcId reader)
{
    Runtime rt(cfg);
    const Addr a = rt.allocHomed(64, 64, 0);
    Tick stall = 0;
    rt.run([&](Context &c) {
        return readerKernel(c, a, reader, &stall);
    });
    return stall;
}

Task
downgradeKernel(Context &c, Addr a, int touchers, Tick *stall)
{
    // Processors 4..4+touchers-1 (node 1) store to the block one
    // after another (simultaneous stores would merge into one miss
    // entry without upgrading the other private tables,
    // Section 3.4.2); processor 0 then reads, forcing touchers-1
    // downgrade messages (the handling processor downgrades itself
    // inline).
    for (int k = 0; k < touchers; ++k) {
        if (c.id() == 4 + k)
            co_await c.storeFp(a + static_cast<Addr>(c.id()) * 8,
                               1.0);
        co_await c.barrier();
    }
    if (c.id() == 0) {
        const Tick t0 = c.now();
        (void)co_await c.loadFp(a);
        *stall = c.now() - t0;
    }
    // Keep the node's processors polling at a realistic loop-backedge
    // cadence (~5 us between polls, like an application inner loop).
    for (int i = 0; i < 200; ++i) {
        c.compute(1500);
        co_await c.poll();
    }
    co_await c.barrier();
}

Tick
downgradeLatency(int touchers)
{
    DsmConfig cfg = DsmConfig::smp(8, 4);
    Runtime rt(cfg);
    // Home the block away from both the readers and the writers so
    // every run takes the same 3-hop path.
    const Addr a = rt.allocHomed(64, 64, 3);
    Tick stall = 0;
    rt.run([&](Context &c) {
        return downgradeKernel(c, a, touchers, &stall);
    });
    return stall;
}

} // namespace

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Microbenchmarks: fetch and downgrade latencies",
           "Sections 4.1 and 4.4");

    report::Table t({"measurement", "measured", "paper"});

    SweepRunner sweep;
    struct FetchRow
    {
        const char *label;
        DsmConfig cfg;
        ProcId reader;
        const char *paper;
    };
    const std::vector<FetchRow> fetches{
        {"Base 64B fetch, remote 2-hop", DsmConfig::base(8), 4,
         "~20 us"},
        {"Base 64B fetch, same SMP", DsmConfig::base(2), 1,
         "~11 us"},
        {"SMP 64B fetch, remote 2-hop", DsmConfig::smp(8, 4), 4,
         "a few us above Base"},
    };
    for (const auto &f : fetches) {
        auto lat = std::make_shared<Tick>(0);
        sweep.addWork(
            [f, lat] { *lat = fetchLatency(f.cfg, f.reader); },
            [&t, f, lat] {
                t.addRow({f.label,
                          report::fmtDouble(ticksToUs(*lat), 1) +
                              " us",
                          f.paper});
            },
            f.label);
    }

    auto base_dg = std::make_shared<Tick>(0);
    for (int k = 0; k <= 3; ++k) {
        // k touchers on the owning node produce k-1 downgrade
        // messages (k=0: served by the home node path).
        auto lat = std::make_shared<Tick>(0);
        std::string label = "read with " + std::to_string(k) +
                            " downgrade msg(s)";
        std::string paper =
            k == 0 ? "baseline"
                   : (k == 1 ? "+~10 us vs 0" : "+~5 us per extra");
        sweep.addWork(
            [k, lat] { *lat = downgradeLatency(k + 1); },
            [&t, k, lat, base_dg, label, paper] {
                if (k == 0)
                    *base_dg = *lat;
                t.addRow({label,
                          report::fmtDouble(ticksToUs(*lat), 1) +
                              " us (+" +
                              report::fmtDouble(
                                  ticksToUs(*lat - *base_dg), 1) +
                              ")",
                          paper});
            },
            label);
    }
    sweep.finish();
    t.print();
    return 0;
}
