/**
 * @file
 * Figure 5: execution-time breakdowns with the Table 2 variable-
 * granularity hints applied, for Base-Shasta and SMP-Shasta with
 * clustering 2 and 4, at 8 and 16 processors.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Figure 5: breakdowns with variable granularity",
           "Figure 5");
    report::printBarLegend();

    SweepRunner sweep;
    for (int np : {8, 16}) {
        sweep.then([np] {
            std::printf("\n----- %d-processor runs -----\n", np);
        });
        for (const auto &name : table2Apps()) {
            if (!appSelected(name))
                continue;
            AppParams p = withStandardOptions(
                name, defaultParams(*createApp(name)));
            p.variableGranularity = true;

            sweep.then([name, np] {
                std::printf("\n%s, %d procs, specified granularity "
                            "(bars normalized to B):\n",
                            name.c_str(), np);
            });
            auto norm = std::make_shared<Tick>(0);
            const std::vector<std::pair<const char *, DsmConfig>>
                cfgs{{"B", DsmConfig::base(np)},
                     {"C2", DsmConfig::smp(np, 2)},
                     {"C4", DsmConfig::smp(np, 4)}};
            for (const auto &[label, cfg] : cfgs) {
                sweep.add(name, cfg, p,
                          [label, norm](const AppResult &r) {
                              if (*norm == 0)
                                  *norm = r.breakdown.total;
                              report::printBreakdownBar(
                                  label, r.breakdown, *norm);
                              std::fflush(stdout);
                          });
            }
        }
    }
    sweep.finish();

    std::printf("\npaper: granularity tuning shrinks SMP-Shasta's "
                "edge for Barnes and LU-Contig, but FMM, LU, "
                "Volrend and Water-Nsq still gain at C4; the best "
                "performance overall is always SMP-Shasta plus "
                "variable granularity.\n");
    return 0;
}
