/**
 * @file
 * Table 2: effects of variable coherence granularity in Base-Shasta.
 *
 * Six applications get a single-line change raising the block size
 * of their main data structures; 16-processor Base-Shasta speedups
 * are compared against the default 64-byte blocks.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Table 2: variable block size in Base-Shasta (16 procs)",
           "Table 2");

    report::Table t({"app", "specified block", "speedup 64B",
                     "speedup specified", "misses 64B",
                     "misses specified"});

    SweepRunner sweep;
    for (const auto &name : table2Apps()) {
        if (!appSelected(name))
            continue;
        auto app = createApp(name);
        AppParams p = withStandardOptions(name, defaultParams(*app));
        AppParams pv = p;
        pv.variableGranularity = true;
        const int hint = app->granularityHint();

        auto seqT = std::make_shared<Tick>(0);
        auto def = std::make_shared<AppResult>();
        sweep.add(name, DsmConfig::sequential(), p,
                  [seqT](const AppResult &seq) {
                      *seqT = seq.wallTime;
                  });
        sweep.add(name, DsmConfig::base(16), p,
                  [def](const AppResult &r) { *def = r; });
        sweep.add(
            name, DsmConfig::base(16), pv,
            [&t, name, hint, seqT, def](const AppResult &var) {
                t.addRow(
                    {name, std::to_string(hint) + " B",
                     report::fmtDouble(
                         static_cast<double>(*seqT) /
                         static_cast<double>(def->wallTime)),
                     report::fmtDouble(
                         static_cast<double>(*seqT) /
                         static_cast<double>(var.wallTime)),
                     report::fmtCount(def->counters.totalMisses()),
                     report::fmtCount(
                         var.counters.totalMisses())});
                std::fflush(stdout);
            });
    }
    sweep.finish();
    t.print();

    std::printf("\npaper (16 procs, Base-Shasta): barnes 4.3->5.2, "
                "fmm 5.3->5.8, lu 5.2->6.8, lu-contig 4.5->8.8, "
                "volrend 4.7->5.3, water-nsq 5.6->6.1 -- larger "
                "blocks always help these six apps.\n");
    return 0;
}
