/**
 * @file
 * Section 4.3's efficiency check: the applications on a single
 * 4-processor machine under hardware cache coherence (the ANL-macro
 * runs) versus SMP-Shasta with clustering 4 (communication is then
 * mostly via the shared memory image; the protocol is only entered
 * for synchronization and private-table upgrades).  The paper
 * measures SMP-Shasta an average of 12.7% slower, mostly inline
 * check overhead.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("ANL comparison: hardware coherence vs SMP-Shasta on "
           "one 4-processor node",
           "Section 4.3");

    report::Table t({"app", "ANL (hw)", "SMP-Shasta C4",
                     "slowdown", "hw speedup (4p)"});
    double sum = 0;
    int count = 0;
    SweepRunner sweep;
    for (const auto &name : appNames()) {
        if (!appSelected(name))
            continue;
        const AppParams p = withStandardOptions(
            name, defaultParams(*createApp(name)));
        auto seqT = std::make_shared<Tick>(0);
        auto hwT = std::make_shared<Tick>(0);
        sweep.add(name, DsmConfig::sequential(), p,
                  [seqT](const AppResult &r) { *seqT = r.wallTime; });
        sweep.add(name, DsmConfig::hardware(4), p,
                  [hwT](const AppResult &r) { *hwT = r.wallTime; });
        sweep.add(name, DsmConfig::smp(4, 4), p,
                  [&, name, seqT, hwT](const AppResult &smp) {
                      const double slow = static_cast<double>(
                                              smp.wallTime - *hwT) /
                                          static_cast<double>(*hwT);
                      sum += slow;
                      ++count;
                      t.addRow({name, report::fmtSeconds(*hwT),
                                report::fmtSeconds(smp.wallTime),
                                report::fmtPercent(slow),
                                report::fmtDouble(
                                    static_cast<double>(*seqT) /
                                    static_cast<double>(*hwT))});
                      std::fflush(stdout);
                  });
    }
    sweep.finish();
    t.addRule();
    t.addRow({"average", "", "", report::fmtPercent(sum / count),
              ""});
    t.print();

    std::printf("\npaper: ANL runs get >= 3.8 speedup on 4 procs "
                "(LU 3.4, Ocean 3.0); SMP-Shasta is 12.7%% slower "
                "on average, mostly inline-check overhead.\n");
    return 0;
}
