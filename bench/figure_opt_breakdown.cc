/**
 * @file
 * PR 9 figure: Figure-4-style execution-time breakdowns per
 * application under each protocol fast-path knob — off, migratory
 * detection, check elision (with the app's ownership annotations),
 * adaptive block granularity, and all three together — on the
 * standard SMP configuration (16 processors, clustering 4), with
 * bars normalized to the opts-off run.
 *
 * The figure's headline number is the *protocol-cycle* total (task
 * time, which carries the inline-check cost, plus read/write miss
 * stall) for each knob relative to off; it is printed after every
 * bar.  All cycle counts are simulated and deterministic, so the
 * output is byte-identical across --jobs and --engine-threads.
 */

#include "bench_common.hh"

#include "mem/granularity_advisor.hh"

using namespace shasta;
using namespace shasta::bench;

namespace
{

/** Task + stall: the cycles the opt layer attacks.  Task time
 *  carries the inline checks (elision's target); read/write stall
 *  carries the miss round-trips; sync stall carries the
 *  wait-for-outstanding-stores at releases, which is where the
 *  upgrade round-trips migratory detection removes are paid.
 *  Message handling and bookkeeping ("m"/"o") are excluded — the
 *  knobs don't touch them. */
Tick
protoCycles(const TimeBreakdown &bd)
{
    return bd.task() + bd.parts.read + bd.parts.write +
           bd.parts.sync;
}

struct Leg
{
    const char *label;
    OptConfig opt;
};

std::vector<Leg>
optLegs()
{
    OptConfig mig, elide, adaptive, all;
    mig.migratory = true;
    elide.elide = true;
    adaptive.adaptive = true;
    all.migratory = all.elide = all.adaptive = true;
    return {
        {"off", OptConfig{}}, {"mig", mig},  {"elide", elide},
        {"adapt", adaptive},  {"all", all},
    };
}

void
breakdownFor(SweepRunner &sweep, const std::string &name, int np,
             int clustering)
{
    const AppParams base =
        withStandardOptions(name, defaultParams(*createApp(name)));

    sweep.then([name, np, clustering] {
        std::printf("\n%s, smp-%dx%d (bars normalized to off):\n",
                    name.c_str(), np, clustering);
    });
    // Commits run in enqueue order, so the off leg's totals are in
    // place before any bar that is normalized against them prints.
    auto norm = std::make_shared<Tick>(0);
    auto offProto = std::make_shared<Tick>(0);
    for (const Leg &leg : optLegs()) {
        DsmConfig cfg = DsmConfig::smp(np, clustering);
        cfg.opt = leg.opt;
        AppParams p = base;
        // The elide knob is inert without the app's annotations.
        p.annotate = leg.opt.elide;
        auto result = std::make_shared<AppResult>();
        const std::string label = leg.label;
        sweep.addWork(
            [name, cfg, p, result] {
                AppParams pp = p;
                GranularityAdvisor adv;
                if (cfg.opt.adaptive) {
                    // Profile pass: same program, knobs off, so the
                    // plan reflects the unoptimized sharing profile
                    // (mirrors how a production run would train on
                    // an uninstrumented execution).
                    auto prof = createApp(name);
                    AppParams profP = pp;
                    profP.advisor = &adv;
                    DsmConfig profCfg = cfg;
                    profCfg.opt = OptConfig{};
                    runApp(*prof, withFaultSpec(profCfg), profP);
                    adv.finalize(cfg.lineSize);
                    pp.advisor = &adv;
                }
                auto app = createApp(name);
                *result = runApp(*app, withFaultSpec(cfg), pp);
            },
            [name, cfg, label, norm, offProto, result] {
                recordRun(name, cfg, *result);
                const TimeBreakdown bd = result->breakdown;
                if (*norm == 0)
                    *norm = bd.total;
                report::printBreakdownBar(label, bd, *norm);
                const Tick proto = protoCycles(bd);
                if (*offProto == 0) {
                    *offProto = proto;
                    std::printf("  %-14s   task+stall %llu cycles\n",
                                "", static_cast<unsigned long long>(
                                        proto));
                } else {
                    const double delta =
                        100.0 *
                        (static_cast<double>(proto) -
                         static_cast<double>(*offProto)) /
                        static_cast<double>(*offProto);
                    std::printf("  %-14s   task+stall %llu cycles "
                                "(%+.1f%% vs off)\n",
                                "",
                                static_cast<unsigned long long>(
                                    proto),
                                delta);
                }
                std::fflush(stdout);
            },
            name + "/" + configLabel(cfg) + "/" + label);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Protocol fast paths: per-app x per-opt cycle breakdown",
           "the Figure 4 methodology, applied to the opt layer,");
    report::printBarLegend();
    if (const char *e = std::getenv("SHASTA_OPT");
        e != nullptr && *e != '\0') {
        // SHASTA_OPT / --opt override every Runtime's knobs
        // (OptConfig::applyEnv), including the per-leg settings
        // below; CI's determinism diff runs the sweep that way on
        // purpose.  Say so rather than printing misleading labels.
        std::printf("[SHASTA_OPT=%s overrides every leg's knobs]\n",
                    e);
    }

    const int np = 16;
    const int clustering = 4;
    SweepRunner sweep;
    for (const auto &name : appNames()) {
        if (!appSelected(name))
            continue;
        breakdownFor(sweep, name, np, clustering);
    }
    sweep.finish();

    std::printf("\nmigratory detection collapses the water apps' "
                "read-miss + upgrade pairs into one exclusive "
                "grant; elision deletes check cycles wherever an "
                "annotation applies; adaptive granularity re-blocks "
                "regions the profile pass saw thrashing.\n");
    return 0;
}
