/**
 * @file
 * Table 3: larger problem sizes (64-byte lines, no granularity
 * hints): sequential times, checking overheads, and 16-processor
 * speedups for Base-Shasta and SMP-Shasta (clustering 4).
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);
    banner("Table 3: larger problem sizes (16 procs)", "Table 3");

    report::Table t({"app", "problem", "sequential", "Base ovh",
                     "SMP ovh", "Base speedup", "SMP speedup"});

    for (const auto &name : table3Apps()) {
        if (!appSelected(name))
            continue;
        auto app = createApp(name);
        AppParams p = app->largeParams();
        if (quickMode())
            p = defaultParams(*app);
        p = withStandardOptions(name, p);

        const AppResult seq = runSequential(name, p);
        const AppResult base1 = run(name, DsmConfig::base(1), p);
        const AppResult smp1 = run(name, DsmConfig::smp(1, 1), p);
        const AppResult base16 = run(name, DsmConfig::base(16), p);
        const AppResult smp16 = run(name, DsmConfig::smp(16, 4), p);

        t.addRow(
            {name, "n=" + std::to_string(p.n),
             report::fmtSeconds(seq.wallTime),
             report::fmtPercent(
                 static_cast<double>(base1.wallTime -
                                     seq.wallTime) /
                 static_cast<double>(seq.wallTime)),
             report::fmtPercent(
                 static_cast<double>(smp1.wallTime - seq.wallTime) /
                 static_cast<double>(seq.wallTime)),
             report::fmtDouble(static_cast<double>(seq.wallTime) /
                               static_cast<double>(base16.wallTime)),
             report::fmtDouble(static_cast<double>(seq.wallTime) /
                               static_cast<double>(smp16.wallTime))});
        std::fflush(stdout);
    }
    t.print();

    std::printf("\npaper (scaled inputs): speedups improve for "
                "both protocols at the larger sizes, and SMP-Shasta "
                "still beats Base-Shasta for every app except "
                "Water-Nsquared.\n");
    return 0;
}
