/**
 * @file
 * Table 3: larger problem sizes (64-byte lines, no granularity
 * hints): sequential times, checking overheads, and 16-processor
 * speedups for Base-Shasta and SMP-Shasta (clustering 4).
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Table 3: larger problem sizes (16 procs)", "Table 3");

    report::Table t({"app", "problem", "sequential", "Base ovh",
                     "SMP ovh", "Base speedup", "SMP speedup"});

    SweepRunner sweep;
    for (const auto &name : table3Apps()) {
        if (!appSelected(name))
            continue;
        auto app = createApp(name);
        AppParams p = app->largeParams();
        if (quickMode())
            p = defaultParams(*app);
        p = withStandardOptions(name, p);

        auto seqT = std::make_shared<Tick>(0);
        auto base1T = std::make_shared<Tick>(0);
        auto smp1T = std::make_shared<Tick>(0);
        auto base16T = std::make_shared<Tick>(0);
        sweep.add(name, DsmConfig::sequential(), p,
                  [seqT](const AppResult &r) { *seqT = r.wallTime; });
        sweep.add(name, DsmConfig::base(1), p,
                  [base1T](const AppResult &r) {
                      *base1T = r.wallTime;
                  });
        sweep.add(name, DsmConfig::smp(1, 1), p,
                  [smp1T](const AppResult &r) {
                      *smp1T = r.wallTime;
                  });
        sweep.add(name, DsmConfig::base(16), p,
                  [base16T](const AppResult &r) {
                      *base16T = r.wallTime;
                  });
        sweep.add(
            name, DsmConfig::smp(16, 4), p,
            [&t, name, p, seqT, base1T, smp1T,
             base16T](const AppResult &smp16) {
                t.addRow(
                    {name, "n=" + std::to_string(p.n),
                     report::fmtSeconds(*seqT),
                     report::fmtPercent(
                         static_cast<double>(*base1T - *seqT) /
                         static_cast<double>(*seqT)),
                     report::fmtPercent(
                         static_cast<double>(*smp1T - *seqT) /
                         static_cast<double>(*seqT)),
                     report::fmtDouble(
                         static_cast<double>(*seqT) /
                         static_cast<double>(*base16T)),
                     report::fmtDouble(
                         static_cast<double>(*seqT) /
                         static_cast<double>(smp16.wallTime))});
                std::fflush(stdout);
            });
    }
    sweep.finish();
    t.print();

    std::printf("\npaper (scaled inputs): speedups improve for "
                "both protocols at the larger sizes, and SMP-Shasta "
                "still beats Base-Shasta for every app except "
                "Water-Nsquared.\n");
    return 0;
}
