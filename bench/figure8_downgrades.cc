/**
 * @file
 * Figure 8: distribution of the number of downgrade messages sent
 * per block downgrade, for 8- and 16-processor SMP-Shasta runs with
 * clustering 4.  The private state tables make most downgrades need
 * zero or one message (Section 4.4).
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Figure 8: downgrade messages per block downgrade "
           "(clustering 4)",
           "Figure 8");

    report::Table t({"app", "procs", "0 msgs", "1 msg", "2 msgs",
                     "3 msgs", "avg", "downgrades"});
    SweepRunner sweep;
    for (const auto &name : appNames()) {
        if (!appSelected(name))
            continue;
        for (int np : {8, 16}) {
            const AppParams p = withStandardOptions(
                name, defaultParams(*createApp(name)));
            sweep.add(
                name, DsmConfig::smp(np, 4), p,
                [&t, name, np](const AppResult &r) {
                    const auto &d = r.counters.downgradeOps;
                    const double total = static_cast<double>(
                        r.counters.totalDowngradeOps());
                    if (total == 0) {
                        t.addRow({name, std::to_string(np), "-",
                                  "-", "-", "-", "-", "0"});
                        return;
                    }
                    const double avg =
                        (0.0 * d[0] + 1.0 * d[1] + 2.0 * d[2] +
                         3.0 * d[3]) /
                        total;
                    t.addRow({name, std::to_string(np),
                              report::fmtPercent(d[0] / total),
                              report::fmtPercent(d[1] / total),
                              report::fmtPercent(d[2] / total),
                              report::fmtPercent(d[3] / total),
                              report::fmtDouble(avg),
                              report::fmtCount(
                                  r.counters.totalDowngradeOps())});
                    std::fflush(stdout);
                });
        }
    }
    sweep.finish();
    t.print();

    std::printf("\npaper: the large majority of downgrades need 0 "
                "or 1 messages; only a small fraction need 3, "
                "except the migratory Water codes; the average "
                "drops from 8 to 16 processors.\n");
    return 0;
}
