/**
 * @file
 * Figure 4: execution-time breakdowns of 8- and 16-processor runs on
 * Base-Shasta ("B") and SMP-Shasta with clustering 1, 2 and 4 ("C1",
 * "C2", "C4"), normalized to the Base-Shasta run.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

namespace
{

void
breakdownFor(const std::string &name, int np)
{
    const AppParams p = withStandardOptions(
        name, defaultParams(*createApp(name)));

    struct Cfg
    {
        const char *label;
        DsmConfig cfg;
    };
    const std::vector<Cfg> cfgs{
        {"B", DsmConfig::base(np)},
        {"C1", DsmConfig::smp(np, 1)},
        {"C2", DsmConfig::smp(np, 2)},
        {"C4", DsmConfig::smp(np, 4)},
    };

    std::printf("\n%s, %d processors (bars normalized to B):\n",
                name.c_str(), np);
    Tick norm = 0;
    for (const auto &c : cfgs) {
        const AppResult r = run(name, c.cfg, p);
        const TimeBreakdown bd = r.breakdown;
        if (norm == 0)
            norm = bd.total;
        report::printBreakdownBar(c.label, bd, norm);
        std::fflush(stdout);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);
    banner("Figure 4: execution time breakdowns (8 and 16 procs)",
           "Figure 4");
    report::printBarLegend();

    for (int np : {8, 16}) {
        std::printf("\n----- %d-processor runs -----\n", np);
        for (const auto &name : appNames()) {
            if (!appSelected(name))
                continue;
            breakdownFor(name, np);
        }
    }

    std::printf("\npaper: C1 is always worse than B (extra check "
                "and locking overheads); read/write stalls shrink "
                "as clustering grows; sync changes little; most "
                "apps gain significantly at C4.\n");
    return 0;
}
