/**
 * @file
 * Figure 4: execution-time breakdowns of 8- and 16-processor runs on
 * Base-Shasta ("B") and SMP-Shasta with clustering 1, 2 and 4 ("C1",
 * "C2", "C4"), normalized to the Base-Shasta run.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

namespace
{

void
breakdownFor(SweepRunner &sweep, const std::string &name, int np)
{
    const AppParams p = withStandardOptions(
        name, defaultParams(*createApp(name)));

    struct Cfg
    {
        const char *label;
        DsmConfig cfg;
    };
    const std::vector<Cfg> cfgs{
        {"B", DsmConfig::base(np)},
        {"C1", DsmConfig::smp(np, 1)},
        {"C2", DsmConfig::smp(np, 2)},
        {"C4", DsmConfig::smp(np, 4)},
    };

    sweep.then([name, np] {
        std::printf("\n%s, %d processors (bars normalized to B):\n",
                    name.c_str(), np);
    });
    // The Base run's total is the normalization for the whole group;
    // commits run in enqueue order, so it is set before any bar
    // that needs it prints.
    auto norm = std::make_shared<Tick>(0);
    for (const auto &c : cfgs) {
        const char *label = c.label;
        sweep.add(name, c.cfg, p,
                  [label, norm](const AppResult &r) {
                      const TimeBreakdown bd = r.breakdown;
                      if (*norm == 0)
                          *norm = bd.total;
                      report::printBreakdownBar(label, bd, *norm);
                      std::fflush(stdout);
                  });
    }
}

} // namespace

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Figure 4: execution time breakdowns (8 and 16 procs)",
           "Figure 4");
    report::printBarLegend();

    SweepRunner sweep;
    for (int np : {8, 16}) {
        sweep.then([np] {
            std::printf("\n----- %d-processor runs -----\n", np);
        });
        for (const auto &name : appNames()) {
            if (!appSelected(name))
                continue;
            breakdownFor(sweep, name, np);
        }
    }
    sweep.finish();

    std::printf("\npaper: C1 is always worse than B (extra check "
                "and locking overheads); read/write stalls shrink "
                "as clustering grows; sync changes little; most "
                "apps gain significantly at C4.\n");
    return 0;
}
