/**
 * @file
 * Scaling sweep: how far past the paper's 16 processors does the
 * simulator go?
 *
 * Not a figure from WRL RR 97/3 — the prototype tops out at 4x4
 * AlphaServers — but the natural follow-on question: with sparse
 * per-pair state (net/pair_map.hh) and sharded home directories
 * (proto/directory.hh), the simulator sweeps P in {16, 64, 256,
 * 1024} under fault rates {0, 1, 2, 5}%, reporting for each config
 * the simulated wall time, message/retransmit load, the live-pair
 * footprint (versus the P^2 a dense table would hold), directory
 * occupancy, and peak shard pressure.
 *
 * The workload is a ring exchange: every processor stores its own
 * 64-byte slot, reads its ring neighbor's, and one processor in 64
 * also reads one of a handful of hot blocks homed at processor 0 —
 * point-to-point traffic that keeps the active pair set O(P) while
 * still concentrating load on a few directory entries.
 *
 * Output discipline: stdout and --stats-json carry only
 * deterministic simulated statistics, so CI can diff --jobs=1
 * against --jobs=4 byte for byte.  Host-side throughput (items/s,
 * wall millis, peak RSS) is written separately to the JSON file
 * named by SHASTA_BENCH_JSON, which is archived as an artifact, not
 * diffed.
 *
 * Knobs: SHASTA_QUICK=1 caps the sweep at P=256 and fault rates
 * {0, 2}%; SHASTA_BENCH_JSON=FILE writes the host-metrics JSON.
 *
 * A second section compares the serial event loop against the
 * conservative-lookahead parallel engine (--engine-threads, PR 8) on
 * a dense barrier-free kernel at P in {64, 256, 1024}: each pair of
 * runs must produce byte-identical statistics JSON (the bench exits
 * nonzero otherwise), and the host-side wall times land in the file
 * named by SHASTA_PDES_JSON.  Speedup is host-dependent — a 1-core
 * container shows none; CI's 4-core runners do — so like the sweep
 * above, stdout carries only the deterministic simulated columns.
 */

#include <chrono>
#include <memory>
#include <thread>

#include <sys/resource.h>

#include "bench_common.hh"
#include "sim/pdes.hh"

using namespace shasta;
using namespace shasta::bench;

namespace
{

struct ScaleConfig
{
    int procs;
    double faultPct;
};

/** Deterministic simulated results of one config. */
struct SimResult
{
    obs::RunSummary summary;
    std::uint64_t livePairs = 0;
    std::uint64_t items = 0;
    /** Host-side, artifact-only (never printed to stdout). */
    double hostMillis = 0.0;
};

constexpr int kIters = 4;

Task
ringKernel(Context &c, Addr slots, Addr hot, int procs, int iters)
{
    const ProcId me = c.id();
    const Addr mine = slots + static_cast<Addr>(me) * 64;
    const Addr next =
        slots + static_cast<Addr>((me + 1) % procs) * 64;
    for (int it = 0; it < iters; ++it) {
        co_await c.storeFp(mine, static_cast<double>(me + it));
        co_await c.barrier();
        // Two processors on different machines rewrite the same hot
        // block every iteration: each write misses (the other
        // writer's previous ownership invalidated the copy), so two
        // ownership requests race to the home and the loser queues
        // behind the busy entry — exercising the directory's waiting
        // queues and the per-shard queue-depth counters this bench
        // reports.  One processor in 64 also reads the block,
        // spreading its sharer set across nodes.
        if (me == 0 || me == procs / 2)
            co_await c.storeFp(hot, static_cast<double>(me + it));
        if (me % 64 == 1)
            (void)co_await c.loadFp(hot);
        (void)co_await c.loadFp(next);
        co_await c.barrier();
    }
}

SimResult
runConfig(const ScaleConfig &sc)
{
    DsmConfig cfg = DsmConfig::smp(sc.procs, 4);
    if (sc.faultPct > 0.0) {
        cfg.fault.dropPct = sc.faultPct;
        cfg.fault.dupPct = sc.faultPct / 2.0;
        cfg.fault.reorderPct = sc.faultPct / 2.0;
    }

    const auto t0 = std::chrono::steady_clock::now();
    Runtime rt(cfg);
    const Addr slots = rt.alloc(
        static_cast<std::size_t>(sc.procs) * 64, 64);
    const Addr hot = rt.allocHomed(8 * 64, 64, 0);
    rt.run([&](Context &c) {
        return ringKernel(c, slots, hot, sc.procs, kIters);
    });
    const auto t1 = std::chrono::steady_clock::now();

    SimResult r;
    r.summary = rt.runSummary();
    r.summary.app = "scaling-ring";
    r.summary.config =
        configLabel(cfg) + "-drop" +
        std::to_string(static_cast<int>(sc.faultPct));
    const Network &net = rt.network();
    if (net.reliability() != nullptr)
        r.livePairs = net.reliability()->livePairs();
    r.items = static_cast<std::uint64_t>(sc.procs) * kIters;
    r.hostMillis =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return r;
}

// --------------------------------------------------------------------
// Parallel-engine comparison (PR 8)
// --------------------------------------------------------------------

/** Dense kernel for the engine comparison: one barrier in, one out,
 *  and in between every processor streams store-own / load-peer
 *  misses against a partner one machine over — continuous
 *  cross-machine protocol traffic with no global synchronization, the
 *  shape where lookahead windows can actually run machines
 *  concurrently.  beginMeasure flips the engine out of its serial
 *  start-up phase. */
Task
pdesKernel(Context &c, Addr slots, int procs, int rounds)
{
    const ProcId me = c.id();
    const Addr mine = slots + static_cast<Addr>(me) * 64;
    const Addr peer =
        slots + static_cast<Addr>((me + 4) % procs) * 64;
    co_await c.barrier();
    c.beginMeasure();
    for (int r = 0; r < rounds; ++r) {
        co_await c.storeFp(mine, static_cast<double>(me + r));
        (void)co_await c.loadFp(peer);
    }
    co_await c.barrier();
}

struct PdesResult
{
    std::string json;
    std::uint64_t simTicks = 0;
    std::uint64_t remoteMsgs = 0;
    std::uint64_t windows = 0;
    /** Host-side, artifact-only. */
    double hostMillis = 0.0;
};

constexpr int kPdesRounds = 12;

PdesResult
runPdesConfig(int procs, int threads)
{
    // Runtime re-reads SHASTA_ENGINE_THREADS in its constructor, so
    // pin the env var for this run (a --engine-threads flag on the
    // bench itself would otherwise override both sides of the
    // comparison with the same value).
    setenv("SHASTA_ENGINE_THREADS", std::to_string(threads).c_str(),
           1);
    DsmConfig cfg = DsmConfig::smp(procs, 4);

    const auto t0 = std::chrono::steady_clock::now();
    Runtime rt(cfg);
    const Addr slots =
        rt.alloc(static_cast<std::size_t>(procs) * 64, 64);
    rt.run([&](Context &c) {
        return pdesKernel(c, slots, procs, kPdesRounds);
    });
    const auto t1 = std::chrono::steady_clock::now();

    obs::RunSummary s = rt.runSummary();
    s.app = "pdes-dense";
    s.config = configLabel(cfg); // same label both runs: JSON must
                                 // match byte for byte

    PdesResult r;
    r.json = obs::toJson(s);
    r.simTicks = static_cast<std::uint64_t>(s.wallTime);
    r.remoteMsgs = s.net.remoteMsgs;
    if (rt.engine() != nullptr)
        r.windows = rt.engine()->windows();
    r.hostMillis =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    unsetenv("SHASTA_ENGINE_THREADS");
    return r;
}

std::uint64_t
peakShardEntries(const DirCounters &d)
{
    std::uint64_t peak = 0;
    for (const std::uint64_t n : d.shardEntries)
        peak = peak > n ? peak : n;
    return peak;
}

long
maxRssKb()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

} // namespace

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Scaling sweep: 16 to 1024 simulated processors",
           "no single figure; extends Section 4");

    std::vector<int> procsList{16, 64, 256, 1024};
    std::vector<double> faultList{0.0, 1.0, 2.0, 5.0};
    if (quickMode()) {
        procsList = {16, 64, 256};
        faultList = {0.0, 2.0};
    }

    std::vector<ScaleConfig> configs;
    for (const int p : procsList)
        for (const double f : faultList)
            configs.push_back(ScaleConfig{p, f});

    report::Table t({"procs", "fault%", "simTicks", "remoteMsgs",
                     "retransmits", "livePairs", "densePairs",
                     "dirEntries", "peakShardEnt", "peakShardQ"});

    // Collected at commit time (enqueue order), so the artifact JSON
    // is ordered small-P first and peak-RSS readings are monotone.
    std::vector<std::pair<ScaleConfig, SimResult>> done;

    SweepRunner sweep;
    for (const ScaleConfig &sc : configs) {
        auto res = std::make_shared<SimResult>();
        const std::string label =
            "scaling/p" + std::to_string(sc.procs) + "-drop" +
            std::to_string(static_cast<int>(sc.faultPct));
        sweep.addWork([sc, res] { *res = runConfig(sc); },
                      [&t, &done, sc, res] {
                          const obs::RunSummary &s = res->summary;
                          t.addRow(
                              {std::to_string(sc.procs),
                               std::to_string(static_cast<int>(
                                   sc.faultPct)),
                               std::to_string(s.wallTime),
                               std::to_string(s.net.remoteMsgs),
                               std::to_string(s.net.rel.retransmits),
                               std::to_string(res->livePairs),
                               std::to_string(
                                   static_cast<std::uint64_t>(
                                       sc.procs) *
                                   static_cast<std::uint64_t>(
                                       sc.procs)),
                               std::to_string(s.dir.entries),
                               std::to_string(
                                   peakShardEntries(s.dir)),
                               std::to_string(s.dir.peakQueued)});
                          if (!options().statsJsonPath.empty()) {
                              const std::lock_guard<std::mutex> lock(
                                  recordedRunsMutex());
                              recordedRuns().push_back(res->summary);
                          }
                          done.emplace_back(sc, *res);
                      },
                      label);
    }
    sweep.finish();
    t.print();

    // Host-metrics artifact (SHASTA_BENCH_JSON): throughput and
    // memory are host-dependent, so they never touch stdout or
    // --stats-json.  maxRssKb is the process-wide high-water mark
    // after the whole sweep — dominated by the largest config.
    if (const char *path = std::getenv("SHASTA_BENCH_JSON");
        path != nullptr && *path != '\0') {
        std::FILE *f = std::fopen(path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "figure_scaling: cannot write %s\n",
                         path);
            return 1;
        }
        const long rss = maxRssKb();
        std::fputs("{\"bench\": \"figure_scaling\", \"runs\": [\n",
                   f);
        for (std::size_t i = 0; i < done.size(); ++i) {
            const ScaleConfig &sc = done[i].first;
            const SimResult &r = done[i].second;
            const double secs = r.hostMillis / 1000.0;
            const double ips =
                secs > 0.0 ? static_cast<double>(r.items) / secs
                           : 0.0;
            std::fprintf(
                f,
                "  {\"procs\": %d, \"faultPct\": %.1f, "
                "\"simTicks\": %lld, \"items\": %llu, "
                "\"itemsPerSec\": %.1f, \"hostMillis\": %.2f, "
                "\"maxRssKb\": %ld, \"livePairs\": %llu, "
                "\"densePairs\": %llu, \"dirEntries\": %llu, "
                "\"peakShardEntries\": %llu, "
                "\"peakShardQueued\": %llu, "
                "\"retransmits\": %llu}%s\n",
                sc.procs, sc.faultPct,
                static_cast<long long>(r.summary.wallTime),
                static_cast<unsigned long long>(r.items), ips,
                r.hostMillis, rss,
                static_cast<unsigned long long>(r.livePairs),
                static_cast<unsigned long long>(sc.procs) *
                    static_cast<unsigned long long>(sc.procs),
                static_cast<unsigned long long>(
                    r.summary.dir.entries),
                static_cast<unsigned long long>(
                    peakShardEntries(r.summary.dir)),
                static_cast<unsigned long long>(
                    r.summary.dir.peakQueued),
                static_cast<unsigned long long>(
                    r.summary.net.rel.retransmits),
                i + 1 < done.size() ? "," : "");
        }
        std::fputs("]}\n", f);
        std::fclose(f);
    }

    // ----------------------------------------------------------------
    // Serial vs parallel engine on the dense kernel.  Runs
    // sequentially (not through SweepRunner) so each wall-time
    // reading owns the whole host.
    // ----------------------------------------------------------------
    banner("Parallel engine: serial vs --engine-threads=4",
           "no single figure; byte-equal replay beyond Section 4");

    std::vector<int> pdesProcs{64, 256, 1024};
    if (quickMode())
        pdesProcs = {64, 256};

    report::Table pt({"procs", "simTicks", "remoteMsgs", "windows",
                      "identical"});
    struct PdesRow
    {
        int procs;
        PdesResult serial;
        PdesResult parallel;
    };
    std::vector<PdesRow> pdesRows;
    for (const int procs : pdesProcs) {
        const PdesResult serial = runPdesConfig(procs, 1);
        const PdesResult par = runPdesConfig(procs, 4);
        if (par.json != serial.json) {
            std::fprintf(stderr,
                         "figure_scaling: parallel engine diverged "
                         "from serial at procs=%d\n",
                         procs);
            return 1;
        }
        pt.addRow({std::to_string(procs),
                   std::to_string(serial.simTicks),
                   std::to_string(serial.remoteMsgs),
                   std::to_string(par.windows), "yes"});
        pdesRows.push_back(PdesRow{procs, serial, par});
    }
    pt.print();

    // Host-metrics artifact (SHASTA_PDES_JSON): wall times and the
    // core count they were measured on.  Speedup below 1.0 on a
    // single-core host is expected and honest.
    if (const char *path = std::getenv("SHASTA_PDES_JSON");
        path != nullptr && *path != '\0') {
        std::FILE *f = std::fopen(path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "figure_scaling: cannot write %s\n",
                         path);
            return 1;
        }
        std::fprintf(f,
                     "{\"bench\": \"figure_scaling_pdes\", "
                     "\"engineThreads\": 4, \"hostCores\": %u, "
                     "\"rounds\": %d, \"runs\": [\n",
                     std::thread::hardware_concurrency(),
                     kPdesRounds);
        for (std::size_t i = 0; i < pdesRows.size(); ++i) {
            const PdesRow &row = pdesRows[i];
            const double speedup =
                row.parallel.hostMillis > 0.0
                    ? row.serial.hostMillis / row.parallel.hostMillis
                    : 0.0;
            std::fprintf(
                f,
                "  {\"procs\": %d, \"simTicks\": %llu, "
                "\"windows\": %llu, \"serialMillis\": %.2f, "
                "\"parallelMillis\": %.2f, \"speedup\": %.3f, "
                "\"identical\": true}%s\n",
                row.procs,
                static_cast<unsigned long long>(row.serial.simTicks),
                static_cast<unsigned long long>(
                    row.parallel.windows),
                row.serial.hostMillis, row.parallel.hostMillis,
                speedup, i + 1 < pdesRows.size() ? "," : "");
        }
        std::fputs("]}\n", f);
        std::fclose(f);
    }
    return 0;
}
