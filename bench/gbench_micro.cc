/**
 * @file
 * Host-level microbenchmarks (google-benchmark): throughput of the
 * simulator's building blocks.  These guard against host-side
 * performance regressions; the paper-facing numbers live in the
 * per-table/figure binaries.
 */

#include <benchmark/benchmark.h>

#include "check/check_model.hh"
#include "dsm/runtime.hh"
#include "mem/node_memory.hh"
#include "mem/shared_heap.hh"
#include "proto/state_table.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace shasta
{
namespace
{

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    EventQueue q;
    std::int64_t sink = 0;
    Tick t = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(t + (i * 37) % 97, [&] { ++sink; });
        while (q.step()) {
        }
        t = q.now() + 1;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleStep);

void
BM_RngNextDouble(benchmark::State &state)
{
    Rng r(1);
    double sink = 0;
    for (auto _ : state)
        sink += r.nextDouble();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNextDouble);

void
BM_NodeMemoryReadWrite(benchmark::State &state)
{
    NodeMemory m;
    Addr a = kSharedBase;
    double sink = 0;
    for (auto _ : state) {
        m.write<double>(a, sink);
        sink += m.read<double>(a + 8);
        a = kSharedBase + (a + 64 - kSharedBase) % (1 << 20);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeMemoryReadWrite);

void
BM_SharedHeapBlockLookup(benchmark::State &state)
{
    SharedHeap h(64);
    h.alloc(1 << 20, 2048);
    LineIdx line = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += h.blockOf(line).numLines;
        line = (line + 7) % (1 << 14);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedHeapBlockLookup);

void
BM_StateTablePrivCheck(benchmark::State &state)
{
    NodeStateTable t(4);
    t.setShared(0, 1024, LState::Exclusive);
    t.setPriv(0, 1024, 2, PState::Shared);
    LineIdx line = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += static_cast<std::uint64_t>(t.priv(line, 2));
        line = (line + 13) % 1024;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateTablePrivCheck);

Task
pingPong(Context &c, Addr a, int rounds)
{
    for (int r = 0; r < rounds; ++r) {
        if (r % 2 == static_cast<int>(c.id() != 0))
            co_await c.storeI64(a, r);
        co_await c.barrier();
    }
}

void
BM_ProtocolPingPong(benchmark::State &state)
{
    // End-to-end: two processors on different machines migrate one
    // block back and forth (simulated protocol work per host
    // second).
    for (auto _ : state) {
        DsmConfig cfg = DsmConfig::base(8);
        Runtime rt(cfg);
        const Addr a = rt.allocHomed(64, 64, 0);
        rt.run([&](Context &c) -> Task {
            if (c.id() == 0 || c.id() == 4)
                return pingPong(c, a, 50);
            return [](Context &cc) -> Task {
                co_await cc.barrier();
                for (int r = 1; r < 50; ++r)
                    co_await cc.barrier();
            }(c);
        });
        benchmark::DoNotOptimize(rt.wallTime());
    }
    state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_ProtocolPingPong);

} // namespace
} // namespace shasta

BENCHMARK_MAIN();
