/**
 * @file
 * Host-level microbenchmarks (google-benchmark): throughput of the
 * simulator's building blocks.  These guard against host-side
 * performance regressions; the paper-facing numbers live in the
 * per-table/figure binaries.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hh"
#include "check/check_model.hh"
#include "dsm/runtime.hh"
#include "mem/node_memory.hh"
#include "mem/shared_heap.hh"
#include "proto/state_table.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace shasta
{
namespace
{

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    EventQueue q;
    std::int64_t sink = 0;
    Tick t = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(t + (i * 37) % 97, [&] { ++sink; });
        while (q.step()) {
        }
        t = q.now() + 1;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleStep);

void
BM_EventQueueChurn(benchmark::State &state)
{
    // Timing-wheel stress at a given horizon: schedule/fire cycles
    // whose delays land on level 0 (short), a higher level that must
    // cascade (long), or a same-tick FIFO burst (0).  Steady state is
    // allocation-free: nodes recycle through the slab.
    const Tick horizon = static_cast<Tick>(state.range(0));
    EventQueue q;
    std::int64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.scheduleAfter(horizon + static_cast<Tick>(i % 5),
                            [&] { ++sink; });
        q.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueChurn)
    ->Arg(0)
    ->Arg(100)
    ->Arg(70'000)
    ->Arg(20'000'000);

void
BM_RngNextDouble(benchmark::State &state)
{
    Rng r(1);
    double sink = 0;
    for (auto _ : state)
        sink += r.nextDouble();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNextDouble);

void
BM_NodeMemoryReadWrite(benchmark::State &state)
{
    NodeMemory m;
    Addr a = kSharedBase;
    double sink = 0;
    for (auto _ : state) {
        m.write<double>(a, sink);
        sink += m.read<double>(a + 8);
        a = kSharedBase + (a + 64 - kSharedBase) % (1 << 20);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeMemoryReadWrite);

void
BM_SharedHeapBlockLookup(benchmark::State &state)
{
    SharedHeap h(64);
    h.alloc(1 << 20, 2048);
    LineIdx line = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += h.blockOf(line).numLines;
        line = (line + 7) % (1 << 14);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedHeapBlockLookup);

void
BM_StateTablePrivCheck(benchmark::State &state)
{
    NodeStateTable t(4);
    t.setShared(0, 1024, LState::Exclusive);
    t.setPriv(0, 1024, 2, PState::Shared);
    LineIdx line = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += static_cast<std::uint64_t>(t.priv(line, 2));
        line = (line + 13) % 1024;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateTablePrivCheck);

void
BM_MessageDispatch(benchmark::State &state)
{
    // Steady-state message hot path: build, send, deliver through the
    // network timing model and event queue, drain the destination
    // mailbox, and dispatch through the handler table.  Payload size
    // matches a typical data-bearing reply.  The destination is
    // parked (Done) so delivery drains immediately, as it does for a
    // processor blocked on a miss.
    const int payload_bytes = static_cast<int>(state.range(0));
    DsmConfig cfg = DsmConfig::base(8);
    Runtime rt(cfg);
    Protocol &proto = rt.protocol();
    std::uint64_t handled = 0;
    proto.setSyncHandler(
        [&handled](Proc &, Message &&) { ++handled; });
    Proc &p0 = rt.proc(0);
    rt.proc(1).status = ProcStatus::Done;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            Message m;
            m.type = MsgType::BarrierArrive;
            m.dst = 1;
            m.addr = 0;
            m.requester = 0;
            m.data.resize(static_cast<std::uint32_t>(payload_bytes));
            proto.sendRaw(p0, std::move(m));
        }
        rt.events().run();
        p0.now = std::max(p0.now, rt.events().now());
    }
    benchmark::DoNotOptimize(handled);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MessageDispatch)->Arg(0)->Arg(64)->Arg(2048);

void
BM_PayloadAllocRecycle(benchmark::State &state)
{
    // Payload lifecycle at a given size: allocate, touch, destroy.
    // Sizes at or below Payload::kInlineCapacity never leave the
    // message; larger sizes must hit the chunk pool's free list in
    // steady state (the pool-miss count must not grow).
    const std::uint32_t bytes =
        static_cast<std::uint32_t>(state.range(0));
    {
        // Prime the size class so the timed loop measures recycling.
        Payload warm;
        warm.resize(bytes);
    }
    const auto s0 = Payload::poolStats();
    std::uint64_t sink = 0;
    for (auto _ : state) {
        Payload p;
        p.resize(bytes);
        if (bytes > 0) {
            p.data()[0] = static_cast<std::uint8_t>(sink);
            sink += p.data()[bytes - 1];
        }
        benchmark::DoNotOptimize(p.data());
    }
    benchmark::DoNotOptimize(sink);
    const auto s1 = Payload::poolStats();
    if (s1.heapAllocs != s0.heapAllocs)
        state.SkipWithError("payload pool missed in steady state");
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PayloadAllocRecycle)->Arg(0)->Arg(64)->Arg(2048);

Task
pingPong(Context &c, Addr a, int rounds)
{
    for (int r = 0; r < rounds; ++r) {
        if (r % 2 == static_cast<int>(c.id() != 0))
            co_await c.storeI64(a, r);
        co_await c.barrier();
    }
}

void
BM_ProtocolPingPong(benchmark::State &state)
{
    // End-to-end: two processors on different machines migrate one
    // block back and forth (simulated protocol work per host
    // second).
    for (auto _ : state) {
        DsmConfig cfg = DsmConfig::base(8);
        Runtime rt(cfg);
        const Addr a = rt.allocHomed(64, 64, 0);
        rt.run([&](Context &c) -> Task {
            if (c.id() == 0 || c.id() == 4)
                return pingPong(c, a, 50);
            return [](Context &cc) -> Task {
                co_await cc.barrier();
                for (int r = 1; r < 50; ++r)
                    co_await cc.barrier();
            }(c);
        });
        benchmark::DoNotOptimize(rt.wallTime());
    }
    state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_ProtocolPingPong);

void
BM_SweepRunner(benchmark::State &state)
{
    // Harness overhead and scaling of the parallel sweep runner: 16
    // independent jobs, each a small event-queue workload, committed
    // in order.  Arg = worker count (on a multi-core host, wall time
    // should shrink roughly linearly until jobs run out).
    const int jobs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        bench::SweepRunner sweep(jobs);
        std::int64_t total = 0;
        for (int j = 0; j < 16; ++j) {
            auto sink = std::make_shared<std::int64_t>(0);
            sweep.addWork(
                [sink] {
                    EventQueue q;
                    for (int r = 0; r < 20; ++r) {
                        for (int i = 0; i < 64; ++i)
                            q.scheduleAfter(
                                100 + static_cast<Tick>(i % 5),
                                [&] { ++*sink; });
                        q.run();
                    }
                },
                [sink, &total] { total += *sink; });
        }
        sweep.finish();
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(4);

} // namespace
} // namespace shasta

BENCHMARK_MAIN();
