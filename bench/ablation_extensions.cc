/**
 * @file
 * Ablations and extensions beyond the paper's measured configs:
 *
 *  1. Selective vs broadcast downgrades: the private state tables
 *     are what keep most downgrades at 0-1 messages (Figure 8); the
 *     broadcast variant models SoftFLASH-style shootdowns to every
 *     colocated processor (Section 5's comparison).
 *  2. The invalid-flag load optimization on/off (Section 2.3
 *     motivates it; off, every load pays the full Figure 1 check).
 *  3. The shared-directory extension the paper lists as future work
 *     (Sections 3.1/5): requests whose home is colocated skip the
 *     internal message hop.
 *  4. Line-size sensitivity (the companion Shasta papers study 64
 *     vs 128-byte lines).
 */

#include "bench_common.hh"

#include <memory>

using namespace shasta;
using namespace shasta::bench;

namespace
{

void
downgradeAblation(SweepRunner &sweep, const std::string &app)
{
    const AppParams p = withStandardOptions(
        app, defaultParams(*createApp(app)));
    auto t = std::make_shared<report::Table>(
        report::Table({"variant", "time", "downgrade msgs",
                       "0 msgs", "1", "2", "3"}));
    for (bool broadcast : {false, true}) {
        DsmConfig cfg = DsmConfig::smp(16, 4);
        cfg.broadcastDowngrades = broadcast;
        sweep.add(app, cfg, p, [t, broadcast](const AppResult &r) {
            const double total = static_cast<double>(
                std::max<std::uint64_t>(
                    r.counters.totalDowngradeOps(), 1));
            const auto &d = r.counters.downgradeOps;
            t->addRow({broadcast ? "broadcast (SoftFLASH-style)"
                                 : "selective (private tables)",
                       report::fmtSeconds(r.wallTime),
                       report::fmtCount(r.net.downgradeMsgs),
                       report::fmtPercent(d[0] / total),
                       report::fmtPercent(d[1] / total),
                       report::fmtPercent(d[2] / total),
                       report::fmtPercent(d[3] / total)});
            std::fflush(stdout);
        });
    }
    sweep.then([t, app] {
        std::printf("\n%s, SMP-Shasta 16 procs clustering 4:\n",
                    app.c_str());
        t->print();
    });
}

void
flagAblation(SweepRunner &sweep, const std::string &app)
{
    const AppParams p = withStandardOptions(
        app, defaultParams(*createApp(app)));
    auto t = std::make_shared<report::Table>(
        report::Table({"variant", "seq (1p checks)", "16p time",
                       "false misses"}));
    for (bool flag : {true, false}) {
        DsmConfig c1 = DsmConfig::base(1);
        c1.useInvalidFlag = flag;
        DsmConfig c16 = DsmConfig::base(16);
        c16.useInvalidFlag = flag;
        auto t1 = std::make_shared<Tick>(0);
        sweep.add(app, c1, p, [t1](const AppResult &r) {
            *t1 = r.wallTime;
        });
        sweep.add(app, c16, p, [t, t1, flag](const AppResult &r16) {
            t->addRow({flag ? "invalid flag (default)"
                            : "state-table loads only",
                       report::fmtSeconds(*t1),
                       report::fmtSeconds(r16.wallTime),
                       report::fmtCount(r16.counters.falseMisses)});
            std::fflush(stdout);
        });
    }
    sweep.then([t, app] {
        std::printf("\n%s, Base-Shasta, flag ablation:\n",
                    app.c_str());
        t->print();
    });
}

void
sharedDirExtension(SweepRunner &sweep, const std::string &app)
{
    const AppParams p = withStandardOptions(
        app, defaultParams(*createApp(app)));
    auto t = std::make_shared<report::Table>(
        report::Table({"variant", "time", "local msgs",
                       "remote msgs"}));
    for (bool share : {false, true}) {
        DsmConfig cfg = DsmConfig::smp(16, 4);
        cfg.shareDirectory = share;
        sweep.add(app, cfg, p, [t, share](const AppResult &r) {
            t->addRow({share ? "shared directory (extension)"
                             : "message to colocated home (paper)",
                       report::fmtSeconds(r.wallTime),
                       report::fmtCount(r.net.localMsgs),
                       report::fmtCount(r.net.remoteMsgs)});
            std::fflush(stdout);
        });
    }
    sweep.then([t, app] {
        std::printf("\n%s, SMP-Shasta 16 procs clustering 4, "
                    "shared-directory extension:\n",
                    app.c_str());
        t->print();
    });
}

void
lineSizeSweep(SweepRunner &sweep, const std::string &app)
{
    const AppParams p = withStandardOptions(
        app, defaultParams(*createApp(app)));
    auto t = std::make_shared<report::Table>(
        report::Table({"line size", "16p time", "misses",
                       "remote msgs"}));
    for (int ls : {32, 64, 128, 256}) {
        DsmConfig cfg = DsmConfig::base(16);
        cfg.lineSize = ls;
        sweep.add(app, cfg, p, [t, ls](const AppResult &r) {
            t->addRow({std::to_string(ls) + " B",
                       report::fmtSeconds(r.wallTime),
                       report::fmtCount(r.counters.totalMisses()),
                       report::fmtCount(r.net.remoteMsgs)});
            std::fflush(stdout);
        });
    }
    sweep.then([t, app] {
        std::printf("\n%s, Base-Shasta, line-size sensitivity:\n",
                    app.c_str());
        t->print();
    });
}

} // namespace

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Ablations and extensions (beyond the paper's measured "
           "configurations)",
           "Sections 2.3, 3.1, 3.3 and 5");

    SweepRunner sweep;
    // Water migrates heavily: the selective/broadcast contrast is
    // starkest there; LU shows the flag and line-size effects.
    downgradeAblation(sweep, "water-nsq");
    downgradeAblation(sweep, "ocean");
    // The flag matters for UNbatched loads: Raytrace's sphere tests
    // and Volrend's opacity lookups are load-by-load.
    flagAblation(sweep, "raytrace");
    flagAblation(sweep, "volrend");
    sharedDirExtension(sweep, "ocean");
    sharedDirExtension(sweep, "lu");
    lineSizeSweep(sweep, "lu");
    lineSizeSweep(sweep, "water-nsq");
    sweep.finish();
    return 0;
}
