/**
 * @file
 * Ablations and extensions beyond the paper's measured configs:
 *
 *  1. Selective vs broadcast downgrades: the private state tables
 *     are what keep most downgrades at 0-1 messages (Figure 8); the
 *     broadcast variant models SoftFLASH-style shootdowns to every
 *     colocated processor (Section 5's comparison).
 *  2. The invalid-flag load optimization on/off (Section 2.3
 *     motivates it; off, every load pays the full Figure 1 check).
 *  3. The shared-directory extension the paper lists as future work
 *     (Sections 3.1/5): requests whose home is colocated skip the
 *     internal message hop.
 *  4. Line-size sensitivity (the companion Shasta papers study 64
 *     vs 128-byte lines).
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

namespace
{

AppResult
runCfg(const std::string &app, DsmConfig cfg, const AppParams &p)
{
    return run(app, cfg, p);
}

void
downgradeAblation(const std::string &app)
{
    const AppParams p = withStandardOptions(
        app, defaultParams(*createApp(app)));
    report::Table t({"variant", "time", "downgrade msgs",
                     "0 msgs", "1", "2", "3"});
    for (bool broadcast : {false, true}) {
        DsmConfig cfg = DsmConfig::smp(16, 4);
        cfg.broadcastDowngrades = broadcast;
        const AppResult r = runCfg(app, cfg, p);
        const double total = static_cast<double>(
            std::max<std::uint64_t>(
                r.counters.totalDowngradeOps(), 1));
        const auto &d = r.counters.downgradeOps;
        t.addRow({broadcast ? "broadcast (SoftFLASH-style)"
                            : "selective (private tables)",
                  report::fmtSeconds(r.wallTime),
                  report::fmtCount(r.net.downgradeMsgs),
                  report::fmtPercent(d[0] / total),
                  report::fmtPercent(d[1] / total),
                  report::fmtPercent(d[2] / total),
                  report::fmtPercent(d[3] / total)});
        std::fflush(stdout);
    }
    std::printf("\n%s, SMP-Shasta 16 procs clustering 4:\n",
                app.c_str());
    t.print();
}

void
flagAblation(const std::string &app)
{
    const AppParams p = withStandardOptions(
        app, defaultParams(*createApp(app)));
    report::Table t({"variant", "seq (1p checks)", "16p time",
                     "false misses"});
    for (bool flag : {true, false}) {
        DsmConfig c1 = DsmConfig::base(1);
        c1.useInvalidFlag = flag;
        DsmConfig c16 = DsmConfig::base(16);
        c16.useInvalidFlag = flag;
        const AppResult r1 = runCfg(app, c1, p);
        const AppResult r16 = runCfg(app, c16, p);
        t.addRow({flag ? "invalid flag (default)"
                       : "state-table loads only",
                  report::fmtSeconds(r1.wallTime),
                  report::fmtSeconds(r16.wallTime),
                  report::fmtCount(r16.counters.falseMisses)});
        std::fflush(stdout);
    }
    std::printf("\n%s, Base-Shasta, flag ablation:\n", app.c_str());
    t.print();
}

void
sharedDirExtension(const std::string &app)
{
    const AppParams p = withStandardOptions(
        app, defaultParams(*createApp(app)));
    report::Table t({"variant", "time", "local msgs",
                     "remote msgs"});
    for (bool share : {false, true}) {
        DsmConfig cfg = DsmConfig::smp(16, 4);
        cfg.shareDirectory = share;
        const AppResult r = runCfg(app, cfg, p);
        t.addRow({share ? "shared directory (extension)"
                        : "message to colocated home (paper)",
                  report::fmtSeconds(r.wallTime),
                  report::fmtCount(r.net.localMsgs),
                  report::fmtCount(r.net.remoteMsgs)});
        std::fflush(stdout);
    }
    std::printf("\n%s, SMP-Shasta 16 procs clustering 4, "
                "shared-directory extension:\n",
                app.c_str());
    t.print();
}

void
lineSizeSweep(const std::string &app)
{
    const AppParams p = withStandardOptions(
        app, defaultParams(*createApp(app)));
    report::Table t({"line size", "16p time", "misses",
                     "remote msgs"});
    for (int ls : {32, 64, 128, 256}) {
        DsmConfig cfg = DsmConfig::base(16);
        cfg.lineSize = ls;
        const AppResult r = runCfg(app, cfg, p);
        t.addRow({std::to_string(ls) + " B",
                  report::fmtSeconds(r.wallTime),
                  report::fmtCount(r.counters.totalMisses()),
                  report::fmtCount(r.net.remoteMsgs)});
        std::fflush(stdout);
    }
    std::printf("\n%s, Base-Shasta, line-size sensitivity:\n",
                app.c_str());
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);
    banner("Ablations and extensions (beyond the paper's measured "
           "configurations)",
           "Sections 2.3, 3.1, 3.3 and 5");

    // Water migrates heavily: the selective/broadcast contrast is
    // starkest there; LU shows the flag and line-size effects.
    downgradeAblation("water-nsq");
    downgradeAblation("ocean");
    // The flag matters for UNbatched loads: Raytrace's sphere tests
    // and Volrend's opacity lookups are load-by-load.
    flagAblation("raytrace");
    flagAblation("volrend");
    sharedDirExtension("ocean");
    sharedDirExtension("lu");
    lineSizeSweep("lu");
    lineSizeSweep("water-nsq");
    return 0;
}
