/**
 * @file
 * Figure 3: speedups of the SPLASH-2 applications under Base-Shasta
 * and SMP-Shasta on 1-16 processors.
 *
 * Speedups are relative to the uninstrumented sequential run.  As in
 * the paper, SMP-Shasta uses clustering 2 at 2 processors and
 * clustering 4 at 4, 8, and 16; 2- and 4-processor runs fit on one
 * machine, 8 uses two, 16 uses four.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseArgs(argc, argv);
    banner("Figure 3: Base-Shasta and SMP-Shasta speedups",
           "Figure 3");

    const std::vector<int> procs =
        quickMode() ? std::vector<int>{4, 16}
                    : std::vector<int>{1, 2, 4, 8, 16};

    std::vector<std::string> headers{"app", "seq"};
    for (int np : procs)
        headers.push_back("B" + std::to_string(np));
    for (int np : procs) {
        if (np == 1)
            continue;
        const int c = np >= 4 ? 4 : 2;
        headers.push_back("S" + std::to_string(np) + "c" +
                          std::to_string(c));
    }
    report::Table t(headers);

    for (const auto &name : appNames()) {
        if (!appSelected(name))
            continue;
        const AppParams p = withStandardOptions(
            name, defaultParams(*createApp(name)));
        const AppResult seq = runSequential(name, p);
        std::vector<std::string> row{
            name, report::fmtSeconds(seq.wallTime)};

        for (int np : procs) {
            const AppResult r = run(name, DsmConfig::base(np), p);
            row.push_back(report::fmtDouble(
                static_cast<double>(seq.wallTime) /
                static_cast<double>(r.wallTime)));
        }
        for (int np : procs) {
            if (np == 1)
                continue;
            const int c = np >= 4 ? 4 : 2;
            const AppResult r = run(name, DsmConfig::smp(np, c), p);
            row.push_back(report::fmtDouble(
                static_cast<double>(seq.wallTime) /
                static_cast<double>(r.wallTime)));
        }
        t.addRow(row);
        std::fflush(stdout);
    }
    t.print();

    std::printf("\npaper: at 16 processors SMP-Shasta (clustering "
                "4) beats Base-Shasta for 8 of 9 apps (Ocean by "
                "~1.9x, six apps by 1.1-1.4x); Raytrace is the one "
                "app that runs slower.\n");
    return 0;
}
