/**
 * @file
 * Figure 3: speedups of the SPLASH-2 applications under Base-Shasta
 * and SMP-Shasta on 1-16 processors.
 *
 * Speedups are relative to the uninstrumented sequential run.  As in
 * the paper, SMP-Shasta uses clustering 2 at 2 processors and
 * clustering 4 at 4, 8, and 16; 2- and 4-processor runs fit on one
 * machine, 8 uses two, 16 uses four.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Figure 3: Base-Shasta and SMP-Shasta speedups",
           "Figure 3");

    const std::vector<int> procs =
        quickMode() ? std::vector<int>{4, 16}
                    : std::vector<int>{1, 2, 4, 8, 16};

    std::vector<std::string> headers{"app", "seq"};
    for (int np : procs)
        headers.push_back("B" + std::to_string(np));
    for (int np : procs) {
        if (np == 1)
            continue;
        const int c = np >= 4 ? 4 : 2;
        headers.push_back("S" + std::to_string(np) + "c" +
                          std::to_string(c));
    }
    report::Table t(headers);

    SweepRunner sweep;
    for (const auto &name : appNames()) {
        if (!appSelected(name))
            continue;
        const AppParams p = withStandardOptions(
            name, defaultParams(*createApp(name)));
        // Shared per-app row state: only touched by the ordered
        // commit callbacks, so the sequential baseline is always in
        // place before any speedup row uses it.
        auto row = std::make_shared<std::vector<std::string>>();
        auto seqTime = std::make_shared<Tick>(0);
        sweep.add(name, DsmConfig::sequential(), p,
                  [name, row, seqTime](const AppResult &seq) {
                      *seqTime = seq.wallTime;
                      *row = {name,
                              report::fmtSeconds(seq.wallTime)};
                  });
        auto speedupRow = [row, seqTime](const AppResult &r) {
            row->push_back(report::fmtDouble(
                static_cast<double>(*seqTime) /
                static_cast<double>(r.wallTime)));
        };
        for (int np : procs)
            sweep.add(name, DsmConfig::base(np), p, speedupRow);
        for (int np : procs) {
            if (np == 1)
                continue;
            const int c = np >= 4 ? 4 : 2;
            sweep.add(name, DsmConfig::smp(np, c), p, speedupRow);
        }
        sweep.then([&t, row] {
            t.addRow(*row);
            std::fflush(stdout);
        });
    }
    sweep.finish();
    t.print();

    std::printf("\npaper: at 16 processors SMP-Shasta (clustering "
                "4) beats Base-Shasta for 8 of 9 apps (Ocean by "
                "~1.9x, six apps by 1.1-1.4x); Raytrace is the one "
                "app that runs slower.\n");
    return 0;
}
