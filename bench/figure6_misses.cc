/**
 * @file
 * Figure 6: misses in 8- and 16-processor runs, classified by
 * request type (read / write / upgrade) and hops (2 / 3), for
 * Base-Shasta and SMP-Shasta with clustering 2 and 4, normalized to
 * the Base-Shasta total.
 */

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

namespace
{

std::vector<std::pair<double, char>>
segments(const ProtoCounters &c)
{
    // Glyphs: r/R = read 2/3-hop, w/W = write 2/3-hop,
    // u/U = upgrade 2/3-hop.
    return {
        {static_cast<double>(c.missCount(MissClass::Read2Hop)), 'r'},
        {static_cast<double>(c.missCount(MissClass::Read3Hop)), 'R'},
        {static_cast<double>(c.missCount(MissClass::Write2Hop)),
         'w'},
        {static_cast<double>(c.missCount(MissClass::Write3Hop)),
         'W'},
        {static_cast<double>(c.missCount(MissClass::Upgrade2Hop)),
         'u'},
        {static_cast<double>(c.missCount(MissClass::Upgrade3Hop)),
         'U'},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    banner("Figure 6: misses by type and hops vs clustering",
           "Figure 6");
    std::printf("  legend: r/R read 2/3-hop, w/W write 2/3-hop, "
                "u/U upgrade 2/3-hop\n");

    SweepRunner sweep;
    for (int np : {8, 16}) {
        sweep.then([np] {
            std::printf("\n----- %d-processor runs (bars "
                        "normalized to Base total) -----\n",
                        np);
        });
        for (const auto &name : appNames()) {
            if (!appSelected(name))
                continue;
            const AppParams p = withStandardOptions(
                name, defaultParams(*createApp(name)));
            sweep.then([name] {
                std::printf("\n%s:\n", name.c_str());
            });
            auto norm = std::make_shared<double>(0.0);
            sweep.add(name, DsmConfig::base(np), p,
                      [norm](const AppResult &b) {
                          *norm = static_cast<double>(
                              b.counters.totalMisses());
                          report::printSegmentBar(
                              "Base", segments(b.counters), *norm);
                      });
            for (int c : {2, 4}) {
                sweep.add(
                    name, DsmConfig::smp(np, c), p,
                    [c, norm](const AppResult &s) {
                        report::printSegmentBar(
                            "SMP C" + std::to_string(c),
                            segments(s.counters), *norm);
                        std::fflush(stdout);
                    });
            }
        }
    }
    sweep.finish();

    std::printf("\npaper: total misses drop dramatically with "
                "clustering (most at C4); 3-hop requests always "
                "shrink, and some 3-hop requests convert to "
                "2-hop.\n");
    return 0;
}
