/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Problem sizes are the scaled defaults recorded in each app (see
 * DESIGN.md and EXPERIMENTS.md); set SHASTA_QUICK=1 to shrink them
 * further for smoke runs.
 */

#ifndef SHASTA_BENCH_BENCH_COMMON_HH
#define SHASTA_BENCH_BENCH_COMMON_HH

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/app.hh"
#include "obs/stats_json.hh"
#include "obs/trace_json.hh"
#include "sim/env.hh"
#include "sim/trace.hh"
#include "stats/report.hh"

namespace shasta::bench
{

inline bool
quickMode()
{
    const char *q = std::getenv("SHASTA_QUICK");
    return q != nullptr && std::strcmp(q, "0") != 0;
}

/** Harness options shared by every bench binary. */
struct Options
{
    /** `--stats-json=FILE` (or SHASTA_STATS_JSON): accumulate one
     *  RunSummary per run() and write {"runs": [...]} at exit. */
    std::string statsJsonPath;
    /** `--app=NAME`: restrict the app sweep to one application. */
    std::string appFilter;
    /** `--jobs=N` (or SHASTA_JOBS): worker threads for SweepRunner
     *  sweeps.  1 = serial (the default). */
    int jobs = 1;
    /** `--fault=SPEC`: fault-injection spec applied to every run,
     *  e.g. "drop:2,dup:1,reorder:1,jitter:20,seed:7" (see
     *  FaultConfig::parse).  Empty = faults off. */
    std::string faultSpec;
    /** `--backend=sim|thread`: execution backend for every run.
     *  Empty = whatever SHASTA_BACKEND says (default sim). */
    std::string backend;
    /** `--engine-threads=N`: worker threads for the intra-run
     *  parallel simulation engine (sim backend; see
     *  DsmConfig::engineThreads).  0 = whatever SHASTA_ENGINE_THREADS
     *  says (default 1, the serial event loop). */
    int engineThreads = 0;
    /** `--opt=SPEC`: protocol fast-path knobs for every run, e.g.
     *  "migratory,adaptive" or "all" (see OptConfig::parseSpec).
     *  Empty = whatever SHASTA_OPT says (default all-off). */
    std::string optSpec;
};

inline Options &
options()
{
    static Options o;
    return o;
}

/** Guards recordedRuns(): sweep workers run concurrently, and run()
 *  remains callable from any thread. */
inline std::mutex &
recordedRunsMutex()
{
    static std::mutex m;
    return m;
}

inline std::vector<obs::RunSummary> &
recordedRuns()
{
    static std::vector<obs::RunSummary> runs;
    return runs;
}

/** Write every recorded summary to the --stats-json file.  Installed
 *  via atexit by parseCommonArgs; safe to call repeatedly. */
inline void
flushStatsJson()
{
    const Options &o = options();
    if (o.statsJsonPath.empty())
        return;
    std::FILE *f = std::fopen(o.statsJsonPath.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot write %s\n",
                     o.statsJsonPath.c_str());
        return;
    }
    std::fputs("{\"runs\": [\n", f);
    const std::lock_guard<std::mutex> lock(recordedRunsMutex());
    const auto &runs = recordedRuns();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        std::fputs(obs::toJson(runs[i], 2).c_str(), f);
        std::fputs(i + 1 < runs.size() ? ",\n" : "\n", f);
    }
    std::fputs("]}\n", f);
    std::fclose(f);
}

/** Parse the standard bench arguments.  Unknown arguments abort with
 *  a usage message, and repeating a flag with a *different* value is
 *  an error (silent last-one-wins hid typos in long sweep command
 *  lines); repeating the same value is harmless.  Every bench main
 *  calls this first. */
inline void
parseCommonArgs(int argc, char **argv)
{
    Options &o = options();
    if (const char *env = std::getenv("SHASTA_STATS_JSON");
        env != nullptr && *env != '\0')
        o.statsJsonPath = env;
    o.jobs = static_cast<int>(
        env::envInt("SHASTA_JOBS", 1, 4096, o.jobs));
    // One slot per flag; a later occurrence must agree with the
    // earlier one.  Command-line flags override the environment.
    struct Seen
    {
        bool statsJson = false, app = false, jobs = false;
        bool fault = false, backend = false, engineThreads = false;
        bool opt = false;
    } seen;
    const auto setOnce = [argv](std::string &slot, bool &was_seen,
                                const char *flag, const char *value) {
        if (was_seen && slot != value) {
            std::fprintf(stderr,
                         "%s: conflicting %s values '%s' and '%s'\n",
                         argv[0], flag, slot.c_str(), value);
            std::exit(2);
        }
        was_seen = true;
        slot = value;
    };
    std::string jobsStr, engineStr;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--stats-json=", 13) == 0) {
            setOnce(o.statsJsonPath, seen.statsJson, "--stats-json",
                    a + 13);
        } else if (std::strcmp(a, "--stats-json") == 0 &&
                   i + 1 < argc) {
            setOnce(o.statsJsonPath, seen.statsJson, "--stats-json",
                    argv[++i]);
        } else if (std::strncmp(a, "--app=", 6) == 0) {
            setOnce(o.appFilter, seen.app, "--app", a + 6);
        } else if (std::strcmp(a, "--app") == 0 && i + 1 < argc) {
            setOnce(o.appFilter, seen.app, "--app", argv[++i]);
        } else if (std::strncmp(a, "--jobs=", 7) == 0) {
            setOnce(jobsStr, seen.jobs, "--jobs", a + 7);
        } else if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
            setOnce(jobsStr, seen.jobs, "--jobs", argv[++i]);
        } else if (std::strncmp(a, "--fault=", 8) == 0) {
            setOnce(o.faultSpec, seen.fault, "--fault", a + 8);
        } else if (std::strcmp(a, "--fault") == 0 && i + 1 < argc) {
            setOnce(o.faultSpec, seen.fault, "--fault", argv[++i]);
        } else if (std::strncmp(a, "--backend=", 10) == 0) {
            setOnce(o.backend, seen.backend, "--backend", a + 10);
        } else if (std::strcmp(a, "--backend") == 0 &&
                   i + 1 < argc) {
            setOnce(o.backend, seen.backend, "--backend", argv[++i]);
        } else if (std::strncmp(a, "--engine-threads=", 17) == 0) {
            setOnce(engineStr, seen.engineThreads,
                    "--engine-threads", a + 17);
        } else if (std::strcmp(a, "--engine-threads") == 0 &&
                   i + 1 < argc) {
            setOnce(engineStr, seen.engineThreads,
                    "--engine-threads", argv[++i]);
        } else if (std::strncmp(a, "--opt=", 6) == 0) {
            setOnce(o.optSpec, seen.opt, "--opt", a + 6);
        } else if (std::strcmp(a, "--opt") == 0 && i + 1 < argc) {
            setOnce(o.optSpec, seen.opt, "--opt", argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--stats-json=FILE] "
                         "[--app=NAME] [--jobs=N] "
                         "[--engine-threads=N] "
                         "[--backend=sim|thread] "
                         "[--opt=migratory,elide,adaptive|all|none] "
                         "[--fault=drop:P,dup:P,reorder:P,"
                         "jitter:US,seed:S]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (seen.jobs)
        o.jobs = static_cast<int>(
            env::parseIntArg("--jobs", jobsStr.c_str(), 1, 4096));
    if (seen.engineThreads)
        o.engineThreads = static_cast<int>(env::parseIntArg(
            "--engine-threads", engineStr.c_str(), 1, 4096));
    if (!o.backend.empty()) {
        if (o.backend != "sim" && o.backend != "thread") {
            std::fprintf(stderr,
                         "bench: bad --backend '%s' "
                         "(want sim|thread)\n",
                         o.backend.c_str());
            std::exit(2);
        }
        // Every Runtime construction consults SHASTA_BACKEND
        // (DsmConfig::applyBackendEnv), so routing the flag through
        // the environment covers registered-app sweeps and
        // hand-built kernels alike.  Sequential/hardware reference
        // runs fall back to the simulator automatically.
        setenv("SHASTA_BACKEND", o.backend.c_str(), 1);
    }
    if (o.engineThreads > 0) {
        // Same routing as --backend: every Runtime construction
        // consults SHASTA_ENGINE_THREADS via applyBackendEnv.
        setenv("SHASTA_ENGINE_THREADS",
               std::to_string(o.engineThreads).c_str(), 1);
    }
    if (!o.optSpec.empty()) {
        // Validate eagerly (a bad spec exits 2 right here), then
        // route through the environment like --backend: every
        // Runtime construction applies SHASTA_OPT via
        // OptConfig::applyEnv.
        OptConfig::parseSpec("--opt", o.optSpec.c_str());
        setenv("SHASTA_OPT", o.optSpec.c_str(), 1);
    }
    if (!o.faultSpec.empty()) {
        FaultConfig f;
        if (!FaultConfig::parse(o.faultSpec, f)) {
            std::fprintf(stderr, "bench: bad --fault spec '%s'\n",
                         o.faultSpec.c_str());
            std::exit(2);
        }
        f.validate();
    }
    if (!o.statsJsonPath.empty()) {
        // Construct the recording vector before registering the
        // flush handler: exit() unwinds local statics and atexit
        // handlers in reverse order, so anything constructed after
        // the registration would be destroyed before the flush runs
        // and the handler would serialize freed memory.
        recordedRuns();
        std::atexit(flushStatsJson);
    }
}

/** True when @p name passes the --app filter. */
inline bool
appSelected(const std::string &name)
{
    return options().appFilter.empty() ||
           options().appFilter == name;
}

/** Apply the --fault spec (already validated by parseCommonArgs) to one
 *  run's configuration.  No-op without --fault, so fault-free bench
 *  output is untouched. */
inline DsmConfig
withFaultSpec(DsmConfig cfg)
{
    const Options &o = options();
    if (!o.faultSpec.empty())
        FaultConfig::parse(o.faultSpec, cfg.fault);
    return cfg;
}

/** Short configuration label for run summaries, e.g. "smp-16x4". */
inline std::string
configLabel(const DsmConfig &cfg)
{
    switch (cfg.mode) {
      case Mode::Hardware:
        return "hw-" + std::to_string(cfg.numProcs) + "p";
      case Mode::Base:
        return "base-" + std::to_string(cfg.numProcs) + "p";
      case Mode::Smp:
        return "smp-" + std::to_string(cfg.numProcs) + "x" +
               std::to_string(cfg.clustering);
    }
    return "?";
}

/** Default (Table 1) parameters, shrunk in quick mode. */
inline AppParams
defaultParams(const App &app)
{
    AppParams p = app.defaultParams();
    if (quickMode()) {
        p.n = std::max(32, p.n / 2);
        if (app.name() == "lu" || app.name() == "lu-contig")
            p.n = (p.n / 32) * 32;
        if (app.name() == "ocean")
            p.n = p.n / 2 * 2 + 2;
    }
    return p;
}

/** Record one run's statistics for the exit-time --stats-json flush
 *  (no-op when --stats-json is inactive). */
inline void
recordRun(const std::string &name, const DsmConfig &cfg,
          const AppResult &r)
{
    if (options().statsJsonPath.empty())
        return;
    obs::RunSummary s;
    s.app = name;
    s.config = configLabel(cfg);
    switch (cfg.mode) {
      case Mode::Hardware: s.mode = "hardware"; break;
      case Mode::Base: s.mode = "base"; break;
      case Mode::Smp: s.mode = "smp"; break;
    }
    s.numProcs = cfg.numProcs;
    s.clustering = cfg.clustering;
    s.wallTime = r.wallTime;
    s.breakdown = r.breakdown;
    s.counters = r.counters;
    s.lat = r.lat;
    s.net = r.net;
    s.checks = r.checks;
    s.dir = r.dir;
    s.adaptiveRegions = r.adaptiveRegions;
    s.adaptiveShrunk = r.adaptiveShrunk;
    s.adaptiveGrown = r.adaptiveGrown;
    const std::lock_guard<std::mutex> lock(recordedRunsMutex());
    recordedRuns().push_back(std::move(s));
}

/** Run one configuration of one app.  With --stats-json active the
 *  run's full statistics are recorded for the exit-time flush. */
inline AppResult
run(const std::string &name, const DsmConfig &cfg,
    const AppParams &p)
{
    auto app = createApp(name);
    AppResult r = runApp(*app, withFaultSpec(cfg), p);
    recordRun(name, cfg, r);
    return r;
}

/** Sequential (uninstrumented) run. */
inline AppResult
runSequential(const std::string &name, const AppParams &p)
{
    return run(name, DsmConfig::sequential(), p);
}

/**
 * Runs independent (app x config) simulations on worker threads
 * while keeping every observable output byte-identical to a serial
 * sweep.
 *
 * Usage: enqueue jobs with add() in the order their results should
 * appear, then call finish().  Each job's done-callback runs on the
 * calling thread, strictly in enqueue order, after that job's
 * simulation completes — so callbacks may print rows, accumulate
 * normalization baselines from earlier rows, and touch shared state
 * without locks.  Statistics recording for --stats-json also happens
 * at commit time, so the runs array keeps enqueue order.
 *
 * With jobs=1 (the default) each job executes and commits inside
 * add(), preserving the incremental output of a serial sweep
 * exactly.  With jobs=N the simulations themselves run on N workers
 * (each Runtime is confined to one thread; every process-global sink
 * it touches is thread-safe or thread-local) and commits stream on
 * the caller as their turn comes up.  Simulations are deterministic
 * regardless of which thread runs them, so the committed results --
 * and therefore stdout, tables, CSV, and --stats-json -- match the
 * serial run byte for byte.
 */
class SweepRunner
{
  public:
    using Done = std::function<void(const AppResult &)>;

    SweepRunner() : jobs_(options().jobs) {}
    explicit SweepRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

    /** Enqueue one run of @p name under @p cfg.  @p done (optional)
     *  commits the result: it runs on the finish()-calling thread in
     *  enqueue order. */
    void
    add(std::string name, DsmConfig cfg, AppParams p, Done done = {})
    {
        auto result = std::make_shared<AppResult>();
        std::string label = name + "/" + configLabel(cfg);
        addWork(
            [name, cfg, p, result] {
                auto app = createApp(name);
                *result = runApp(*app, withFaultSpec(cfg), p);
            },
            [name, cfg, result, done = std::move(done)] {
                recordRun(name, cfg, *result);
                if (done)
                    done(*result);
            },
            std::move(label));
    }

    /**
     * Enqueue an arbitrary simulation: @p work runs on a worker
     * thread (it must confine everything it touches to that thread,
     * like a Runtime), then @p commitFn runs on the finish()-calling
     * thread in enqueue order.  @p label attributes the worker's
     * trace output.  Used by benches whose runs are hand-built
     * kernels rather than registered apps.
     */
    void
    addWork(std::function<void()> work,
            std::function<void()> commitFn = {},
            std::string label = {})
    {
        if (jobs_ == 1) {
            // Serial fast path: execute and commit inline, keeping
            // the incremental output of a serial sweep exactly.
            if (work) {
                setLabels(label);
                work();
                setLabels({});
            }
            if (commitFn)
                commitFn();
            return;
        }
        Job j;
        j.work = std::move(work);
        j.commitFn = std::move(commitFn);
        j.label = std::move(label);
        j.ran = !j.work; // commit-only steps never execute
        pending_.push_back(std::move(j));
    }

    /** Enqueue a commit-only step: @p f runs on the finish()-calling
     *  thread after every earlier job has committed and before any
     *  later one does (no simulation attached).  Sweeps use this to
     *  flush an assembled table row once its runs are in. */
    void
    then(std::function<void()> f)
    {
        addWork({}, std::move(f));
    }

    /** Run every pending job and commit all results in order.  A job
     *  that threw has its exception rethrown here, at its commit
     *  slot, after the worker pool is drained. */
    void
    finish()
    {
        if (pending_.empty())
            return;
        const std::size_t n = pending_.size();
        const std::size_t workers =
            static_cast<std::size_t>(jobs_) < n
                ? static_cast<std::size_t>(jobs_)
                : n;
        nextJob_ = 0;
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t t = 0; t < workers; ++t) {
            pool.emplace_back([this] { workerLoop(); });
        }
        for (std::size_t i = 0; i < n; ++i) {
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_.wait(lk, [&] { return pending_[i].ran; });
            }
            Job &j = pending_[i];
            if (j.error) {
                // Stop handing out work and drain before rethrowing
                // so no worker outlives the runner.
                {
                    const std::lock_guard<std::mutex> lk(mu_);
                    nextJob_ = n;
                }
                for (auto &t : pool)
                    t.join();
                const std::exception_ptr e = j.error;
                pending_.clear();
                std::rethrow_exception(e);
            }
            if (j.commitFn)
                j.commitFn();
        }
        for (auto &t : pool)
            t.join();
        pending_.clear();
    }

    ~SweepRunner()
    {
        // Convenience flush for sweeps that never throw; prefer an
        // explicit finish() so commit-time exceptions propagate
        // normally.
        if (!pending_.empty())
            finish();
    }

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

  private:
    struct Job
    {
        std::function<void()> work;
        std::function<void()> commitFn;
        std::string label;
        std::exception_ptr error;
        bool ran = false;
    };

    /** Attribute the calling thread's trace output (text and JSON)
     *  to the configuration it is about to run. */
    static void
    setLabels(const std::string &label)
    {
        trace::setThreadLabel(label);
        obs::setTraceRunLabel(label);
    }

    void
    workerLoop()
    {
        for (;;) {
            std::size_t i;
            {
                const std::lock_guard<std::mutex> lk(mu_);
                while (nextJob_ < pending_.size() &&
                       !pending_[nextJob_].work)
                    ++nextJob_; // commit-only steps never execute
                if (nextJob_ >= pending_.size())
                    return;
                i = nextJob_++;
            }
            Job &j = pending_[i];
            setLabels(j.label);
            try {
                j.work();
            } catch (...) {
                j.error = std::current_exception();
            }
            setLabels({});
            {
                const std::lock_guard<std::mutex> lk(mu_);
                j.ran = true;
            }
            cv_.notify_all();
        }
    }

    int jobs_;
    std::vector<Job> pending_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t nextJob_ = 0;
};

/** Announce a bench section. */
inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("\n=============================================="
                "==================\n");
    std::printf("%s\n", title);
    std::printf("(reproduces %s of WRL RR 97/3, \"Fine-Grain "
                "Software Distributed\n Shared Memory on SMP "
                "Clusters\")\n",
                paper_ref);
    std::printf("================================================"
                "================\n");
    if (quickMode())
        std::printf("[SHASTA_QUICK=1: reduced problem sizes]\n");
}

/** The six Table 2 applications, in the paper's order. */
inline std::vector<std::string>
table2Apps()
{
    return {"barnes", "fmm", "lu", "lu-contig", "volrend",
            "water-nsq"};
}

/** The seven Table 3 applications, in the paper's order. */
inline std::vector<std::string>
table3Apps()
{
    return {"barnes", "fmm",       "lu",      "lu-contig",
            "ocean",  "water-nsq", "water-sp"};
}

/** Apps that use the home placement optimization (Section 4.3). */
inline bool
usesHomePlacement(const std::string &name)
{
    return name == "fmm" || name == "lu-contig" || name == "ocean";
}

/** Apply the paper's standard run options to parameters. */
inline AppParams
withStandardOptions(const std::string &name, AppParams p)
{
    p.homePlacement = usesHomePlacement(name);
    return p;
}

} // namespace shasta::bench

#endif // SHASTA_BENCH_BENCH_COMMON_HH
