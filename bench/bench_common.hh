/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Problem sizes are the scaled defaults recorded in each app (see
 * DESIGN.md and EXPERIMENTS.md); set SHASTA_QUICK=1 to shrink them
 * further for smoke runs.
 */

#ifndef SHASTA_BENCH_BENCH_COMMON_HH
#define SHASTA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/app.hh"
#include "stats/report.hh"

namespace shasta::bench
{

inline bool
quickMode()
{
    const char *q = std::getenv("SHASTA_QUICK");
    return q != nullptr && std::strcmp(q, "0") != 0;
}

/** Default (Table 1) parameters, shrunk in quick mode. */
inline AppParams
defaultParams(const App &app)
{
    AppParams p = app.defaultParams();
    if (quickMode()) {
        p.n = std::max(32, p.n / 2);
        if (app.name() == "lu" || app.name() == "lu-contig")
            p.n = (p.n / 32) * 32;
        if (app.name() == "ocean")
            p.n = p.n / 2 * 2 + 2;
    }
    return p;
}

/** Run one configuration of one app. */
inline AppResult
run(const std::string &name, const DsmConfig &cfg,
    const AppParams &p)
{
    auto app = createApp(name);
    return runApp(*app, cfg, p);
}

/** Sequential (uninstrumented) run. */
inline AppResult
runSequential(const std::string &name, const AppParams &p)
{
    return run(name, DsmConfig::sequential(), p);
}

/** Announce a bench section. */
inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("\n=============================================="
                "==================\n");
    std::printf("%s\n", title);
    std::printf("(reproduces %s of WRL RR 97/3, \"Fine-Grain "
                "Software Distributed\n Shared Memory on SMP "
                "Clusters\")\n",
                paper_ref);
    std::printf("================================================"
                "================\n");
    if (quickMode())
        std::printf("[SHASTA_QUICK=1: reduced problem sizes]\n");
}

/** The six Table 2 applications, in the paper's order. */
inline std::vector<std::string>
table2Apps()
{
    return {"barnes", "fmm", "lu", "lu-contig", "volrend",
            "water-nsq"};
}

/** The seven Table 3 applications, in the paper's order. */
inline std::vector<std::string>
table3Apps()
{
    return {"barnes", "fmm",       "lu",      "lu-contig",
            "ocean",  "water-nsq", "water-sp"};
}

/** Apps that use the home placement optimization (Section 4.3). */
inline bool
usesHomePlacement(const std::string &name)
{
    return name == "fmm" || name == "lu-contig" || name == "ocean";
}

/** Apply the paper's standard run options to parameters. */
inline AppParams
withStandardOptions(const std::string &name, AppParams p)
{
    p.homePlacement = usesHomePlacement(name);
    return p;
}

} // namespace shasta::bench

#endif // SHASTA_BENCH_BENCH_COMMON_HH
