/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Problem sizes are the scaled defaults recorded in each app (see
 * DESIGN.md and EXPERIMENTS.md); set SHASTA_QUICK=1 to shrink them
 * further for smoke runs.
 */

#ifndef SHASTA_BENCH_BENCH_COMMON_HH
#define SHASTA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "obs/stats_json.hh"
#include "stats/report.hh"

namespace shasta::bench
{

inline bool
quickMode()
{
    const char *q = std::getenv("SHASTA_QUICK");
    return q != nullptr && std::strcmp(q, "0") != 0;
}

/** Harness options shared by every bench binary. */
struct Options
{
    /** `--stats-json=FILE` (or SHASTA_STATS_JSON): accumulate one
     *  RunSummary per run() and write {"runs": [...]} at exit. */
    std::string statsJsonPath;
    /** `--app=NAME`: restrict the app sweep to one application. */
    std::string appFilter;
};

inline Options &
options()
{
    static Options o;
    return o;
}

inline std::vector<obs::RunSummary> &
recordedRuns()
{
    static std::vector<obs::RunSummary> runs;
    return runs;
}

/** Write every recorded summary to the --stats-json file.  Installed
 *  via atexit by parseArgs; safe to call repeatedly. */
inline void
flushStatsJson()
{
    const Options &o = options();
    if (o.statsJsonPath.empty())
        return;
    std::FILE *f = std::fopen(o.statsJsonPath.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot write %s\n",
                     o.statsJsonPath.c_str());
        return;
    }
    std::fputs("{\"runs\": [\n", f);
    const auto &runs = recordedRuns();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        std::fputs(obs::toJson(runs[i], 2).c_str(), f);
        std::fputs(i + 1 < runs.size() ? ",\n" : "\n", f);
    }
    std::fputs("]}\n", f);
    std::fclose(f);
}

/** Parse the standard bench arguments; unknown arguments abort with
 *  a usage message.  Every bench main calls this first. */
inline void
parseArgs(int argc, char **argv)
{
    Options &o = options();
    if (const char *env = std::getenv("SHASTA_STATS_JSON");
        env != nullptr && *env != '\0')
        o.statsJsonPath = env;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--stats-json=", 13) == 0) {
            o.statsJsonPath = a + 13;
        } else if (std::strcmp(a, "--stats-json") == 0 &&
                   i + 1 < argc) {
            o.statsJsonPath = argv[++i];
        } else if (std::strncmp(a, "--app=", 6) == 0) {
            o.appFilter = a + 6;
        } else if (std::strcmp(a, "--app") == 0 && i + 1 < argc) {
            o.appFilter = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--stats-json=FILE] "
                         "[--app=NAME]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (!o.statsJsonPath.empty()) {
        // Construct the recording vector before registering the
        // flush handler: exit() unwinds local statics and atexit
        // handlers in reverse order, so anything constructed after
        // the registration would be destroyed before the flush runs
        // and the handler would serialize freed memory.
        recordedRuns();
        std::atexit(flushStatsJson);
    }
}

/** True when @p name passes the --app filter. */
inline bool
appSelected(const std::string &name)
{
    return options().appFilter.empty() ||
           options().appFilter == name;
}

/** Short configuration label for run summaries, e.g. "smp-16x4". */
inline std::string
configLabel(const DsmConfig &cfg)
{
    switch (cfg.mode) {
      case Mode::Hardware:
        return "hw-" + std::to_string(cfg.numProcs) + "p";
      case Mode::Base:
        return "base-" + std::to_string(cfg.numProcs) + "p";
      case Mode::Smp:
        return "smp-" + std::to_string(cfg.numProcs) + "x" +
               std::to_string(cfg.clustering);
    }
    return "?";
}

/** Default (Table 1) parameters, shrunk in quick mode. */
inline AppParams
defaultParams(const App &app)
{
    AppParams p = app.defaultParams();
    if (quickMode()) {
        p.n = std::max(32, p.n / 2);
        if (app.name() == "lu" || app.name() == "lu-contig")
            p.n = (p.n / 32) * 32;
        if (app.name() == "ocean")
            p.n = p.n / 2 * 2 + 2;
    }
    return p;
}

/** Run one configuration of one app.  With --stats-json active the
 *  run's full statistics are recorded for the exit-time flush. */
inline AppResult
run(const std::string &name, const DsmConfig &cfg,
    const AppParams &p)
{
    auto app = createApp(name);
    AppResult r = runApp(*app, cfg, p);
    if (!options().statsJsonPath.empty()) {
        obs::RunSummary s;
        s.app = name;
        s.config = configLabel(cfg);
        switch (cfg.mode) {
          case Mode::Hardware: s.mode = "hardware"; break;
          case Mode::Base: s.mode = "base"; break;
          case Mode::Smp: s.mode = "smp"; break;
        }
        s.numProcs = cfg.numProcs;
        s.clustering = cfg.clustering;
        s.wallTime = r.wallTime;
        s.breakdown = r.breakdown;
        s.counters = r.counters;
        s.lat = r.lat;
        s.net = r.net;
        s.checks = r.checks;
        recordedRuns().push_back(std::move(s));
    }
    return r;
}

/** Sequential (uninstrumented) run. */
inline AppResult
runSequential(const std::string &name, const AppParams &p)
{
    return run(name, DsmConfig::sequential(), p);
}

/** Announce a bench section. */
inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("\n=============================================="
                "==================\n");
    std::printf("%s\n", title);
    std::printf("(reproduces %s of WRL RR 97/3, \"Fine-Grain "
                "Software Distributed\n Shared Memory on SMP "
                "Clusters\")\n",
                paper_ref);
    std::printf("================================================"
                "================\n");
    if (quickMode())
        std::printf("[SHASTA_QUICK=1: reduced problem sizes]\n");
}

/** The six Table 2 applications, in the paper's order. */
inline std::vector<std::string>
table2Apps()
{
    return {"barnes", "fmm", "lu", "lu-contig", "volrend",
            "water-nsq"};
}

/** The seven Table 3 applications, in the paper's order. */
inline std::vector<std::string>
table3Apps()
{
    return {"barnes", "fmm",       "lu",      "lu-contig",
            "ocean",  "water-nsq", "water-sp"};
}

/** Apps that use the home placement optimization (Section 4.3). */
inline bool
usesHomePlacement(const std::string &name)
{
    return name == "fmm" || name == "lu-contig" || name == "ocean";
}

/** Apply the paper's standard run options to parameters. */
inline AppParams
withStandardOptions(const std::string &name, AppParams p)
{
    p.homePlacement = usesHomePlacement(name);
    return p;
}

} // namespace shasta::bench

#endif // SHASTA_BENCH_BENCH_COMMON_HH
