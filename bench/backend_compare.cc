/**
 * @file
 * Head-to-head of the two execution backends.
 *
 * Every registered application runs twice under the same protocol
 * configuration: once on the discrete-event simulator and once on
 * the real-thread backend.  The run is valid only if both backends
 * drive the shared heap to the same final checksum (the simulator is
 * the oracle); the comparison itself is host wall-clock time, i.e.
 * how much faster the protocol executes when nodes are real threads
 * exchanging frames over SPSC rings instead of events in a heap.
 *
 * Host-dependent metrics go to the SHASTA_BENCH_JSON artifact (like
 * figure_scaling), never to stdout tables or --stats-json, so the
 * deterministic outputs stay machine-independent.
 */

#include <chrono>
#include <cmath>
#include <memory>

#include "bench_common.hh"

using namespace shasta;
using namespace shasta::bench;

namespace
{

struct CompareRow
{
    std::string app;
    double simHostMs = 0.0;
    double thrHostMs = 0.0;
    double simChecksum = 0.0;
    double thrChecksum = 0.0;
    bool match = false;
    std::uint64_t simMsgs = 0;
    std::uint64_t thrMsgs = 0;
};

double
hostMs(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

CompareRow
compareOne(const std::string &name)
{
    auto app = createApp(name);
    AppParams p = withStandardOptions(name, defaultParams(*app));

    CompareRow row;
    row.app = name;

    DsmConfig sim = DsmConfig::smp(16, 4);
    sim.backend = BackendKind::Sim;
    auto t0 = std::chrono::steady_clock::now();
    const AppResult rs = runApp(*app, withFaultSpec(sim), p);
    row.simHostMs = hostMs(t0);
    row.simChecksum = rs.checksum;
    row.simMsgs = rs.net.total();

    DsmConfig thr = DsmConfig::smp(16, 4);
    thr.backend = BackendKind::Thread;
    t0 = std::chrono::steady_clock::now();
    const AppResult rt = runApp(*app, withFaultSpec(thr), p);
    row.thrHostMs = hostMs(t0);
    row.thrChecksum = rt.checksum;
    row.thrMsgs = rt.net.total();

    const double tol = app->tolerance() *
                       std::max(1.0, std::abs(rs.checksum));
    row.match = std::abs(rs.checksum - rt.checksum) <= tol;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    parseCommonArgs(argc, argv);
    // This binary always runs both backends per app; a --backend
    // request must not leak into the per-leg configs through the
    // environment.
    unsetenv("SHASTA_BACKEND");
    banner("Backend comparison: simulator vs real threads",
           "no figure; cross-validates the execution layer");

    report::Table t({"app", "match", "sim ms", "thread ms",
                     "speedup", "sim msgs", "thread msgs"});

    std::vector<CompareRow> rows;
    bool allMatch = true;
    for (const std::string &name : appNames()) {
        if (!appSelected(name))
            continue;
        const CompareRow r = compareOne(name);
        allMatch = allMatch && r.match;
        char speedup[32], simMs[32], thrMs[32];
        std::snprintf(simMs, sizeof simMs, "%.1f", r.simHostMs);
        std::snprintf(thrMs, sizeof thrMs, "%.1f", r.thrHostMs);
        std::snprintf(speedup, sizeof speedup, "%.2fx",
                      r.thrHostMs > 0.0 ? r.simHostMs / r.thrHostMs
                                        : 0.0);
        t.addRow({r.app, r.match ? "yes" : "NO", simMs, thrMs,
                  speedup, std::to_string(r.simMsgs),
                  std::to_string(r.thrMsgs)});
        rows.push_back(r);
    }
    t.print();
    if (!allMatch)
        std::printf("\nCHECKSUM MISMATCH: thread backend diverged "
                    "from the simulator oracle\n");

    if (const char *path = std::getenv("SHASTA_BENCH_JSON");
        path != nullptr && *path != '\0') {
        std::FILE *f = std::fopen(path, "w");
        if (f == nullptr) {
            std::fprintf(stderr,
                         "backend_compare: cannot write %s\n", path);
            return 1;
        }
        std::fputs(
            "{\"bench\": \"backend_compare\", \"runs\": [\n", f);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const CompareRow &r = rows[i];
            std::fprintf(
                f,
                "  {\"app\": \"%s\", \"checksumMatch\": %s, "
                "\"simHostMillis\": %.2f, "
                "\"threadHostMillis\": %.2f, "
                "\"simMsgs\": %llu, \"threadMsgs\": %llu}%s\n",
                r.app.c_str(), r.match ? "true" : "false",
                r.simHostMs, r.thrHostMs,
                static_cast<unsigned long long>(r.simMsgs),
                static_cast<unsigned long long>(r.thrMsgs),
                i + 1 < rows.size() ? "," : "");
        }
        std::fputs("]}\n", f);
        std::fclose(f);
    }
    return allMatch ? 0 : 1;
}
